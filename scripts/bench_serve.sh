#!/usr/bin/env bash
# Benchmark the gt-serve request path and write a BENCH_serve.json
# artifact at the repo root.
#
# Five scenarios, each a closed-loop `gtree loadgen` run:
#
#   cached_pipeline1  warm key, 4 conns, one request in flight per
#                     connection — the pre-pipelining baseline
#   cached_pipeline8  same warm key, 4 conns, window of 8 — shows
#                     cached-hit throughput scaling from pipelining
#   coalesced         cache disabled, 32 identical requests in
#                     flight — misses collapse onto single flights
#   cold              cache disabled, one request at a time — every
#                     request runs the engine
#   cold_storm        cache disabled, 64 conns × window 4 of
#                     *distinct* keys (--distinct salts every spec):
#                     nothing caches, nothing coalesces, every
#                     request crosses the executor — the batch-size
#                     distribution here is the micro-batching evidence
#                     for the cold path.
#
# Every scenario passes --server-stats, so each report embeds the
# server's own snapshot (stage histograms, engine work counters,
# batching) alongside the client-side latency figures.
#
# Environment overrides: GTREE_BIN, BENCH_OUT, BENCH_DURATION (s),
# BENCH_PORT.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BIN="${GTREE_BIN:-$ROOT/target/release/gtree}"
OUT="${BENCH_OUT:-$ROOT/BENCH_serve.json}"
DUR="${BENCH_DURATION:-2}"
PORT="${BENCH_PORT:-7181}"
ADDR="127.0.0.1:$PORT"

if [ ! -x "$BIN" ]; then
  echo "bench_serve: building release binary" >&2
  (cd "$ROOT" && cargo build --release -q)
fi

SERVER_PID=""
start_server() { # extra `gtree serve` flags as args
  "$BIN" serve --addr "$ADDR" --eval-workers 4 "$@" >/dev/null 2>&1 &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$PORT") 2>/dev/null; then
      return 0
    fi
    sleep 0.05
  done
  echo "bench_serve: server did not come up on $ADDR" >&2
  exit 1
}

stop_server() {
  if [ -n "$SERVER_PID" ]; then
    kill -INT "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
    SERVER_PID=""
  fi
}
trap stop_server EXIT

loadgen() { # extra `gtree loadgen` flags as args; prints one JSON line
  # --server-stats on every scenario: each report embeds the server's
  # snapshot (stage histograms, work counters, batching) at that point.
  "$BIN" loadgen --addr "$ADDR" --rps 0 --duration "$DUR" --json --server-stats "$@"
}

summary() { # name, loadgen JSON
  local rps
  rps=$(printf '%s' "$2" | sed -n 's/.*"achieved_rps":\([0-9.e+-]*\).*/\1/p')
  printf 'bench_serve: %-18s %s replies/s\n' "$1" "${rps:-?}" >&2
}

# Cached-hit scenarios: default cache, key warmed before measuring.
start_server
"$BIN" loadgen --addr "$ADDR" --rps 0 --duration 0.3 --conns 1 \
  --spec worst:d=2,n=6 --algo seq-solve >/dev/null
cached_p1=$(loadgen --conns 4 --pipeline 1 --spec worst:d=2,n=6 --algo seq-solve)
summary cached_pipeline1 "$cached_p1"
cached_p8=$(loadgen --conns 4 --pipeline 8 --spec worst:d=2,n=6 --algo seq-solve)
summary cached_pipeline8 "$cached_p8"
stop_server

# Miss scenarios: cache disabled so every request is a miss.
start_server --cache 0
coalesced=$(loadgen --conns 4 --pipeline 8 --spec worst:d=2,n=16 --algo cascade:w=1)
summary coalesced "$coalesced"
cold=$(loadgen --conns 1 --pipeline 1 --spec worst:d=2,n=12 --algo seq-solve)
summary cold "$cold"
stop_server

# Cold storm: distinct keys defeat both the cache and single-flight
# coalescing, so throughput here is pure executor dispatch + engine.
# A deep queue absorbs the 256-request standing burst without shedding.
start_server --cache 0 --queue-depth 1024
cold_storm=$(loadgen --conns 64 --pipeline 4 --spec worst:d=2,n=12 --algo seq-solve \
  --distinct)
summary cold_storm "$cold_storm"
stop_server

printf '{"duration_s":%s,"cached_pipeline1":%s,"cached_pipeline8":%s,"coalesced":%s,"cold":%s,"cold_storm":%s}\n' \
  "$DUR" "$cached_p1" "$cached_p8" "$coalesced" "$cold" "$cold_storm" > "$OUT"
echo "bench_serve: wrote $OUT" >&2
