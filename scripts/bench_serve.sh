#!/usr/bin/env bash
# Benchmark the gt-serve request path and write a BENCH_serve.json
# artifact at the repo root.
#
# Five scenarios, each a closed-loop `gtree loadgen` run:
#
#   cached_pipeline1  warm key, 4 conns, one request in flight per
#                     connection — the pre-pipelining baseline
#   cached_pipeline8  same warm key, 4 conns, window of 8 — shows
#                     cached-hit throughput scaling from pipelining
#   coalesced         cache disabled, 32 identical requests in
#                     flight — misses collapse onto single flights
#   cold              cache disabled, one request at a time — every
#                     request runs the engine
#   cold_storm        cache disabled, 64 conns × window 4 of
#                     *distinct* keys (--distinct salts every spec):
#                     nothing caches, nothing coalesces, every
#                     request crosses the executor — the batch-size
#                     distribution here is the micro-batching evidence
#                     for the cold path.
#
#   tenant_fairness   4 round-robin tenants (loadgen --tenants 4) into
#                     a server capped at --tenant-max-inflight 2: the
#                     standing pipelined windows keep ~8 distinct-key
#                     requests in flight per tenant, so the governor
#                     sheds the overflow (429) while the weighted DRR
#                     lanes keep service even.  Recorded: the report's
#                     per-tenant sent/ok/shed/p99 slices.  Asserted:
#                     the cap engaged (shed > 0), every tenant kept
#                     making progress, and the busiest tenant's ok
#                     count stays within 3x of the quietest's.
#
#   c10k              10,000 mostly-idle fan-in connections (loadgen
#                     --connections) held open while the warm-key
#                     pipelined load runs underneath.  The server
#                     multiplexes everything on its fixed --io-threads
#                     pool: recorded are the fan-in count, sustained
#                     rps/p99 under the idle mass, the server's thread
#                     census, and its VmRSS sampled mid-run.  Asserted:
#                     every fan-in connection came up, the thread
#                     count stays fixed (no thread per connection),
#                     and RSS stays under a quarter-GB ceiling.
#
#   par_scaling       one evaluation, many cores: the same large
#                     worst-ordered tree (no pruning, so the work is
#                     width-independent) evaluated with par-alphabeta
#                     while --par-max-workers sweeps 1/2/4.  p50@w1 /
#                     p50@wW is the intra-eval speedup, recorded next
#                     to the paper's Theorem 3 prediction
#                     (S(T)/P(T) >= c(n+1)).  Asserted: >= 1.5x at 4
#                     workers on a multi-core host, parity within 10%
#                     on a single core, and steals > 0 either way.
#
# Every scenario passes --server-stats, so each report embeds the
# server's own snapshot (stage histograms, engine work counters,
# batching) alongside the client-side latency figures.
#
# Three fleet scenarios ride along (gt-router, docs/ROUTING.md):
#
#   fleet_direct      distinct-key engine-bound load straight at one
#                     replica — the no-router baseline
#   fleet_router      the identical load through a gt-router fronting
#                     that one replica: the p50 gap between the two is
#                     the router's added hop cost
#                     (router_overhead_p50_pct in the artifact)
#   fleet_failover    3 replicas behind a router; one replica is
#                     killed -9 mid-run.  The run must finish with
#                     zero client-visible errors and the router's
#                     stats must show retries > 0 — recorded alongside
#                     the router's own snapshot.
#
# One tracing scenario (distributed traces, docs/OBSERVABILITY.md):
#
#   trace_overhead    the cached-pipeline8 load through a router over
#                     one warm replica under the default sampled
#                     tracing (--trace-sample 0.05, one request in
#                     twenty).  Asserted < 3%: the same-run p50 gap
#                     between the replies that carried a trace_id and
#                     the run as a whole — span recording's cost with
#                     run-to-run machine drift cancelled exactly.  A
#                     --trace-sample 0 run rides along for context.
#
# Two split scenarios follow (scatter-gather, docs/ROUTING.md):
#
#   fleet_split       3 replicas behind a router with --split-cost:
#                     every loadgen --split-heavy eval is decomposed
#                     along its eldest chain and scattered as subevals.
#                     The router's split counters (splits_total,
#                     subevals_dispatched, ...) are recorded, and
#                     splits_total > 0 is asserted.
#   split_window_gain one pruning-friendly (best-ordered) eval through
#                     a windowed split fleet vs a fresh --split-naive
#                     fleet: the windowed plan's narrowed α/β windows
#                     must do strictly fewer fleet leaves than the
#                     naive full-window fan-out.
#
# Environment overrides: GTREE_BIN, BENCH_OUT, BENCH_DURATION (s),
# BENCH_PORT.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BIN="${GTREE_BIN:-$ROOT/target/release/gtree}"
OUT="${BENCH_OUT:-$ROOT/BENCH_serve.json}"
DUR="${BENCH_DURATION:-2}"
PORT="${BENCH_PORT:-7181}"
ADDR="127.0.0.1:$PORT"

if [ ! -x "$BIN" ]; then
  echo "bench_serve: building release binary" >&2
  (cd "$ROOT" && cargo build --release -q)
fi

SERVER_PID=""
start_server() { # extra `gtree serve` flags as args
  "$BIN" serve --addr "$ADDR" --eval-workers 4 "$@" >/dev/null 2>&1 &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$PORT") 2>/dev/null; then
      return 0
    fi
    sleep 0.05
  done
  echo "bench_serve: server did not come up on $ADDR" >&2
  exit 1
}

stop_server() {
  if [ -n "$SERVER_PID" ]; then
    kill -INT "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
    SERVER_PID=""
  fi
}

FLEET_PIDS=""
stop_fleet() {
  for pid in $FLEET_PIDS; do
    kill -INT "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
  done
  FLEET_PIDS=""
}
trap 'stop_server; stop_fleet' EXIT

wait_up() { # port
  for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null; then
      return 0
    fi
    sleep 0.05
  done
  echo "bench_serve: nothing came up on port $1" >&2
  exit 1
}

p50_of() { printf '%s' "$1" | sed -n 's/.*"latency_p50_us":\([0-9.e+-]*\).*/\1/p'; }

loadgen() { # extra `gtree loadgen` flags as args; prints one JSON line
  # --server-stats on every scenario: each report embeds the server's
  # snapshot (stage histograms, work counters, batching) at that point.
  "$BIN" loadgen --addr "$ADDR" --rps 0 --duration "$DUR" --json --server-stats "$@"
}

summary() { # name, loadgen JSON
  local rps
  rps=$(printf '%s' "$2" | sed -n 's/.*"achieved_rps":\([0-9.e+-]*\).*/\1/p')
  printf 'bench_serve: %-18s %s replies/s\n' "$1" "${rps:-?}" >&2
}

# Cached-hit scenarios: default cache, key warmed before measuring.
start_server
"$BIN" loadgen --addr "$ADDR" --rps 0 --duration 0.3 --conns 1 \
  --spec worst:d=2,n=6 --algo seq-solve >/dev/null
cached_p1=$(loadgen --conns 4 --pipeline 1 --spec worst:d=2,n=6 --algo seq-solve)
summary cached_pipeline1 "$cached_p1"
cached_p8=$(loadgen --conns 4 --pipeline 8 --spec worst:d=2,n=6 --algo seq-solve)
summary cached_pipeline8 "$cached_p8"
stop_server

# Miss scenarios: cache disabled so every request is a miss.
start_server --cache 0
coalesced=$(loadgen --conns 4 --pipeline 8 --spec worst:d=2,n=16 --algo cascade:w=1)
summary coalesced "$coalesced"
cold=$(loadgen --conns 1 --pipeline 1 --spec worst:d=2,n=12 --algo seq-solve)
summary cold "$cold"
stop_server

# Cold storm: distinct keys defeat both the cache and single-flight
# coalescing, so throughput here is pure executor dispatch + engine.
# A deep queue absorbs the 256-request standing burst without shedding.
start_server --cache 0 --queue-depth 1024
cold_storm=$(loadgen --conns 64 --pipeline 4 --spec worst:d=2,n=12 --algo seq-solve \
  --distinct)
summary cold_storm "$cold_storm"
stop_server

# --- Tenant-fairness scenario ----------------------------------------
# Distinct keys defeat the cache and single-flight coalescing, so
# every request crosses the per-tenant governor (docs/SERVING.md).
# 4 conns x window 8 over 4 round-robin tenants keeps up to 8 requests
# in flight per tenant against a cap of 2: the overflow sheds, the
# DRR lanes keep what's admitted even.
start_server --queue-depth 1024 --tenant-max-inflight 2
tenant_fairness=$(loadgen --conns 4 --pipeline 8 --tenants 4 \
  --spec worst:d=2,n=12 --algo seq-solve --distinct)
summary tenant_fairness "$tenant_fairness"
stop_server

# Per-tenant rows render as "tN":{"sent":..,"ok":..,"shed":..,...}.
tf_rows=$(printf '%s' "$tenant_fairness" \
  | grep -o '"t[0-9]*":{"sent":[0-9]*,"ok":[0-9]*,"shed":[0-9]*')
tf_count=$(printf '%s\n' "$tf_rows" | grep -c . || true)
tf_ok_min=$(printf '%s\n' "$tf_rows" | sed -n 's/.*"ok":\([0-9]*\).*/\1/p' | sort -n | head -n 1)
tf_ok_max=$(printf '%s\n' "$tf_rows" | sed -n 's/.*"ok":\([0-9]*\).*/\1/p' | sort -n | tail -n 1)
tf_shed=$(printf '%s\n' "$tf_rows" | sed -n 's/.*"shed":\([0-9]*\).*/\1/p' \
  | awk '{ s += $1 } END { print s + 0 }')
echo "bench_serve: tenant fairness: $tf_count tenants, ok min/max $tf_ok_min/$tf_ok_max, shed $tf_shed" >&2
[ "${tf_count:-0}" -eq 4 ] || {
  echo "bench_serve: tenant run reported $tf_count tenant slices (wanted 4)" >&2
  exit 1
}
[ "${tf_shed:-0}" -gt 0 ] || {
  echo "bench_serve: the tenant cap never shed under an 8x overload" >&2
  exit 1
}
[ "${tf_ok_min:-0}" -gt 0 ] || {
  echo "bench_serve: a capped tenant was starved (ok = 0)" >&2
  exit 1
}
[ "${tf_ok_max:-0}" -le $((tf_ok_min * 3)) ] || {
  echo "bench_serve: tenant service is uneven (ok $tf_ok_min .. $tf_ok_max)" >&2
  exit 1
}
tenant_fairness_summary=$(printf '{"tenant_max_inflight":2,"tenants":%s,"ok_min":%s,"ok_max":%s,"shed_total":%s}' \
  "${tf_count:-0}" "${tf_ok_min:-0}" "${tf_ok_max:-0}" "${tf_shed:-0}")

# --- c10k scenario ---------------------------------------------------
# Ten thousand idle connections under an active cached-pipeline load.
# The script raises its own fd limit so the *loadgen* process can open
# them; the server raises its own at startup.
ulimit -n 65535 2>/dev/null || \
  echo "bench_serve: could not raise fd limit; c10k may shed connects" >&2
C10K_CONNS="${BENCH_C10K:-10000}"
start_server
"$BIN" loadgen --addr "$ADDR" --rps 0 --duration 0.3 --conns 1 \
  --spec worst:d=2,n=6 --algo seq-solve >/dev/null
threads_idle=$(sed -n 's/^Threads:[[:space:]]*//p' "/proc/$SERVER_PID/status")
c10k_json="$(mktemp)"
"$BIN" loadgen --addr "$ADDR" --rps 0 --duration "$DUR" --json --server-stats \
  --conns 4 --pipeline 8 --connections "$C10K_CONNS" \
  --spec worst:d=2,n=6 --algo seq-solve > "$c10k_json" &
C10K_PID=$!
# Sample the server while the idle mass is actually connected.  The
# fan-in takes a moment to establish; sample late in the run.
sleep "$(awk -v d="$DUR" 'BEGIN { printf "%.1f", d * 0.75 }')"
threads_loaded=$(sed -n 's/^Threads:[[:space:]]*//p' "/proc/$SERVER_PID/status")
rss_kb=$(sed -n 's/^VmRSS:[[:space:]]*\([0-9]*\).*/\1/p' "/proc/$SERVER_PID/status")
open_mid=$( (exec 3<>"/dev/tcp/127.0.0.1/$PORT"; printf '{"op":"stats"}\n' >&3; \
  IFS= read -r r <&3; printf '%s' "$r") | sed -n 's/.*"open_conns":\([0-9]*\).*/\1/p')
wait "$C10K_PID"
c10k=$(cat "$c10k_json")
rm -f "$c10k_json"
summary c10k "$c10k"
stop_server

fan_failed=$(printf '%s' "$c10k" | sed -n 's/.*"fan_in_failed":\([0-9]*\).*/\1/p')
fan_open=$(printf '%s' "$c10k" | sed -n 's/.*"fan_in_open":\([0-9]*\).*/\1/p')
echo "bench_serve: c10k held ${fan_open:-?} idle conns (${fan_failed:-?} failed);" \
  "threads $threads_idle -> $threads_loaded, RSS ${rss_kb:-?}kB, open mid-run ${open_mid:-?}" >&2
[ "${fan_failed:-1}" -eq 0 ] || {
  echo "bench_serve: $fan_failed fan-in connections failed to open" >&2
  exit 1
}
[ "${fan_open:-0}" -eq "$C10K_CONNS" ] || {
  echo "bench_serve: only ${fan_open:-0}/$C10K_CONNS fan-in connections held" >&2
  exit 1
}
# Fixed pool: the census under 10k connections must match the idle
# census (slack 2 for an in-flight metrics scrape, nothing per-conn).
[ "$threads_loaded" -le $((threads_idle + 2)) ] || {
  echo "bench_serve: thread census grew $threads_idle -> $threads_loaded under c10k" >&2
  exit 1
}
[ "${rss_kb:-0}" -le 262144 ] || {
  echo "bench_serve: server RSS ${rss_kb}kB over the 256MB c10k ceiling" >&2
  exit 1
}
c10k_extra=$(printf '{"connections":%s,"fan_in_failed":%s,"server_threads_idle":%s,"server_threads_loaded":%s,"server_rss_kb":%s,"open_conns_mid_run":%s}' \
  "${fan_open:-0}" "${fan_failed:-0}" "${threads_idle:-0}" "${threads_loaded:-0}" \
  "${rss_kb:-0}" "${open_mid:-0}")

# --- Par-scaling scenario --------------------------------------------
# Branching 8, height 6: worst ordering defeats pruning, so every
# width evaluates the same 8^6 leaves and latency differences are pure
# thread-level parallelism.  One connection, one request in flight:
# each p50 is the latency of a single evaluation at that grant width.
PAR_SPEC="minmax-worst:d=8,n=6,seed=1"
PAR_HEIGHT=6
par_steals=""
for W in 1 2 4; do
  start_server --cache 0 --par-threshold 1 --par-max-workers "$W"
  run=$(loadgen --conns 1 --pipeline 1 --spec "$PAR_SPEC" --algo par-alphabeta)
  summary "par_scaling_w$W" "$run"
  eval "par_run_$W=\$run"
  eval "par_p50_$W=\$(p50_of \"\$run\")"
  if [ "$W" -eq 4 ]; then
    par_steals=$(printf '%s' "$run" | sed -n 's/.*"par_steals":\([0-9][0-9]*\).*/\1/p')
  fi
  stop_server
done

cores=$(nproc 2>/dev/null || echo 1)
sp2=$(awk -v a="${par_p50_1:-0}" -v b="${par_p50_2:-0}" \
  'BEGIN { if (a > 0 && b > 0) printf "%.3f", a / b; else printf "null" }')
sp4=$(awk -v a="${par_p50_1:-0}" -v b="${par_p50_4:-0}" \
  'BEGIN { if (a > 0 && b > 0) printf "%.3f", a / b; else printf "null" }')
echo "bench_serve: par scaling on $cores core(s): speedup w2=$sp2 w4=$sp4, steals=$par_steals" >&2
[ "${par_steals:-0}" -gt 0 ] || {
  echo "bench_serve: parallel eval recorded no steals" >&2
  exit 1
}
if [ "$cores" -ge 2 ]; then
  awk -v s="${sp4:-0}" 'BEGIN { exit !(s >= 1.5) }' || {
    echo "bench_serve: multi-core speedup at 4 workers is $sp4 (< 1.5x)" >&2
    exit 1
  }
else
  awk -v s="${sp4:-0}" 'BEGIN { exit !(s >= 0.9) }' || {
    echo "bench_serve: single-core parity at 4 workers is $sp4 (> 10% overhead)" >&2
    exit 1
  }
fi
par_scaling=$(printf '{"spec":"%s","cores":%s,"paper":{"bound":"S(T)/P(T) >= c(n+1)","n_plus_1":%s},"p50_us":{"w1":%s,"w2":%s,"w4":%s},"speedup":{"w2":%s,"w4":%s},"par_steals_w4":%s}' \
  "$PAR_SPEC" "$cores" "$((PAR_HEIGHT + 1))" \
  "${par_p50_1:-null}" "${par_p50_2:-null}" "${par_p50_4:-null}" \
  "${sp2:-null}" "${sp4:-null}" "${par_steals:-0}")

# --- Fleet scenarios -------------------------------------------------
# Engine-bound distinct keys (no caching, no coalescing) so the
# router's per-request hop cost is measured against real evaluation
# work, not against a sub-100µs cache hit.
#
# Methodology (pinned after the PR-5 -> PR-7 drift investigation):
# both paths get an unmeasured warmup burst before their measured
# window.  Without it, whichever path runs first eats one-time costs
# inside its short measured run — the router path pays pool connects,
# the first health-probe round, and allocator growth on top of the
# replica's own JIT-warm caches, which inflated the apparent hop cost
# (33% where a warmed measurement shows far less).  The overhead
# figure is only comparable across commits if both runs are warmed.
FLEET_SPEC="worst:d=2,n=14"
FLEET_ALGO="seq-solve"
ROUTE_PORT=$((PORT + 2))
ROUTE_ADDR="127.0.0.1:$ROUTE_PORT"

start_server --cache 0 --queue-depth 1024
"$BIN" loadgen --addr "$ADDR" --rps 0 --duration 0.5 \
  --conns 2 --pipeline 2 --spec "$FLEET_SPEC" --algo "$FLEET_ALGO" --distinct \
  >/dev/null
fleet_direct=$("$BIN" loadgen --addr "$ADDR" --rps 0 --duration "$DUR" --json \
  --conns 2 --pipeline 2 --spec "$FLEET_SPEC" --algo "$FLEET_ALGO" --distinct)
summary fleet_direct "$fleet_direct"

"$BIN" route --addr "$ROUTE_ADDR" --replicas "$ADDR" >/dev/null 2>&1 &
ROUTER_PID=$!
FLEET_PIDS="$ROUTER_PID"
wait_up "$ROUTE_PORT"
"$BIN" loadgen --addr "$ROUTE_ADDR" --rps 0 --duration 0.5 \
  --conns 2 --pipeline 2 --spec "$FLEET_SPEC" --algo "$FLEET_ALGO" --distinct \
  >/dev/null
fleet_router=$("$BIN" loadgen --addr "$ROUTE_ADDR" --rps 0 --duration "$DUR" --json \
  --conns 2 --pipeline 2 --spec "$FLEET_SPEC" --algo "$FLEET_ALGO" --distinct)
summary fleet_router "$fleet_router"
stop_fleet
stop_server

p50_direct=$(p50_of "$fleet_direct")
p50_router=$(p50_of "$fleet_router")
overhead=$(awk -v d="${p50_direct:-0}" -v r="${p50_router:-0}" \
  'BEGIN { if (d > 0) printf "%.1f", (r - d) / d * 100; else printf "null" }')
echo "bench_serve: router overhead at p50: ${overhead}% (direct ${p50_direct}us -> routed ${p50_router}us, both warmed)" >&2

# Failover: 3 replicas, kill one -9 mid-run.  Zero client-visible
# errors and retries > 0 are asserted, not just recorded.
REPLICA_PIDS=""
REPLICA_ADDRS=""
for i in 3 4 5; do
  rport=$((PORT + i))
  "$BIN" serve --addr "127.0.0.1:$rport" --eval-workers 2 --queue-depth 1024 \
    --cache 0 >/dev/null 2>&1 &
  REPLICA_PIDS="$REPLICA_PIDS $!"
  REPLICA_ADDRS="$REPLICA_ADDRS,127.0.0.1:$rport"
done
REPLICA_ADDRS="${REPLICA_ADDRS#,}"
"$BIN" route --addr "$ROUTE_ADDR" --replicas "$REPLICA_ADDRS" \
  --retries 5 --probe-interval 25 --probe-timeout 100 >/dev/null 2>&1 &
ROUTER_PID=$!
FLEET_PIDS="$ROUTER_PID $REPLICA_PIDS"
wait_up "$ROUTE_PORT"

# Heavier per-eval spec than the throughput runs: multi-millisecond
# evals keep every replica's pooled connection busy, so the kill below
# always catches in-flight requests and the retries>0 assertion cannot
# race against an idle victim.
FAILOVER_SPEC="worst:d=2,n=18"
failover_json="$(mktemp)"
"$BIN" loadgen --addr "$ROUTE_ADDR" --rps 0 --duration 4 --json \
  --conns 4 --pipeline 2 --spec "$FAILOVER_SPEC" --algo "$FLEET_ALGO" --distinct \
  > "$failover_json" &
LOADGEN_PID=$!
sleep 1.5
victim=$(printf '%s' "$REPLICA_PIDS" | awk '{print $2}')
kill -9 "$victim" 2>/dev/null || true
wait "$LOADGEN_PID"
fleet_failover=$(cat "$failover_json")
rm -f "$failover_json"
summary fleet_failover "$fleet_failover"

exec 9<>"/dev/tcp/127.0.0.1/$ROUTE_PORT"
printf '{"op":"stats"}\n' >&9
IFS= read -r stats_reply <&9
exec 9<&- 9>&-
failover_stats=$(printf '%s' "$stats_reply" | sed -n 's/.*"stats":\({.*}\)}[[:space:]]*$/\1/p')
[ -n "$failover_stats" ] || failover_stats="null"
retries=$(printf '%s' "$stats_reply" | sed -n 's/.*"retries":\([0-9][0-9]*\).*/\1/p')
stop_fleet

errfield() { printf '%s' "$fleet_failover" | sed -n "s/.*\"$1\":\([0-9][0-9]*\).*/\1/p"; }
fail=""
for f in shed timeout bad other_error transport_errors; do
  v=$(errfield "$f")
  [ "${v:-0}" -eq 0 ] || { echo "bench_serve: failover run saw $v $f" >&2; fail=1; }
done
[ "${retries:-0}" -gt 0 ] || { echo "bench_serve: failover run shows no router retries" >&2; fail=1; }
[ -z "$fail" ] || exit 1
echo "bench_serve: failover clean ($retries router retries, zero client errors)" >&2

# --- Split scenarios -------------------------------------------------
# A router with --split-cost decomposes each large eval along its
# eldest chain and scatters the sibling subtrees across the fleet as
# subevals under narrowing α/β windows (docs/ROUTING.md).

start_split_fleet() { # extra `gtree route` flags as args
  REPLICA_PIDS=""
  REPLICA_ADDRS=""
  for i in 6 7 8; do
    rport=$((PORT + i))
    "$BIN" serve --addr "127.0.0.1:$rport" --eval-workers 2 --queue-depth 1024 \
      >/dev/null 2>&1 &
    REPLICA_PIDS="$REPLICA_PIDS $!"
    REPLICA_ADDRS="$REPLICA_ADDRS,127.0.0.1:$rport"
  done
  REPLICA_ADDRS="${REPLICA_ADDRS#,}"
  "$BIN" route --addr "$ROUTE_ADDR" --replicas "$REPLICA_ADDRS" \
    --split-cost 1000 "$@" >/dev/null 2>&1 &
  ROUTER_PID=$!
  FLEET_PIDS="$ROUTER_PID $REPLICA_PIDS"
  wait_up "$ROUTE_PORT"
}

router_stats() { # prints the router's raw stats reply
  exec 9<>"/dev/tcp/127.0.0.1/$ROUTE_PORT"
  printf '{"op":"stats"}\n' >&9
  IFS= read -r stats_reply <&9
  exec 9<&- 9>&-
  printf '%s' "$stats_reply"
}

eval_leaves() { # spec -> the reply's work.leaves for one routed eval
  exec 9<>"/dev/tcp/127.0.0.1/$ROUTE_PORT"
  printf '{"op":"eval","spec":"%s","algo":"cascade:w=1","deadline_ms":30000}\n' "$1" >&9
  IFS= read -r eval_reply <&9
  exec 9<&- 9>&-
  case "$eval_reply" in
    *'"ok":true'*) : ;;
    *) echo "bench_serve: split eval failed: $eval_reply" >&2; exit 1 ;;
  esac
  printf '%s' "$eval_reply" | sed -n 's/.*"leaves":\([0-9][0-9]*\).*/\1/p'
}

start_split_fleet
fleet_split=$("$BIN" loadgen --addr "$ROUTE_ADDR" --rps 0 --duration "$DUR" --json \
  --conns 4 --pipeline 2 --split-heavy)
summary fleet_split "$fleet_split"

stats_reply=$(router_stats)
split_stats=$(printf '%s' "$stats_reply" | sed -n 's/.*"stats":\({.*}\)}[[:space:]]*$/\1/p')
[ -n "$split_stats" ] || split_stats="null"
splits=$(printf '%s' "$stats_reply" | sed -n 's/.*"splits_total":\([0-9][0-9]*\).*/\1/p')
[ "${splits:-0}" -gt 0 ] || {
  echo "bench_serve: split-heavy run planned no splits: $stats_reply" >&2
  exit 1
}

# Windowed vs naive fleet work on a best-ordered tree (maximally α-β
# friendly).  Same fleet for the windowed probe — the split-heavy load
# above touched disjoint specs, so its subeval caches cannot feed it.
WINDOW_SPEC="minmax-best:d=3,n=9,value=9"
windowed_leaves=$(eval_leaves "$WINDOW_SPEC")
stop_fleet

# A fresh fleet for the naive baseline so no cache crosses modes.
start_split_fleet --split-naive
naive_leaves=$(eval_leaves "$WINDOW_SPEC")
stop_fleet

[ -n "${windowed_leaves:-}" ] && [ -n "${naive_leaves:-}" ] || {
  echo "bench_serve: split evals reported no work.leaves" >&2
  exit 1
}
if [ "$windowed_leaves" -ge "$naive_leaves" ]; then
  echo "bench_serve: windowed split did not beat naive ($windowed_leaves >= $naive_leaves leaves)" >&2
  exit 1
fi
split_window_gain=$(printf '{"spec":"%s","windowed_leaves":%s,"naive_leaves":%s}' \
  "$WINDOW_SPEC" "$windowed_leaves" "$naive_leaves")
echo "bench_serve: split ok ($splits splits; windowed $windowed_leaves vs naive $naive_leaves leaves)" >&2

# --- Trace-overhead scenario -----------------------------------------
# The cached-pipeline8 load through a router over one warm replica,
# with the default sampled tracing (--trace-sample 0.05, one request
# in twenty) and then tracing off (--trace-sample 0).  Cached hits
# are the cheapest requests the fleet serves, so span recording has
# nowhere to hide.
#
# The asserted figure is the *same-run* comparison: the p50 of the
# replies that carried a trace_id (the requests the router actually
# traced) against the run-wide p50.  Traced and untraced requests
# interleave within one run on one fleet, so the gap is the cost of
# span recording alone — machine drift between two separate runs (far
# larger than 3% on a busy box) cancels exactly.  The --trace-sample 0
# run is recorded for context and sanity-checked (no reply may carry a
# trace_id), not asserted on.
TRACE_SPEC="worst:d=2,n=6"
start_server
"$BIN" loadgen --addr "$ADDR" --rps 0 --duration 0.3 --conns 1 \
  --spec "$TRACE_SPEC" --algo seq-solve >/dev/null

trace_run() { # extra `gtree route` flags as args; prints loadgen JSON
  "$BIN" route --addr "$ROUTE_ADDR" --replicas "$ADDR" "$@" >/dev/null 2>&1 &
  ROUTER_PID=$!
  FLEET_PIDS="$ROUTER_PID"
  wait_up "$ROUTE_PORT"
  "$BIN" loadgen --addr "$ROUTE_ADDR" --rps 0 --duration 0.5 \
    --conns 4 --pipeline 8 --spec "$TRACE_SPEC" --algo seq-solve >/dev/null
  "$BIN" loadgen --addr "$ROUTE_ADDR" --rps 0 --duration "$DUR" --json \
    --conns 4 --pipeline 8 --spec "$TRACE_SPEC" --algo seq-solve
  stop_fleet
}

trace_on=$(trace_run)
summary trace_on "$trace_on"
trace_off=$(trace_run --trace-sample 0)
summary trace_off "$trace_off"
stop_server

traced_n=$(printf '%s' "$trace_on" | sed -n 's/.*"traced":\([0-9]*\).*/\1/p')
p50_all=$(p50_of "$trace_on")
p50_traced=$(printf '%s' "$trace_on" \
  | sed -n 's/.*"latency_p50_traced_us":\([0-9.e+-]*\).*/\1/p')
p50_off=$(p50_of "$trace_off")
off_traced=$(printf '%s' "$trace_off" | sed -n 's/.*"traced":\([0-9]*\).*/\1/p')
[ "${traced_n:-0}" -gt 0 ] || {
  echo "bench_serve: default sampling traced no requests: $trace_on" >&2
  exit 1
}
[ "${off_traced:-1}" -eq 0 ] || {
  echo "bench_serve: --trace-sample 0 still traced $off_traced requests" >&2
  exit 1
}
trace_overhead_pct=$(awk -v t="${p50_traced:-0}" -v a="${p50_all:-0}" \
  'BEGIN { if (t > 0 && a > 0) { o = (t - a) / a * 100; if (o < 0) o = 0; printf "%.1f", o } else printf "null" }')
echo "bench_serve: trace overhead at p50: ${trace_overhead_pct}% ($traced_n traced ${p50_traced}us vs run-wide ${p50_all}us; untraced run ${p50_off}us)" >&2
awk -v o="${trace_overhead_pct:-100}" 'BEGIN { exit !(o < 3) }' || {
  echo "bench_serve: tracing adds ${trace_overhead_pct}% at p50 (>= 3% budget)" >&2
  exit 1
}
trace_overhead=$(printf '{"spec":"%s","traced_requests":%s,"p50_us":{"traced":%s,"run_wide":%s,"untraced_run":%s},"overhead_p50_pct":%s,"budget_pct":3,"methodology":"same-run traced-vs-run-wide p50 under default 1-in-20 sampling; the --trace-sample 0 run is context only"}' \
  "$TRACE_SPEC" "${traced_n:-0}" "${p50_traced:-null}" "${p50_all:-null}" \
  "${p50_off:-null}" "${trace_overhead_pct:-null}")

printf '{"duration_s":%s,"cached_pipeline1":%s,"cached_pipeline8":%s,"coalesced":%s,"cold":%s,"cold_storm":%s,"tenant_fairness":%s,"tenant_fairness_summary":%s,"c10k":%s,"c10k_server":%s,"par_scaling":%s,"fleet_direct":%s,"fleet_router":%s,"router_overhead_p50_pct":%s,"router_overhead_methodology":"both paths warmed 0.5s before the measured window","fleet_failover":%s,"fleet_failover_router_stats":%s,"fleet_split":%s,"fleet_split_router_stats":%s,"split_window_gain":%s,"trace_overhead":%s}\n' \
  "$DUR" "$cached_p1" "$cached_p8" "$coalesced" "$cold" "$cold_storm" \
  "$tenant_fairness" "$tenant_fairness_summary" "$c10k" "$c10k_extra" \
  "$par_scaling" "$fleet_direct" "$fleet_router" "${overhead:-null}" "$fleet_failover" \
  "$failover_stats" "$fleet_split" "$split_stats" "$split_window_gain" "$trace_overhead" > "$OUT"
echo "bench_serve: wrote $OUT" >&2
