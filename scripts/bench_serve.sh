#!/usr/bin/env bash
# Benchmark the gt-serve request path and write a BENCH_serve.json
# artifact at the repo root.
#
# Five scenarios, each a closed-loop `gtree loadgen` run:
#
#   cached_pipeline1  warm key, 4 conns, one request in flight per
#                     connection — the pre-pipelining baseline
#   cached_pipeline8  same warm key, 4 conns, window of 8 — shows
#                     cached-hit throughput scaling from pipelining
#   coalesced         cache disabled, 32 identical requests in
#                     flight — misses collapse onto single flights
#   cold              cache disabled, one request at a time — every
#                     request runs the engine
#   cold_storm        cache disabled, 64 conns × window 4 of
#                     *distinct* keys (--distinct salts every spec):
#                     nothing caches, nothing coalesces, every
#                     request crosses the executor — the batch-size
#                     distribution here is the micro-batching evidence
#                     for the cold path.
#
# Every scenario passes --server-stats, so each report embeds the
# server's own snapshot (stage histograms, engine work counters,
# batching) alongside the client-side latency figures.
#
# Three fleet scenarios ride along (gt-router, docs/ROUTING.md):
#
#   fleet_direct      distinct-key engine-bound load straight at one
#                     replica — the no-router baseline
#   fleet_router      the identical load through a gt-router fronting
#                     that one replica: the p50 gap between the two is
#                     the router's added hop cost
#                     (router_overhead_p50_pct in the artifact)
#   fleet_failover    3 replicas behind a router; one replica is
#                     killed -9 mid-run.  The run must finish with
#                     zero client-visible errors and the router's
#                     stats must show retries > 0 — recorded alongside
#                     the router's own snapshot.
#
# Environment overrides: GTREE_BIN, BENCH_OUT, BENCH_DURATION (s),
# BENCH_PORT.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BIN="${GTREE_BIN:-$ROOT/target/release/gtree}"
OUT="${BENCH_OUT:-$ROOT/BENCH_serve.json}"
DUR="${BENCH_DURATION:-2}"
PORT="${BENCH_PORT:-7181}"
ADDR="127.0.0.1:$PORT"

if [ ! -x "$BIN" ]; then
  echo "bench_serve: building release binary" >&2
  (cd "$ROOT" && cargo build --release -q)
fi

SERVER_PID=""
start_server() { # extra `gtree serve` flags as args
  "$BIN" serve --addr "$ADDR" --eval-workers 4 "$@" >/dev/null 2>&1 &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$PORT") 2>/dev/null; then
      return 0
    fi
    sleep 0.05
  done
  echo "bench_serve: server did not come up on $ADDR" >&2
  exit 1
}

stop_server() {
  if [ -n "$SERVER_PID" ]; then
    kill -INT "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
    SERVER_PID=""
  fi
}

FLEET_PIDS=""
stop_fleet() {
  for pid in $FLEET_PIDS; do
    kill -INT "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
  done
  FLEET_PIDS=""
}
trap 'stop_server; stop_fleet' EXIT

wait_up() { # port
  for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null; then
      return 0
    fi
    sleep 0.05
  done
  echo "bench_serve: nothing came up on port $1" >&2
  exit 1
}

p50_of() { printf '%s' "$1" | sed -n 's/.*"latency_p50_us":\([0-9.e+-]*\).*/\1/p'; }

loadgen() { # extra `gtree loadgen` flags as args; prints one JSON line
  # --server-stats on every scenario: each report embeds the server's
  # snapshot (stage histograms, work counters, batching) at that point.
  "$BIN" loadgen --addr "$ADDR" --rps 0 --duration "$DUR" --json --server-stats "$@"
}

summary() { # name, loadgen JSON
  local rps
  rps=$(printf '%s' "$2" | sed -n 's/.*"achieved_rps":\([0-9.e+-]*\).*/\1/p')
  printf 'bench_serve: %-18s %s replies/s\n' "$1" "${rps:-?}" >&2
}

# Cached-hit scenarios: default cache, key warmed before measuring.
start_server
"$BIN" loadgen --addr "$ADDR" --rps 0 --duration 0.3 --conns 1 \
  --spec worst:d=2,n=6 --algo seq-solve >/dev/null
cached_p1=$(loadgen --conns 4 --pipeline 1 --spec worst:d=2,n=6 --algo seq-solve)
summary cached_pipeline1 "$cached_p1"
cached_p8=$(loadgen --conns 4 --pipeline 8 --spec worst:d=2,n=6 --algo seq-solve)
summary cached_pipeline8 "$cached_p8"
stop_server

# Miss scenarios: cache disabled so every request is a miss.
start_server --cache 0
coalesced=$(loadgen --conns 4 --pipeline 8 --spec worst:d=2,n=16 --algo cascade:w=1)
summary coalesced "$coalesced"
cold=$(loadgen --conns 1 --pipeline 1 --spec worst:d=2,n=12 --algo seq-solve)
summary cold "$cold"
stop_server

# Cold storm: distinct keys defeat both the cache and single-flight
# coalescing, so throughput here is pure executor dispatch + engine.
# A deep queue absorbs the 256-request standing burst without shedding.
start_server --cache 0 --queue-depth 1024
cold_storm=$(loadgen --conns 64 --pipeline 4 --spec worst:d=2,n=12 --algo seq-solve \
  --distinct)
summary cold_storm "$cold_storm"
stop_server

# --- Fleet scenarios -------------------------------------------------
# Engine-bound distinct keys (no caching, no coalescing) so the
# router's per-request hop cost is measured against real evaluation
# work, not against a sub-100µs cache hit.
FLEET_SPEC="worst:d=2,n=14"
FLEET_ALGO="seq-solve"
ROUTE_PORT=$((PORT + 2))
ROUTE_ADDR="127.0.0.1:$ROUTE_PORT"

start_server --cache 0 --queue-depth 1024
fleet_direct=$("$BIN" loadgen --addr "$ADDR" --rps 0 --duration "$DUR" --json \
  --conns 2 --pipeline 2 --spec "$FLEET_SPEC" --algo "$FLEET_ALGO" --distinct)
summary fleet_direct "$fleet_direct"

"$BIN" route --addr "$ROUTE_ADDR" --replicas "$ADDR" >/dev/null 2>&1 &
ROUTER_PID=$!
FLEET_PIDS="$ROUTER_PID"
wait_up "$ROUTE_PORT"
fleet_router=$("$BIN" loadgen --addr "$ROUTE_ADDR" --rps 0 --duration "$DUR" --json \
  --conns 2 --pipeline 2 --spec "$FLEET_SPEC" --algo "$FLEET_ALGO" --distinct)
summary fleet_router "$fleet_router"
stop_fleet
stop_server

p50_direct=$(p50_of "$fleet_direct")
p50_router=$(p50_of "$fleet_router")
overhead=$(awk -v d="${p50_direct:-0}" -v r="${p50_router:-0}" \
  'BEGIN { if (d > 0) printf "%.1f", (r - d) / d * 100; else printf "null" }')
echo "bench_serve: router overhead at p50: ${overhead}% (direct ${p50_direct}us -> routed ${p50_router}us)" >&2

# Failover: 3 replicas, kill one -9 mid-run.  Zero client-visible
# errors and retries > 0 are asserted, not just recorded.
REPLICA_PIDS=""
REPLICA_ADDRS=""
for i in 3 4 5; do
  rport=$((PORT + i))
  "$BIN" serve --addr "127.0.0.1:$rport" --eval-workers 2 --queue-depth 1024 \
    --cache 0 >/dev/null 2>&1 &
  REPLICA_PIDS="$REPLICA_PIDS $!"
  REPLICA_ADDRS="$REPLICA_ADDRS,127.0.0.1:$rport"
done
REPLICA_ADDRS="${REPLICA_ADDRS#,}"
"$BIN" route --addr "$ROUTE_ADDR" --replicas "$REPLICA_ADDRS" \
  --retries 5 --probe-interval 25 --probe-timeout 100 >/dev/null 2>&1 &
ROUTER_PID=$!
FLEET_PIDS="$ROUTER_PID $REPLICA_PIDS"
wait_up "$ROUTE_PORT"

failover_json="$(mktemp)"
"$BIN" loadgen --addr "$ROUTE_ADDR" --rps 0 --duration 4 --json \
  --conns 4 --pipeline 2 --spec "$FLEET_SPEC" --algo "$FLEET_ALGO" --distinct \
  > "$failover_json" &
LOADGEN_PID=$!
sleep 1.5
victim=$(printf '%s' "$REPLICA_PIDS" | awk '{print $2}')
kill -9 "$victim" 2>/dev/null || true
wait "$LOADGEN_PID"
fleet_failover=$(cat "$failover_json")
rm -f "$failover_json"
summary fleet_failover "$fleet_failover"

exec 9<>"/dev/tcp/127.0.0.1/$ROUTE_PORT"
printf '{"op":"stats"}\n' >&9
IFS= read -r stats_reply <&9
exec 9<&- 9>&-
failover_stats=$(printf '%s' "$stats_reply" | sed -n 's/.*"stats":\({.*}\)}[[:space:]]*$/\1/p')
[ -n "$failover_stats" ] || failover_stats="null"
retries=$(printf '%s' "$stats_reply" | sed -n 's/.*"retries":\([0-9][0-9]*\).*/\1/p')
stop_fleet

errfield() { printf '%s' "$fleet_failover" | sed -n "s/.*\"$1\":\([0-9][0-9]*\).*/\1/p"; }
fail=""
for f in shed timeout bad other_error transport_errors; do
  v=$(errfield "$f")
  [ "${v:-0}" -eq 0 ] || { echo "bench_serve: failover run saw $v $f" >&2; fail=1; }
done
[ "${retries:-0}" -gt 0 ] || { echo "bench_serve: failover run shows no router retries" >&2; fail=1; }
[ -z "$fail" ] || exit 1
echo "bench_serve: failover clean ($retries router retries, zero client errors)" >&2

printf '{"duration_s":%s,"cached_pipeline1":%s,"cached_pipeline8":%s,"coalesced":%s,"cold":%s,"cold_storm":%s,"fleet_direct":%s,"fleet_router":%s,"router_overhead_p50_pct":%s,"fleet_failover":%s,"fleet_failover_router_stats":%s}\n' \
  "$DUR" "$cached_p1" "$cached_p8" "$coalesced" "$cold" "$cold_storm" \
  "$fleet_direct" "$fleet_router" "${overhead:-null}" "$fleet_failover" "$failover_stats" > "$OUT"
echo "bench_serve: wrote $OUT" >&2
