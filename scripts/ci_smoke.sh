#!/usr/bin/env bash
# CI smoke test for gt-serve: boot `gtree serve` on loopback, drive a
# short pipelined closed-loop load, and fail on any error reply or
# transport failure.  Then a distinct-key cold-storm burst: every
# request is a cold miss crossing the shared executor, and any shed
# (429) or timeout (408) fails the run — a regression guard for the
# executor's queue sizing and dispatch throughput.  A par cold storm
# follows: the server boots with a low --par-threshold so par-* evals
# draw multi-thread grants from the work-stealing pool, and the run
# asserts value parity with the sequential engine plus par_steals > 0
# and par_grants > 0 in stats.  Also checks that SIGINT drains the
# server.
#
# Observability checks ride along: the server boots with
# --metrics-addr, /metrics is scraped twice (well-formed # TYPE lines,
# and gtserve_requests_total must increase between scrapes), and one
# {"op":"trace"} round-trip must return recorded flight traces.
#
# A router smoke rides along: a 1-router/2-replica fleet takes a
# pipelined burst, loses a replica to kill -9 mid-life, takes a second
# distinct-key burst with zero client-visible errors, and its stats
# must show retries > 0 — the failover actually fired.  Between the
# bursts, a cross-tier trace round-trip: one eval pinned to a client
# trace id, its span tree fetched back via op:"trace", with >= 1
# replica child span and monotone span offsets asserted.
#
# A split smoke closes out: a 1-router/3-replica fleet with
# scatter-gather enabled (--split-cost).  A large eval must fan its
# subevals across >= 2 replicas (split counters + per-replica sent),
# a kill -9 mid split-heavy load must stay invisible to clients with
# subevals_retried > 0, values must keep matching the local engine
# after the kill, and a naive-mode NOR eval must discard in-flight
# losers after its cutoff (subevals_discarded_on_cutoff > 0) without
# ever aborting them.
#
# A fleet-membership smoke closes the file: a replica announces
# itself to a live 1-seed router mid-load (serve --announce) with zero
# client-visible errors, is SIGINT-drained (writing its --snapshot),
# and rejoins on the same address at --generation 2 — snapshot
# restored, health showing the new generation, post-restart burst
# clean.
#
# A fan-in smoke rides between the single-server and router sections:
# a fresh server with a fixed 2-thread I/O pool takes >= 1k concurrent
# mostly-idle connections (loadgen --connections) alongside an active
# pipelined load, and the run asserts zero failed fan-in opens, zero
# sheds, a thread census that does not grow with connection count,
# and RSS under 128MB.
#
# Environment overrides: GTREE_BIN, SMOKE_PORT, SMOKE_METRICS_PORT,
# SMOKE_DURATION (s), SMOKE_FAN_CONNS.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BIN="${GTREE_BIN:-$ROOT/target/release/gtree}"
PORT="${SMOKE_PORT:-7191}"
METRICS_PORT="${SMOKE_METRICS_PORT:-$((PORT + 1))}"
DUR="${SMOKE_DURATION:-2}"
ADDR="127.0.0.1:$PORT"
METRICS_ADDR="127.0.0.1:$METRICS_PORT"

if [ ! -x "$BIN" ]; then
  echo "ci_smoke: building release binary" >&2
  (cd "$ROOT" && cargo build --release -q)
fi

"$BIN" serve --addr "$ADDR" --eval-workers 2 --queue-depth 512 \
  --metrics-addr "$METRICS_ADDR" --trace-ring 64 \
  --par-threshold 64 --par-max-workers 4 >/dev/null 2>&1 &
SERVER_PID=$!
trap 'kill -INT "$SERVER_PID" 2>/dev/null || true; wait "$SERVER_PID" 2>/dev/null || true' EXIT

up=""
for _ in $(seq 1 100); do
  if (exec 3<>"/dev/tcp/127.0.0.1/$PORT") 2>/dev/null; then
    up=1
    break
  fi
  sleep 0.05
done
if [ -z "$up" ]; then
  echo "ci_smoke: server did not come up on $ADDR" >&2
  exit 1
fi

json=$("$BIN" loadgen --addr "$ADDR" --rps 0 --duration "$DUR" --conns 2 \
  --pipeline 4 --spec worst:d=2,n=8 --algo cascade:w=1 --json)
echo "ci_smoke: $json"

field() { printf '%s' "$json" | sed -n "s/.*\"$1\":\([0-9][0-9]*\).*/\1/p"; }
ok=$(field ok)
bad=$(field bad)
other=$(field other_error)
transport=$(field transport_errors)

fail=""
[ "${ok:-0}" -gt 0 ] || { echo "ci_smoke: no successful replies" >&2; fail=1; }
[ "${bad:-0}" -eq 0 ] || { echo "ci_smoke: $bad bad-request replies" >&2; fail=1; }
[ "${other:-0}" -eq 0 ] || { echo "ci_smoke: $other unexpected error replies" >&2; fail=1; }
[ "${transport:-0}" -eq 0 ] || { echo "ci_smoke: $transport transport errors" >&2; fail=1; }
[ -z "$fail" ] || exit 1

# Scrape the Prometheus exposition.  curl when available, raw
# /dev/tcp otherwise — the endpoint closes the connection after one
# response, so a plain read-to-EOF works.
scrape() {
  if command -v curl >/dev/null 2>&1; then
    curl -sf "http://$METRICS_ADDR/metrics"
  else
    exec 9<>"/dev/tcp/127.0.0.1/$METRICS_PORT"
    printf 'GET /metrics HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n' "$METRICS_ADDR" >&9
    cat <&9
    exec 9<&- 9>&-
  fi
}
requests_total() { printf '%s\n' "$1" | sed -n 's/^gtserve_requests_total \([0-9][0-9]*\).*/\1/p'; }

scrape1=$(scrape)
fail=""
for series in gtserve_requests_total gtserve_latency_seconds gtserve_cache_hits_total; do
  printf '%s\n' "$scrape1" | grep -q "^# TYPE $series " \
    || { echo "ci_smoke: /metrics is missing '# TYPE $series'" >&2; fail=1; }
done
req1=$(requests_total "$scrape1")
[ -n "${req1:-}" ] || { echo "ci_smoke: /metrics has no gtserve_requests_total sample" >&2; fail=1; }
[ "${req1:-0}" -gt 0 ] || { echo "ci_smoke: gtserve_requests_total is zero after load" >&2; fail=1; }
[ -z "$fail" ] || exit 1

# One {"op":"trace"} round-trip against the NDJSON port: the flight
# recorder must hand back traces from the load we just ran.
exec 8<>"/dev/tcp/127.0.0.1/$PORT"
printf '{"op":"trace","n":4}\n' >&8
IFS= read -r trace_reply <&8
exec 8<&- 8>&-
case "$trace_reply" in
  *'"ok":true'*'"traces":['*) : ;;
  *) echo "ci_smoke: bad trace reply: $trace_reply" >&2; exit 1 ;;
esac
case "$trace_reply" in
  *'"traces":[]'*) echo "ci_smoke: trace ring is empty after load" >&2; exit 1 ;;
esac

# Cold-storm burst: 16 conns × window 4 of distinct small keys.  The
# executor must batch through all of them within their (default 10s)
# deadlines and without shedding — sheds or timeouts mean the cold
# path regressed.
json=$("$BIN" loadgen --addr "$ADDR" --rps 0 --duration "$DUR" --conns 16 \
  --pipeline 4 --spec worst:d=2,n=10 --algo seq-solve --distinct --json)
echo "ci_smoke: cold storm $json"

ok=$(field ok)
shed=$(field shed)
timeout=$(field timeout)
transport=$(field transport_errors)

fail=""
[ "${ok:-0}" -gt 0 ] || { echo "ci_smoke: cold storm got no successful replies" >&2; fail=1; }
[ "${shed:-0}" -eq 0 ] || { echo "ci_smoke: cold storm shed $shed requests" >&2; fail=1; }
[ "${timeout:-0}" -eq 0 ] || { echo "ci_smoke: cold storm timed out $timeout requests" >&2; fail=1; }
[ "${transport:-0}" -eq 0 ] || { echo "ci_smoke: cold storm hit $transport transport errors" >&2; fail=1; }
[ -z "$fail" ] || exit 1

# Par cold storm: distinct minmax keys whose estimated cost clears
# the low --par-threshold, so every miss draws a multi-thread grant
# from the work-stealing engine pool (gt_tree::par).
json=$("$BIN" loadgen --addr "$ADDR" --rps 0 --duration "$DUR" --conns 8 \
  --pipeline 2 --spec minmax-worst:d=4,n=4,seed=3 --algo par-alphabeta \
  --distinct --json)
echo "ci_smoke: par storm $json"

ok=$(field ok)
bad=$(field bad)
shed=$(field shed)
timeout=$(field timeout)
transport=$(field transport_errors)

fail=""
[ "${ok:-0}" -gt 0 ] || { echo "ci_smoke: par storm got no successful replies" >&2; fail=1; }
[ "${bad:-0}" -eq 0 ] || { echo "ci_smoke: par storm got $bad bad-request replies" >&2; fail=1; }
[ "${shed:-0}" -eq 0 ] || { echo "ci_smoke: par storm shed $shed requests" >&2; fail=1; }
[ "${timeout:-0}" -eq 0 ] || { echo "ci_smoke: par storm timed out $timeout requests" >&2; fail=1; }
[ "${transport:-0}" -eq 0 ] || { echo "ci_smoke: par storm hit $transport transport errors" >&2; fail=1; }
[ -z "$fail" ] || exit 1

# Value parity: the threaded engine must agree with the sequential
# alpha-beta baseline on the same tree, and the pool must actually
# have stolen work somewhere along the way.
spec="minmax:d=4,n=4,lo=-9,hi=9,seed=11"
want=$("$BIN" eval --gen "$spec" --algo ab \
  | sed -n 's/^value[[:space:]]*:[[:space:]]*\(-\{0,1\}[0-9][0-9]*\).*/\1/p')
exec 8<>"/dev/tcp/127.0.0.1/$PORT"
printf '{"op":"eval","spec":"%s","algo":"par-alphabeta","deadline_ms":10000}\n' "$spec" >&8
IFS= read -r par_reply <&8
printf '{"op":"stats"}\n' >&8
IFS= read -r par_stats <&8
exec 8<&- 8>&-
got=$(printf '%s' "$par_reply" | sed -n 's/.*"value":\(-\{0,1\}[0-9][0-9]*\).*/\1/p')
if [ -z "${want:-}" ] || [ "$got" != "$want" ]; then
  echo "ci_smoke: par-alphabeta value ${got:-none} != sequential ${want:-none}: $par_reply" >&2
  exit 1
fi
steals=$(printf '%s' "$par_stats" | sed -n 's/.*"par_steals":\([0-9][0-9]*\).*/\1/p')
grants=$(printf '%s' "$par_stats" | sed -n 's/.*"par_grants":\([0-9][0-9]*\).*/\1/p')
[ "${grants:-0}" -gt 0 ] || { echo "ci_smoke: no parallel grants were issued: $par_stats" >&2; exit 1; }
[ "${steals:-0}" -gt 0 ] || { echo "ci_smoke: steals_total is zero after the par storm: $par_stats" >&2; exit 1; }
echo "ci_smoke: par ok ($grants grants, $steals steals, value $got = $want)" >&2

# Second scrape: counters must be monotone, and the storm guarantees
# strictly more requests than the first scrape saw.
scrape2=$(scrape)
req2=$(requests_total "$scrape2")
[ -n "${req2:-}" ] || { echo "ci_smoke: second /metrics scrape lost gtserve_requests_total" >&2; exit 1; }
if [ "$req2" -le "$req1" ]; then
  echo "ci_smoke: gtserve_requests_total did not increase ($req1 -> $req2)" >&2
  exit 1
fi
echo "ci_smoke: /metrics ok (requests_total $req1 -> $req2)" >&2

# SIGINT must drain the server and let it exit cleanly.
kill -INT "$SERVER_PID"
if ! wait "$SERVER_PID"; then
  echo "ci_smoke: server did not exit cleanly on SIGINT" >&2
  exit 1
fi
SERVER_PID=""
trap - EXIT
echo "ci_smoke: ok ($ok successful replies, clean SIGINT drain)" >&2

# ---------------------------------------------------------------------
# Fan-in smoke: a fixed pool of I/O threads must hold >= 1k concurrent
# connections without growing the thread census or shedding work.  The
# loadgen opens FAN_CONNS mostly-idle connections alongside a small
# active pipelined load; the server's /proc thread count is sampled
# before and during the run (it may only grow by a rounding margin),
# fan_in_failed must be zero, no request may shed, and RSS stays under
# a generous ceiling — with per-connection reader threads this check
# is unpassable, which is the point.
FAN_CONNS="${SMOKE_FAN_CONNS:-1000}"
ulimit -n 16384 2>/dev/null || echo "ci_smoke: warn: could not raise fd limit" >&2

"$BIN" serve --addr "$ADDR" --eval-workers 2 --queue-depth 512 \
  --io-threads 2 >/dev/null 2>&1 &
SERVER_PID=$!
trap 'kill -INT "$SERVER_PID" 2>/dev/null || true; wait "$SERVER_PID" 2>/dev/null || true' EXIT

up=""
for _ in $(seq 1 100); do
  if (exec 3<>"/dev/tcp/127.0.0.1/$PORT") 2>/dev/null; then
    up=1
    break
  fi
  sleep 0.05
done
[ -n "$up" ] || { echo "ci_smoke: fan-in server did not come up on $ADDR" >&2; exit 1; }

# One round-trip before the idle census: the listener binds before the
# eval/io thread set finishes spawning, and sampling too early would
# make normal startup look like census growth.
exec 8<>"/dev/tcp/127.0.0.1/$PORT"
printf '{"op":"stats"}\n' >&8
IFS= read -r _ <&8
exec 8<&- 8>&-
threads_idle=$(sed -n 's/^Threads:[[:space:]]*//p' "/proc/$SERVER_PID/status" 2>/dev/null || echo 0)

json=$("$BIN" loadgen --addr "$ADDR" --rps 0 --duration "$DUR" --conns 2 \
  --pipeline 4 --connections "$FAN_CONNS" --spec worst:d=2,n=8 \
  --algo cascade:w=1 --json &
  LG=$!
  sleep 1
  sed -n 's/^Threads:[[:space:]]*//p' "/proc/$SERVER_PID/status" > /tmp/ci_smoke_threads.$$ 2>/dev/null || true
  awk '/^VmRSS:/ {print $2}' "/proc/$SERVER_PID/status" > /tmp/ci_smoke_rss.$$ 2>/dev/null || true
  wait "$LG")
echo "ci_smoke: fan-in $json"
threads_loaded=$(cat /tmp/ci_smoke_threads.$$ 2>/dev/null || echo 0)
rss_kb=$(cat /tmp/ci_smoke_rss.$$ 2>/dev/null || echo 0)
rm -f /tmp/ci_smoke_threads.$$ /tmp/ci_smoke_rss.$$

ok=$(field ok)
shed=$(field shed)
transport=$(field transport_errors)
fan_open=$(field fan_in_open)
fan_failed=$(field fan_in_failed)

fail=""
[ "${ok:-0}" -gt 0 ] || { echo "ci_smoke: fan-in run got no successful replies" >&2; fail=1; }
[ "${shed:-0}" -eq 0 ] || { echo "ci_smoke: fan-in run shed $shed requests" >&2; fail=1; }
[ "${transport:-0}" -eq 0 ] || { echo "ci_smoke: fan-in run hit $transport transport errors" >&2; fail=1; }
[ "${fan_failed:-1}" -eq 0 ] || { echo "ci_smoke: $fan_failed fan-in connections failed to open" >&2; fail=1; }
[ "${fan_open:-0}" -eq "$FAN_CONNS" ] || { echo "ci_smoke: fan-in held ${fan_open:-0}/$FAN_CONNS connections" >&2; fail=1; }
if [ "${threads_loaded:-0}" -gt $((threads_idle + 2)) ]; then
  echo "ci_smoke: thread census grew under fan-in load ($threads_idle idle -> $threads_loaded loaded)" >&2
  fail=1
fi
if [ "${rss_kb:-0}" -gt 131072 ]; then
  echo "ci_smoke: server RSS ${rss_kb}kB exceeded 128MB under $FAN_CONNS connections" >&2
  fail=1
fi
[ -z "$fail" ] || exit 1

kill -INT "$SERVER_PID"
if ! wait "$SERVER_PID"; then
  echo "ci_smoke: fan-in server did not exit cleanly on SIGINT" >&2
  exit 1
fi
SERVER_PID=""
trap - EXIT
echo "ci_smoke: fan-in ok ($fan_open idle conns held, threads $threads_idle -> $threads_loaded, rss ${rss_kb}kB)" >&2

# ---------------------------------------------------------------------
# Router smoke: 1 router fronting 2 replicas.  Burst through the
# router, kill -9 one replica mid-life, burst again — the failover
# must be invisible to clients (no sheds, timeouts, error replies, or
# transport errors) and the router's stats must show retries > 0.

R1_PORT=$((PORT + 10))
R2_PORT=$((PORT + 11))
ROUTE_PORT=$((PORT + 12))
ROUTE_ADDR="127.0.0.1:$ROUTE_PORT"

"$BIN" serve --addr "127.0.0.1:$R1_PORT" --eval-workers 2 --queue-depth 512 \
  >/dev/null 2>&1 &
R1_PID=$!
"$BIN" serve --addr "127.0.0.1:$R2_PORT" --eval-workers 2 --queue-depth 512 \
  >/dev/null 2>&1 &
R2_PID=$!
"$BIN" route --addr "$ROUTE_ADDR" \
  --replicas "127.0.0.1:$R1_PORT,127.0.0.1:$R2_PORT" \
  --retries 5 --probe-interval 25 --probe-timeout 100 >/dev/null 2>&1 &
ROUTER_PID=$!
trap 'for p in "$ROUTER_PID" "$R1_PID" "$R2_PID"; do kill "$p" 2>/dev/null || true; done; wait 2>/dev/null || true' EXIT

up=""
for _ in $(seq 1 100); do
  if (exec 3<>"/dev/tcp/127.0.0.1/$ROUTE_PORT") 2>/dev/null; then
    up=1
    break
  fi
  sleep 0.05
done
if [ -z "$up" ]; then
  echo "ci_smoke: router did not come up on $ROUTE_ADDR" >&2
  exit 1
fi

json=$("$BIN" loadgen --addr "$ROUTE_ADDR" --rps 0 --duration "$DUR" --conns 2 \
  --pipeline 4 --spec worst:d=2,n=8 --algo cascade:w=1 --json)
echo "ci_smoke: router burst $json"

ok=$(field ok)
bad=$(field bad)
other=$(field other_error)
transport=$(field transport_errors)

fail=""
[ "${ok:-0}" -gt 0 ] || { echo "ci_smoke: router burst got no successful replies" >&2; fail=1; }
[ "${bad:-0}" -eq 0 ] || { echo "ci_smoke: router burst got $bad bad-request replies" >&2; fail=1; }
[ "${other:-0}" -eq 0 ] || { echo "ci_smoke: router burst got $other unexpected error replies" >&2; fail=1; }
[ "${transport:-0}" -eq 0 ] || { echo "ci_smoke: router burst hit $transport transport errors" >&2; fail=1; }
[ -z "$fail" ] || exit 1

# Cross-tier trace round-trip: pin a client trace id on one eval
# through the router, then pull its span tree back with op:"trace".
# The tree must contain at least one replica-attributed child span
# (the dispatch that actually reached a replica, carrying the echoed
# stage offsets) and every finished span must have monotone offsets
# (end_us >= start_us).
exec 8<>"/dev/tcp/127.0.0.1/$ROUTE_PORT"
printf '{"op":"eval","spec":"worst:d=2,n=8","algo":"seq-solve","trace":{"trace_id":"smoke-trace-1"}}\n' >&8
IFS= read -r traced_eval <&8
printf '{"op":"trace","trace":{"trace_id":"smoke-trace-1"}}\n' >&8
IFS= read -r trace_reply <&8
exec 8<&- 8>&-
case "$traced_eval" in
  *'"ok":true'*'"trace_id":"smoke-trace-1"'*) : ;;
  *) echo "ci_smoke: traced eval through the router went wrong: $traced_eval" >&2; exit 1 ;;
esac
case "$trace_reply" in
  *'"ok":true'*'"trace_id":"smoke-trace-1"'*'"spans":['*) : ;;
  *) echo "ci_smoke: router op:trace lookup failed: $trace_reply" >&2; exit 1 ;;
esac
replica_spans=$(printf '%s' "$trace_reply" | grep -o '"replica":"127\.0\.0\.1:' | wc -l)
[ "${replica_spans:-0}" -ge 1 ] || {
  echo "ci_smoke: trace has no replica child span: $trace_reply" >&2
  exit 1
}
finished_spans=$(printf '%s' "$trace_reply" \
  | grep -o '"start_us":[0-9]*,"end_us":[0-9]*' | wc -l)
[ "${finished_spans:-0}" -ge 1 ] || {
  echo "ci_smoke: trace has no finished spans: $trace_reply" >&2
  exit 1
}
bad_offsets=$(printf '%s' "$trace_reply" \
  | grep -o '"start_us":[0-9]*,"end_us":[0-9]*' \
  | awk -F'[:,]' '$2 + 0 > $4 + 0 { n++ } END { print n + 0 }')
[ "${bad_offsets:-1}" -eq 0 ] || {
  echo "ci_smoke: trace has $bad_offsets span(s) with end_us < start_us: $trace_reply" >&2
  exit 1
}
echo "ci_smoke: trace round-trip ok ($replica_spans replica span(s), $finished_spans finished spans)" >&2

# Yank a replica the hard way — mid-burst, so requests are in flight
# toward it and others are still being routed at it.  Distinct keys
# mean roughly half the burst rendezvous-routes toward the corpse;
# the router must absorb every dead connection and re-dispatch.
failover_out="$(mktemp)"
"$BIN" loadgen --addr "$ROUTE_ADDR" --rps 0 --duration 3 --conns 2 \
  --pipeline 4 --spec worst:d=2,n=10 --algo seq-solve --distinct --json \
  > "$failover_out" &
LOADGEN_PID=$!
sleep 1
kill -9 "$R2_PID"
wait "$R2_PID" 2>/dev/null || true
wait "$LOADGEN_PID"
json=$(cat "$failover_out")
rm -f "$failover_out"
echo "ci_smoke: router failover burst $json"

ok=$(field ok)
bad=$(field bad)
shed=$(field shed)
timeout=$(field timeout)
other=$(field other_error)
transport=$(field transport_errors)

fail=""
[ "${ok:-0}" -gt 0 ] || { echo "ci_smoke: failover burst got no successful replies" >&2; fail=1; }
[ "${bad:-0}" -eq 0 ] || { echo "ci_smoke: failover burst got $bad bad-request replies" >&2; fail=1; }
[ "${shed:-0}" -eq 0 ] || { echo "ci_smoke: failover burst shed $shed requests" >&2; fail=1; }
[ "${timeout:-0}" -eq 0 ] || { echo "ci_smoke: failover burst timed out $timeout requests" >&2; fail=1; }
[ "${other:-0}" -eq 0 ] || { echo "ci_smoke: failover burst got $other unexpected error replies" >&2; fail=1; }
[ "${transport:-0}" -eq 0 ] || { echo "ci_smoke: failover burst hit $transport transport errors" >&2; fail=1; }
[ -z "$fail" ] || exit 1

# The router's own ledger must show the failover happened.
exec 8<>"/dev/tcp/127.0.0.1/$ROUTE_PORT"
printf '{"op":"stats"}\n' >&8
IFS= read -r stats_reply <&8
exec 8<&- 8>&-
retries=$(printf '%s' "$stats_reply" | sed -n 's/.*"retries":\([0-9][0-9]*\).*/\1/p')
if [ -z "${retries:-}" ] || [ "$retries" -eq 0 ]; then
  echo "ci_smoke: router stats show no retries after a replica kill: $stats_reply" >&2
  exit 1
fi

# SIGINT must drain the router cleanly; then stop the survivor.
kill -INT "$ROUTER_PID"
if ! wait "$ROUTER_PID"; then
  echo "ci_smoke: router did not exit cleanly on SIGINT" >&2
  exit 1
fi
ROUTER_PID=""
kill -INT "$R1_PID" 2>/dev/null || true
wait "$R1_PID" 2>/dev/null || true
R1_PID=""
trap - EXIT
echo "ci_smoke: router ok ($ok replies through a replica kill, $retries retries)" >&2

# ---------------------------------------------------------------------
# Split smoke: 1 router fronting 3 replicas with scatter-gather
# enabled.  Every eval here is large enough to clear --split-cost, so
# the router decomposes it along the eldest chain and scatters the
# sibling subtrees as subevals (docs/ROUTING.md).

SPLIT_ROUTE_PORT=$((PORT + 23))
SPLIT_ROUTE_ADDR="127.0.0.1:$SPLIT_ROUTE_PORT"
SPLIT_PIDS=""
ROUTER_PID=""

start_split_fleet() { # extra `gtree route` flags as args
  SPLIT_PIDS=""
  local addrs=""
  for i in 20 21 22; do
    local rport=$((PORT + i))
    "$BIN" serve --addr "127.0.0.1:$rport" --eval-workers 2 --queue-depth 1024 \
      >/dev/null 2>&1 &
    SPLIT_PIDS="$SPLIT_PIDS $!"
    addrs="$addrs,127.0.0.1:$rport"
  done
  "$BIN" route --addr "$SPLIT_ROUTE_ADDR" --replicas "${addrs#,}" \
    "$@" >/dev/null 2>&1 &
  ROUTER_PID=$!
  SPLIT_PIDS="$SPLIT_PIDS $ROUTER_PID"
  up=""
  for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$SPLIT_ROUTE_PORT") 2>/dev/null; then
      up=1
      break
    fi
    sleep 0.05
  done
  [ -n "$up" ] || { echo "ci_smoke: split router did not come up" >&2; exit 1; }
}

stop_split_fleet() {
  for p in $SPLIT_PIDS; do
    kill "$p" 2>/dev/null || true
    wait "$p" 2>/dev/null || true
  done
  SPLIT_PIDS=""
}
trap 'stop_split_fleet' EXIT

split_stats() { # prints the router's raw stats reply
  exec 8<>"/dev/tcp/127.0.0.1/$SPLIT_ROUTE_PORT"
  printf '{"op":"stats"}\n' >&8
  IFS= read -r stats_reply <&8
  exec 8<&- 8>&-
  printf '%s' "$stats_reply"
}

split_eval() { # spec -> value from one routed eval (must be a split)
  exec 8<>"/dev/tcp/127.0.0.1/$SPLIT_ROUTE_PORT"
  printf '{"op":"eval","spec":"%s","algo":"cascade:w=1","deadline_ms":30000}\n' "$1" >&8
  IFS= read -r eval_reply <&8
  exec 8<&- 8>&-
  case "$eval_reply" in
    *'"ok":true'*'"split":'*) : ;;
    *) echo "ci_smoke: split eval of $1 went wrong: $eval_reply" >&2; exit 1 ;;
  esac
  printf '%s' "$eval_reply" | sed -n 's/.*"value":\(-\{0,1\}[0-9][0-9]*\).*/\1/p'
}

engine_value() { # spec -> the local engine's ground-truth root value
  "$BIN" eval --gen "$1" --algo ab \
    | sed -n 's/^value[[:space:]]*:[[:space:]]*\(-\{0,1\}[0-9][0-9]*\).*/\1/p'
}

start_split_fleet --split-cost 64

# One large eval: correct value, and its subevals must have reached
# more than one replica.
spec="minmax:d=3,n=8,seed=1"
want=$(engine_value "$spec")
got=$(split_eval "$spec")
[ "$got" = "$want" ] || { echo "ci_smoke: split eval value $got != engine $want" >&2; exit 1; }
stats=$(split_stats)
splits=$(printf '%s' "$stats" | sed -n 's/.*"splits_total":\([0-9][0-9]*\).*/\1/p')
[ "${splits:-0}" -gt 0 ] || { echo "ci_smoke: no split was planned: $stats" >&2; exit 1; }
used=$(printf '%s' "$stats" | grep -o '"sent":[0-9][0-9]*' | grep -cv ':0$' || true)
[ "${used:-0}" -ge 2 ] || { echo "ci_smoke: split stayed on $used replica(s): $stats" >&2; exit 1; }

# Kill -9 a replica under split-heavy load: the router must absorb
# the dead connections with zero client-visible errors and keep
# returning correct values.  Any subeval in flight on the victim at
# kill time is re-dispatched (subevals_retried), but subevals are
# fast enough that the kill can land between dispatch waves — so the
# smoke accepts either retried > 0 or transport errors on an ejected
# victim as proof the kill was absorbed (the deterministic
# kill-mid-plan re-dispatch check lives in tests/split_e2e.rs).
split_out="$(mktemp)"
"$BIN" loadgen --addr "$SPLIT_ROUTE_ADDR" --rps 0 --duration 3 --conns 4 \
  --pipeline 2 --split-heavy --json > "$split_out" &
LOADGEN_PID=$!
sleep 1
victim=$(printf '%s' "$SPLIT_PIDS" | awk '{print $2}')
kill -9 "$victim" 2>/dev/null || true
wait "$LOADGEN_PID"
json=$(cat "$split_out")
rm -f "$split_out"
echo "ci_smoke: split-heavy kill burst $json"

ok=$(field ok)
fail=""
[ "${ok:-0}" -gt 0 ] || { echo "ci_smoke: split burst got no successful replies" >&2; fail=1; }
for f in bad shed timeout other_error transport_errors; do
  v=$(field "$f")
  [ "${v:-0}" -eq 0 ] || { echo "ci_smoke: split burst saw $v $f" >&2; fail=1; }
done
[ -z "$fail" ] || exit 1

stats=$(split_stats)
retried=$(printf '%s' "$stats" | sed -n 's/.*"subevals_retried":\([0-9][0-9]*\).*/\1/p')
if [ "${retried:-0}" -eq 0 ]; then
  transport=$(printf '%s' "$stats" | grep -o '"transport":[0-9][0-9]*' \
    | grep -cv ':0$' || true)
  ejected=$(printf '%s' "$stats" | grep -c '"state":"ejected"' || true)
  if [ "${transport:-0}" -eq 0 ] || [ "${ejected:-0}" -eq 0 ]; then
    echo "ci_smoke: replica kill left no trace (retried=0, transport=$transport, ejected=$ejected): $stats" >&2
    exit 1
  fi
fi
spec="minmax:d=3,n=8,seed=2"
want=$(engine_value "$spec")
got=$(split_eval "$spec")
[ "$got" = "$want" ] || { echo "ci_smoke: post-kill split value $got != engine $want" >&2; exit 1; }
stop_split_fleet
echo "ci_smoke: split fan-out ok ($used replicas used, $retried subevals re-dispatched)" >&2

# Naive-mode cutoff: allones is all-1 leaves under NOR, so the first
# subeval value to land cuts its level — the already-dispatched
# siblings keep running (the router never sends an abort) and their
# late replies are discarded on arrival.  Whether any sibling is
# still in flight when the cutoff value arrives is a genuine race
# (subevals are fast), so one eval observes a discard only most of
# the time; run fresh specs (distinct n, so nothing is cached) until
# one does.  n stays even: an odd NOR depth turns all-1 leaves into a
# root value of 0.
start_split_fleet --split-cost 8 --split-depth 3 --split-naive
discarded=0
for n in 6 8 10 12 14 16; do
  got=$(split_eval "allones:d=4,n=$n")
  [ "$got" = "1" ] || { echo "ci_smoke: naive allones:d=4,n=$n value $got != 1" >&2; exit 1; }
  for _ in $(seq 1 20); do
    stats=$(split_stats)
    discarded=$(printf '%s' "$stats" | sed -n 's/.*"subevals_discarded_on_cutoff":\([0-9][0-9]*\).*/\1/p')
    [ "${discarded:-0}" -gt 0 ] && break
    sleep 0.05
  done
  [ "${discarded:-0}" -gt 0 ] && break
done
[ "${discarded:-0}" -gt 0 ] || {
  echo "ci_smoke: no in-flight loser was ever discarded across 6 naive evals: $stats" >&2
  exit 1
}
stop_split_fleet
trap - EXIT
echo "ci_smoke: split ok ($discarded in-flight losers discarded on cutoff, no aborts)" >&2

# ---------------------------------------------------------------------
# Fleet membership smoke: dynamic join + kill-restart with a warm
# snapshot (docs/ROUTING.md).  A router boots knowing only a seed
# replica; a second replica announces itself mid-load (serve
# --announce sends op:"join") and must take a share of the distinct
# keyspace with zero client-visible errors.  The joiner then drains on
# SIGINT — writing its cache to --snapshot — and rejoins on the same
# address at --generation 2: its stats must show snapshot_restored > 0,
# the router's health must list it at the new generation, and a
# post-restart burst must again be error-free.

SEED_PORT=$((PORT + 30))
JOIN_PORT=$((PORT + 31))
FLEET_ROUTE_PORT=$((PORT + 32))
FLEET_ROUTE_ADDR="127.0.0.1:$FLEET_ROUTE_PORT"
JOIN_ADDR="127.0.0.1:$JOIN_PORT"
SNAP_FILE="$(mktemp -u)"

"$BIN" serve --addr "127.0.0.1:$SEED_PORT" --eval-workers 2 --queue-depth 1024 \
  >/dev/null 2>&1 &
SEED_PID=$!
"$BIN" route --addr "$FLEET_ROUTE_ADDR" --replicas "127.0.0.1:$SEED_PORT" \
  --retries 5 --probe-interval 25 --probe-timeout 100 >/dev/null 2>&1 &
ROUTER_PID=$!
JOIN_PID=""
trap 'for p in "$ROUTER_PID" "$SEED_PID" "$JOIN_PID"; do [ -n "$p" ] && kill "$p" 2>/dev/null || true; done; wait 2>/dev/null || true; rm -f "$SNAP_FILE"' EXIT

up=""
for _ in $(seq 1 100); do
  if (exec 3<>"/dev/tcp/127.0.0.1/$FLEET_ROUTE_PORT") 2>/dev/null; then
    up=1
    break
  fi
  sleep 0.05
done
[ -n "$up" ] || { echo "ci_smoke: membership router did not come up" >&2; exit 1; }

fleet_health() { # prints the router's raw health reply
  exec 8<>"/dev/tcp/127.0.0.1/$FLEET_ROUTE_PORT"
  printf '{"op":"health"}\n' >&8
  IFS= read -r health_reply <&8
  exec 8<&- 8>&-
  printf '%s' "$health_reply"
}

replica_stats() { # port -> the replica's raw stats reply
  exec 8<>"/dev/tcp/127.0.0.1/$1"
  printf '{"op":"stats"}\n' >&8
  IFS= read -r stats_reply <&8
  exec 8<&- 8>&-
  printf '%s' "$stats_reply"
}

# Health rows render as {"addr":...,"weight":...,"generation":...,
# "tier":...}; a member is routable below tier 3 (ejected).
routable_at_gen() { # generation -> grep success if JOIN_ADDR is listed
  fleet_health \
    | grep -q '"addr":"'"$JOIN_ADDR"'","weight":[0-9]*,"generation":'"$1"',"tier":[0-2]'
}

# Distinct-key load across the join: every reply must stay clean while
# the member set grows under it.
join_out="$(mktemp)"
"$BIN" loadgen --addr "$FLEET_ROUTE_ADDR" --rps 0 --duration 3 --conns 2 \
  --pipeline 4 --spec worst:d=2,n=10 --algo seq-solve --distinct --json \
  > "$join_out" &
LOADGEN_PID=$!
sleep 0.5
"$BIN" serve --addr "$JOIN_ADDR" --eval-workers 2 --queue-depth 1024 \
  --announce "$FLEET_ROUTE_ADDR" --snapshot "$SNAP_FILE" --generation 1 \
  >/dev/null 2>&1 &
JOIN_PID=$!

admitted=""
for _ in $(seq 1 100); do
  if routable_at_gen 1; then
    admitted=1
    break
  fi
  sleep 0.05
done
[ -n "$admitted" ] || {
  echo "ci_smoke: announced replica was never admitted: $(fleet_health)" >&2
  exit 1
}
wait "$LOADGEN_PID"
json=$(cat "$join_out")
rm -f "$join_out"
echo "ci_smoke: join burst $json"

ok=$(field ok)
fail=""
[ "${ok:-0}" -gt 0 ] || { echo "ci_smoke: join burst got no successful replies" >&2; fail=1; }
for f in bad shed timeout other_error transport_errors; do
  v=$(field "$f")
  [ "${v:-0}" -eq 0 ] || { echo "ci_smoke: join burst saw $v $f" >&2; fail=1; }
done
[ -z "$fail" ] || exit 1

# The joiner owns a share of the keyspace under rendezvous hashing:
# keep sending distinct keys until one lands on it and is evaluated
# there (stats "evaluated" counts engine runs, not stats probes).
joined_served=""
salt=900000
for _ in $(seq 1 200); do
  salt=$((salt + 1))
  exec 8<>"/dev/tcp/127.0.0.1/$FLEET_ROUTE_PORT"
  printf '{"op":"eval","spec":"worst:d=2,n=6,seed=%s","algo":"seq-solve","deadline_ms":10000}\n' "$salt" >&8
  IFS= read -r _ <&8
  exec 8<&- 8>&-
  evaluated=$(replica_stats "$JOIN_PORT" | sed -n 's/.*"evaluated":\([0-9][0-9]*\).*/\1/p')
  if [ "${evaluated:-0}" -gt 0 ]; then
    joined_served=1
    break
  fi
done
[ -n "$joined_served" ] || {
  echo "ci_smoke: the joined replica never evaluated a routed key" >&2
  exit 1
}

# SIGINT the joiner: the drain must write its cache snapshot.
kill -INT "$JOIN_PID"
if ! wait "$JOIN_PID"; then
  echo "ci_smoke: joiner did not exit cleanly on SIGINT" >&2
  exit 1
fi
JOIN_PID=""
[ -s "$SNAP_FILE" ] || { echo "ci_smoke: drain wrote no snapshot at $SNAP_FILE" >&2; exit 1; }

# Restart on the SAME address (same rendezvous identity) at a higher
# generation.  The freed port can linger briefly, so retry the bind.
restarted=""
for _ in $(seq 1 40); do
  "$BIN" serve --addr "$JOIN_ADDR" --eval-workers 2 --queue-depth 1024 \
    --announce "$FLEET_ROUTE_ADDR" --snapshot "$SNAP_FILE" --generation 2 \
    >/dev/null 2>&1 &
  JOIN_PID=$!
  for _ in $(seq 1 20); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$JOIN_PORT") 2>/dev/null; then
      restarted=1
      break
    fi
    kill -0 "$JOIN_PID" 2>/dev/null || break
    sleep 0.05
  done
  [ -n "$restarted" ] && break
  wait "$JOIN_PID" 2>/dev/null || true
  JOIN_PID=""
  sleep 0.1
done
[ -n "$restarted" ] || { echo "ci_smoke: joiner could not rebind $JOIN_ADDR" >&2; exit 1; }

restored=$(replica_stats "$JOIN_PORT" | sed -n 's/.*"snapshot_restored":\([0-9][0-9]*\).*/\1/p')
[ "${restored:-0}" -gt 0 ] || {
  echo "ci_smoke: restart restored no snapshot entries" >&2
  exit 1
}

rejoined=""
for _ in $(seq 1 100); do
  if routable_at_gen 2; then
    rejoined=1
    break
  fi
  sleep 0.05
done
[ -n "$rejoined" ] || {
  echo "ci_smoke: restarted replica never rejoined at generation 2: $(fleet_health)" >&2
  exit 1
}

# Post-restart burst: the healed two-member fleet must again be clean.
json=$("$BIN" loadgen --addr "$FLEET_ROUTE_ADDR" --rps 0 --duration "$DUR" --conns 2 \
  --pipeline 4 --spec worst:d=2,n=10 --algo seq-solve --distinct --json)
echo "ci_smoke: rejoin burst $json"

ok=$(field ok)
fail=""
[ "${ok:-0}" -gt 0 ] || { echo "ci_smoke: rejoin burst got no successful replies" >&2; fail=1; }
for f in bad shed timeout other_error transport_errors; do
  v=$(field "$f")
  [ "${v:-0}" -eq 0 ] || { echo "ci_smoke: rejoin burst saw $v $f" >&2; fail=1; }
done
[ -z "$fail" ] || exit 1

for p in "$ROUTER_PID" "$JOIN_PID" "$SEED_PID"; do
  kill -INT "$p" 2>/dev/null || true
  wait "$p" 2>/dev/null || true
done
ROUTER_PID=""
SEED_PID=""
JOIN_PID=""
rm -f "$SNAP_FILE"
trap - EXIT
echo "ci_smoke: membership ok (join under load, $restored entries restored, rejoined at generation 2)" >&2
