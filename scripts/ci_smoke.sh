#!/usr/bin/env bash
# CI smoke test for gt-serve: boot `gtree serve` on loopback, drive a
# short pipelined closed-loop load, and fail on any error reply or
# transport failure.  Then a distinct-key cold-storm burst: every
# request is a cold miss crossing the shared executor, and any shed
# (429) or timeout (408) fails the run — a regression guard for the
# executor's queue sizing and dispatch throughput.  Also checks that
# SIGINT drains the server.
#
# Environment overrides: GTREE_BIN, SMOKE_PORT, SMOKE_DURATION (s).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BIN="${GTREE_BIN:-$ROOT/target/release/gtree}"
PORT="${SMOKE_PORT:-7191}"
DUR="${SMOKE_DURATION:-2}"
ADDR="127.0.0.1:$PORT"

if [ ! -x "$BIN" ]; then
  echo "ci_smoke: building release binary" >&2
  (cd "$ROOT" && cargo build --release -q)
fi

"$BIN" serve --addr "$ADDR" --eval-workers 2 --queue-depth 512 >/dev/null 2>&1 &
SERVER_PID=$!
trap 'kill -INT "$SERVER_PID" 2>/dev/null || true; wait "$SERVER_PID" 2>/dev/null || true' EXIT

up=""
for _ in $(seq 1 100); do
  if (exec 3<>"/dev/tcp/127.0.0.1/$PORT") 2>/dev/null; then
    up=1
    break
  fi
  sleep 0.05
done
if [ -z "$up" ]; then
  echo "ci_smoke: server did not come up on $ADDR" >&2
  exit 1
fi

json=$("$BIN" loadgen --addr "$ADDR" --rps 0 --duration "$DUR" --conns 2 \
  --pipeline 4 --spec worst:d=2,n=8 --algo cascade:w=1 --json)
echo "ci_smoke: $json"

field() { printf '%s' "$json" | sed -n "s/.*\"$1\":\([0-9][0-9]*\).*/\1/p"; }
ok=$(field ok)
bad=$(field bad)
other=$(field other_error)
transport=$(field transport_errors)

fail=""
[ "${ok:-0}" -gt 0 ] || { echo "ci_smoke: no successful replies" >&2; fail=1; }
[ "${bad:-0}" -eq 0 ] || { echo "ci_smoke: $bad bad-request replies" >&2; fail=1; }
[ "${other:-0}" -eq 0 ] || { echo "ci_smoke: $other unexpected error replies" >&2; fail=1; }
[ "${transport:-0}" -eq 0 ] || { echo "ci_smoke: $transport transport errors" >&2; fail=1; }
[ -z "$fail" ] || exit 1

# Cold-storm burst: 16 conns × window 4 of distinct small keys.  The
# executor must batch through all of them within their (default 10s)
# deadlines and without shedding — sheds or timeouts mean the cold
# path regressed.
json=$("$BIN" loadgen --addr "$ADDR" --rps 0 --duration "$DUR" --conns 16 \
  --pipeline 4 --spec worst:d=2,n=10 --algo seq-solve --distinct --json)
echo "ci_smoke: cold storm $json"

ok=$(field ok)
shed=$(field shed)
timeout=$(field timeout)
transport=$(field transport_errors)

fail=""
[ "${ok:-0}" -gt 0 ] || { echo "ci_smoke: cold storm got no successful replies" >&2; fail=1; }
[ "${shed:-0}" -eq 0 ] || { echo "ci_smoke: cold storm shed $shed requests" >&2; fail=1; }
[ "${timeout:-0}" -eq 0 ] || { echo "ci_smoke: cold storm timed out $timeout requests" >&2; fail=1; }
[ "${transport:-0}" -eq 0 ] || { echo "ci_smoke: cold storm hit $transport transport errors" >&2; fail=1; }
[ -z "$fail" ] || exit 1

# SIGINT must drain the server and let it exit cleanly.
kill -INT "$SERVER_PID"
if ! wait "$SERVER_PID"; then
  echo "ci_smoke: server did not exit cleanly on SIGINT" >&2
  exit 1
fi
SERVER_PID=""
trap - EXIT
echo "ci_smoke: ok ($ok successful replies, clean SIGINT drain)" >&2
