//! Robustness checks outside the comfortable regime: very deep chains,
//! degenerate arities, extreme values, and Othello's irregular trees
//! through the full stack.

use karp_zhang::core::engine::{best_move, CascadeEngine, SearchConfig};
use karp_zhang::games::{Game, GameTreeSource, Othello};
use karp_zhang::sim::{parallel_alphabeta, parallel_solve};
use karp_zhang::tree::gen::{ConstLeaf, LeafValues, UniformSource};
use karp_zhang::tree::minimax::{minimax_value, nor_value, seq_alphabeta, seq_solve};
use karp_zhang::tree::{TreeSource, Value};

/// A unary chain of the given height ending in one leaf.
struct Chain {
    height: u32,
    leaf: Value,
}

impl TreeSource for Chain {
    fn arity(&self, path: &[u32]) -> u32 {
        if (path.len() as u32) < self.height {
            1
        } else {
            0
        }
    }
    fn leaf_value(&self, _path: &[u32]) -> Value {
        self.leaf
    }
    fn height_hint(&self) -> Option<u32> {
        Some(self.height)
    }
}

#[test]
fn deep_unary_chains_are_handled() {
    // Recursion depth equals tree height; 2000 frames is far beyond any
    // instance the experiments use and comfortably within stack limits.
    for height in [0u32, 1, 500, 2000] {
        let c = Chain { height, leaf: 1 };
        let seq = seq_solve(&c, false);
        assert_eq!(seq.leaves_evaluated, 1, "height {height}");
        let par = parallel_solve(&c, 1, false);
        // NOR of a chain alternates with height parity.
        assert_eq!(par.value, nor_value(&c), "height {height}");
        assert_eq!(par.steps, 1);
    }
}

#[test]
fn extreme_leaf_values_do_not_overflow_windows() {
    // Near-extremal i64 leaves exercise the ±infinity window arithmetic.
    struct Extremes;
    impl LeafValues for Extremes {
        fn value(&self, path: &[u32]) -> Value {
            if path.iter().sum::<u32>() % 2 == 0 {
                Value::MAX - 1
            } else {
                Value::MIN + 1
            }
        }
    }
    let s = UniformSource::new(2, 6, Extremes);
    let truth = minimax_value(&s);
    assert_eq!(seq_alphabeta(&s, false).value, truth);
    assert_eq!(parallel_alphabeta(&s, 1, false).value, truth);
    assert_eq!(CascadeEngine::with_width(1).solve_minmax(&s).value, truth);
}

#[test]
fn all_equal_minmax_tree_collapses_fast() {
    let s = UniformSource::new(3, 6, ConstLeaf(7));
    let st = parallel_alphabeta(&s, 1, false);
    assert_eq!(st.value, 7);
    // The α ≥ β rule fires aggressively on equal values: far fewer
    // leaves than the full 729.
    assert!(st.total_work < 200, "{}", st.total_work);
}

#[test]
fn othello_full_stack() {
    // Depth-4 opening search through simulators and engines.
    let src = GameTreeSource::from_initial(Othello, 4);
    let truth = minimax_value(&src);
    assert_eq!(seq_alphabeta(&src, false).value, truth);
    for w in 0..3 {
        assert_eq!(parallel_alphabeta(&src, w, false).value, truth, "w={w}");
    }
    assert_eq!(CascadeEngine::with_width(2).solve_minmax(&src).value, truth);
}

#[test]
fn othello_move_selection_is_stable_across_widths() {
    let g = Othello;
    let seq = best_move(&g, &g.initial(), SearchConfig { depth: 4, width: 0 }).unwrap();
    let par = best_move(&g, &g.initial(), SearchConfig { depth: 4, width: 2 }).unwrap();
    assert_eq!(seq.1, par.1, "values must agree");
    assert_eq!(seq.0, par.0, "tie-breaking must agree");
}

#[test]
fn othello_self_play_terminates() {
    let g = Othello;
    let mut s = g.initial();
    let mut plies = 0;
    while g.num_moves(&s) > 0 && plies < 64 {
        let (mv, _) = best_move(&g, &s, SearchConfig { depth: 3, width: 1 }).unwrap();
        s = g.apply(&s, mv);
        plies += 1;
    }
    assert!(s.is_terminal(), "game did not finish in 64 plies");
    // A finished 6x6 game's discs never exceed the board.
    assert!(s.black.count_ones() + s.white.count_ones() <= 36);
}
