//! Property tests over the games themselves: random playouts must
//! never panic, state invariants must hold at every ply, and move
//! enumeration must stay consistent with application.

use karp_zhang::games::{Connect4, Game, Nim, NimState, Othello, SyntheticGame, TicTacToe};
use proptest::prelude::*;

/// Play `moves` (as fractions of the legal-move count) from the start;
/// return the number of plies survived.
fn playout<G: Game>(game: &G, picks: &[u8], check: impl Fn(&G::State, u32)) -> u32 {
    let mut state = game.initial();
    let mut plies = 0;
    for &pick in picks {
        let n = game.num_moves(&state);
        if n == 0 {
            break;
        }
        let idx = u32::from(pick) % n;
        state = game.apply(&state, idx);
        plies += 1;
        check(&state, plies);
        // Evaluation must always be callable and finite-ish.
        let v = game.evaluate(&state);
        assert!(v.abs() < 1_000_000, "evaluation blew up: {v}");
    }
    plies
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn tictactoe_random_playouts(picks in prop::collection::vec(any::<u8>(), 0..12)) {
        let plies = playout(&TicTacToe, &picks, |b, _| {
            assert_eq!(b.x & b.o, 0, "cell owned by both players");
            assert!(b.x.count_ones() + b.o.count_ones() <= 9);
            // X moves first: piece counts differ by at most one.
            let (x, o) = (b.x.count_ones(), b.o.count_ones());
            assert!(x == o || x == o + 1, "turn order broken: {x} vs {o}");
        });
        prop_assert!(plies <= 9);
    }

    #[test]
    fn connect4_random_playouts(picks in prop::collection::vec(any::<u8>(), 0..45)) {
        let plies = playout(&Connect4::default(), &picks, |p, ply| {
            assert_eq!(p.plies, ply, "ply counter consistent");
            assert!(p.occupied.count_ones() == p.plies, "one stone per ply");
            assert_eq!(p.first & !p.occupied, 0, "first-player stones are placed");
        });
        prop_assert!(plies <= 42);
    }

    #[test]
    fn othello_random_playouts(picks in prop::collection::vec(any::<u8>(), 0..40)) {
        playout(&Othello, &picks, |s, _| {
            assert_eq!(s.black & s.white, 0, "disc owned by both");
            assert!(s.black.count_ones() + s.white.count_ones() <= 36);
            // Discs are never destroyed, only flipped or added.
            assert!(s.black.count_ones() + s.white.count_ones() >= 4);
        });
    }

    #[test]
    fn nim_random_playouts(
        piles in prop::collection::vec(0u32..5, 1..4),
        picks in prop::collection::vec(any::<u8>(), 0..20),
    ) {
        let g = Nim::default();
        let total: u32 = piles.iter().sum();
        let mut state = NimState { piles, first_to_move: true };
        let mut taken = 0u32;
        for &pick in &picks {
            let n = g.num_moves(&state);
            if n == 0 { break; }
            let before: u32 = state.piles.iter().sum();
            state = g.apply(&state, u32::from(pick) % n);
            let after: u32 = state.piles.iter().sum();
            prop_assert!(after < before, "a move must remove stones");
            taken += before - after;
        }
        prop_assert!(taken <= total);
    }

    #[test]
    fn synthetic_playouts_terminate_exactly_at_max_plies(
        b in 1u32..4,
        depth in 0u32..6,
        picks in prop::collection::vec(any::<u8>(), 8),
    ) {
        let g = SyntheticGame::new(b, depth, 0, 3);
        let plies = playout(&g, &picks, |_, _| {});
        prop_assert!(plies <= depth.min(8));
    }

    #[test]
    fn move_indices_are_dense(picks in prop::collection::vec(any::<u8>(), 0..6)) {
        // Every index < num_moves must be applicable (no panics), for a
        // sampled set of reachable positions.
        let g = Othello;
        let mut state = g.initial();
        for &pick in &picks {
            let n = g.num_moves(&state);
            if n == 0 { break; }
            // Apply every legal index once (cloned), then advance.
            for i in 0..n {
                let _ = g.apply(&state, i);
            }
            state = g.apply(&state, u32::from(pick) % n);
        }
    }
}
