//! Property tests for weighted rendezvous hashing: the
//! minimal-disruption guarantee must survive joins, leaves, and
//! reweights.  For every membership change, only keys that move onto
//! or off the affected member may change hands — every other key
//! keeps its owner, and the relative failover order of the
//! *unaffected* members never changes.

use gt_router::hash::{rank, rank_weighted};
use proptest::prelude::*;

fn member_set(n: usize) -> Vec<(String, u64)> {
    (0..n).map(|i| (format!("10.9.{i}.1:7171"), 1)).collect()
}

fn keys(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| format!("minmax:d=3,n=8,seed={i}|cascade:w=1"))
        .collect()
}

/// The order of `members \ {skip}` induced by `order`, as original
/// indices.
fn order_without(order: &[usize], skip: usize) -> Vec<usize> {
    order.iter().copied().filter(|&i| i != skip).collect()
}

proptest! {
    /// Join: adding a member moves only the keys the newcomer now
    /// owns, and never perturbs the relative order of the incumbents.
    #[test]
    fn join_preserves_incumbent_order(
        n in 2usize..7,
        weights in proptest::collection::vec(1u64..16, 8),
        new_weight in 1u64..16,
        nkeys in 20usize..80,
    ) {
        let mut members = member_set(n);
        for (m, w) in members.iter_mut().zip(&weights) {
            m.1 = *w;
        }
        let mut grown = members.clone();
        grown.push(("10.9.200.1:7171".to_string(), new_weight));
        let newcomer = grown.len() - 1;
        for key in keys(nkeys) {
            let before = rank_weighted(&key, &members);
            let after = rank_weighted(&key, &grown);
            // Incumbents keep their relative order exactly.
            prop_assert_eq!(
                &before,
                &order_without(&after, newcomer),
                "incumbent order changed on join for {}",
                key
            );
            // An ownership change can only hand the key to the newcomer.
            if after[0] != before[0] {
                prop_assert_eq!(after[0], newcomer, "key moved between incumbents: {}", key);
            }
        }
    }

    /// Leave: removing a member moves only the keys it owned; every
    /// other key keeps its owner and its whole failover order.
    #[test]
    fn leave_moves_only_the_leavers_keys(
        n in 3usize..8,
        weights in proptest::collection::vec(1u64..16, 8),
        leaver_seed in any::<u32>(),
        nkeys in 20usize..80,
    ) {
        let mut members = member_set(n);
        for (m, w) in members.iter_mut().zip(&weights) {
            m.1 = *w;
        }
        let leaver = (leaver_seed as usize) % n;
        let reduced: Vec<(String, u64)> = members
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != leaver)
            .map(|(_, m)| m.clone())
            .collect();
        // Map a reduced index back to the full-set index.
        let back = |i: usize| if i >= leaver { i + 1 } else { i };
        for key in keys(nkeys) {
            let full = rank_weighted(&key, &members);
            let survivors_before = order_without(&full, leaver);
            let survivors_after: Vec<usize> =
                rank_weighted(&key, &reduced).into_iter().map(back).collect();
            prop_assert_eq!(
                survivors_before,
                survivors_after,
                "survivor order changed on leave for {}",
                key
            );
        }
    }

    /// Reweight: changing one member's weight can move keys onto or
    /// off that member only; the other members' relative order is
    /// untouched for every key.  Raising a weight never sheds keys;
    /// lowering one never attracts them.
    #[test]
    fn reweight_moves_keys_monotonically(
        n in 2usize..7,
        weights in proptest::collection::vec(1u64..16, 8),
        target_seed in any::<u32>(),
        new_weight in 1u64..32,
        nkeys in 20usize..80,
    ) {
        let mut members = member_set(n);
        for (m, w) in members.iter_mut().zip(&weights) {
            m.1 = *w;
        }
        let target = (target_seed as usize) % n;
        let old_weight = members[target].1;
        let mut reweighted = members.clone();
        reweighted[target].1 = new_weight;
        for key in keys(nkeys) {
            let before = rank_weighted(&key, &members);
            let after = rank_weighted(&key, &reweighted);
            prop_assert_eq!(
                order_without(&before, target),
                order_without(&after, target),
                "unaffected order changed on reweight for {}",
                key
            );
            if before[0] != after[0] {
                prop_assert!(
                    before[0] == target || after[0] == target,
                    "key changed hands between unaffected members: {}",
                    key
                );
                if new_weight > old_weight {
                    prop_assert_eq!(after[0], target, "raised weight shed a key: {}", key);
                } else {
                    prop_assert_eq!(before[0], target, "lowered weight attracted a key: {}", key);
                }
            }
        }
    }

    /// Sanity: weighted ranking is always a permutation and, with all
    /// weights equal, matches the unweighted order.
    #[test]
    fn weighted_rank_is_a_permutation_and_degenerates_cleanly(
        n in 1usize..8,
        weight in 1u64..16,
        nkeys in 1usize..40,
    ) {
        let members = {
            let mut m = member_set(n);
            for e in &mut m {
                e.1 = weight;
            }
            m
        };
        let addrs: Vec<String> = members.iter().map(|(m, _)| m.clone()).collect();
        for key in keys(nkeys) {
            let order = rank_weighted(&key, &members);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
            prop_assert_eq!(order, rank(&key, &addrs));
        }
    }
}
