//! End-to-end tests for the fleet control plane: dynamic membership
//! (join announcements), cache snapshot/warm restarts, and per-tenant
//! fairness — real routers and replicas over loopback TCP.

use gt_analysis::Json;
use gt_router::{Router, RouterConfig};
use gt_serve::{Client, Config, Op, Request, Server};
use std::time::{Duration, Instant};

/// Poll the router's `health` reply until `pred` accepts it (or panic
/// after `secs` seconds).  Reconnects per poll so a router mid-churn
/// cannot wedge the probe.
fn wait_for_health<F: Fn(&Json) -> bool>(addr: &str, secs: u64, what: &str, pred: F) -> Json {
    let deadline = Instant::now() + Duration::from_secs(secs);
    let mut last = Json::Null;
    while Instant::now() < deadline {
        if let Ok(mut c) = Client::connect(addr) {
            if let Ok(reply) = c.health() {
                if pred(&reply.body) {
                    return reply.body;
                }
                last = reply.body;
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    panic!("router never reached: {what}; last health: {last:?}");
}

/// The `members` rows of a health body as `(addr, generation, tier)`.
fn member_rows(body: &Json) -> Vec<(String, u64, u64)> {
    match body.get("members") {
        Some(Json::Array(rows)) => rows
            .iter()
            .map(|r| {
                (
                    r.get("addr")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    r.get("generation").and_then(Json::as_u64).unwrap_or(0),
                    r.get("tier").and_then(Json::as_u64).unwrap_or(99),
                )
            })
            .collect(),
        _ => Vec::new(),
    }
}

/// A distinct-key eval request: nothing caches or coalesces across
/// `salt`s, so every request exercises routing and dispatch.
fn distinct_eval(salt: u64, tenant: Option<&str>) -> Request {
    Request {
        id: Some(salt.to_string()),
        op: Op::Eval,
        spec: Some(format!("worst:d=2,n=6,seed={salt}")),
        algo: Some("seq-solve".into()),
        deadline_ms: Some(10_000),
        tenant: tenant.map(str::to_string),
        ..Default::default()
    }
}

#[test]
fn a_replica_joins_a_live_fleet_under_load_without_client_errors() {
    let seed_replica = Server::start(Config {
        workers: 2,
        ..Config::default()
    })
    .unwrap();
    let router = Router::start(RouterConfig {
        replicas: vec![seed_replica.local_addr().to_string()],
        ..RouterConfig::default()
    })
    .unwrap();
    let router_addr = router.local_addr().to_string();

    // Client load runs across the join: two closed-loop connections
    // sending distinct keys, every reply must be ok.
    let stop = std::sync::atomic::AtomicBool::new(false);
    let (errors, sent) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2u64)
            .map(|conn| {
                let stop = &stop;
                let addr = router_addr.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(&addr).expect("client connect");
                    let mut errors = 0u64;
                    let mut sent = 0u64;
                    let mut salt = conn * 1_000_000;
                    while !stop.load(std::sync::atomic::Ordering::Acquire) {
                        salt += 1;
                        sent += 1;
                        match client.send(&distinct_eval(salt, None)) {
                            Ok(reply) if reply.ok => {}
                            _ => errors += 1,
                        }
                    }
                    (errors, sent)
                })
            })
            .collect();

        // Mid-load: a brand-new replica announces itself to the
        // router and joins the fleet.
        std::thread::sleep(Duration::from_millis(150));
        let joiner = Server::start(Config {
            workers: 2,
            announce: Some(router_addr.clone()),
            weight: 1,
            generation: 1,
            ..Config::default()
        })
        .unwrap();
        wait_for_health(&router_addr, 10, "two routable members", |body| {
            let rows = member_rows(body);
            rows.len() == 2 && rows.iter().all(|(_, _, tier)| *tier < 3)
        });

        // Keep the load running against the grown fleet long enough
        // for rebalanced keys to land on the joiner.
        let settle = Instant::now();
        while joiner.metrics().snapshot().received == 0
            && settle.elapsed() < Duration::from_secs(10)
        {
            std::thread::sleep(Duration::from_millis(25));
        }
        stop.store(true, std::sync::atomic::Ordering::Release);
        let (mut errors, mut sent) = (0, 0);
        for h in handles {
            let (e, s) = h.join().unwrap();
            errors += e;
            sent += s;
        }
        // The joiner took a share of the keyspace: it served traffic
        // it could only have received through the router.
        assert!(
            joiner.metrics().snapshot().received > 0,
            "the joined replica never saw a request"
        );
        joiner.request_shutdown();
        joiner.join();
        (errors, sent)
    });
    assert!(sent > 0);
    assert_eq!(errors, 0, "membership growth must be invisible to clients");

    router.request_shutdown();
    router.join();
    seed_replica.request_shutdown();
    seed_replica.join();
}

#[test]
fn a_killed_replica_rejoins_warm_from_its_snapshot() {
    let dir = std::env::temp_dir().join(format!("gt-fleet-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snapshot = dir.join("replica-a.snap");
    let snapshot_path = snapshot.to_str().unwrap().to_string();

    // B anchors the fleet; A joins with a snapshot path and announces.
    let replica_b = Server::start(Config {
        workers: 2,
        ..Config::default()
    })
    .unwrap();
    let router = Router::start(RouterConfig {
        replicas: vec![replica_b.local_addr().to_string()],
        ..RouterConfig::default()
    })
    .unwrap();
    let router_addr = router.local_addr().to_string();
    let replica_a = Server::start(Config {
        workers: 2,
        snapshot_path: Some(snapshot_path.clone()),
        announce: Some(router_addr.clone()),
        generation: 1,
        ..Config::default()
    })
    .unwrap();
    let a_addr = replica_a.local_addr().to_string();
    wait_for_health(&router_addr, 10, "A admitted", |body| {
        member_rows(body).len() == 2
    });

    // Seed the fleet with a fixed keyset through the router.
    let keyset: Vec<Request> = (0..24).map(|salt| distinct_eval(salt, None)).collect();
    let mut client = Client::connect(&router_addr).unwrap();
    for req in &keyset {
        let reply = client.send(req).unwrap();
        assert!(reply.ok, "seeding failed: {reply:?}");
    }

    // Kill A.  Draining writes its cache shards to the snapshot file.
    replica_a.request_shutdown();
    replica_a.join();
    assert!(snapshot.exists(), "drain must write the snapshot");

    // Churn window: A is gone, but every request keeps succeeding —
    // A's share of the keyspace fails over to B.
    for req in &keyset {
        let reply = client.send(req).unwrap();
        assert!(reply.ok, "churn must be invisible to clients: {reply:?}");
    }

    // Restart A on the same address (same identity under rendezvous
    // hashing) at a higher generation, warm from the snapshot.  The
    // freed port can sit in a lingering state briefly, so retry.
    let restart_deadline = Instant::now() + Duration::from_secs(10);
    let replica_a2 = loop {
        match Server::start(Config {
            addr: a_addr.clone(),
            workers: 2,
            snapshot_path: Some(snapshot_path.clone()),
            announce: Some(router_addr.clone()),
            generation: 2,
            ..Config::default()
        }) {
            Ok(s) => break s,
            Err(e) if Instant::now() < restart_deadline => {
                eprintln!("rebind {a_addr}: {e}; retrying");
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(e) => panic!("could not rebind {a_addr}: {e}"),
        }
    };
    let snap = replica_a2.metrics().snapshot();
    assert!(
        snap.snapshot_restored > 0,
        "restart must restore the snapshot"
    );
    wait_for_health(&router_addr, 10, "A rejoined at generation 2", |body| {
        member_rows(body)
            .iter()
            .any(|(addr, generation, tier)| addr == &a_addr && *generation == 2 && *tier < 3)
    });

    // First window after the restart: replay the keyset.  A owns the
    // same keys it owned before the kill and answers them from the
    // restored cache — well above the 50%-hit floor.  The router's
    // upstream pool to A reconnects with backoff, so early replays can
    // still fail over to B; keep replaying until A serves traffic.
    let replay_deadline = Instant::now() + Duration::from_secs(10);
    let snap = loop {
        for req in &keyset {
            let reply = client.send(req).unwrap();
            assert!(reply.ok, "replay failed: {reply:?}");
        }
        let snap = replica_a2.metrics().snapshot();
        if snap.cache_hits + snap.cache_misses > 0 {
            break snap;
        }
        assert!(
            Instant::now() < replay_deadline,
            "rebalance never routed keys back to A"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    let served = snap.cache_hits + snap.cache_misses;
    assert!(
        snap.cache_hits * 2 >= served,
        "first-window hit rate below 50%: {} hits of {served}",
        snap.cache_hits
    );
    assert_eq!(snap.evaluated, 0, "every replayed key was a restored hit");

    router.request_shutdown();
    router.join();
    replica_a2.request_shutdown();
    replica_a2.join();
    replica_b.request_shutdown();
    replica_b.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_flooding_tenant_is_capped_while_the_quiet_tenant_runs_clean() {
    let server = Server::start(Config {
        workers: 2,
        tenant_max_inflight: 1,
        ..Config::default()
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    let run = Duration::from_millis(500);

    let (noisy_shed, quiet) = std::thread::scope(|scope| {
        // The flood: bursts of 16 pipelined distinct evals, far over
        // the 1-inflight cap, for the whole window.
        let flood = scope.spawn({
            let addr = addr.clone();
            move || {
                let mut client = Client::connect(&addr).unwrap();
                let start = Instant::now();
                let mut salt = 0u64;
                let mut shed = 0u64;
                while start.elapsed() < run {
                    let burst: Vec<Request> = (0..16)
                        .map(|_| {
                            salt += 1;
                            distinct_eval(salt, Some("noisy"))
                        })
                        .collect();
                    for req in &burst {
                        client.write_request(req).unwrap();
                    }
                    for _ in &burst {
                        let reply = client.read_response().unwrap();
                        if reply.status == 429 {
                            shed += 1;
                        }
                    }
                }
                shed
            }
        });
        // The quiet tenant: classic one-at-a-time closed loop, never
        // above its own 1-inflight share.
        let quiet = scope.spawn({
            let addr = addr.clone();
            move || {
                let mut client = Client::connect(&addr).unwrap();
                let start = Instant::now();
                let mut salt = 10_000_000u64;
                let (mut ok, mut shed) = (0u64, 0u64);
                while start.elapsed() < run {
                    salt += 1;
                    let reply = client.send(&distinct_eval(salt, Some("quiet"))).unwrap();
                    if reply.ok {
                        ok += 1;
                    } else if reply.status == 429 {
                        shed += 1;
                    }
                }
                (ok, shed)
            }
        });
        (flood.join().unwrap(), quiet.join().unwrap())
    });

    let (quiet_ok, quiet_shed) = quiet;
    assert!(
        noisy_shed > 0,
        "a 16-deep burst against a 1-inflight cap must shed"
    );
    assert!(quiet_ok > 0, "the quiet tenant made progress");
    assert_eq!(quiet_shed, 0, "a tenant inside its share is never shed");

    // The server's own per-tenant cards tell the same story.
    let snap = server.metrics().snapshot();
    let card = |name: &str| snap.tenants.iter().find(|t| t.tenant == name).unwrap();
    assert!(card("noisy").shed >= noisy_shed);
    assert_eq!(card("quiet").shed, 0);
    assert!(card("quiet").ok >= quiet_ok);
    server.request_shutdown();
    server.join();
}
