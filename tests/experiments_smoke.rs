//! Every experiment must run end-to-end (quick mode) and produce a
//! non-trivial report.  This is the regression net for the harness that
//! regenerates the paper's results.

use gt_bench::{run_experiment, ALL};

#[test]
fn all_experiments_run_in_quick_mode() {
    for id in ALL {
        let report = run_experiment(id, true).unwrap_or_else(|| panic!("experiment {id} unknown"));
        assert!(
            report.lines().count() >= 5,
            "experiment {id} produced a suspiciously short report:\n{report}"
        );
        assert!(
            !report.contains("VIOLATION"),
            "experiment {id} reported a bound violation:\n{report}"
        );
    }
}

#[test]
fn experiment_reports_mention_their_claims() {
    let checks = [
        ("e1", "Theorem 1"),
        ("e2", "Proposition 1"),
        ("e3", "Proposition 3"),
        ("e4", "Theorem 3"),
        ("e5", "Theorem 4"),
        ("e6", "Theorems 5-6"),
        ("e7", "Width ablation"),
        ("e8", "Section 7"),
        ("e9", "constant"),
        ("e10", "Fact"),
        ("e11", "skeleton"),
        ("e12", "Wall-clock"),
        ("e13", "SCOUT"),
        ("e14", "SSS*"),
    ];
    for (id, needle) in checks {
        let report = run_experiment(id, true).unwrap();
        assert!(
            report.contains(needle),
            "experiment {id} report lost its claim marker {needle:?}"
        );
    }
}
