//! Differential harness: generate many random instances (seeded, so
//! failures reproduce) and require *every* implementation in the
//! workspace to agree — the broadest net against divergence between
//! the model simulators, the reference algorithms, the best-first
//! baselines and the threaded engines.

use karp_zhang::core::engine::{CascadeEngine, RoundEngine, YbwEngine};
use karp_zhang::msgsim::simulate_with_processors;
use karp_zhang::sim::randomized::{r_parallel_alphabeta, r_parallel_solve};
use karp_zhang::sim::{n_parallel_alphabeta, n_parallel_solve, parallel_alphabeta, parallel_solve};
use karp_zhang::tree::gen::{critical_bias, IidBernoulli, NearUniformSource, UniformSource};
use karp_zhang::tree::minimax::{minimax_value, nor_value, seq_alphabeta, seq_solve};
use karp_zhang::tree::scout::scout;
use karp_zhang::tree::source::{mix64, TreeSource};
use karp_zhang::tree::sss::sss_star;

/// One fully cross-checked NOR instance.
fn check_nor<S: TreeSource>(src: &S, binary: bool, ctx: &str) {
    let truth = nor_value(src);
    assert_eq!(seq_solve(src, false).value, truth, "{ctx}: seq");
    for w in [0u32, 1, 3] {
        assert_eq!(
            parallel_solve(src, w, false).value,
            truth,
            "{ctx}: par w={w}"
        );
        assert_eq!(
            n_parallel_solve(src, w, false).value,
            truth,
            "{ctx}: npar w={w}"
        );
    }
    assert_eq!(
        r_parallel_solve(src, 1, 99, false).value,
        truth,
        "{ctx}: randomized"
    );
    assert_eq!(
        RoundEngine::with_width(1).solve_nor(src).value,
        truth,
        "{ctx}: round engine"
    );
    assert_eq!(
        CascadeEngine::with_width(2).solve_nor(src).value,
        truth,
        "{ctx}: cascade engine"
    );
    // The message machine handles any arity now; exercise it with a
    // small processor budget to stress multiplexing too.
    let _ = binary;
    assert_eq!(
        simulate_with_processors(src, 3).value,
        truth,
        "{ctx}: message machine"
    );
}

/// One fully cross-checked MIN/MAX instance.
fn check_minmax<S: TreeSource>(src: &S, ctx: &str) {
    let truth = minimax_value(src);
    assert_eq!(seq_alphabeta(src, false).value, truth, "{ctx}: seq ab");
    assert_eq!(scout(src).value, truth, "{ctx}: scout");
    assert_eq!(sss_star(src).value, truth, "{ctx}: sss*");
    for w in [0u32, 1, 2] {
        assert_eq!(
            parallel_alphabeta(src, w, false).value,
            truth,
            "{ctx}: par ab w={w}"
        );
        assert_eq!(
            n_parallel_alphabeta(src, w, false).value,
            truth,
            "{ctx}: npar ab w={w}"
        );
    }
    assert_eq!(
        r_parallel_alphabeta(src, 1, 7, false).value,
        truth,
        "{ctx}: randomized ab"
    );
    assert_eq!(
        CascadeEngine::with_width(2).solve_minmax(src).value,
        truth,
        "{ctx}: cascade ab"
    );
    assert_eq!(
        YbwEngine::default().solve_minmax(src).value,
        truth,
        "{ctx}: ybw"
    );
    assert_eq!(
        RoundEngine::with_width(1).solve_minmax(src).value,
        truth,
        "{ctx}: round ab"
    );
}

#[test]
fn differential_nor_uniform() {
    for i in 0..30u64 {
        let seed = mix64(i);
        let d = 2 + (seed % 3) as u32; // 2..4
        let n = 3 + (seed % 5) as u32; // 3..7
        let p = match seed % 4 {
            0 => 0.25,
            1 => 0.5,
            2 => 0.75,
            _ => critical_bias(d),
        };
        let src = UniformSource::nor_iid(d, n, p, seed);
        check_nor(&src, d == 2, &format!("B({d},{n}) p={p} seed={seed}"));
    }
}

#[test]
fn differential_nor_near_uniform() {
    for i in 0..15u64 {
        let seed = mix64(i ^ 0xABCD);
        let src = NearUniformSource::new(3, 6, 0.5, 0.5, seed, IidBernoulli::new(0.4, seed));
        check_nor(&src, false, &format!("near-uniform seed={seed}"));
    }
}

#[test]
fn differential_minmax_uniform() {
    for i in 0..30u64 {
        let seed = mix64(i ^ 0x5555);
        let d = 2 + (seed % 2) as u32; // 2..3
        let n = 3 + (seed % 3) as u32; // 3..5
        let hi = 1 + (seed % 100) as i64;
        let src = UniformSource::minmax_iid(d, n, -hi, hi, seed);
        check_minmax(&src, &format!("M({d},{n}) hi={hi} seed={seed}"));
    }
}

#[test]
fn differential_minmax_extreme_orderings() {
    for (d, n) in [(2u32, 6u32), (3, 4)] {
        check_minmax(
            &UniformSource::minmax_best_ordered(d, n, 3),
            &format!("best-ordered M({d},{n})"),
        );
        check_minmax(
            &UniformSource::minmax_worst_ordered(d, n),
            &format!("worst-ordered M({d},{n})"),
        );
    }
}

#[test]
fn differential_nor_extremes() {
    // All-zeros, all-ones and worst-case instances.
    use karp_zhang::tree::gen::ConstLeaf;
    for v in [0i64, 1] {
        let src = UniformSource::new(2, 6, ConstLeaf(v));
        check_nor(&src, true, &format!("const-{v} B(2,6)"));
    }
    let src = UniformSource::nor_worst_case(3, 4);
    check_nor(&src, false, "worst-case B(3,4)");
}
