//! Cross-crate consistency: every algorithm, in every model, on every
//! engine, must report the same root value — and their work/step
//! metrics must relate the way the paper says they do.

use karp_zhang::core::engine::{CascadeEngine, RoundEngine};
use karp_zhang::msgsim::simulate;
use karp_zhang::sim::randomized::{r_parallel_alphabeta, r_parallel_solve};
use karp_zhang::sim::{
    n_parallel_alphabeta, n_parallel_solve, parallel_alphabeta, parallel_solve, team_solve,
};
use karp_zhang::tree::gen::{critical_bias, UniformSource};
use karp_zhang::tree::minimax::{minimax_value, nor_value, seq_alphabeta, seq_solve};

#[test]
fn every_nor_algorithm_agrees_on_the_value() {
    for seed in 0..10 {
        let src = UniformSource::nor_iid(2, 9, critical_bias(2), seed);
        let truth = nor_value(&src);
        assert_eq!(seq_solve(&src, false).value, truth);
        for w in 0..3 {
            assert_eq!(parallel_solve(&src, w, false).value, truth, "w={w}");
            assert_eq!(n_parallel_solve(&src, w, false).value, truth, "nw={w}");
            assert_eq!(r_parallel_solve(&src, w, seed, false).value, truth);
        }
        for p in [1u32, 3, 8] {
            assert_eq!(team_solve(&src, p, false).value, truth, "team p={p}");
        }
        assert_eq!(simulate(&src).value, truth, "message-passing machine");
        assert_eq!(RoundEngine::with_width(1).solve_nor(&src).value, truth);
        assert_eq!(CascadeEngine::with_width(1).solve_nor(&src).value, truth);
    }
}

#[test]
fn every_minmax_algorithm_agrees_on_the_value() {
    for seed in 0..10 {
        let src = UniformSource::minmax_iid(3, 4, -100, 100, seed);
        let truth = minimax_value(&src);
        assert_eq!(seq_alphabeta(&src, false).value, truth);
        for w in 0..3 {
            assert_eq!(parallel_alphabeta(&src, w, false).value, truth, "w={w}");
            assert_eq!(n_parallel_alphabeta(&src, w, false).value, truth, "nw={w}");
            assert_eq!(r_parallel_alphabeta(&src, w, seed, false).value, truth);
        }
        assert_eq!(RoundEngine::with_width(2).solve_minmax(&src).value, truth);
        assert_eq!(CascadeEngine::with_width(2).solve_minmax(&src).value, truth);
    }
}

#[test]
fn engine_rounds_equal_model_steps() {
    // The round-synchronous engine is the model algorithm on threads.
    for seed in 0..5 {
        let src = UniformSource::nor_iid(2, 8, 0.5, seed);
        for w in [1u32, 2] {
            let model = parallel_solve(&src, w, false);
            let engine = RoundEngine::with_width(w).solve_nor(&src);
            assert_eq!(engine.rounds, model.steps, "w={w} seed={seed}");
            assert_eq!(engine.leaves_evaluated, model.total_work);
        }
    }
}

#[test]
fn sequential_work_equals_width0_steps_equals_recursive_count() {
    for seed in 0..5 {
        let src = UniformSource::nor_iid(3, 5, 0.5, seed);
        let rec = seq_solve(&src, false);
        let sim = parallel_solve(&src, 0, false);
        assert_eq!(sim.steps, rec.leaves_evaluated);
        assert_eq!(sim.total_work, rec.leaves_evaluated);
    }
}

#[test]
fn expansion_work_is_at_least_leaf_work() {
    // Every evaluated leaf costs one expansion, and internal nodes cost
    // more: S*(T) >= S(T).
    for seed in 0..5 {
        let src = UniformSource::nor_iid(2, 8, 0.5, seed);
        let leaves = seq_solve(&src, false).leaves_evaluated;
        let expansions = seq_solve(&src, false).nodes_expanded;
        assert!(expansions >= leaves);
        let nsim = n_parallel_solve(&src, 0, false);
        assert_eq!(nsim.total_work, expansions);
    }
}

#[test]
fn parallel_steps_never_exceed_sequential_steps() {
    for seed in 0..5 {
        let nor = UniformSource::nor_iid(2, 9, critical_bias(2), seed);
        let s = seq_solve(&nor, false).leaves_evaluated;
        for w in 1..4 {
            assert!(parallel_solve(&nor, w, false).steps <= s);
        }
        let mm = UniformSource::minmax_iid(2, 7, 0, 1000, seed);
        let s = seq_alphabeta(&mm, false).leaves_evaluated;
        for w in 1..4 {
            assert!(parallel_alphabeta(&mm, w, false).steps <= s);
        }
    }
}

#[test]
fn games_round_trip_through_all_machinery() {
    use karp_zhang::games::{GameTreeSource, SyntheticGame, TicTacToe};
    // Tic-Tac-Toe at shallow depth.
    let src = GameTreeSource::from_initial(TicTacToe, 4);
    let truth = minimax_value(&src);
    assert_eq!(parallel_alphabeta(&src, 1, false).value, truth);
    assert_eq!(CascadeEngine::with_width(1).solve_minmax(&src).value, truth);
    // Synthetic game (binary so the message machine applies to its NOR
    // interpretation is skipped — MIN/MAX engines only).
    let g = SyntheticGame::new(3, 5, 2, 11);
    let src = GameTreeSource::from_initial(g, 5);
    let truth = minimax_value(&src);
    assert_eq!(parallel_alphabeta(&src, 2, false).value, truth);
    assert_eq!(RoundEngine::with_width(2).solve_minmax(&src).value, truth);
}
