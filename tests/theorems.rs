//! Quantitative shape checks of the paper's theorems at test-sized
//! instances: who wins, and in which direction the curves move.

use karp_zhang::core::theory;
use karp_zhang::sim::randomized::r_parallel_solve;
use karp_zhang::sim::{n_parallel_solve, parallel_alphabeta, parallel_solve, team_solve};
use karp_zhang::tree::gen::{critical_bias, UniformSource};
use karp_zhang::tree::minimax::{seq_alphabeta, seq_solve};

fn solve_speedup(n: u32) -> f64 {
    let src = UniformSource::nor_worst_case(2, n);
    let s = seq_solve(&src, false).leaves_evaluated;
    let p = parallel_solve(&src, 1, false).steps;
    s as f64 / p as f64
}

#[test]
fn theorem1_speedup_grows_with_height() {
    // Linear speed-up in n+1 means the speed-up must grow steadily.
    let s8 = solve_speedup(8);
    let s12 = solve_speedup(12);
    let s16 = solve_speedup(16);
    assert!(s12 > s8, "{s12} vs {s8}");
    assert!(s16 > s12, "{s16} vs {s12}");
    // And the per-processor constant stays in a sane band.
    for (n, s) in [(8u32, s8), (12, s12), (16, s16)] {
        let c = s / (n as f64 + 1.0);
        assert!(
            (0.2..=1.0).contains(&c),
            "constant {c} out of band at n={n}"
        );
    }
}

#[test]
fn proposition1_team_efficiency_collapses_while_parallel_stays_bounded() {
    // The paper's contrast: Team SOLVE's speed-up is only Θ(√p) on
    // adversarial instances, so its per-processor efficiency collapses
    // as p grows, while Parallel SOLVE of width 1 keeps a bounded
    // efficiency using just n+1 processors on *every* instance.
    let n = 12u32;
    let src = UniformSource::new(2, n, karp_zhang::tree::gen::ConstLeaf(1));
    let s = seq_solve(&src, false).leaves_evaluated;

    // Team efficiency at a small vs large budget.
    let eff = |p: u32| {
        let st = team_solve(&src, p, false);
        (s as f64 / st.steps as f64) / p as f64
    };
    let eff_small = eff(4);
    let eff_large = eff(64);
    assert!(
        eff_large < 0.5 * eff_small,
        "Team efficiency should collapse: {eff_large} vs {eff_small}"
    );

    // Parallel width-1 efficiency across heights stays in a fixed band.
    for n in [8u32, 12, 16] {
        let src = UniformSource::new(2, n, karp_zhang::tree::gen::ConstLeaf(1));
        let s = seq_solve(&src, false).leaves_evaluated;
        let par = parallel_solve(&src, 1, false);
        let eff = (s as f64 / par.steps as f64) / par.processors_used as f64;
        assert!(eff > 0.15, "parallel efficiency {eff} collapsed at n={n}");
    }
}

#[test]
fn theorem3_alphabeta_speedup_grows_with_height() {
    let speedup = |n: u32| {
        let src = UniformSource::minmax_worst_ordered(2, n);
        let s = seq_alphabeta(&src, false).leaves_evaluated;
        let p = parallel_alphabeta(&src, 1, false).steps;
        s as f64 / p as f64
    };
    let s6 = speedup(6);
    let s10 = speedup(10);
    assert!(s10 > s6, "{s10} vs {s6}");
}

#[test]
fn theorem4_expansion_model_speedup_grows() {
    let speedup = |n: u32| {
        let src = UniformSource::nor_worst_case(2, n);
        let s = seq_solve(&src, false).nodes_expanded;
        let p = n_parallel_solve(&src, 1, false).steps;
        s as f64 / p as f64
    };
    assert!(speedup(12) > speedup(8));
}

#[test]
fn theorem5_randomized_expected_speedup() {
    let n = 10u32;
    let src = UniformSource::nor_worst_case(2, n);
    let seeds = 8u64;
    let mut seq_mean = 0.0;
    let mut par_mean = 0.0;
    for seed in 0..seeds {
        seq_mean += r_parallel_solve(&src, 0, seed, false).steps as f64;
        par_mean += r_parallel_solve(&src, 1, seed, false).steps as f64;
    }
    let ratio = seq_mean / par_mean;
    assert!(ratio > 2.0, "expected randomized speed-up, got {ratio:.2}");
}

#[test]
fn fact1_fact2_bounds_on_random_instances() {
    for seed in 0..10 {
        let (d, n) = (2u32, 10u32);
        let nor = UniformSource::nor_iid(d, n, critical_bias(d), seed);
        assert!(
            seq_solve(&nor, false).leaves_evaluated >= theory::fact1_lower_bound(d, n),
            "Fact 1 violated at seed {seed}"
        );
        let mm = UniformSource::minmax_iid(d, n, 0, 1 << 20, seed);
        assert!(
            seq_alphabeta(&mm, false).leaves_evaluated >= theory::fact2_lower_bound(d, n),
            "Fact 2 violated at seed {seed}"
        );
    }
}

#[test]
fn prop3_bound_as_step_upper_bound() {
    // Summed over k, Proposition 3 bounds the total number of steps on
    // the skeleton; Prop 4 turns this into the P(H_T) bound.  Verify
    // measured steps never exceed the Prop 4 bound.
    for seed in 0..6 {
        let (d, n) = (2u32, 10u32);
        let src = UniformSource::nor_iid(d, n, 0.5, seed);
        let s = seq_solve(&src, false).leaves_evaluated;
        let h = karp_zhang::tree::skeleton::nor_skeleton(&src);
        let steps = parallel_solve(&h, 1, false).steps;
        let bound = theory::prop4_step_bound(d, n, s as u128);
        assert!(
            (steps as u128) <= bound,
            "P(H_T) = {steps} exceeds Prop 4 bound {bound} (seed {seed})"
        );
    }
}

#[test]
fn corollary1_width1_work_is_linear_in_sequential_work() {
    for seed in 0..6 {
        let src = UniformSource::nor_iid(2, 12, critical_bias(2), seed);
        let s = seq_solve(&src, false).leaves_evaluated;
        let w = parallel_solve(&src, 1, false).total_work;
        assert!(
            w as f64 <= 4.0 * s as f64,
            "W(T) = {w} vs S(T) = {s} (seed {seed})"
        );
    }
}

#[test]
fn corollary2_near_uniform_trees_still_speed_up() {
    use karp_zhang::tree::gen::{IidBernoulli, NearUniformSource};
    let mk = |n: u32, seed: u64| {
        NearUniformSource::new(3, n, 0.67, 0.6, seed, IidBernoulli::new(0.4, seed))
    };
    let speedup = |n: u32, seed: u64| {
        let src = mk(n, seed);
        let s = seq_solve(&src, false).leaves_evaluated;
        let p = parallel_solve(&src, 1, false).steps;
        s as f64 / p as f64
    };
    // Average over seeds to smooth shape noise.
    let avg = |n: u32| (0..6).map(|s| speedup(n, s)).sum::<f64>() / 6.0;
    assert!(avg(12) > avg(6), "{} vs {}", avg(12), avg(6));
}
