//! End-to-end tests for gt-router: a real router in front of real
//! (and deliberately broken) replicas, over loopback TCP.

use gt_analysis::Json;
use gt_router::{Router, RouterConfig};
use gt_serve::{Client, Config, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

fn start_replica() -> Server {
    Server::start(Config {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        ..Config::default()
    })
    .expect("replica start")
}

/// A replica impostor: answers health probes so the router keeps
/// routing at it, but swallows every eval without replying.  The
/// harness for hedge and local-timeout behaviour.
fn start_stub() -> (SocketAddr, Arc<AtomicBool>, JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    listener.set_nonblocking(true).unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let handle = std::thread::spawn(move || {
        let mut conns: Vec<JoinHandle<()>> = Vec::new();
        while !stop2.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let stop3 = Arc::clone(&stop2);
                    conns.push(std::thread::spawn(move || stub_conn(stream, stop3)));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }
        for c in conns {
            let _ = c.join();
        }
    });
    (addr, stop, handle)
}

fn stub_conn(stream: TcpStream, stop: Arc<AtomicBool>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    while !stop.load(Ordering::SeqCst) {
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {
                if line.contains("\"health\"") {
                    let _ = writer.write_all(
                        b"{\"ok\":true,\"uptime_s\":1,\"queued\":0,\"inflight\":0,\"draining\":false}\n",
                    );
                }
                line.clear();
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => return,
        }
    }
}

/// A small cheap spec whose canonical key rendezvous-ranks `owner`
/// first among `addrs`.
fn spec_owned_by(addrs: &[String], owner: usize) -> String {
    for d in 2..4u32 {
        for n in 4..14u32 {
            let spec = format!("worst:d={d},n={n}");
            let key = format!("{spec}|cascade:w=1");
            if gt_router::hash::rank(&key, addrs)[0] == owner {
                return spec;
            }
        }
    }
    panic!("no cheap spec hashes to replica {owner}");
}

fn stats_of(addr: SocketAddr) -> Json {
    let mut client = Client::connect(addr).unwrap();
    let reply = client.stats().unwrap();
    assert!(reply.ok);
    reply.body.get("stats").cloned().expect("stats body")
}

#[test]
fn control_verbs_answer_inline() {
    let router = Router::start(RouterConfig {
        spawn: 1,
        ..RouterConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(router.local_addr()).unwrap();

    let ping = client.ping().unwrap();
    assert!(ping.ok);
    assert_eq!(ping.body.get("role").and_then(Json::as_str), Some("router"));
    assert_eq!(ping.body.get("replicas").and_then(Json::as_u64), Some(1));

    let health = client.health().unwrap();
    assert!(health.ok);
    assert_eq!(health.body.get("routable").and_then(Json::as_u64), Some(1));
    assert_eq!(
        health.body.get("draining").and_then(Json::as_bool),
        Some(false)
    );

    // Tracing is on by default: a bare trace query lists recent trees
    // (none yet), and an unknown id is a 400.
    let trace = client.send_line(r#"{"op":"trace","id":"t"}"#).unwrap();
    assert!(trace.ok, "{trace:?}");
    match trace.body.get("traces") {
        Some(Json::Array(ts)) => assert!(ts.is_empty(), "no evals yet"),
        other => panic!("traces not an array: {other:?}"),
    }
    let missing = client
        .send_line(r#"{"op":"trace","id":"t2","trace":{"trace_id":"rt-nope"}}"#)
        .unwrap();
    assert!(!missing.ok);
    assert_eq!(missing.status, 400);

    let stats = client.stats().unwrap();
    assert!(stats.ok);
    let body = stats.body.get("stats").expect("stats field");
    assert!(body.get("replicas").is_some());
    assert!(body.get("retries").is_some());
    // Parity with the replica tier's stats reply.
    assert_eq!(body.get("version").and_then(Json::as_u64), Some(1));
    assert!(body.get("uptime_s").and_then(Json::as_f64).is_some());
    assert!(body.get("traces").is_some());

    router.join();
}

#[test]
fn same_key_sticks_to_one_replica_and_composes_a_fleet_cache() {
    let router = Router::start(RouterConfig {
        spawn: 3,
        ..RouterConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(router.local_addr()).unwrap();

    for (d, n) in [(2u32, 6u32), (2, 8), (2, 10), (3, 5), (3, 7)] {
        let spec = format!("worst:d={d},n={n}");
        let first = client.eval(&spec, "cascade:w=1", None).unwrap();
        assert!(first.ok, "{first:?}");
        let owner = first
            .body
            .get("replica")
            .and_then(Json::as_str)
            .expect("replica annotation")
            .to_string();
        for _ in 0..2 {
            let again = client.eval(&spec, "cascade:w=1", None).unwrap();
            assert!(again.ok, "{again:?}");
            // Affinity: the same key lands on the same replica, so the
            // repeat is a replica-local cache hit — the three private
            // LRUs behave as one sharded fleet cache.
            assert_eq!(
                again.body.get("replica").and_then(Json::as_str),
                Some(owner.as_str())
            );
            assert!(again.cached(), "{again:?}");
        }
    }

    let snap = router.join();
    assert_eq!(snap.forwarded_errors, 0);
    assert_eq!(snap.ok, 15);
}

#[test]
fn hedged_request_returns_exactly_one_reply_from_the_live_replica() {
    let (stub_addr, stub_stop, stub_handle) = start_stub();
    let replica = start_replica();
    let addrs = vec![stub_addr.to_string(), replica.local_addr().to_string()];
    // A key owned by the stub: the first copy is swallowed, the hedge
    // must win on the live replica.
    let spec = spec_owned_by(&addrs, 0);

    let router = Router::start(RouterConfig {
        replicas: addrs,
        hedge_ms: Some(50),
        probe_interval_ms: 25,
        ..RouterConfig::default()
    })
    .unwrap();

    let stream = TcpStream::connect(router.local_addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    let start = Instant::now();
    writeln!(
        writer,
        r#"{{"op":"eval","id":"h1","spec":"{spec}","algo":"cascade:w=1","deadline_ms":5000}}"#
    )
    .unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let reply = Json::parse(line.trim()).unwrap();
    assert_eq!(
        reply.get("ok").and_then(Json::as_bool),
        Some(true),
        "{line}"
    );
    assert_eq!(reply.get("id").and_then(Json::as_str), Some("h1"));
    assert_eq!(
        reply.get("replica").and_then(Json::as_str),
        Some(replica.local_addr().to_string().as_str()),
        "the live replica must answer, not the stub"
    );
    assert_eq!(reply.get("hedged").and_then(Json::as_bool), Some(true));
    assert!(
        start.elapsed() < Duration::from_secs(4),
        "hedge should beat the deadline by a wide margin"
    );

    // Exactly one reply: nothing else arrives for this request.
    stream
        .set_read_timeout(Some(Duration::from_millis(300)))
        .unwrap();
    let mut extra = String::new();
    match reader.read_line(&mut extra) {
        Ok(0) => {}
        Ok(_) => panic!("unexpected second reply: {extra}"),
        Err(e) => assert!(
            matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            "{e}"
        ),
    }

    let stats = stats_of(router.local_addr());
    assert!(stats.get("hedges").and_then(Json::as_u64).unwrap_or(0) >= 1);
    assert!(stats.get("hedge_wins").and_then(Json::as_u64).unwrap_or(0) >= 1);

    router.join();
    stub_stop.store(true, Ordering::SeqCst);
    let _ = stub_handle.join();
    replica.request_shutdown();
    replica.join();
}

#[test]
fn unresponsive_fleet_yields_a_local_timeout_not_a_hang() {
    let (stub_addr, stub_stop, stub_handle) = start_stub();
    let router = Router::start(RouterConfig {
        replicas: vec![stub_addr.to_string()],
        ..RouterConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(router.local_addr()).unwrap();
    let start = Instant::now();
    let reply = client
        .eval("worst:d=2,n=6", "cascade:w=1", Some(100))
        .unwrap();
    assert!(!reply.ok);
    assert_eq!(reply.status, 408, "{reply:?}");
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "local expiry must fire shortly after the deadline"
    );
    router.join();
    stub_stop.store(true, Ordering::SeqCst);
    let _ = stub_handle.join();
}

#[test]
fn killing_one_of_three_replicas_mid_burst_is_invisible_to_clients() {
    let replicas: Vec<Server> = (0..3).map(|_| start_replica()).collect();
    let addrs: Vec<String> = replicas
        .iter()
        .map(|s| s.local_addr().to_string())
        .collect();
    let router = Router::start(RouterConfig {
        replicas: addrs.clone(),
        retries: 5,
        probe_interval_ms: 25,
        probe_timeout_ms: 100,
        ..RouterConfig::default()
    })
    .unwrap();

    let stream = TcpStream::connect(router.local_addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    let mut specs: Vec<String> = Vec::new();
    for n in 4..14u32 {
        specs.push(format!("worst:d=2,n={n}"));
    }
    for n in 4..10u32 {
        specs.push(format!("worst:d=3,n={n}"));
    }

    // First half of the burst, then kill a replica, then the rest —
    // without waiting for the victim's drain to finish, so the tail
    // of the burst races the death: requests dispatched at the dying
    // replica are answered 503 (absorbed and rerouted) or lose their
    // connection (orphaned and re-dispatched).  One extra spec is
    // chosen to provably rendezvous-rank the victim first, so at
    // least one request *must* take that path — the burst cannot get
    // lucky and route around the corpse entirely.
    let half = specs.len() / 2;
    for (i, spec) in specs[..half].iter().enumerate() {
        writeln!(
            writer,
            r#"{{"op":"eval","id":"r{i}","spec":"{spec}","algo":"cascade:w=1"}}"#
        )
        .unwrap();
    }
    let mut victims = replicas;
    let victim = victims.remove(1);
    victim.request_shutdown();
    specs.push(spec_owned_by(&addrs, 1));
    for (i, spec) in specs[half..].iter().enumerate() {
        let i = i + half;
        writeln!(
            writer,
            r#"{{"op":"eval","id":"r{i}","spec":"{spec}","algo":"cascade:w=1"}}"#
        )
        .unwrap();
    }

    let mut seen = std::collections::HashSet::new();
    let mut line = String::new();
    for _ in 0..specs.len() {
        line.clear();
        reader.read_line(&mut line).unwrap();
        let reply = Json::parse(line.trim()).unwrap();
        assert_eq!(
            reply.get("ok").and_then(Json::as_bool),
            Some(true),
            "client saw an error through the failover: {line}"
        );
        let id = reply.get("id").and_then(Json::as_str).unwrap().to_string();
        assert!(seen.insert(id), "duplicate reply: {line}");
    }
    assert_eq!(seen.len(), specs.len());

    let stats = stats_of(router.local_addr());
    assert!(
        stats.get("retries").and_then(Json::as_u64).unwrap_or(0) > 0,
        "failover must have rerouted something: {}",
        stats.render()
    );

    let snap = router.join();
    assert_eq!(snap.forwarded_errors, 0);
    assert_eq!(snap.shed, 0);
    assert_eq!(snap.expired, 0);
    victim.join();
    for server in victims {
        server.request_shutdown();
        server.join();
    }
}
