//! Property-based tests over *arbitrary* tree shapes (not just the
//! uniform trees of the paper's analysis): value agreement, width-0
//! equivalence, the skeleton property, pruning safety (Theorem 2), and
//! the message-passing machine, all under proptest.

use karp_zhang::msgsim::{simulate, simulate_with_processors};
use karp_zhang::sim::{parallel_alphabeta, parallel_solve, team_solve};
use karp_zhang::tree::gen::UniformSource;
use karp_zhang::tree::minimax::{minimax_value, nor_value, seq_alphabeta, seq_solve};
use karp_zhang::tree::scout::scout;
use karp_zhang::tree::skeleton::nor_skeleton;
use karp_zhang::tree::source::Permuted;
use karp_zhang::tree::sss::sss_star;
use karp_zhang::tree::ExplicitTree;
use proptest::prelude::*;

/// Arbitrary NOR tree: leaves 0/1, arity 1..=4, bounded size.
fn nor_tree() -> impl Strategy<Value = ExplicitTree> {
    let leaf = prop_oneof![Just(ExplicitTree::Leaf(0)), Just(ExplicitTree::Leaf(1))];
    leaf.prop_recursive(5, 64, 4, |inner| {
        prop::collection::vec(inner, 1..=4).prop_map(ExplicitTree::Internal)
    })
}

/// Arbitrary *binary* NOR tree (for the Section 7 machine).
fn binary_nor_tree() -> impl Strategy<Value = ExplicitTree> {
    let leaf = prop_oneof![Just(ExplicitTree::Leaf(0)), Just(ExplicitTree::Leaf(1))];
    leaf.prop_recursive(6, 96, 2, |inner| {
        prop::collection::vec(inner, 2..=2).prop_map(ExplicitTree::Internal)
    })
}

/// Arbitrary MIN/MAX tree with small integer leaves (duplicates are
/// likely, which stresses the `α ≥ β` rule).
fn minmax_tree() -> impl Strategy<Value = ExplicitTree> {
    let leaf = (-8i64..=8).prop_map(ExplicitTree::Leaf);
    leaf.prop_recursive(5, 64, 4, |inner| {
        prop::collection::vec(inner, 1..=4).prop_map(ExplicitTree::Internal)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn parallel_solve_agrees_with_ground_truth(t in nor_tree(), w in 0u32..4) {
        prop_assert_eq!(parallel_solve(&t, w, false).value, nor_value(&t));
    }

    #[test]
    fn width0_replays_sequential_exactly(t in nor_tree()) {
        let sim = parallel_solve(&t, 0, true);
        let re = seq_solve(&t, true);
        prop_assert_eq!(sim.value, re.value);
        prop_assert_eq!(sim.trace.unwrap(), re.leaf_paths.unwrap());
    }

    #[test]
    fn team_solve_agrees(t in nor_tree(), p in 1u32..6) {
        prop_assert_eq!(team_solve(&t, p, false).value, nor_value(&t));
    }

    #[test]
    fn alphabeta_agrees_with_minimax(t in minmax_tree(), w in 0u32..4) {
        prop_assert_eq!(parallel_alphabeta(&t, w, false).value, minimax_value(&t));
    }

    #[test]
    fn scout_agrees_with_minimax_on_arbitrary_trees(t in minmax_tree()) {
        prop_assert_eq!(scout(&t).value, minimax_value(&t));
    }

    #[test]
    fn sss_star_agrees_with_minimax_on_arbitrary_trees(t in minmax_tree()) {
        prop_assert_eq!(sss_star(&t).value, minimax_value(&t));
    }

    #[test]
    fn sss_star_dominance_on_arbitrary_trees(t in minmax_tree()) {
        // Stockman's dominance: SSS* never evaluates more leaves than
        // alpha-beta on the same instance and ordering.
        let sss = sss_star(&t).leaves_evaluated;
        let ab = seq_alphabeta(&t, false).leaves_evaluated;
        prop_assert!(sss <= ab, "SSS* {sss} > alpha-beta {ab}");
    }

    #[test]
    fn minmax_value_invariant_under_permutation(t in minmax_tree(), seed in 0u64..1000) {
        let p = Permuted::new(&t, seed);
        prop_assert_eq!(minimax_value(&p), minimax_value(&t));
    }

    #[test]
    fn alphabeta_width0_matches_classical(t in minmax_tree()) {
        let sim = parallel_alphabeta(&t, 0, true);
        let re = seq_alphabeta(&t, true);
        prop_assert_eq!(sim.value, re.value);
        prop_assert_eq!(sim.total_work, re.leaves_evaluated);
        prop_assert_eq!(sim.trace.unwrap(), re.leaf_paths.unwrap());
    }

    #[test]
    fn skeleton_property_on_arbitrary_nor_trees(t in nor_tree(), w in 1u32..4) {
        // Proposition 2 (proved for all NOR trees, not just uniform).
        let h = nor_skeleton(&t);
        let on_t = parallel_solve(&t, w, false).steps;
        let on_h = parallel_solve(&h, w, false).steps;
        prop_assert!(on_t <= on_h, "P_{w}(T)={on_t} > P_{w}(H_T)={on_h}");
    }

    #[test]
    fn skeleton_has_exactly_the_sequential_leaves(t in nor_tree()) {
        let st = seq_solve(&t, false);
        let h = nor_skeleton(&t);
        prop_assert_eq!(h.leaf_count(), st.leaves_evaluated);
        // Re-running sequential SOLVE on the skeleton evaluates all of it.
        let sh = seq_solve(&h, false);
        prop_assert_eq!(sh.leaves_evaluated, h.leaf_count());
        prop_assert_eq!(sh.value, st.value);
    }

    #[test]
    fn permutation_preserves_the_root_value(t in nor_tree(), seed in 0u64..1000) {
        // NOR value is order-independent, so the randomly permuted tree
        // (the Section 6 device) has the same value.
        let p = Permuted::new(&t, seed);
        prop_assert_eq!(nor_value(&p), nor_value(&t));
    }

    #[test]
    fn message_machine_is_correct_on_arbitrary_binary_trees(t in binary_nor_tree()) {
        prop_assert_eq!(simulate(&t).value, nor_value(&t));
    }

    #[test]
    fn message_machine_zone_multiplexing_is_correct(t in binary_nor_tree(), p in 1u32..5) {
        prop_assert_eq!(simulate_with_processors(&t, p).value, nor_value(&t));
    }

    #[test]
    fn total_work_bounded_by_leaf_count(t in nor_tree(), w in 0u32..4) {
        let st = parallel_solve(&t, w, false);
        prop_assert!(st.total_work <= t.leaf_count());
    }

    #[test]
    fn degree_counts_sum_to_steps(t in nor_tree(), w in 0u32..3) {
        let st = parallel_solve(&t, w, false);
        let total: u64 = st.degree_counts.iter().sum();
        prop_assert_eq!(total, st.steps);
        let work: u64 = st
            .degree_counts
            .iter()
            .enumerate()
            .map(|(k, c)| k as u64 * c)
            .sum();
        prop_assert_eq!(work, st.total_work);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn theorem2_pruning_is_safe_on_uniform_random_instances(
        seed in 0u64..10_000,
        d in 2u32..4,
        n in 1u32..6,
        w in 0u32..3,
    ) {
        // Theorem 2: the pruning process never changes the root value.
        let src = UniformSource::minmax_iid(d, n, -5, 5, seed);
        prop_assert_eq!(parallel_alphabeta(&src, w, false).value, minimax_value(&src));
    }

    #[test]
    fn processors_used_respect_width1_cap_on_uniform(seed in 0u64..10_000, n in 1u32..9) {
        let src = UniformSource::nor_iid(2, n, 0.5, seed);
        let st = parallel_solve(&src, 1, false);
        prop_assert!(st.processors_used <= n + 1);
    }
}
