//! A pinned, minimal counterexample to Proposition 5 as literally
//! stated in the paper ("P̃_w(T) ≤ P̃_w(H̃_T)", asserted without
//! proof) — the reproduction finding documented in EXPERIMENTS.md.
//!
//! The instance is a height-4 binary MIN/MAX tree with 0/1 leaves,
//! found by exhaustive search over small random instances and frozen
//! here so the finding stays reproducible byte-for-byte.

use karp_zhang::sim::parallel_alphabeta;
use karp_zhang::tree::minimax::minimax_value;
use karp_zhang::tree::skeleton::alphabeta_skeleton;
use karp_zhang::tree::text::from_text;

const WITNESS: &str = "((((1 0) (1 1)) ((1 1) (1 1))) (((0 1) (0 1)) ((1 1) (0 0))))";

#[test]
fn proposition5_is_violated_by_the_pinned_witness() {
    let t = from_text(WITNESS).expect("witness parses");
    assert!(t.is_uniform(2, 4), "witness is in M(2,4)");

    let h = alphabeta_skeleton(&t);
    let on_t = parallel_alphabeta(&t, 1, false);
    let on_h = parallel_alphabeta(&h, 1, false);

    // Both runs are correct...
    assert_eq!(on_t.value, minimax_value(&t));
    assert_eq!(
        on_h.value,
        minimax_value(&t),
        "skeleton preserves the value"
    );

    // ...but the parallel algorithm is SLOWER on T than on its skeleton,
    // contradicting Proposition 5 as stated: P̃₁(T) ≤ P̃₁(H̃_T).
    assert_eq!(on_t.steps, 3, "P̃₁(T)");
    assert_eq!(on_h.steps, 2, "P̃₁(H̃_T)");
    assert!(
        on_t.steps > on_h.steps,
        "the witness no longer violates Proposition 5 — \
         if the simulator semantics changed, update EXPERIMENTS.md"
    );
}

#[test]
fn witness_mechanism_extra_leaves_delay_finishing() {
    // The mechanism: width-1 on T evaluates speculative leaves absent
    // from H̃_T; those leaves delay nodes from *finishing*, which delays
    // the α/β sharpening the skeleton enjoys earlier.  Observable as
    // the T-run doing strictly more total work than the skeleton run.
    let t = from_text(WITNESS).unwrap();
    let h = alphabeta_skeleton(&t);
    let work_t = parallel_alphabeta(&t, 1, false).total_work;
    let work_h = parallel_alphabeta(&h, 1, false).total_work;
    assert!(
        work_t > work_h,
        "expected extra speculative work on T: {work_t} vs {work_h}"
    );
}

#[test]
fn nor_analogue_of_the_witness_does_not_violate_proposition_2() {
    // Interpreting the same 0/1 tree as a NOR tree, Proposition 2
    // (which the paper *proves*) must hold — and it does.
    use karp_zhang::sim::parallel_solve;
    use karp_zhang::tree::skeleton::nor_skeleton;
    let t = from_text(WITNESS).unwrap();
    let h = nor_skeleton(&t);
    let on_t = parallel_solve(&t, 1, false).steps;
    let on_h = parallel_solve(&h, 1, false).steps;
    assert!(on_t <= on_h, "Proposition 2 violated: {on_t} > {on_h}");
}
