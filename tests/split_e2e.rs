//! End-to-end tests for scatter-gather split evaluation: a real
//! router splitting real evals across real (and deliberately dying)
//! replicas over loopback TCP, checked against the sequential
//! evaluator.

use gt_analysis::Json;
use gt_router::{Router, RouterConfig, SplitConfig};
use gt_serve::{Client, Config, Server};
use gt_tree::split::{sub_evaluate, SubtreeSpec};
use gt_tree::GenSpec;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

fn start_replica() -> Server {
    Server::start(Config {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        ..Config::default()
    })
    .expect("replica start")
}

fn sequential_value(spec: &str) -> i64 {
    sub_evaluate(&SubtreeSpec::whole(GenSpec::parse(spec).unwrap()))
        .unwrap()
        .value
}

/// A replica that dies mid-eval: it answers health probes (so the
/// router keeps routing at it) but slams the connection shut the
/// moment a subeval arrives — the transport-death flavour of a replica
/// crash, as seen by the router's upstream reader.
fn start_dying_replica() -> (SocketAddr, Arc<AtomicBool>, JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    listener.set_nonblocking(true).unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let handle = std::thread::spawn(move || {
        let mut conns: Vec<JoinHandle<()>> = Vec::new();
        while !stop2.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let stop3 = Arc::clone(&stop2);
                    conns.push(std::thread::spawn(move || dying_conn(stream, stop3)));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }
        for c in conns {
            let _ = c.join();
        }
    });
    (addr, stop, handle)
}

fn dying_conn(stream: TcpStream, stop: Arc<AtomicBool>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    while !stop.load(Ordering::SeqCst) {
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {
                if line.contains("\"health\"") {
                    let _ = writer.write_all(
                        b"{\"ok\":true,\"uptime_s\":1,\"queued\":0,\"inflight\":0,\"draining\":false}\n",
                    );
                    line.clear();
                } else {
                    // An eval or subeval: die with it in flight.
                    return;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => return,
        }
    }
}

#[test]
fn distributed_split_matches_sequential_across_three_replicas() {
    let replicas: Vec<Server> = (0..3).map(|_| start_replica()).collect();
    let router = Router::start(RouterConfig {
        replicas: replicas
            .iter()
            .map(|r| r.local_addr().to_string())
            .collect(),
        split: SplitConfig {
            cost_threshold: Some(16),
            ..SplitConfig::default()
        },
        ..RouterConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(router.local_addr()).unwrap();

    // Both fold disciplines: NOR short-circuit solve and windowed α-β.
    let specs = [
        "worst:d=2,n=10",
        "crit:d=3,n=6,seed=2",
        "allones:d=3,n=6",
        "minmax:d=3,n=7,seed=4",
        "minmax-best:d=3,n=7,value=5",
        "minmax-worst:d=2,n=8",
    ];
    for spec in specs {
        let expected = sequential_value(spec);
        let reply = client.eval(spec, "cascade:w=1", None).unwrap();
        assert!(reply.ok, "{spec}: {reply:?}");
        assert_eq!(reply.value(), Some(expected), "{spec}");
        assert!(
            reply.body.get("split").is_some(),
            "{spec} should have split across the fleet: {reply:?}"
        );
    }

    let snap = router.join();
    assert_eq!(snap.splits_total, specs.len() as u64, "{snap:?}");
    assert!(
        snap.subevals_dispatched >= 2 * specs.len() as u64,
        "{snap:?}"
    );
    // Fan-out reached more than one replica.
    let used = snap.replicas.iter().filter(|r| r.sent > 0).count();
    assert!(used >= 2, "split work stayed on {used} replica(s)");
    for server in replicas {
        server.request_shutdown();
        server.join();
    }
}

#[test]
fn split_survives_a_replica_dying_mid_eval() {
    let live: Vec<Server> = (0..2).map(|_| start_replica()).collect();
    let (dying_addr, dying_stop, dying_handle) = start_dying_replica();
    let mut addrs: Vec<String> = live.iter().map(|r| r.local_addr().to_string()).collect();
    addrs.push(dying_addr.to_string());
    let router = Router::start(RouterConfig {
        replicas: addrs,
        split: SplitConfig {
            cost_threshold: Some(16),
            ..SplitConfig::default()
        },
        ..RouterConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(router.local_addr()).unwrap();

    // Across this many plans, rendezvous hashing is all but certain to
    // route some subevals at the dying replica; every one of them must
    // be transparently re-dispatched to a live replica.
    for seed in 0..12 {
        let spec = format!("minmax:d=3,n=7,seed={seed}");
        let expected = sequential_value(&spec);
        let reply = client.eval(&spec, "cascade:w=1", None).unwrap();
        assert!(reply.ok, "{spec}: {reply:?}");
        assert_eq!(reply.value(), Some(expected), "{spec}");
    }

    let snap = router.join();
    assert!(
        snap.subevals_retried > 0,
        "no subeval ever hit the dying replica: {snap:?}"
    );
    dying_stop.store(true, Ordering::SeqCst);
    let _ = dying_handle.join();
    for server in live {
        server.request_shutdown();
        server.join();
    }
}

#[test]
fn naive_split_discards_in_flight_losers_without_aborting() {
    let router = Router::start(RouterConfig {
        spawn: 3,
        split: SplitConfig {
            cost_threshold: Some(8),
            naive: true,
            max_depth: 3,
            ..SplitConfig::default()
        },
        ..RouterConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(router.local_addr()).unwrap();

    // allones under naive dispatch: every child of every level goes
    // out at once, and NOR cuts on the first nonzero arrival — the
    // dispatched siblings it obsoletes keep running (no abort is ever
    // sent) and their late replies are discarded on arrival.
    let reply = client.eval("allones:d=4,n=6", "cascade:w=1", None).unwrap();
    assert!(reply.ok, "{reply:?}");
    assert_eq!(reply.value(), Some(1));

    // The losers land after the answer; wait for them.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let snap = router.snapshot();
        if snap.subevals_discarded_on_cutoff > 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no in-flight loser was ever discarded: {snap:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let snap = router.join();
    assert!(snap.subevals_discarded_on_cutoff > 0, "{snap:?}");
    assert_eq!(snap.subevals_skipped_on_cutoff, 0, "naive never skips");
}

#[test]
fn windowed_split_does_less_fleet_work_than_naive() {
    // A best-ordered minmax tree is maximally α-β friendly: the
    // eldest-first plan's narrowed windows prune inside every sibling
    // subeval, while the naive plan evaluates each subtree under the
    // full window.  Fresh fleets per mode so caches cannot cross-feed.
    let spec = "minmax-best:d=3,n=7,value=9";
    let mut work = Vec::new();
    for naive in [false, true] {
        let router = Router::start(RouterConfig {
            spawn: 3,
            split: SplitConfig {
                cost_threshold: Some(27),
                naive,
                max_depth: 4,
                ..SplitConfig::default()
            },
            ..RouterConfig::default()
        })
        .unwrap();
        let mut client = Client::connect(router.local_addr()).unwrap();
        let reply = client.eval(spec, "cascade:w=1", None).unwrap();
        assert!(reply.ok, "{reply:?}");
        assert_eq!(reply.value(), Some(9));
        work.push(reply.leaves().expect("work.leaves"));
        router.join();
    }
    assert!(
        work[0] < work[1],
        "windowed dispatch should beat naive: windowed={} naive={}",
        work[0],
        work[1]
    );
}

/// One subeval span's replica-side engine interval, rebased onto the
/// router's trace clock (span start + replica-relative stage offset).
struct SubSpan {
    replica: String,
    engine: Option<(u64, u64)>,
    leaves: u64,
}

fn sub_spans_of(trace: &Json) -> Vec<SubSpan> {
    let spans = match trace.get("spans") {
        Some(Json::Array(spans)) => spans,
        other => panic!("spans not an array: {other:?}"),
    };
    spans
        .iter()
        .filter(|s| {
            matches!(
                s.get("kind").and_then(Json::as_str),
                Some("subeval") | Some("redispatch")
            ) && s.get("status").and_then(Json::as_str) == Some("ok")
        })
        .map(|s| {
            let start = s.get("start_us").and_then(Json::as_u64).unwrap_or(0);
            let stages = s.get("stages");
            let stage = |key: &str| stages.and_then(|st| st.get(key)).and_then(Json::as_u64);
            SubSpan {
                replica: s
                    .get("replica")
                    .and_then(Json::as_str)
                    .expect("replica detail on a settled subeval span")
                    .to_string(),
                engine: match (stage("engine_start_us"), stage("engine_end_us")) {
                    (Some(a), Some(b)) => Some((start + a, start + b)),
                    _ => None,
                },
                leaves: s
                    .get("work")
                    .and_then(|w| w.get("leaves"))
                    .and_then(Json::as_u64)
                    .expect("work detail on a settled subeval span"),
            }
        })
        .collect()
}

#[test]
fn split_trace_shows_parallel_replica_work_that_sums_to_the_reply() {
    let router = Router::start(RouterConfig {
        spawn: 3,
        split: SplitConfig {
            // Naive dispatch of a worst-ordered tree: every sibling
            // goes out at once, no cutoff ever discards or skips, so
            // the trace's subeval spans are the complete work ledger.
            cost_threshold: Some(64),
            naive: true,
            max_depth: 2,
            ..SplitConfig::default()
        },
        ..RouterConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(router.local_addr()).unwrap();

    // A client-pinned trace context always wins over sampling, so the
    // tree is fetchable by a name the test chose.
    let spec = "minmax-worst:d=6,n=8";
    let expected = sequential_value(spec);
    let reply = client
        .send_line(&format!(
            r#"{{"op":"eval","id":"s1","spec":"{spec}","algo":"cascade:w=1","trace":{{"trace_id":"e2e-split-trace"}}}}"#
        ))
        .unwrap();
    assert!(reply.ok, "{reply:?}");
    assert_eq!(reply.value(), Some(expected));
    assert!(reply.body.get("split").is_some(), "{reply:?}");
    assert_eq!(reply.trace_id(), Some("e2e-split-trace"), "{reply:?}");
    let total_leaves = reply.leaves().expect("work.leaves on the split reply");

    let fetched = client
        .send_line(r#"{"op":"trace","id":"s2","trace":{"trace_id":"e2e-split-trace"}}"#)
        .unwrap();
    assert!(fetched.ok, "{fetched:?}");
    let trace = fetched.body.get("trace").expect("trace tree");
    let subs = sub_spans_of(trace);
    assert!(
        subs.len() >= 2,
        "want >=2 subeval spans, got {}",
        subs.len()
    );

    // The work really was distributed: spans on >=2 distinct replicas.
    let replicas: std::collections::HashSet<&str> =
        subs.iter().map(|s| s.replica.as_str()).collect();
    assert!(
        replicas.len() >= 2,
        "all spans on one replica: {replicas:?}"
    );

    // The spans are the complete work ledger: their replica-reported
    // leaf counters sum to the reply's total.
    let span_leaves: u64 = subs.iter().map(|s| s.leaves).sum();
    assert_eq!(span_leaves, total_leaves);

    // And the work was concurrent: some pair of engine intervals
    // (rebased onto the router's clock) overlaps in wall time.
    let engines: Vec<(u64, u64)> = subs.iter().filter_map(|s| s.engine).collect();
    assert!(
        engines.len() >= 2,
        "engine stages missing: {}",
        engines.len()
    );
    let overlap = engines
        .iter()
        .enumerate()
        .any(|(i, a)| engines[i + 1..].iter().any(|b| a.0 < b.1 && b.0 < a.1));
    assert!(overlap, "no two engine intervals overlapped: {engines:?}");

    router.join();
}

#[test]
fn subeval_replies_annotate_the_owning_replica() {
    let router = Router::start(RouterConfig {
        spawn: 3,
        ..RouterConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(router.local_addr()).unwrap();

    // A client-issued subeval routes by the window-free subtree key:
    // the same subtree lands on the same replica, window or no window.
    let spec = "minmax:d=3,n=6,seed=8";
    let wide = client.subeval(spec, "1", i64::MIN, i64::MAX, None).unwrap();
    assert!(wide.ok, "{wide:?}");
    let owner = wide
        .body
        .get("replica")
        .and_then(Json::as_str)
        .expect("replica annotation")
        .to_string();
    let narrow = client.subeval(spec, "1", 0, 8, None).unwrap();
    assert!(narrow.ok, "{narrow:?}");
    assert_eq!(
        narrow.body.get("replica").and_then(Json::as_str),
        Some(owner.as_str()),
        "window must not move a subtree off its replica"
    );
    router.join();
}
