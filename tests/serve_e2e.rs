//! End-to-end loopback tests for the gt-serve evaluation service: a
//! real listener, real sockets, and the full request lifecycle —
//! happy path, malformed input, deadlines, shedding, caching,
//! single-flight coalescing, pipelining, drain.

use gt_serve::{Client, Config, Request, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn start(config: Config) -> Server {
    Server::start(config).expect("bind loopback")
}

#[test]
fn happy_path_returns_value_and_metrics() {
    let server = start(Config::default());
    let mut client = Client::connect(server.local_addr()).unwrap();

    let r = client.ping().unwrap();
    assert!(r.ok);

    // worst:d=2,n=6 forces all 64 leaves under sequential NOR solve.
    let r = client.eval("worst:d=2,n=6", "seq-solve", None).unwrap();
    assert!(r.ok, "error: {:?}", r.error);
    let work = r.body.get("work").expect("work object");
    assert_eq!(
        work.get("leaves").and_then(gt_analysis::Json::as_u64),
        Some(64)
    );
    assert_eq!(
        work.get("max_width").and_then(gt_analysis::Json::as_u64),
        Some(1),
        "sequential solve uses one processor"
    );
    assert!(!r.cached());
    let seq_value = r.value().unwrap();

    // Every cancellable engine agrees with the sequential baseline.
    for algo in ["parallel-solve:w=2", "round:w=2", "cascade:w=2"] {
        let r = client.eval("worst:d=2,n=6", algo, None).unwrap();
        assert!(r.ok, "{algo}: {:?}", r.error);
        assert_eq!(r.value().unwrap(), seq_value, "{algo}");
    }

    client.shutdown_server().unwrap();
    let stats = server.join();
    assert_eq!(stats.ok, 4);
    assert_eq!(stats.evaluated, 4);
    assert_eq!(stats.connections, 1);
}

#[test]
fn malformed_request_gets_error_reply_and_connection_survives() {
    let server = start(Config::default());
    let mut client = Client::connect(server.local_addr()).unwrap();

    for bad in [
        "this is not json",
        "[1,2,3]",
        r#"{"op":"frobnicate"}"#,
        r#"{"op":"eval"}"#,
        r#"{"spec":"nope:n=4"}"#,
        r#"{"spec":"worst:n=4","algo":"quantum"}"#,
    ] {
        let r = client.send_line(bad).unwrap();
        assert!(!r.ok, "{bad} should fail");
        assert_eq!(r.status, 400, "{bad}");
    }

    // The same connection still serves good requests.
    let r = client.eval("worst:d=2,n=4", "seq-solve", None).unwrap();
    assert!(r.ok);

    client.shutdown_server().unwrap();
    let stats = server.join();
    assert_eq!(stats.bad_request, 6);
    assert_eq!(stats.ok, 1);
}

#[test]
fn deadline_timeout_replies_promptly_and_cancels_the_engine() {
    let server = start(Config {
        workers: 1,
        ..Config::default()
    });
    let mut client = Client::connect(server.local_addr()).unwrap();

    // 2^32 leaves with no pruning: far more work than 100ms allows.
    let started = Instant::now();
    let r = client
        .eval("worst:d=2,n=32", "cascade:w=4", Some(100))
        .unwrap();
    let elapsed = started.elapsed();
    assert!(!r.ok);
    assert_eq!(r.status, 408);
    assert_eq!(r.code.as_deref(), Some("timeout"));
    assert!(
        elapsed < Duration::from_secs(5),
        "timeout reply took {elapsed:?}"
    );

    // The worker observed the cancellation flag and is free again:
    // a small request on the same (sole) worker completes fine.
    let r = client
        .eval("worst:d=2,n=6", "cascade:w=1", Some(5_000))
        .unwrap();
    assert!(r.ok, "worker still wedged: {:?}", r.error);

    client.shutdown_server().unwrap();
    let stats = server.join();
    assert_eq!(stats.timeout, 1);
    assert_eq!(stats.ok, 1);
}

#[test]
fn full_queue_sheds_with_busy() {
    let server = start(Config {
        workers: 1,
        queue_depth: 1,
        cache_capacity: 0,
        ..Config::default()
    });
    let addr = server.local_addr();

    // Two slow evals with *distinct* canonical keys (identical ones
    // would coalesce instead of occupying capacity): one pins the
    // only worker, the other takes the only queue slot.  Write raw
    // lines without waiting for replies.
    let mut busy_conns: Vec<(TcpStream, BufReader<TcpStream>)> = [31u32, 32]
        .iter()
        .map(|n| {
            let slow =
                format!(r#"{{"spec":"worst:d=2,n={n}","algo":"cascade:w=1","deadline_ms":4000}}"#);
            let s = TcpStream::connect(addr).unwrap();
            let reader = BufReader::new(s.try_clone().unwrap());
            let mut w = s.try_clone().unwrap();
            writeln!(w, "{slow}").unwrap();
            w.flush().unwrap();
            (s, reader)
        })
        .collect();

    // Offer short-deadline evals (a third distinct key) until one is
    // shed.  The interleaving with the raw writes above is
    // scheduler-dependent, but the loop converges fast: an offer that
    // sneaks into the queue times out (dooming its flight), yet still
    // occupies its slot until the (pinned) worker reaps it, so the
    // next offer leads a fresh flight and must find the queue full.
    let mut client = Client::connect(addr).unwrap();
    let mut shed = None;
    for _ in 0..20 {
        let r = client
            .eval("worst:d=2,n=30", "cascade:w=1", Some(200))
            .unwrap();
        assert!(!r.ok, "request must shed or time out under a pinned worker");
        if r.status == 429 {
            shed = Some(r);
            break;
        }
        assert_eq!(r.status, 408, "unexpected failure: {:?}", r.error);
    }
    let shed = shed.expect("no offer was shed while worker and queue were full");
    assert_eq!(shed.code.as_deref(), Some("busy"));

    // The slow requests resolve by their deadlines: 408 if they made
    // it into the system, 429 if an offer displaced one of them.
    for (_, reader) in busy_conns.iter_mut() {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(
            line.contains("\"status\":408") || line.contains("\"status\":429"),
            "got: {line}"
        );
    }

    client.shutdown_server().unwrap();
    let stats = server.join();
    assert!(stats.shed >= 1, "shed={}", stats.shed);
    assert!(stats.timeout >= 1, "timeout={}", stats.timeout);
    assert_eq!(stats.ok, 0);
}

#[test]
fn concurrent_identical_cold_requests_coalesce_into_one_run() {
    let server = start(Config {
        workers: 4,
        ..Config::default()
    });
    let addr = server.local_addr();

    // All clients connect first, then fire the same cold request at
    // once.  The workload runs ~1s, so every request is in flight
    // long before the single engine run completes: one leader, N-1
    // coalesced followers, no cache involvement.
    const N: usize = 8;
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(N));
    let handles: Vec<_> = (0..N)
        .map(|_| {
            let barrier = std::sync::Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                barrier.wait();
                c.eval("worst:d=2,n=24", "cascade:w=1", Some(30_000))
                    .unwrap()
            })
        })
        .collect();
    let replies: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let mut coalesced = 0;
    let mut values = std::collections::HashSet::new();
    for r in &replies {
        assert!(r.ok, "{:?}", r.error);
        assert!(!r.cached(), "burst arrived before anything was cached");
        values.insert(r.value().unwrap());
        if r.coalesced() {
            coalesced += 1;
        }
    }
    assert_eq!(values.len(), 1, "every waiter got the same result");
    assert_eq!(coalesced, N - 1, "all but the leader coalesced");

    let mut client = Client::connect(addr).unwrap();
    client.shutdown_server().unwrap();
    let stats = server.join();
    assert_eq!(stats.evaluated, 1, "exactly one engine run for the burst");
    assert_eq!(stats.coalesced_hits, (N - 1) as u64);
    assert_eq!(stats.cache_hits, 0);
    assert_eq!(stats.cache_misses, N as u64);
    assert_eq!(stats.ok, N as u64);
}

#[test]
fn pipelined_connection_replies_out_of_order_with_id_echo() {
    let server = start(Config {
        workers: 2,
        ..Config::default()
    });
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Two requests on one connection without reading in between: a
    // slow one that will time out, then a fast one.  The fast reply
    // must overtake the slow request's timeout.
    let slow = Request {
        id: Some("slow".into()),
        op: gt_serve::Op::Eval,
        spec: Some("worst:d=2,n=32".into()),
        algo: Some("cascade:w=1".into()),
        deadline_ms: Some(600),
        ..Default::default()
    };
    let fast = Request {
        id: Some("fast".into()),
        op: gt_serve::Op::Eval,
        spec: Some("worst:d=2,n=6".into()),
        algo: Some("seq-solve".into()),
        deadline_ms: Some(5_000),
        ..Default::default()
    };
    client.write_request(&slow).unwrap();
    client.write_request(&fast).unwrap();

    let first = client.read_response().unwrap();
    assert_eq!(
        first.id.as_deref(),
        Some("fast"),
        "fast reply must not wait behind the slow request"
    );
    assert!(first.ok, "{:?}", first.error);
    let second = client.read_response().unwrap();
    assert_eq!(second.id.as_deref(), Some("slow"));
    assert_eq!(second.status, 408);

    client.shutdown_server().unwrap();
    let stats = server.join();
    assert_eq!(stats.ok, 1);
    assert_eq!(stats.timeout, 1);
}

#[test]
fn repeated_requests_hit_the_cache() {
    let server = start(Config::default());
    let mut client = Client::connect(server.local_addr()).unwrap();

    let first = client
        .eval("crit:d=2,n=8,seed=5", "round:w=2", None)
        .unwrap();
    assert!(first.ok && !first.cached());

    // Same workload, textually different spec: canonicalization folds
    // it onto the same cache entry.
    let second = client
        .eval("crit: n=8 ,d=2,seed=5", "round:w=2", None)
        .unwrap();
    assert!(second.ok);
    assert!(second.cached(), "expected a cache hit");
    assert_eq!(second.value(), first.value());

    // A different algorithm is a different key.
    let third = client
        .eval("crit:d=2,n=8,seed=5", "cascade:w=2", None)
        .unwrap();
    assert!(third.ok && !third.cached());
    assert_eq!(third.value(), first.value());

    client.shutdown_server().unwrap();
    let stats = server.join();
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 2);
    assert_eq!(stats.evaluated, 2);
}

#[test]
fn stats_request_reflects_traffic() {
    let server = start(Config::default());
    let mut client = Client::connect(server.local_addr()).unwrap();

    client.eval("worst:d=2,n=4", "seq-solve", None).unwrap();
    client.eval("worst:d=2,n=4", "seq-solve", None).unwrap();
    let _ = client.send_line("garbage");

    let r = client.stats().unwrap();
    assert!(r.ok);
    let stats = r.body.get("stats").expect("stats object");
    let field = |k: &str| stats.get(k).and_then(gt_analysis::Json::as_u64).unwrap();
    assert_eq!(field("ok"), 2);
    assert_eq!(field("cache_hits"), 1);
    assert_eq!(field("bad_request"), 1);
    assert_eq!(field("latency_count"), 2);
    assert!(stats.get("latency_p50_us").is_some());

    client.shutdown_server().unwrap();
    server.join();
}

#[test]
fn stage_accounting_sums_to_end_to_end_latency() {
    // The tracing acceptance bar: on loopback, for cold evals, the
    // stage means must account for the e2e mean —
    // queue_wait + batch_wait + engine + write ≈ latency, within 15%.
    let server = start(Config {
        workers: 2,
        cache_capacity: 0, // all cold: the e2e histogram sees only dispatched evals
        ..Config::default()
    });
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Distinct seeds keep every request cold; n=16 makes the engine
    // stage dominate scheduling noise (65k leaves each).
    for seed in 0..8 {
        let spec = format!("worst:d=2,n=16,seed={seed}");
        let r = client.eval(&spec, "seq-solve", None).unwrap();
        assert!(r.ok, "{:?}", r.error);
    }

    let r = client.stats().unwrap();
    let stats = r.body.get("stats").expect("stats object");
    let e2e_mean = stats
        .get("latency_mean_us")
        .and_then(gt_analysis::Json::as_f64)
        .expect("e2e latency mean");
    let stages = stats
        .get("stages")
        .and_then(|s| s.get("seq-solve"))
        .expect("seq-solve stage snapshot");
    let stage_mean = |name: &str| {
        stages
            .get(name)
            .and_then(|h| h.get("mean_us"))
            .and_then(gt_analysis::Json::as_f64)
            .unwrap_or_else(|| panic!("stage {name} has no mean"))
    };
    let sum = stage_mean("queue_wait")
        + stage_mean("batch_wait")
        + stage_mean("engine")
        + stage_mean("write");
    let ratio = sum / e2e_mean;
    assert!(
        (0.85..=1.15).contains(&ratio),
        "stage sum {sum:.0}us vs e2e mean {e2e_mean:.0}us (ratio {ratio:.3})"
    );

    // The engine work counters made it out of the engines and into the
    // per-algorithm aggregates: 8 runs × 65536 leaves.
    let work = stages.get("work").expect("work aggregates");
    let counter = |k: &str| work.get(k).and_then(gt_analysis::Json::as_u64).unwrap();
    assert_eq!(counter("evals"), 8);
    assert_eq!(counter("leaves"), 8 * 65_536);
    assert_eq!(counter("max_width"), 1);

    client.shutdown_server().unwrap();
    server.join();
}

#[test]
fn trace_op_returns_stamped_traces_and_retains_failures() {
    let server = start(Config {
        workers: 1,
        trace_ring: 32,
        slow_us: 1_000_000,
        ..Config::default()
    });
    let mut client = Client::connect(server.local_addr()).unwrap();

    // A cold eval, a cache hit, and a timeout.
    let r = client.eval("worst:d=2,n=6", "seq-solve", None).unwrap();
    assert!(r.ok);
    let r = client.eval("worst:d=2,n=6", "seq-solve", None).unwrap();
    assert!(r.ok && r.cached());
    let r = client
        .eval("worst:d=2,n=32", "cascade:w=1", Some(100))
        .unwrap();
    assert_eq!(r.status, 408);

    let r = client
        .send(&Request {
            id: Some("t".into()),
            op: gt_serve::Op::Trace,
            n: Some(16),
            ..Default::default()
        })
        .unwrap();
    assert!(r.ok, "{:?}", r.error);
    let traces = r
        .body
        .get("traces")
        .and_then(gt_analysis::Json::as_array)
        .expect("traces array");
    assert!(traces.len() >= 3, "got {} traces", traces.len());

    // Every entry round-trips through the published record shape.
    let parsed: Vec<gt_serve::TraceRecord> = traces
        .iter()
        .map(|t| gt_serve::TraceRecord::from_json(t).expect("parse trace"))
        .collect();

    let cold = parsed
        .iter()
        .find(|t| t.status == "ok" && !t.cached)
        .expect("cold ok trace");
    assert_eq!(cold.algo, "seq-solve");
    // The full timeline was stamped, in order.
    let enq = cold.enqueue_us.expect("enqueue stamp");
    let dis = cold.dispatch_us.expect("dispatch stamp");
    let es = cold.engine_start_us.expect("engine start stamp");
    let ee = cold.engine_end_us.expect("engine end stamp");
    assert!(cold.parse_us <= cold.probe_us && cold.probe_us <= enq);
    assert!(enq <= dis && dis <= es && es <= ee && ee <= cold.latency_us);
    assert_eq!(cold.work.as_ref().map(|w| w.work), Some(64));

    let hit = parsed.iter().find(|t| t.cached).expect("cache-hit trace");
    assert_eq!(hit.status, "ok");
    assert_eq!(hit.dispatch_us, None, "hits never reach the executor");

    let timed_out = parsed
        .iter()
        .find(|t| t.status == "timeout")
        .expect("timeout trace retained");
    assert_eq!(timed_out.algo, "cascade");

    client.shutdown_server().unwrap();
    server.join();
}

#[test]
fn metrics_endpoint_serves_prometheus_exposition() {
    let server = start(Config {
        metrics_addr: Some("127.0.0.1:0".into()),
        ..Config::default()
    });
    let metrics_addr = server
        .metrics_listener_addr()
        .expect("metrics listener bound");
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.eval("worst:d=2,n=6", "cascade:w=2", None).unwrap();

    let scrape = |path: &str| {
        let mut s = TcpStream::connect(metrics_addr).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut body = String::new();
        use std::io::Read as _;
        s.read_to_string(&mut body).unwrap();
        body
    };
    let first = scrape("/metrics");
    assert!(first.starts_with("HTTP/1.1 200 OK\r\n"));
    assert!(first.contains("text/plain; version=0.0.4"));
    assert!(first.contains("# TYPE gtserve_requests_total counter"));
    assert!(first.contains("# TYPE gtserve_latency_seconds histogram"));
    assert!(
        first.contains("gtserve_stage_latency_seconds_bucket{algo=\"cascade\",stage=\"engine\"")
    );
    assert!(first.contains("gtserve_engine_work_total{algo=\"cascade\",counter=\"leaves\"} "));
    assert!(first.contains("gtserve_cache_shard_entries{shard=\"0\"}"));
    assert!(first.contains("gtserve_executor_queued"));
    assert!(first.contains("gtserve_build_info{version="));

    let requests_total = |body: &str| -> u64 {
        body.lines()
            .find(|l| l.starts_with("gtserve_requests_total "))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .expect("gtserve_requests_total sample")
    };
    let before = requests_total(&first);
    client.eval("worst:d=2,n=6", "cascade:w=2", None).unwrap();
    let second = scrape("/metrics");
    assert!(
        requests_total(&second) > before,
        "counters must be monotone across scrapes"
    );

    client.shutdown_server().unwrap();
    server.join();
    // join() tears the listener down with the rest of the server.
    assert!(TcpStream::connect(metrics_addr).is_err() || scrape_is_dead(metrics_addr));
}

/// After shutdown the metrics port may still accept briefly on some
/// platforms; a dead listener never answers.
fn scrape_is_dead(addr: std::net::SocketAddr) -> bool {
    let Ok(mut s) = TcpStream::connect(addr) else {
        return true;
    };
    let _ = s.set_read_timeout(Some(Duration::from_millis(200)));
    let _ = write!(s, "GET /metrics HTTP/1.1\r\n\r\n");
    let mut buf = [0u8; 1];
    use std::io::Read as _;
    !matches!(s.read(&mut buf), Ok(n) if n > 0)
}

/// Threads in this process, from the kernel's point of view.  Linux
/// only — exactly where the regression matters for the benchmarks.
#[cfg(target_os = "linux")]
fn process_thread_count() -> usize {
    std::fs::read_dir("/proc/self/task").unwrap().count()
}

/// Regression test for the unbounded-thread model this service started
/// with: every cache miss used to get a detached `thread::spawn`, so a
/// cold storm of distinct keys meant one OS thread per in-flight
/// request.  With the shared executor the census is fixed — one
/// acceptor, one reader per connection, `workers` eval threads, and one
/// reaper — no matter how many misses are queued.
#[cfg(target_os = "linux")]
#[test]
fn cold_storm_keeps_a_fixed_thread_census() {
    const CONNS: usize = 32;
    const PER_CONN: usize = 4;

    let before = process_thread_count();
    let server = start(Config {
        workers: 2,
        queue_depth: 256,
        cache_capacity: 0,
        ..Config::default()
    });
    let addr = server.local_addr();

    // Pipeline distinct-key slow evals on every connection without
    // reading replies: 128 cold misses in flight at once.  Each spec
    // carries a unique (ignored-by-worst) seed so canonicalization
    // cannot fold them together.
    let conns: Vec<TcpStream> = (0..CONNS)
        .map(|c| {
            let s = TcpStream::connect(addr).unwrap();
            let mut w = s.try_clone().unwrap();
            for i in 0..PER_CONN {
                let salt = c * PER_CONN + i;
                writeln!(
                    w,
                    r#"{{"spec":"worst:d=2,n=26,seed={salt}","algo":"cascade:w=1","deadline_ms":2000}}"#
                )
                .unwrap();
            }
            w.flush().unwrap();
            s
        })
        .collect();

    // Give the readers time to dispatch everything into the executor.
    std::thread::sleep(Duration::from_millis(300));
    let during = process_thread_count();
    let spawned = during.saturating_sub(before);

    // Budget: acceptor + one reader per connection + 2 eval workers +
    // reaper, plus generous slack for the *other* e2e tests sharing
    // this process under the parallel test harness.  The old per-miss
    // model would spawn 128 eval threads on top of the readers and sit
    // well past 160.
    let budget = CONNS + 2 + 2 + 64;
    assert!(
        spawned <= budget,
        "thread census grew by {spawned} (budget {budget}): \
         eval concurrency is no longer bounded by the worker pool"
    );

    // Closing the sockets lets the readers drain; queued jobs resolve
    // via the reaper at their 2s deadlines.
    drop(conns);
    let mut client = Client::connect(addr).unwrap();
    client.shutdown_server().unwrap();
    let stats = server.join();
    assert_eq!(stats.ok, 0);
    assert!(
        stats.timeout + stats.shed >= (CONNS * PER_CONN) as u64,
        "every in-flight miss must resolve: timeout={} shed={}",
        stats.timeout,
        stats.shed
    );
}

#[test]
fn graceful_shutdown_drains_in_flight_work() {
    let server = start(Config {
        workers: 2,
        ..Config::default()
    });
    let addr = server.local_addr();

    // A request slow enough to still be running when shutdown lands,
    // but with a deadline so the test is bounded either way.
    let worker = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.eval("worst:d=2,n=24", "cascade:w=2", Some(10_000))
            .unwrap()
    });
    std::thread::sleep(Duration::from_millis(100));

    let mut client = Client::connect(addr).unwrap();
    let r = client.shutdown_server().unwrap();
    assert!(r.ok);
    assert_eq!(
        r.body.get("draining").and_then(gt_analysis::Json::as_bool),
        Some(true)
    );

    // The in-flight eval completes (drain, not abort).
    let reply = worker.join().unwrap();
    assert!(reply.ok, "in-flight eval was dropped: {:?}", reply.error);

    let stats = server.join();
    assert_eq!(stats.ok, 1);

    // The listener is gone: new connections fail (or die immediately).
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(s) => {
            let mut r = BufReader::new(s);
            let mut line = String::new();
            assert_eq!(r.read_line(&mut line).unwrap_or(0), 0);
        }
    }
}

#[test]
fn deadline_kills_every_thread_of_a_parallel_grant() {
    let server = start(Config {
        workers: 4,
        // Every par-* eval fans out across the pool.
        par_threshold: 1,
        par_max_workers: 4,
        ..Config::default()
    });
    let mut client = Client::connect(server.local_addr()).unwrap();

    // 2^30 leaves in worst ordering: alpha-beta prunes nothing, so no
    // grant width finishes inside 100ms.  The reaper flips the
    // flight's one cancel flag; every pool worker running the grant
    // polls it and aborts.
    let started = Instant::now();
    let r = client
        .eval("minmax-worst:d=2,n=30,seed=1", "par-alphabeta", Some(100))
        .unwrap();
    let elapsed = started.elapsed();
    assert!(!r.ok);
    assert_eq!(r.status, 408);
    assert_eq!(r.code.as_deref(), Some("timeout"));
    assert!(
        elapsed < Duration::from_secs(5),
        "timeout reply took {elapsed:?}"
    );

    // All granted threads returned to the pool: a fresh parallel eval
    // completes and agrees with the sequential engine.
    let spec = "minmax:d=6,n=2,lo=-9,hi=9,seed=3";
    let par = client.eval(spec, "par-alphabeta", Some(5_000)).unwrap();
    assert!(par.ok, "pool wedged after cancel: {:?}", par.error);
    let seq = client.eval(spec, "alphabeta", Some(5_000)).unwrap();
    assert!(seq.ok);
    assert_eq!(par.value(), seq.value());

    client.shutdown_server().unwrap();
    let stats = server.join();
    assert_eq!(stats.timeout, 1);
    assert_eq!(stats.ok, 2);
    assert!(
        stats.par_grants >= 1,
        "the big eval must have drawn a multi-thread grant"
    );
}

/// Wait (bounded) until reads on `s` report EOF or a hard error,
/// discarding any buffered replies along the way.
fn wait_for_close(s: &TcpStream, bound: Duration) -> bool {
    use std::io::Read;
    s.set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    let started = Instant::now();
    let mut buf = [0u8; 4096];
    while started.elapsed() < bound {
        match (&mut (&*s)).read(&mut buf) {
            Ok(0) => return true,
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => return true,
        }
    }
    false
}

/// Slowloris, read side: a client that dribbles bytes of a request
/// line it never finishes must not hold a connection (or its pooled
/// buffers) forever — `--conn-idle-timeout` closes it, because only a
/// *completed* request line refreshes the idle clock.
#[test]
fn dribbling_slowloris_is_closed_at_the_idle_timeout() {
    let server = start(Config {
        conn_idle_timeout_ms: Some(250),
        ..Config::default()
    });
    let addr = server.local_addr();

    let s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_millis(20))).unwrap();
    let mut w = s.try_clone().unwrap();
    let started = Instant::now();
    let mut closed = false;
    // One byte of an unfinished line every 50ms, forever (bounded).
    while started.elapsed() < Duration::from_secs(5) {
        use std::io::Read;
        if w.write_all(b"{").is_err() || w.flush().is_err() {
            closed = true;
            break;
        }
        let mut buf = [0u8; 64];
        match (&mut (&s)).read(&mut buf) {
            Ok(0) => {
                closed = true;
                break;
            }
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => {
                closed = true;
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(closed, "dribbler outlived the idle timeout");

    // A well-behaved client on the same server is untouched.
    let mut client = Client::connect(addr).unwrap();
    let r = client.eval("worst:d=2,n=4", "seq-solve", None).unwrap();
    assert!(r.ok);
    client.shutdown_server().unwrap();
    let stats = server.join();
    assert!(
        stats.idle_closed >= 1,
        "idle_closed = {}",
        stats.idle_closed
    );
    assert_eq!(stats.open_conns, 0);
}

/// Slowloris, write side: a client that floods requests but never
/// drains its replies stalls against the outbound-queue bound (the
/// server defers its reads at the high-water mark rather than
/// buffering without limit) and is eventually reaped by the idle
/// timeout since no further request line completes.
#[test]
fn never_draining_reader_is_bounded_and_reaped() {
    let server = start(Config {
        workers: 2,
        conn_idle_timeout_ms: Some(300),
        ..Config::default()
    });
    let addr = server.local_addr();

    // Prime the cache so every flooded request gets an inline reply.
    let mut client = Client::connect(addr).unwrap();
    let r = client.eval("worst:d=2,n=6", "seq-solve", None).unwrap();
    assert!(r.ok);

    // Flood ~20k cached requests and never read a single reply.  The
    // write side is bounded: once the server parks the connection the
    // flood must block (write timeout) or fail, not grow server
    // memory.
    let s = TcpStream::connect(addr).unwrap();
    s.set_write_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    let mut w = s.try_clone().unwrap();
    let line = br#"{"spec":"worst:d=2,n=6","algo":"seq-solve"}"#;
    let mut frame = line.to_vec();
    frame.push(b'\n');
    let mut sent = 0usize;
    for _ in 0..20_000 {
        match w.write_all(&frame) {
            Ok(()) => sent += 1,
            Err(_) => break,
        }
    }
    assert!(sent > 0);

    // The connection dies: outbox overflow or (once reads are
    // deferred and no line completes) the idle sweep.
    assert!(
        wait_for_close(&s, Duration::from_secs(10)),
        "never-draining reader survived ({sent} requests sent)"
    );

    // The server is fine: same cached key answers on a fresh conn
    // (the priming client may itself have been idle-reaped while the
    // flood sat out its timeout).
    let mut fresh = Client::connect(addr).unwrap();
    let r = fresh.eval("worst:d=2,n=6", "seq-solve", None).unwrap();
    assert!(r.ok && r.cached());
    fresh.shutdown_server().unwrap();
    let stats = server.join();
    assert!(
        stats.idle_closed + stats.overflow_closed >= 1,
        "idle_closed={} overflow_closed={}",
        stats.idle_closed,
        stats.overflow_closed
    );
    assert_eq!(stats.open_conns, 0);
}

/// The connection state machine over real sockets: a request split
/// across many TCP segments and a batch of pipelined requests landing
/// in one segment parse identically, and an over-long line gets a 400
/// and the connection is closed.
#[test]
fn split_and_batched_request_framing_parse_identically() {
    let server = start(Config::default());
    let addr = server.local_addr();

    // One request dribbled in three segments.
    let s = TcpStream::connect(addr).unwrap();
    let mut w = s.try_clone().unwrap();
    let mut reader = BufReader::new(s.try_clone().unwrap());
    for chunk in [
        r#"{"id":"split","spec":"wor"#.as_bytes(),
        r#"st:d=2,n=4","algo":"#.as_bytes(),
        "\"seq-solve\"}\n".as_bytes(),
    ] {
        w.write_all(chunk).unwrap();
        w.flush().unwrap();
        std::thread::sleep(Duration::from_millis(30));
    }
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let r = gt_serve::Response::parse(line.trim()).unwrap();
    assert!(r.ok, "split request failed: {:?}", r.error);
    assert_eq!(r.id.as_deref(), Some("split"));

    // Three requests in one write (and likely one segment).
    let mut batch = String::new();
    for i in 0..3 {
        batch.push_str(&format!(
            r#"{{"id":"b{i}","spec":"worst:d=2,n=4","algo":"seq-solve"}}"#
        ));
        batch.push('\n');
    }
    w.write_all(batch.as_bytes()).unwrap();
    w.flush().unwrap();
    let mut got: Vec<String> = Vec::new();
    for _ in 0..3 {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let r = gt_serve::Response::parse(line.trim()).unwrap();
        assert!(r.ok);
        got.push(r.id.unwrap());
    }
    got.sort();
    assert_eq!(got, vec!["b0", "b1", "b2"]);

    // An over-long line: 400 reply, then the connection is closed.
    let huge = format!(r#"{{"id":"big","spec":"{}"}}"#, "x".repeat(70 * 1024));
    w.write_all(huge.as_bytes()).unwrap();
    w.write_all(b"\n").unwrap();
    w.flush().unwrap();
    let mut line = String::new();
    if reader.read_line(&mut line).unwrap() > 0 {
        let r = gt_serve::Response::parse(line.trim()).unwrap();
        assert!(!r.ok);
        assert_eq!(r.status, 400);
    }
    assert!(wait_for_close(&s, Duration::from_secs(5)));

    let mut client = Client::connect(addr).unwrap();
    client.shutdown_server().unwrap();
    let stats = server.join();
    assert_eq!(stats.ok, 4);
    assert!(stats.overlong_closed >= 1);
}

/// Graceful drain with a request line half-written: the drain must
/// not wait for the missing half — in-flight (complete) requests are
/// answered, the partial line is abandoned, and join() returns.
#[test]
fn graceful_drain_abandons_a_partial_request_line() {
    let server = start(Config {
        workers: 2,
        ..Config::default()
    });
    let addr = server.local_addr();

    let s = TcpStream::connect(addr).unwrap();
    let mut w = s.try_clone().unwrap();
    let mut reader = BufReader::new(s.try_clone().unwrap());

    // One complete request (answered), then half of a second one.
    w.write_all(b"{\"id\":\"done\",\"spec\":\"worst:d=2,n=4\",\"algo\":\"seq-solve\"}\n")
        .unwrap();
    w.write_all(b"{\"id\":\"half\",\"spec\":\"worst").unwrap();
    w.flush().unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let r = gt_serve::Response::parse(line.trim()).unwrap();
    assert!(r.ok);
    assert_eq!(r.id.as_deref(), Some("done"));

    let mut client = Client::connect(addr).unwrap();
    let r = client.shutdown_server().unwrap();
    assert!(r.ok);

    // The half-written request is dropped with the connection; the
    // server does not hang waiting for its newline.
    assert!(
        wait_for_close(&s, Duration::from_secs(5)),
        "drain stalled on a partial request line"
    );
    let stats = server.join();
    assert_eq!(stats.ok, 1);
    assert_eq!(stats.open_conns, 0);
}
