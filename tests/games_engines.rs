//! Engines on real games with exact oracles: Nim has a closed-form
//! winner (Bouton's theorem), Tic-Tac-Toe a known game value, so the
//! full engine stack can be checked against theory rather than against
//! another implementation.

use karp_zhang::core::engine::{
    best_move, iterative_best_move, CascadeEngine, DeepeningConfig, RoundEngine, SearchConfig,
};
use karp_zhang::games::{Game, GameTreeSource, Nim, NimState, TicTacToe};
use karp_zhang::sim::parallel_alphabeta;
use karp_zhang::tree::minimax::seq_alphabeta;

fn nim_theory_value(s: &NimState) -> i64 {
    // evaluate() convention: +1 = first player wins under perfect play.
    let mover_wins = s.mover_wins(None);
    match (s.first_to_move, mover_wins) {
        (true, true) | (false, false) => 1,
        _ => -1,
    }
}

#[test]
fn all_engines_agree_with_bouton_on_nim() {
    let g = Nim::default();
    for piles in [
        vec![1, 2],
        vec![2, 2],
        vec![1, 2, 3],
        vec![3, 1],
        vec![2, 3, 1],
    ] {
        let s = NimState::new(piles.clone());
        let depth: u32 = piles.iter().sum::<u32>() + 1;
        let src = GameTreeSource::new(g, s.clone(), depth);
        let theory = nim_theory_value(&s);
        assert_eq!(seq_alphabeta(&src, false).value, theory, "{piles:?} seq");
        assert_eq!(
            parallel_alphabeta(&src, 1, false).value,
            theory,
            "{piles:?} model w1"
        );
        assert_eq!(
            CascadeEngine::with_width(2).solve_minmax(&src).value,
            theory,
            "{piles:?} cascade"
        );
        assert_eq!(
            RoundEngine::with_width(1).solve_minmax(&src).value,
            theory,
            "{piles:?} round"
        );
    }
}

#[test]
fn nim_engine_plays_perfectly_from_winning_positions() {
    // From any XOR≠0 position, the engine must find a move to XOR=0.
    let g = Nim::default();
    for piles in [vec![1, 2], vec![1, 2, 3, 1], vec![4, 1]] {
        let s = NimState::new(piles.clone());
        if !s.mover_wins(None) {
            continue;
        }
        let depth: u32 = piles.iter().sum::<u32>() + 1;
        let (mv, val) = best_move(&g, &s, SearchConfig { depth, width: 1 }).unwrap();
        assert_eq!(val, 1, "winning position must stay won: {piles:?}");
        let after = g.apply(&s, mv);
        assert!(
            !after.mover_wins(None),
            "perfect move must hand over a lost position: {piles:?} -> {:?}",
            after.piles
        );
    }
}

#[test]
fn iterative_deepening_converges_on_tictactoe() {
    let out = iterative_best_move(
        &TicTacToe,
        &TicTacToe.initial(),
        DeepeningConfig {
            max_depth: 9,
            width: 1,
            aspiration: None,
        },
    )
    .unwrap();
    assert_eq!(out.value, 0, "perfect play is a draw");
    // Values stabilize at the horizon where the game is fully resolved.
    let deep = out.per_depth.last().unwrap();
    assert_eq!(deep.depth, 9);
}

#[test]
fn deepening_effort_is_dominated_by_the_last_iteration() {
    // Geometric growth means the final iteration dominates; iterative
    // deepening's total cost must stay within a small factor of it.
    let out = iterative_best_move(
        &TicTacToe,
        &TicTacToe.initial(),
        DeepeningConfig {
            max_depth: 7,
            width: 0,
            aspiration: None,
        },
    )
    .unwrap();
    let last = out.per_depth.last().unwrap().leaves;
    assert!(
        out.total_leaves() <= 4 * last,
        "total {} vs last {last}",
        out.total_leaves()
    );
}

#[test]
fn nim_tree_is_highly_irregular_and_still_correct() {
    // Arities shrink as stones disappear — a strong test of the
    // non-uniform code paths.
    let g = Nim::default();
    let s = NimState::new(vec![3, 2]);
    let src = GameTreeSource::new(g, s.clone(), 6);
    let theory = nim_theory_value(&s);
    for w in 0..3 {
        assert_eq!(parallel_alphabeta(&src, w, false).value, theory, "w={w}");
    }
}
