//! A hermetic, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment for this workspace has no crates.io access,
//! so the benchmark surface the `gt-bench` targets use is
//! reimplemented here: `criterion_group!` / `criterion_main!`,
//! benchmark groups with `bench_function` / `bench_with_input` /
//! `sample_size` / `throughput`, `BenchmarkId`, and `Bencher::iter`.
//!
//! Statistics are deliberately simple: each benchmark runs a short
//! warm-up, then `sample_size` timed batches, and prints the mean
//! nanoseconds per iteration.  Under `cargo test` (which builds bench
//! targets and runs them with `--test`) every benchmark executes its
//! closure once, so benches stay compile- and run-checked without
//! costing test time.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// Register a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let label = id.to_string();
        run_one(self.test_mode, self.sample_size, &label, &mut f);
        self
    }
}

/// Throughput annotation (accepted, echoed in the report line).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Record the per-iteration throughput (display only here).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        let samples = self.sample_size.unwrap_or(self.parent.sample_size);
        run_one(self.parent.test_mode, samples, &label, &mut f);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        let samples = self.sample_size.unwrap_or(self.parent.sample_size);
        run_one(self.parent.test_mode, samples, &label, &mut |b| f(b, input));
        self
    }

    /// Finish the group (report flushing is per-benchmark here).
    pub fn finish(&mut self) {}
}

/// A benchmark's identity: function name plus optional parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { label: s.into() }
    }
}

/// Hands the benchmark body its timing loop.
pub struct Bencher {
    test_mode: bool,
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `f`, called repeatedly.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.iters += 1;
            return;
        }
        // Warm-up, then size batches so one batch is measurable.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let per_batch = (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 10_000);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(f());
            }
            self.total += start.elapsed();
            self.iters += per_batch as u64;
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(test_mode: bool, samples: usize, label: &str, f: &mut F) {
    let mut b = Bencher {
        test_mode,
        samples,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if test_mode {
        println!("test-mode {label}: ok ({} iter)", b.iters);
    } else if b.iters > 0 {
        let per_iter = b.total.as_nanos() as f64 / b.iters as f64;
        println!("bench {label}: {per_iter:.0} ns/iter ({} iters)", b.iters);
    } else {
        println!("bench {label}: no iterations recorded");
    }
}

/// Collect benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_run() {
        let mut c = Criterion {
            test_mode: true,
            sample_size: 3,
        };
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10).throughput(Throughput::Elements(4));
            g.bench_function("plain", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, i| {
                b.iter(|| ran += *i)
            });
            g.bench_with_input(BenchmarkId::from_parameter(9), &9u32, |b, i| {
                b.iter(|| ran += *i)
            });
            g.finish();
        }
        c.bench_function("top", |b| b.iter(|| ran += 1));
        assert!(ran >= 18);
    }
}
