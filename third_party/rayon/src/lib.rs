//! A hermetic, dependency-free stand-in for the `rayon` crate.
//!
//! The build environment for this workspace has no crates.io access,
//! so the fork-join surface the engines actually use is reimplemented
//! on scoped OS threads: [`join`], and `par_iter` / `into_par_iter`
//! followed by `.map(...).collect()`.
//!
//! Differences from the real crate, deliberately accepted: there is no
//! global work-stealing pool — `join` runs one side on a scoped thread,
//! and a parallel map splits its input into one chunk per available
//! core.  Results are returned in input order, as rayon's `collect`
//! guarantees.  On a single-core host everything degrades to the
//! sequential path with no thread spawns.

use std::num::NonZeroUsize;
use std::thread;

/// Run both closures, potentially concurrently, and return both
/// results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if cores() <= 1 {
        return (a(), b());
    }
    thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon-shim join arm panicked"))
    })
}

fn cores() -> usize {
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// The parallel-iterator subset: `par_iter()` / `into_par_iter()`,
/// `.map(...)`, `.collect()`.
pub mod prelude {
    use super::cores;
    use std::thread;

    /// A to-be-parallelized sequence (already drained into memory).
    pub struct ParIter<T> {
        items: Vec<T>,
    }

    /// A mapped parallel sequence, ready to collect.
    pub struct ParMap<T, F> {
        items: Vec<T>,
        f: F,
    }

    impl<T: Send> ParIter<T> {
        /// Apply `f` to every element, in parallel at collect time.
        pub fn map<U, F>(self, f: F) -> ParMap<T, F>
        where
            F: Fn(T) -> U + Sync,
            U: Send,
        {
            ParMap {
                items: self.items,
                f,
            }
        }
    }

    impl<T: Send, U: Send, F: Fn(T) -> U + Sync> ParMap<T, F> {
        /// Evaluate the map across the available cores, preserving
        /// input order.
        pub fn collect<C: FromIterator<U>>(self) -> C {
            let n = self.items.len();
            let workers = cores().min(n);
            if workers <= 1 {
                return self.items.into_iter().map(self.f).collect();
            }
            let chunk = n.div_ceil(workers);
            let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
            let mut it = self.items.into_iter();
            loop {
                let c: Vec<T> = it.by_ref().take(chunk).collect();
                if c.is_empty() {
                    break;
                }
                chunks.push(c);
            }
            let f = &self.f;
            let mapped: Vec<Vec<U>> = thread::scope(|s| {
                let handles: Vec<_> = chunks
                    .into_iter()
                    .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<U>>()))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("rayon-shim map worker panicked"))
                    .collect()
            });
            mapped.into_iter().flatten().collect()
        }
    }

    /// `.into_par_iter()` on owned sequences.
    pub trait IntoParallelIterator {
        /// Element type.
        type Item: Send;
        /// Start a parallel pipeline.
        fn into_par_iter(self) -> ParIter<Self::Item>;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        fn into_par_iter(self) -> ParIter<T> {
            ParIter { items: self }
        }
    }

    macro_rules! range_par_iter {
        ($($t:ty),*) => {$(
            impl IntoParallelIterator for std::ops::Range<$t> {
                type Item = $t;
                fn into_par_iter(self) -> ParIter<$t> {
                    ParIter { items: self.collect() }
                }
            }
        )*};
    }
    range_par_iter!(u8, u16, u32, u64, usize, i32, i64);

    /// `.par_iter()` on borrowed slices/vectors.
    pub trait IntoParallelRefIterator<'a> {
        /// Borrowed element type.
        type Item: Send;
        /// Start a parallel pipeline over references.
        fn par_iter(&'a self) -> ParIter<Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        fn par_iter(&'a self) -> ParIter<&'a T> {
            ParIter {
                items: self.iter().collect(),
            }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        fn par_iter(&'a self) -> ParIter<&'a T> {
            ParIter {
                items: self.iter().collect(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn join_returns_both_sides() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
    }

    #[test]
    fn mapped_collect_preserves_order() {
        let v: Vec<u64> = (0u64..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 1000);
        assert!(v.iter().enumerate().all(|(i, x)| *x == i as u64 * 2));
        let src = vec![3, 1, 4, 1, 5];
        let doubled: Vec<i32> = src.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 8, 2, 10]);
    }
}
