//! A hermetic, dependency-free stand-in for the `rayon` crate.
//!
//! The build environment for this workspace has no crates.io access,
//! so the fork-join surface the engines actually use is reimplemented
//! on scoped OS threads: [`join`], and `par_iter` / `into_par_iter`
//! followed by `.map(...).collect()`.
//!
//! Differences from the real crate, deliberately accepted: there is no
//! global work-stealing pool — `join` runs one side on a scoped thread,
//! and a parallel map splits its input into one chunk per available
//! core (never fewer than two chunks, so concurrency is exercised even
//! on a single-core host).  Results are returned in input order, as
//! rayon's `collect` guarantees.
//!
//! Spawning is budgeted, not unconditional.  Recursive fork-join
//! callers (the cascade engine joins at every node of its left spine)
//! would otherwise pile up one live OS thread per recursion level —
//! tens of thousands on a deep tree — and starve every other thread in
//! the process.  A global live-spawn counter admits real threads up to
//! `max(4, 4 × cores)`; past the cap, `join` and chunked maps run
//! inline on the caller.  The first joins of any computation therefore
//! always get a genuinely concurrent split, on every machine,
//! single-core included, while total shim threads stay bounded no
//! matter how deep the recursion goes.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Live threads spawned by the shim, across `join` and `collect`.
static LIVE_SPAWNS: AtomicUsize = AtomicUsize::new(0);

fn spawn_cap() -> usize {
    cores().saturating_mul(4).max(4)
}

/// A reservation against the live-spawn budget; dropping it (in the
/// spawned thread, as it finishes) releases the slot.
struct SpawnToken;

impl SpawnToken {
    fn try_reserve() -> Option<SpawnToken> {
        let cap = spawn_cap();
        LIVE_SPAWNS
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n < cap).then_some(n + 1)
            })
            .ok()
            .map(|_| SpawnToken)
    }
}

impl Drop for SpawnToken {
    fn drop(&mut self) {
        LIVE_SPAWNS.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Run both closures, potentially concurrently, and return both
/// results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    match SpawnToken::try_reserve() {
        Some(token) => thread::scope(|s| {
            let hb = s.spawn(move || {
                let _slot = token;
                b()
            });
            let ra = a();
            (ra, hb.join().expect("rayon-shim join arm panicked"))
        }),
        // Budget exhausted: the process is already saturated with shim
        // threads, so run both arms inline on the caller.
        None => {
            let ra = a();
            let rb = b();
            (ra, rb)
        }
    }
}

fn cores() -> usize {
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// The parallel-iterator subset: `par_iter()` / `into_par_iter()`,
/// `.map(...)`, `.collect()`.
pub mod prelude {
    use super::{cores, SpawnToken};
    use std::thread;

    /// A to-be-parallelized sequence (already drained into memory).
    pub struct ParIter<T> {
        items: Vec<T>,
    }

    /// A mapped parallel sequence, ready to collect.
    pub struct ParMap<T, F> {
        items: Vec<T>,
        f: F,
    }

    impl<T: Send> ParIter<T> {
        /// Apply `f` to every element, in parallel at collect time.
        pub fn map<U, F>(self, f: F) -> ParMap<T, F>
        where
            F: Fn(T) -> U + Sync,
            U: Send,
        {
            ParMap {
                items: self.items,
                f,
            }
        }
    }

    impl<T: Send, U: Send, F: Fn(T) -> U + Sync> ParMap<T, F> {
        /// Evaluate the map across the available cores, preserving
        /// input order.
        pub fn collect<C: FromIterator<U>>(self) -> C {
            let n = self.items.len();
            // At least two chunks whenever there are two items: even a
            // single-core host runs the concurrent path.
            let workers = cores().max(2).min(n);
            if workers <= 1 {
                return self.items.into_iter().map(self.f).collect();
            }
            let chunk = n.div_ceil(workers);
            let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
            let mut it = self.items.into_iter();
            loop {
                let c: Vec<T> = it.by_ref().take(chunk).collect();
                if c.is_empty() {
                    break;
                }
                chunks.push(c);
            }
            let f = &self.f;
            // Chunks run on a spawned thread while the live-spawn
            // budget lasts, inline on the caller once it is exhausted.
            enum Chunk<'scope, U> {
                Spawned(thread::ScopedJoinHandle<'scope, Vec<U>>),
                Inline(Vec<U>),
            }
            let mapped: Vec<Vec<U>> = thread::scope(|s| {
                let handles: Vec<Chunk<'_, U>> = chunks
                    .into_iter()
                    .map(|c| match SpawnToken::try_reserve() {
                        Some(token) => Chunk::Spawned(s.spawn(move || {
                            let _slot = token;
                            c.into_iter().map(f).collect::<Vec<U>>()
                        })),
                        None => Chunk::Inline(c.into_iter().map(f).collect()),
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h {
                        Chunk::Spawned(h) => h.join().expect("rayon-shim map worker panicked"),
                        Chunk::Inline(v) => v,
                    })
                    .collect()
            });
            mapped.into_iter().flatten().collect()
        }
    }

    /// `.into_par_iter()` on owned sequences.
    pub trait IntoParallelIterator {
        /// Element type.
        type Item: Send;
        /// Start a parallel pipeline.
        fn into_par_iter(self) -> ParIter<Self::Item>;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        fn into_par_iter(self) -> ParIter<T> {
            ParIter { items: self }
        }
    }

    macro_rules! range_par_iter {
        ($($t:ty),*) => {$(
            impl IntoParallelIterator for std::ops::Range<$t> {
                type Item = $t;
                fn into_par_iter(self) -> ParIter<$t> {
                    ParIter { items: self.collect() }
                }
            }
        )*};
    }
    range_par_iter!(u8, u16, u32, u64, usize, i32, i64);

    /// `.par_iter()` on borrowed slices/vectors.
    pub trait IntoParallelRefIterator<'a> {
        /// Borrowed element type.
        type Item: Send;
        /// Start a parallel pipeline over references.
        fn par_iter(&'a self) -> ParIter<Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        fn par_iter(&'a self) -> ParIter<&'a T> {
            ParIter {
                items: self.iter().collect(),
            }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        fn par_iter(&'a self) -> ParIter<&'a T> {
            ParIter {
                items: self.iter().collect(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn join_returns_both_sides() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
    }

    #[test]
    fn first_join_runs_arms_on_distinct_threads() {
        let caller = std::thread::current().id();
        let (_, spawned) = join(|| (), || std::thread::current().id());
        assert_ne!(caller, spawned, "fresh join must get a real thread");
    }

    #[test]
    fn recursive_joins_stay_within_the_spawn_budget() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::thread::ThreadId;
        // A depth-200 spine of nested joins, recursing down the spawned
        // arm: unbounded spawning would hold ~200 live OS threads at
        // once (each level's join blocks until the whole sub-spine
        // finishes).  Count only frames running on a thread their
        // parent frame was not on — live spawned threads.
        static PEAK: AtomicUsize = AtomicUsize::new(0);
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        fn spine(depth: usize, parent: ThreadId) {
            let tid = std::thread::current().id();
            let fresh = tid != parent;
            if fresh {
                let live = LIVE.fetch_add(1, Ordering::SeqCst) + 1;
                PEAK.fetch_max(live, Ordering::SeqCst);
            }
            if depth > 0 {
                join(|| (), || spine(depth - 1, tid));
            }
            if fresh {
                LIVE.fetch_sub(1, Ordering::SeqCst);
            }
        }
        spine(200, std::thread::current().id());
        let peak = PEAK.load(Ordering::SeqCst);
        assert!(peak >= 1, "no join ever spawned a real thread");
        assert!(
            peak <= spawn_cap(),
            "peak {} live spawned threads exceeds budget {}",
            peak,
            spawn_cap()
        );
    }

    #[test]
    fn mapped_collect_preserves_order() {
        let v: Vec<u64> = (0u64..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 1000);
        assert!(v.iter().enumerate().all(|(i, x)| *x == i as u64 * 2));
        let src = vec![3, 1, 4, 1, 5];
        let doubled: Vec<i32> = src.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 8, 2, 10]);
    }
}
