//! A hermetic, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment for this workspace has no crates.io access,
//! so the property-test surface the repo actually uses is reimplemented
//! here: the [`Strategy`] trait with `prop_map` / `prop_recursive` /
//! `boxed`, range and tuple and `Just` and `any::<T>()` strategies,
//! `prop::collection::vec`, `prop::num::f64::NORMAL`, a small
//! character-class regex generator for `&str` strategies, the
//! [`prop_oneof!`] union macro (weighted and unweighted), and the
//! [`proptest!`] test macro with `#![proptest_config(...)]`.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.**  A failing case panics with the raw generated
//!   values (tests print them via their own assert messages); minimal
//!   counterexamples must be found by hand.
//! * **Deterministic seeding.**  Cases are seeded from
//!   `(file, line, case-index)`, so a given test binary explores the
//!   same inputs on every run — failures are always reproducible.
//! * **Regex strategies** support exactly the shapes this repo uses:
//!   `[class]{lo,hi}` with escapes and ranges, and `\PC{lo,hi}`.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

// ---------------------------------------------------------------------------
// Deterministic generator

/// Splitmix64: tiny, fast, and plenty for test-input generation.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seed directly.
    pub fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    /// Seed from a test site and case index (what [`proptest!`] uses).
    pub fn from_case(file: &str, line: u32, case: u32) -> Rng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in file.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        Rng(h ^ (u64::from(line) << 32) ^ u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

// ---------------------------------------------------------------------------
// The Strategy trait and combinators

/// Generates values of one type; the analogue of proptest's `Strategy`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: up to `depth` levels of `recurse`
    /// wrapped around `self` as the leaf.  The `desired_size` /
    /// `expected_branch_size` hints are accepted for signature
    /// compatibility; depth alone bounds the output here.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut level = base.clone();
        for _ in 0..depth {
            let deeper = recurse(level).boxed();
            // Recurse twice as often as bottoming out: rich structures,
            // still hard-capped at `depth` levels.
            level = Union {
                arms: vec![(1, base.clone()), (2, deeper)],
            }
            .boxed();
        }
        level
    }

    /// Type-erase (cheap to clone; used by [`prop_oneof!`] and
    /// recursion).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

trait DynStrategy {
    type Value;
    fn dyn_generate(&self, rng: &mut Rng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_generate(&self, rng: &mut Rng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut Rng) -> V {
        self.0.dyn_generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut Rng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut Rng) -> T {
        self.0.clone()
    }
}

/// A weighted union of same-typed strategies ([`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
}

impl<V: 'static> Union<V> {
    /// Build from `(weight, strategy)` arms; weights must not all be 0.
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<V>)>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut Rng) -> V {
        let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.below(total.max(1));
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        self.arms[0].1.generate(rng)
    }
}

// Integer ranges.
macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                (self.start as i128 + rng.below(span as u64) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

// Tuples of strategies.
macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut Rng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! { (A) (A, B) (A, B, C) (A, B, C, D) }

/// `any::<T>()` — the full value space of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Types `any::<T>()` can generate.
pub trait Arbitrary {
    /// Produce an arbitrary value.
    fn arbitrary(rng: &mut Rng) -> Self;
}

/// See [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut Rng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut Rng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

// ---------------------------------------------------------------------------
// Regex string strategies (character-class subset)

/// `&str` strategies: `[class]{lo,hi}` or `\PC{lo,hi}`, matching the
/// patterns this workspace's tests use.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut Rng) -> String {
        let (pool, lo, hi) = parse_simple_regex(self)
            .unwrap_or_else(|e| panic!("unsupported regex strategy {self:?}: {e}"));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| pool[rng.below(pool.len() as u64) as usize])
            .collect()
    }
}

/// Printable pool for `\PC` (any non-control char): ASCII printables
/// plus a couple of non-ASCII code points to keep UTF-8 handling
/// honest.
fn printable_pool() -> Vec<char> {
    let mut pool: Vec<char> = (0x20u8..0x7f).map(char::from).collect();
    pool.extend(['é', 'λ', '→', '€']);
    pool
}

fn parse_simple_regex(pattern: &str) -> Result<(Vec<char>, usize, usize), String> {
    let (pool, rest) = if let Some(rest) = pattern.strip_prefix("\\PC") {
        (printable_pool(), rest)
    } else if let Some(body) = pattern.strip_prefix('[') {
        let close = body
            .find(']')
            .ok_or_else(|| "unterminated character class".to_string())?;
        (parse_class(&body[..close])?, &body[close + 1..])
    } else {
        return Err("want [class]{lo,hi} or \\PC{lo,hi}".into());
    };
    if pool.is_empty() {
        return Err("empty character class".into());
    }
    let counts = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .ok_or_else(|| format!("bad repetition {rest:?}"))?;
    let (lo, hi) = match counts.split_once(',') {
        Some((l, h)) => (
            l.parse::<usize>().map_err(|e| e.to_string())?,
            h.parse::<usize>().map_err(|e| e.to_string())?,
        ),
        None => {
            let n = counts.parse::<usize>().map_err(|e| e.to_string())?;
            (n, n)
        }
    };
    if lo > hi {
        return Err(format!("bad repetition bounds {lo}..{hi}"));
    }
    Ok((pool, lo, hi))
}

fn parse_class(body: &str) -> Result<Vec<char>, String> {
    let mut pool = Vec::new();
    let mut chars = body.chars().peekable();
    while let Some(c) = chars.next() {
        let literal = if c == '\\' {
            match chars.next().ok_or("dangling escape")? {
                'n' => '\n',
                't' => '\t',
                'r' => '\r',
                other => other, // \\ \" \- \] and friends: the char itself
            }
        } else {
            c
        };
        // A `-` between two literals is a range.
        if chars.peek() == Some(&'-') {
            let mut look = chars.clone();
            look.next(); // the '-'
            match look.next() {
                Some(end) if end != '\\' => {
                    chars = look;
                    if (literal as u32) > (end as u32) {
                        return Err(format!("bad range {literal}-{end}"));
                    }
                    for cp in (literal as u32)..=(end as u32) {
                        if let Some(ch) = char::from_u32(cp) {
                            pool.push(ch);
                        }
                    }
                    continue;
                }
                _ => {} // trailing '-' or '-\x': treat '-' literally later
            }
        }
        pool.push(literal);
    }
    Ok(pool)
}

// ---------------------------------------------------------------------------
// Collections and numeric pools

/// `prop::collection` — vectors of generated elements.
pub mod collection {
    use super::{Rng, Strategy};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive element-count bounds for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `prop::num` — numeric value-class pools.
pub mod num {
    /// `f64` classes.
    pub mod f64 {
        use crate::{Rng, Strategy};

        /// Normal (finite, non-zero, non-subnormal) doubles of either
        /// sign.
        pub struct NormalF64;

        /// The normal-float pool.
        pub const NORMAL: NormalF64 = NormalF64;

        impl Strategy for NormalF64 {
            type Value = f64;
            fn generate(&self, rng: &mut Rng) -> f64 {
                loop {
                    let f = f64::from_bits(rng.next_u64());
                    if f.is_normal() {
                        return f;
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Config and macros

/// Per-block test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 128 }
    }
}

/// The test macro: each `fn name(pat in strategy, ...) { body }` becomes
/// a `#[test]` running `cases` deterministic generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_body {
    (config = $config:expr;
     $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::Rng::from_case(file!(), line!(), __case);
                    $( let $pat = $crate::Strategy::generate(&($strat), &mut __rng); )+
                    $body
                }
            }
        )*
    };
}

/// Assert inside a property (panics; no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Weighted (`w => strategy`) or uniform union of strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Everything a test module needs; also re-exports the crate as `prop`
/// so `prop::collection::vec` / `prop::num::f64::NORMAL` resolve.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::Rng::new(7);
        for _ in 0..1000 {
            let v = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (-8i64..=8).generate(&mut rng);
            assert!((-8..=8).contains(&w));
        }
    }

    #[test]
    fn class_regexes_generate_members_only() {
        let mut rng = crate::Rng::new(1);
        for _ in 0..200 {
            let s = "[a-z]{1,6}".generate(&mut rng);
            assert!((1..=6).contains(&s.chars().count()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = "[ ()0-9,\\-xyz]{0,64}".generate(&mut rng);
            assert!(t.chars().all(|c| " ()0123456789,-xyz".contains(c)));
            let p = "\\PC{0,64}".generate(&mut rng);
            assert!(p.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn recursive_strategies_bottom_out() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf,
            Node(Vec<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf => 0,
                T::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = Just(T::Leaf).prop_recursive(4, 32, 3, |inner| {
            prop::collection::vec(inner, 1..=3).prop_map(T::Node)
        });
        let mut rng = crate::Rng::new(42);
        let mut saw_node = false;
        for _ in 0..200 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 4);
            saw_node |= matches!(t, T::Node(_));
        }
        assert!(saw_node, "recursion never fired");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn the_macro_binds_patterns(x in 0u32..10, (a, b) in (0i64..5, any::<bool>())) {
            prop_assert!(x < 10);
            prop_assert!(a < 5);
            let _ = b;
            prop_assert_eq!(x + 1, 1 + x);
        }

        #[test]
        fn weighted_oneof_hits_every_arm(v in prop_oneof![3 => Just(1u8), 2 => Just(2u8)]) {
            prop_assert!(v == 1 || v == 2);
        }
    }
}
