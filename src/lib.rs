//! Umbrella crate: re-exports the whole Karp-Zhang reproduction for use
//! by the examples and integration tests.
pub use gt_analysis as analysis;
pub use gt_core as core;
pub use gt_games as games;
pub use gt_msgsim as msgsim;
pub use gt_sim as sim;
pub use gt_tree as tree;
