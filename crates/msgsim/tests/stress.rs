//! Stress tests for the Section 7 machine: correctness and termination
//! across tree families, heights and processor budgets — including the
//! zone-multiplexed configurations that historically exposed lineage
//! collisions on a level's single P-slot.

use gt_msgsim::{simulate, simulate_with_processors};
use gt_tree::gen::{critical_bias, UniformSource};
use gt_tree::minimax::nor_value;
use gt_tree::TreeSource;

fn check_all_processor_budgets<S: TreeSource>(src: &S, n: u32, label: &str) {
    let truth = nor_value(src);
    let full = simulate(src);
    assert_eq!(full.value, truth, "{label}: full machine wrong");
    for p in [1u32, 2, 3, 4, 5, 7, n + 1] {
        let r = simulate_with_processors(src, p);
        assert_eq!(r.value, truth, "{label}: p={p} wrong");
        assert!(r.ticks > 0);
    }
}

#[test]
fn worst_case_trees_all_budgets() {
    for n in [4u32, 6, 8, 10, 12] {
        let src = UniformSource::nor_worst_case(2, n);
        check_all_processor_budgets(&src, n, &format!("worst n={n}"));
    }
}

#[test]
fn critical_iid_trees_all_budgets() {
    for n in [6u32, 9, 12] {
        for seed in 0..6 {
            let src = UniformSource::nor_iid(2, n, critical_bias(2), seed);
            check_all_processor_budgets(&src, n, &format!("crit n={n} seed={seed}"));
        }
    }
}

#[test]
fn biased_trees_both_directions() {
    // Heavily biased leaves exercise both the fast-death (many 1s) and
    // full-evaluation (many 0s) regimes.
    for p_leaf in [0.1f64, 0.9] {
        for seed in 0..4 {
            let src = UniformSource::nor_iid(2, 10, p_leaf, seed);
            check_all_processor_budgets(&src, 10, &format!("p={p_leaf} seed={seed}"));
        }
    }
}

#[test]
fn d_ary_trees_all_budgets() {
    for (d, n) in [(3u32, 6u32), (4, 5), (5, 4)] {
        let worst = UniformSource::nor_worst_case(d, n);
        check_all_processor_budgets(&worst, n, &format!("worst d={d} n={n}"));
        for seed in 0..4 {
            let iid = UniformSource::nor_iid(d, n, critical_bias(d), seed);
            check_all_processor_budgets(&iid, n, &format!("crit d={d} n={n} seed={seed}"));
        }
    }
}

#[test]
fn large_worst_case_zone_multiplexing_terminates() {
    // The historical deadlock configurations: big worst-case trees with
    // small processor budgets.
    for (n, p) in [(14u32, 2u32), (14, 3), (16, 8)] {
        let src = UniformSource::nor_worst_case(2, n);
        let r = simulate_with_processors(&src, p);
        assert_eq!(r.value, 1, "n={n} p={p}");
    }
}

#[test]
fn ticks_shrink_with_more_processors_on_worst_case() {
    let src = UniformSource::nor_worst_case(2, 12);
    let t1 = simulate_with_processors(&src, 1).ticks;
    let t4 = simulate_with_processors(&src, 4).ticks;
    let tfull = simulate(&src).ticks;
    assert!(t4 < t1, "4 processors not faster than 1: {t4} vs {t1}");
    assert!(tfull <= t4, "full machine not fastest: {tfull} vs {t4}");
}

#[test]
fn work_actions_bounded_by_constant_factor_of_sequential() {
    // Pre-emptions re-search subtrees, but the memo cut-off keeps the
    // duplication bounded in practice.
    for n in [8u32, 10, 12] {
        let src = UniformSource::nor_worst_case(2, n);
        let seq = gt_tree::minimax::seq_solve(&src, false).nodes_expanded;
        let r = simulate(&src);
        assert!(
            r.work_actions <= 6 * seq,
            "n={n}: work {} vs sequential {seq}",
            r.work_actions
        );
    }
}
