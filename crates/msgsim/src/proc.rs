//! Per-level processor state: the S-SOLVE* stack machine and the
//! P-SOLVE*-family coordinator.
//!
//! The paper presents the implementation for binary trees "for
//! convenience in exposition"; this module implements the natural
//! `d`-ary generalization.  The binary message types map onto ours as:
//!
//! | paper (binary) | here (d-ary) |
//! |---|---|
//! | `S-SOLVE*(v)` | [`Msg::SSolve`] |
//! | `P-SOLVE*(v)` | [`Msg::PSolve`] |
//! | `P-SOLVE**(v)` (left child pending) | [`Msg::Resume`] with `k = 0` |
//! | `P-SOLVE***(v)` (left child known 0) | [`Msg::Resume`] with `k ≥ 1` |
//! | `val(v) = b` | [`Msg::Val`] |
//!
//! `Resume(v, k)` means: node `v` is expanded, its children `0..k` are
//! known to be 0, and child `k` is being evaluated by the lineage below
//! (it lies on the captured stack path).

use gt_tree::{LazyTree, NodeId, NodeKind, TreeSource};

/// Frame state: the child index currently being searched, or
/// "unexpanded".
pub const UNEXPANDED: u32 = u32::MAX;

/// The message alphabet of Section 7 (d-ary generalization).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Msg {
    /// Begin (or pre-empt with) a sequential search of the subtree at `v`.
    SSolve(NodeId),
    /// Begin coordinating the width-1 parallel evaluation of `v`.
    PSolve(NodeId),
    /// `v` is already expanded; children `0..k` are 0; child `k` is on
    /// the captured path (the paper's `P-SOLVE**`/`P-SOLVE***`).
    Resume(NodeId, u32),
    /// `val(v) = b`, sent from processor `d(v)` to `d(v) − 1`.
    Val(NodeId, bool),
}

impl Msg {
    /// Index used by the per-type message counters, matching the
    /// paper's six types: `[S-SOLVE*, P-SOLVE*, P-SOLVE**, P-SOLVE***,
    /// val]`.
    pub fn kind_index(&self) -> usize {
        match self {
            Msg::SSolve(_) => 0,
            Msg::PSolve(_) => 1,
            Msg::Resume(_, 0) => 2,
            Msg::Resume(_, _) => 3,
            Msg::Val(_, _) => 4,
        }
    }
}

/// One frame of the S-SOLVE* stack: a node plus how far its evaluation
/// has progressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame {
    /// The node this frame evaluates.
    pub node: NodeId,
    /// [`UNEXPANDED`], or the index of the child currently searched
    /// (all earlier children returned 0).
    pub state: u32,
}

/// The non-recursive sequential search (program `S-SOLVE*`, Section 7:
/// "a depth-first search ... a pushdown stack is used to control the
/// search; at each step the stack contains a description of the path
/// from v to the node currently being expanded").
#[derive(Debug, Clone)]
pub struct STask {
    /// Root of the subtree being searched.
    pub root: NodeId,
    /// Path from `root` to the current node, with per-node progress.
    pub stack: Vec<Frame>,
    /// Value returned by the child most recently completed (bookkeeping
    /// register; always consumed within a tick).
    ret: Option<bool>,
}

impl STask {
    /// Start a search of the subtree rooted at `v`.
    pub fn new(v: NodeId) -> Self {
        STask {
            root: v,
            stack: vec![Frame {
                node: v,
                state: UNEXPANDED,
            }],
            ret: None,
        }
    }

    /// Perform one unit of work: a single node expansion, followed by
    /// free bookkeeping (folding completed values into parent frames).
    /// Returns `Some(value)` when the search of `root` completes.
    ///
    /// Invariant: at every tick boundary the top frame is
    /// [`UNEXPANDED`] — it names the node the search is about to
    /// expand, matching the paper's stack description.
    pub fn step<S: TreeSource>(&mut self, tree: &mut LazyTree<S>) -> Option<bool> {
        debug_assert!(self.ret.is_none());
        let top = *self.stack.last().expect("live task has a frame");
        debug_assert_eq!(top.state, UNEXPANDED);
        match tree.expand(top.node) {
            NodeKind::Internal(_) => {
                let first = tree.child(top.node, 0);
                self.stack.last_mut().unwrap().state = 0;
                self.stack.push(Frame {
                    node: first,
                    state: UNEXPANDED,
                });
                None
            }
            NodeKind::Leaf(v) => {
                self.stack.pop();
                self.ret = Some(v != 0);
                // Free bookkeeping: fold the value into enclosing frames
                // until a new unexpanded frame is pushed or the root
                // closes.
                while let Some(b) = self.ret.take() {
                    match self.stack.last_mut() {
                        None => return Some(b),
                        Some(f) => {
                            let k = f.state;
                            debug_assert_ne!(k, UNEXPANDED);
                            if b {
                                // A 1-child determines the NOR node as 0.
                                self.stack.pop();
                                self.ret = Some(false);
                            } else if k + 1 == tree.arity(f.node) {
                                // All children 0: the NOR node is 1.
                                self.stack.pop();
                                self.ret = Some(true);
                            } else {
                                f.state = k + 1;
                                let next = tree.child(f.node, k + 1);
                                self.stack.push(Frame {
                                    node: next,
                                    state: UNEXPANDED,
                                });
                            }
                        }
                    }
                }
                None
            }
        }
    }
}

/// The P-SOLVE*-family coordinator state for one node.
#[derive(Debug, Clone)]
pub enum PTask {
    /// Waiting to expand `v` (case one of `P-SOLVE*`).
    Expand {
        /// The node to coordinate.
        v: NodeId,
    },
    /// Coordinating `v`'s children (covers `P-SOLVE*` after expansion
    /// and `Resume` in all its forms).
    Coordinate {
        /// The coordinated node.
        v: NodeId,
        /// Children `0..zeros` are known to be 0.
        zeros: u32,
        /// Child index with an outstanding parallel (`P-SOLVE*`)
        /// lineage, if any.
        promoted_p: Option<u32>,
        /// Highest child index with a sequential look-ahead
        /// (`S-SOLVE*`) dispatched, if any.
        promoted_s: Option<u32>,
    },
    /// Case two of `P-SOLVE*`: walking the captured stack path top-down,
    /// one node per tick, promoting path nodes to coordinators.
    Traverse {
        /// Path frames captured from the pre-empted `S-SOLVE*`.
        frames: Vec<Frame>,
        /// Next frame to process.
        idx: usize,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_tree::gen::UniformSource;
    use gt_tree::minimax::nor_value;
    use gt_tree::ExplicitTree;

    fn run_stask<S: TreeSource>(src: S) -> (bool, u64) {
        let mut tree = LazyTree::new(src);
        let mut t = STask::new(tree.root());
        let mut ticks = 0u64;
        loop {
            ticks += 1;
            if let Some(b) = t.step(&mut tree) {
                return (b, ticks);
            }
            assert!(ticks < 1_000_000, "runaway S-SOLVE*");
        }
    }

    #[test]
    fn stask_single_leaf() {
        let (b, ticks) = run_stask(ExplicitTree::leaf(1));
        assert!(b);
        assert_eq!(ticks, 1);
    }

    #[test]
    fn stask_matches_recursive_reference_binary() {
        for seed in 0..20 {
            let s = UniformSource::nor_iid(2, 8, 0.5, seed);
            let (b, ticks) = run_stask(&s);
            assert_eq!(i64::from(b), nor_value(&s), "seed {seed}");
            let re = gt_tree::minimax::seq_solve(&s, false);
            assert_eq!(ticks, re.nodes_expanded, "ticks = expansions, seed {seed}");
        }
    }

    #[test]
    fn stask_matches_recursive_reference_ternary() {
        for seed in 0..20 {
            let s = UniformSource::nor_iid(3, 5, 0.4, seed);
            let (b, ticks) = run_stask(&s);
            assert_eq!(i64::from(b), nor_value(&s), "seed {seed}");
            let re = gt_tree::minimax::seq_solve(&s, false);
            assert_eq!(ticks, re.nodes_expanded, "seed {seed}");
        }
    }

    #[test]
    fn stask_handles_mixed_arities() {
        let t = ExplicitTree::internal(vec![
            ExplicitTree::leaf(0),
            ExplicitTree::internal(vec![
                ExplicitTree::leaf(0),
                ExplicitTree::leaf(0),
                ExplicitTree::leaf(0),
            ]),
            ExplicitTree::leaf(1),
        ]);
        let (b, _) = run_stask(&t);
        assert_eq!(i64::from(b), nor_value(&t));
    }

    #[test]
    fn stask_early_exit_on_one() {
        // Root's left child is a leaf 1 → done after 2 expansions.
        let t = ExplicitTree::internal(vec![
            ExplicitTree::leaf(1),
            ExplicitTree::internal(vec![ExplicitTree::leaf(0), ExplicitTree::leaf(0)]),
        ]);
        let (b, ticks) = run_stask(t);
        assert!(!b);
        assert_eq!(ticks, 2);
    }

    #[test]
    fn msg_kind_indices_match_the_papers_types() {
        assert_eq!(Msg::SSolve(0).kind_index(), 0);
        assert_eq!(Msg::PSolve(0).kind_index(), 1);
        assert_eq!(Msg::Resume(0, 0).kind_index(), 2); // P-SOLVE**
        assert_eq!(Msg::Resume(0, 1).kind_index(), 3); // P-SOLVE***
        assert_eq!(Msg::Resume(0, 5).kind_index(), 3);
        assert_eq!(Msg::Val(0, true).kind_index(), 4);
    }
}
