//! The discrete-event machine: levels, inboxes, ticks, zone
//! multiplexing, the pre-emption rule, and the recovery mechanisms the
//! paper's prose leaves implicit (see DESIGN.md §4a).

use crate::proc::{Frame, Msg, PTask, STask, UNEXPANDED};
use gt_tree::{LazyTree, NodeId, NodeKind, TreeSource};

/// Result of a message-passing simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MsgSimResult {
    /// Root value.
    pub value: i64,
    /// Ticks until the root value was determined (the implementation's
    /// running time; unit-time messages, one unit action per processor
    /// per tick).
    pub ticks: u64,
    /// Unit work actions performed (node expansions + stack-walk steps).
    pub work_actions: u64,
    /// Distinct nodes expanded (knowledge gained; re-searches of a
    /// subtree do not re-expand).
    pub unique_expansions: u64,
    /// Messages sent, indexed by [`Msg::kind_index`]:
    /// `[S-SOLVE*, P-SOLVE*, P-SOLVE**, P-SOLVE***, val]`.
    pub messages: [u64; 5],
    /// Number of physical processors used.
    pub processors: u32,
    /// Unit work actions per *level* (the logical processors): exposes
    /// the load balance of the one-processor-per-level design.
    pub level_work: Vec<u64>,
}

impl MsgSimResult {
    /// Total messages of all types.
    pub fn total_messages(&self) -> u64 {
        self.messages.iter().sum()
    }

    /// Load imbalance of the per-level work distribution: busiest level
    /// divided by the mean (1.0 = perfectly balanced).
    pub fn level_imbalance(&self) -> f64 {
        let n = self.level_work.len().max(1) as f64;
        let total: u64 = self.level_work.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let max = *self.level_work.iter().max().unwrap() as f64;
        max / (total as f64 / n)
    }
}

/// Per-level logical state (one "virtual processor" per tree level).
struct Level {
    s_task: Option<STask>,
    p_task: Option<PTask>,
    /// A P-family invocation that arrived while a case-two stack walk
    /// was in progress.  The walk's own continuation (`Resume(v, ..)`
    /// sent to this very level) must not pre-empt the walk, so it parks
    /// here and is installed when the walk completes.  Most recent wins,
    /// per the pre-emption rule.
    pending_p: Option<PTask>,
    /// Ticks this level's coordinator has been waiting on a child whose
    /// lineage may have been pre-empted; drives the watchdog re-issue.
    stuck_ticks: u32,
    inbox: Vec<Msg>,
}

impl Level {
    fn new() -> Self {
        Level {
            s_task: None,
            p_task: None,
            pending_p: None,
            stuck_ticks: 0,
            inbox: Vec::new(),
        }
    }

    /// Install a new P-family invocation, honouring an in-flight
    /// traversal.
    fn install_p(&mut self, task: PTask) {
        if matches!(self.p_task, Some(PTask::Traverse { .. })) {
            self.pending_p = Some(task);
        } else {
            self.p_task = Some(task);
        }
    }

    fn has_work(&self) -> bool {
        matches!(
            self.p_task,
            Some(PTask::Expand { .. }) | Some(PTask::Traverse { .. })
        ) || self.s_task.is_some()
    }
}

/// The machine: a lazily materialized tree plus one logical processor
/// per level, multiplexed onto `processors` physical processors in
/// zones of consecutive levels.
struct Machine<S: TreeSource> {
    tree: LazyTree<S>,
    levels: Vec<Level>,
    /// Messages in flight, delivered at the start of the next tick:
    /// `(destination level, message)`.
    in_flight: Vec<(u32, Msg)>,
    processors: u32,
    /// Round-robin pointers, one per physical processor.
    rr: Vec<u32>,
    /// Values delivered by `val(u)=b` messages.  A `val(u)` message is
    /// always addressed to level `d(u)−1`, which is exactly where any
    /// coordinator of `u`'s parent lives, so this memo is precisely "the
    /// processor remembers the val messages it received" — it lets a
    /// coordinator installed *after* the message arrived (e.g. behind a
    /// case-two stack walk) still see it.
    val_memo: Vec<Option<bool>>,
    msg_counts: [u64; 5],
    work_actions: u64,
    level_work: Vec<u64>,
    root_value: Option<bool>,
}

impl<S: TreeSource> Machine<S> {
    fn new(source: S, processors: u32) -> Self {
        assert!(processors >= 1);
        Machine {
            tree: LazyTree::new(source),
            levels: Vec::new(),
            in_flight: vec![(0, Msg::PSolve(0))],
            processors,
            rr: vec![0; processors as usize],
            val_memo: Vec::new(),
            msg_counts: [0; 5],
            work_actions: 0,
            level_work: Vec::new(),
            root_value: None,
        }
    }

    fn level_mut(&mut self, d: u32) -> &mut Level {
        while self.levels.len() <= d as usize {
            self.levels.push(Level::new());
        }
        &mut self.levels[d as usize]
    }

    fn send(&mut self, dest_level: i64, msg: Msg) {
        self.msg_counts[msg.kind_index()] += 1;
        if dest_level < 0 {
            // val(root) reaches the (virtual) host: the run is over.
            if let Msg::Val(v, b) = msg {
                debug_assert_eq!(v, 0);
                self.root_value = Some(b);
            }
            return;
        }
        self.in_flight.push((dest_level as u32, msg));
    }

    /// Deliver messages sent last tick and apply the pre-emption rule.
    fn deliver(&mut self) {
        let batch = std::mem::take(&mut self.in_flight);
        for (d, msg) in batch {
            self.level_mut(d).inbox.push(msg);
        }
        for d in 0..self.levels.len() {
            let inbox = std::mem::take(&mut self.levels[d].inbox);
            for msg in inbox {
                self.receive(d as u32, msg);
            }
        }
    }

    fn receive(&mut self, d: u32, msg: Msg) {
        // Memo cut-off: a request to (re-)solve a node whose value the
        // machine has already reported is answered immediately.  This
        // makes the watchdog re-issues converge instead of re-searching
        // solved subtrees.
        match msg {
            Msg::SSolve(v) | Msg::PSolve(v) | Msg::Resume(v, _) => {
                if let Some(b) = self.memo(v) {
                    self.send(d as i64 - 1, Msg::Val(v, b));
                    return;
                }
            }
            Msg::Val(_, _) => {}
        }
        match msg {
            Msg::SSolve(v) => {
                // Pre-emption: the most recent S-SOLVE* invocation wins.
                self.level_mut(d).s_task = Some(STask::new(v));
            }
            Msg::PSolve(v) => {
                // Case two: P-SOLVE*(v) while S-SOLVE*(v) is in progress
                // — capture the stack path and walk it.
                let has_matching_stask = self.levels[d as usize]
                    .s_task
                    .as_ref()
                    .is_some_and(|t| t.root == v);
                if has_matching_stask {
                    let t = self.level_mut(d).s_task.take().unwrap();
                    // A traversal is itself the most recent invocation:
                    // it replaces whatever P-task was active.
                    let lvl = self.level_mut(d);
                    lvl.p_task = Some(PTask::Traverse {
                        frames: t.stack,
                        idx: 0,
                    });
                    lvl.pending_p = None;
                } else {
                    // Case one.
                    self.level_mut(d).install_p(PTask::Expand { v });
                }
            }
            Msg::Resume(v, k) => {
                // Children 0..k of v are known 0; child k is covered by
                // the walk's deeper promotions; the walk also restarts
                // the look-ahead on child k+1 (recorded here so the
                // coordinator doesn't re-send it).
                let arity = if self.tree.is_expanded(v) && !self.tree.is_leaf(v) {
                    self.tree.arity(v)
                } else {
                    0
                };
                let promoted_s = (k + 1 < arity).then_some(k + 1);
                self.level_mut(d).install_p(PTask::Coordinate {
                    v,
                    zeros: k,
                    promoted_p: Some(k),
                    promoted_s,
                });
                self.refresh_coordinator(d);
            }
            Msg::Val(u, b) => {
                if self.val_memo.len() <= u as usize {
                    self.val_memo.resize(u as usize + 1, None);
                }
                self.val_memo[u as usize] = Some(b);
                self.refresh_coordinator(d);
            }
        }
    }

    fn memo(&self, u: NodeId) -> Option<bool> {
        self.val_memo.get(u as usize).copied().flatten()
    }

    /// Is there a live invocation (or one in flight) responsible for
    /// reporting `val(node)` from level `d`?
    fn lineage_on(&self, d: u32, node: NodeId) -> bool {
        if self
            .in_flight
            .iter()
            .any(|&(dest, m)| dest == d && message_covers(m, node))
        {
            return true;
        }
        let Some(lvl) = self.levels.get(d as usize) else {
            return false;
        };
        if lvl.inbox.iter().any(|&m| message_covers(m, node)) {
            return true;
        }
        let p_covers = |p: &PTask| match p {
            PTask::Expand { v } => *v == node,
            PTask::Coordinate { v, .. } => *v == node,
            PTask::Traverse { frames, .. } => frames.first().is_some_and(|f| f.node == node),
        };
        lvl.p_task.as_ref().is_some_and(p_covers)
            || lvl.pending_p.as_ref().is_some_and(p_covers)
            || lvl.s_task.as_ref().is_some_and(|t| t.root == node)
    }

    /// Advance the coordinator at level `d` with everything the memo
    /// knows: finish `v` when decided, otherwise (re-)dispatch the
    /// parallel search of the leftmost unknown child and the sequential
    /// look-ahead on its successor — the width-1 cascade.
    fn refresh_coordinator(&mut self, d: u32) {
        let Some(PTask::Coordinate { v, .. }) = &self.levels[d as usize].p_task else {
            return; // no active coordinator (stale value, or parked walk)
        };
        let v = *v;
        if !self.tree.is_expanded(v) || self.tree.is_leaf(v) {
            return;
        }
        let arity = self.tree.arity(v);
        // Advance `zeros` over children with memoized values.
        let mut outcome: Option<bool> = None;
        {
            let mut z = match &self.levels[d as usize].p_task {
                Some(PTask::Coordinate { zeros, .. }) => *zeros,
                _ => unreachable!(),
            };
            loop {
                if z == arity {
                    outcome = Some(true); // all children 0 ⇒ NOR(v) = 1
                    break;
                }
                match self.memo(self.tree.child(v, z)) {
                    Some(true) => {
                        outcome = Some(false); // a 1-child ⇒ NOR(v) = 0
                        break;
                    }
                    Some(false) => z += 1,
                    None => break,
                }
            }
            if let Some(PTask::Coordinate { zeros, .. }) = &mut self.levels[d as usize].p_task {
                *zeros = z;
            }
        }
        if let Some(val) = outcome {
            self.levels[d as usize].p_task = None;
            self.send(d as i64 - 1, Msg::Val(v, val));
            return;
        }
        // Unfinished: make sure the cascade below is running.
        let (zeros, promoted_p, promoted_s) = match &self.levels[d as usize].p_task {
            Some(PTask::Coordinate {
                zeros,
                promoted_p,
                promoted_s,
                ..
            }) => (*zeros, *promoted_p, *promoted_s),
            _ => unreachable!(),
        };
        let mut sends = Vec::new();
        if promoted_p.is_none_or(|p| p < zeros) {
            sends.push(Msg::PSolve(self.tree.child(v, zeros)));
            if let Some(PTask::Coordinate { promoted_p, .. }) = &mut self.levels[d as usize].p_task
            {
                *promoted_p = Some(zeros);
            }
        }
        if zeros + 1 < arity && promoted_s.is_none_or(|s| s < zeros + 1) {
            sends.push(Msg::SSolve(self.tree.child(v, zeros + 1)));
            if let Some(PTask::Coordinate { promoted_s, .. }) = &mut self.levels[d as usize].p_task
            {
                *promoted_s = Some(zeros + 1);
            }
        }
        for m in sends {
            self.send(d as i64 + 1, m);
        }
    }

    /// Watchdog: the pre-emption rule can orphan a subtree when two
    /// coordinator lineages transiently collide on one level's single
    /// P-slot (the paper's "all other invocations automatically become
    /// terminated" — without a re-issue, the parent would wait forever).
    /// A coordinator that has been waiting on a child with no live
    /// lineage re-sends the request; the memo cut-off in `receive`
    /// makes re-issues of already-solved subtrees answer instantly.
    fn watchdog(&mut self) {
        const PATIENCE: u32 = 8;
        for d in 0..self.levels.len() {
            let Some(PTask::Coordinate { v, zeros, .. }) = self.levels[d].p_task else {
                self.levels[d].stuck_ticks = 0;
                continue;
            };
            if !self.tree.is_expanded(v) || self.tree.is_leaf(v) {
                continue;
            }
            let arity = self.tree.arity(v);
            if zeros >= arity {
                continue; // refresh will close it out
            }
            let pending = self.tree.child(v, zeros);
            if self.lineage_on(d as u32 + 1, pending) {
                self.levels[d].stuck_ticks = 0;
                continue;
            }
            self.levels[d].stuck_ticks += 1;
            if self.levels[d].stuck_ticks >= PATIENCE {
                self.levels[d].stuck_ticks = 0;
                self.send(d as i64 + 1, Msg::PSolve(pending));
            }
        }
    }

    /// One unit action for the logical processor at level `d`, if it has
    /// any work.  Returns true if an action was performed.
    fn work(&mut self, d: u32) -> bool {
        if d as usize >= self.levels.len() {
            return false;
        }
        // Priority: coordinator work (expand / stack walk), then the
        // sequential look-ahead search.
        match self.levels[d as usize].p_task.take() {
            Some(PTask::Expand { v }) => {
                self.work_actions += 1;
                match self.tree.expand(v) {
                    NodeKind::Leaf(val) => {
                        self.send(d as i64 - 1, Msg::Val(v, val != 0));
                        // p_task stays None: this invocation halts.
                    }
                    NodeKind::Internal(_) => {
                        self.levels[d as usize].p_task = Some(PTask::Coordinate {
                            v,
                            zeros: 0,
                            promoted_p: None,
                            promoted_s: None,
                        });
                        // The refresh dispatches P-SOLVE*(first child)
                        // and S-SOLVE*(second child), the paper's case
                        // one.
                        self.refresh_coordinator(d);
                    }
                }
                true
            }
            Some(PTask::Traverse { frames, idx }) => {
                self.work_actions += 1;
                let f: Frame = frames[idx];
                let u = f.node;
                let du = self.tree.depth(u) as i64;
                if f.state == UNEXPANDED {
                    // Terminal node of the path.
                    self.send(du, Msg::PSolve(u));
                } else {
                    // Child f.state is on the path: u resumes as a
                    // coordinator and the look-ahead restarts on the
                    // next sibling.
                    self.send(du, Msg::Resume(u, f.state));
                    if f.state + 1 < self.tree.arity(u) {
                        let next = self.tree.child(u, f.state + 1);
                        self.send(du + 1, Msg::SSolve(next));
                    }
                }
                let next = idx + 1;
                if next < frames.len() {
                    self.levels[d as usize].p_task = Some(PTask::Traverse { frames, idx: next });
                } else {
                    // Walk complete: install the invocation that arrived
                    // during the walk (typically our own Resume(v, ..)).
                    self.levels[d as usize].p_task = self.levels[d as usize].pending_p.take();
                    self.refresh_coordinator(d);
                }
                true
            }
            Some(coord @ PTask::Coordinate { .. }) => {
                // Coordinators wait for messages; no unit work.  Put it
                // back and fall through to the S-task.
                self.levels[d as usize].p_task = Some(coord);
                self.s_work(d)
            }
            None => self.s_work(d),
        }
    }

    fn s_work(&mut self, d: u32) -> bool {
        let Some(task) = &mut self.levels[d as usize].s_task else {
            return false;
        };
        self.work_actions += 1;
        let root = task.root;
        if let Some(b) = task.step(&mut self.tree) {
            self.levels[d as usize].s_task = None;
            self.send(d as i64 - 1, Msg::Val(root, b));
        }
        true
    }

    /// Run to completion; `max_ticks` is a safety valve against
    /// implementation bugs.
    fn run(&mut self, max_ticks: u64) -> MsgSimResult {
        let mut ticks = 0u64;
        while self.root_value.is_none() {
            assert!(
                ticks < max_ticks,
                "message-passing machine did not converge"
            );
            // Fail fast on a hard deadlock: nothing in flight, nothing
            // runnable, no coordinator left to watchdog, root unknown ⇒
            // the machine can never progress.
            if ticks > 0 {
                let quiescent = self.in_flight.is_empty()
                    && self.levels.iter().all(|l| {
                        !l.has_work() && !matches!(l.p_task, Some(PTask::Coordinate { .. }))
                    });
                assert!(
                    !quiescent,
                    "message-passing machine deadlocked at tick {ticks}"
                );
            }
            ticks += 1;
            self.deliver();
            self.watchdog();
            if self.root_value.is_some() {
                break;
            }
            // Each physical processor performs one unit action on one of
            // its levels (zones of `processors` consecutive levels,
            // round-robin within the zone set).
            let nlevels = self.levels.len() as u32;
            for proc in 0..self.processors.min(nlevels.max(1)) {
                // Levels proc, proc+p, proc+2p, ... — scan from the
                // round-robin pointer.
                let mut zones: Vec<u32> =
                    (proc..nlevels).step_by(self.processors as usize).collect();
                if zones.is_empty() {
                    continue;
                }
                let start = (self.rr[proc as usize] as usize) % zones.len();
                zones.rotate_left(start);
                for (off, d) in zones.iter().enumerate() {
                    if self.levels[*d as usize].has_work() && self.work(*d) {
                        if self.level_work.len() <= *d as usize {
                            self.level_work.resize(*d as usize + 1, 0);
                        }
                        self.level_work[*d as usize] += 1;
                        self.rr[proc as usize] = ((start + off + 1) % zones.len()) as u32;
                        break;
                    }
                }
            }
        }
        MsgSimResult {
            value: i64::from(self.root_value.unwrap()),
            ticks,
            work_actions: self.work_actions,
            unique_expansions: self.tree.expansions(),
            messages: self.msg_counts,
            processors: self.processors,
            level_work: std::mem::take(&mut self.level_work),
        }
    }
}

/// Does delivering `m` (re-)create an invocation that will eventually
/// report `val(node)`?
fn message_covers(m: Msg, node: NodeId) -> bool {
    match m {
        Msg::SSolve(v) | Msg::PSolve(v) | Msg::Resume(v, _) => v == node,
        Msg::Val(v, _) => v == node,
    }
}

/// Simulate Section 7's machine with one processor per level (the
/// paper's primary configuration).
///
/// ```
/// use gt_msgsim::simulate;
/// use gt_tree::gen::UniformSource;
///
/// let tree = UniformSource::nor_worst_case(2, 8);
/// let result = simulate(&tree);
/// assert_eq!(result.value, 1);
/// assert!(result.ticks > 0 && result.total_messages() > 0);
/// ```
pub fn simulate<S: TreeSource>(source: S) -> MsgSimResult {
    let hint = source.height_hint().unwrap_or(64);
    simulate_with_processors(source, hint + 1)
}

/// Simulate with a fixed number `p ≥ 1` of physical processors using
/// zone multiplexing (the paper's closing remark of Section 7).
pub fn simulate_with_processors<S: TreeSource>(source: S, p: u32) -> MsgSimResult {
    Machine::new(source, p).run(1_u64 << 34)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_tree::gen::UniformSource;
    use gt_tree::minimax::{nor_value, seq_solve};
    use gt_tree::ExplicitTree;

    #[test]
    fn single_leaf_root() {
        let r = simulate(ExplicitTree::leaf(1));
        assert_eq!(r.value, 1);
        assert!(r.ticks <= 3);
        assert_eq!(r.unique_expansions, 1);
    }

    #[test]
    fn two_leaf_tree() {
        for (a, b) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
            let t = ExplicitTree::internal(vec![ExplicitTree::leaf(a), ExplicitTree::leaf(b)]);
            let r = simulate(&t);
            assert_eq!(r.value, nor_value(&t), "leaves {a},{b}");
        }
    }

    #[test]
    fn correct_on_random_uniform_trees() {
        for seed in 0..20 {
            for n in [3u32, 5, 8] {
                let s = UniformSource::nor_iid(2, n, 0.5, seed);
                let r = simulate(&s);
                assert_eq!(r.value, nor_value(&s), "n={n} seed={seed}");
            }
        }
    }

    #[test]
    fn correct_on_ternary_and_quaternary_trees() {
        // The d-ary generalization (the paper's binary restriction was
        // expository only).
        for seed in 0..12 {
            for (d, n) in [(3u32, 5u32), (4, 4)] {
                let s = UniformSource::nor_iid(d, n, 0.4, seed);
                let r = simulate(&s);
                assert_eq!(r.value, nor_value(&s), "d={d} n={n} seed={seed}");
                let r = simulate_with_processors(&s, 3);
                assert_eq!(r.value, nor_value(&s), "p=3 d={d} n={n} seed={seed}");
            }
        }
    }

    #[test]
    fn correct_on_worst_case_trees() {
        for n in [4u32, 8, 10] {
            let s = UniformSource::nor_worst_case(2, n);
            let r = simulate(&s);
            assert_eq!(r.value, 1, "n={n}");
        }
        let s = UniformSource::nor_worst_case(3, 6);
        assert_eq!(simulate(&s).value, 1);
    }

    #[test]
    fn correct_with_few_processors() {
        for p in [1u32, 2, 3, 5] {
            for seed in 0..8 {
                let s = UniformSource::nor_iid(2, 7, 0.5, seed);
                let r = simulate_with_processors(&s, p);
                assert_eq!(r.value, nor_value(&s), "p={p} seed={seed}");
                assert_eq!(r.processors, p);
            }
        }
    }

    #[test]
    fn speedup_over_sequential_on_worst_case() {
        // On the worst-case tree the sequential machine expands every
        // node; the parallel machine must finish in noticeably fewer
        // ticks.
        let n = 12u32;
        let s = UniformSource::nor_worst_case(2, n);
        let seq = seq_solve(&s, false).nodes_expanded;
        let r = simulate(&s);
        assert_eq!(r.value, 1);
        let speedup = seq as f64 / r.ticks as f64;
        assert!(
            speedup > 2.0,
            "expected real speedup, got {speedup:.2} ({seq} / {})",
            r.ticks
        );
    }

    #[test]
    fn single_processor_is_roughly_sequential() {
        // p = 1 serializes everything; ticks should be within a modest
        // factor of the sequential expansion count (messaging and
        // speculative look-ahead add overhead).
        let s = UniformSource::nor_worst_case(2, 8);
        let seq = seq_solve(&s, false).nodes_expanded;
        let r = simulate_with_processors(&s, 1);
        assert_eq!(r.value, 1);
        assert!(
            r.ticks >= seq,
            "one processor cannot beat sequential: {} < {seq}",
            r.ticks
        );
    }

    #[test]
    fn message_counts_are_populated() {
        let s = UniformSource::nor_iid(2, 6, 0.5, 3);
        let r = simulate(&s);
        assert!(r.total_messages() > 0);
        // At least one P-SOLVE* (the kick-off) and one val (the answer).
        assert!(r.messages[1] >= 1);
        assert!(r.messages[4] >= 1);
    }

    #[test]
    fn level_work_accounts_for_all_actions() {
        let s = UniformSource::nor_worst_case(2, 10);
        let r = simulate(&s);
        let sum: u64 = r.level_work.iter().sum();
        assert_eq!(sum, r.work_actions);
        assert!(r.level_imbalance() >= 1.0);
    }

    #[test]
    fn more_processors_never_hurt_much() {
        let s = UniformSource::nor_worst_case(2, 10);
        let r_full = simulate(&s);
        let r_half = simulate_with_processors(&s, 5);
        // Zone multiplexing with fewer processors takes at least as long.
        assert!(r_half.ticks >= r_full.ticks);
        assert_eq!(r_half.value, r_full.value);
    }
}
