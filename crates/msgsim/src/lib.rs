//! # gt-msgsim — Section 7's message-passing implementation, simulated
//!
//! The paper closes the gap between the node-expansion model and real
//! machines with a concrete implementation of N-Parallel SOLVE of width
//! 1 for **binary NOR trees** on a message-passing multiprocessor where
//! any processor can send a message to any other in unit time:
//!
//! * one processor per tree *level*; processor `d` owns every invocation
//!   whose root node lies at level `d`;
//! * six message types: `S-SOLVE*(v)`, `P-SOLVE*(v)`, `P-SOLVE**(v)`,
//!   `P-SOLVE***(v)`, `val(v)=0`, `val(v)=1`;
//! * `S-SOLVE*` is a *non-recursive* depth-first search run entirely by
//!   one processor, with an explicit stack holding the path to the node
//!   being expanded;
//! * no abort messages: the **pre-emption rule** says a processor works
//!   only on its most recent `S-SOLVE*` invocation and its most recent
//!   `P-SOLVE*`-family invocation — anything older is implicitly
//!   terminated;
//! * when `P-SOLVE*(v)` arrives while `S-SOLVE*(v)` is in progress (the
//!   paper's "case two"), the processor *walks the stack path* top-down,
//!   one node per time step, promoting each path node to a coordinator
//!   (`P-SOLVE**`/`P-SOLVE***`) and restarting the right-sibling
//!   look-ahead searches on the levels below;
//! * a fixed processor count `p` is supported by *zone multiplexing*:
//!   processor `d` serves level `d` of every zone of `p` consecutive
//!   levels, round-robin.
//!
//! This crate is a faithful discrete-event simulation of that machine:
//! time advances in ticks, messages sent at tick `t` arrive at `t+1`,
//! and each (physical) processor performs at most one unit action per
//! tick — one node expansion, or one step of the case-two stack walk.

pub mod machine;
pub mod proc;

pub use machine::{simulate, simulate_with_processors, MsgSimResult};
