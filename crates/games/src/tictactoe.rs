//! Tic-Tac-Toe: a game small enough to solve exactly, used to validate
//! that the parallel engines compute the same game-theoretic value and
//! move as exhaustive search.

use crate::Game;
use gt_tree::Value;

/// Zero-sized game type; all state lives in [`Board`].
#[derive(Debug, Clone, Copy, Default)]
pub struct TicTacToe;

/// 3×3 board.  Cells are indexed row-major 0..9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Board {
    /// Bitmask of X's cells (X always moves first and is the MAX player).
    pub x: u16,
    /// Bitmask of O's cells.
    pub o: u16,
}

const LINES: [u16; 8] = [
    0b000_000_111,
    0b000_111_000,
    0b111_000_000, // rows
    0b001_001_001,
    0b010_010_010,
    0b100_100_100, // columns
    0b100_010_001,
    0b001_010_100, // diagonals
];

const FULL: u16 = 0b111_111_111;

impl Board {
    /// The empty board.
    pub fn empty() -> Self {
        Board { x: 0, o: 0 }
    }

    /// True if it is X's turn (X moves on even plies).
    pub fn x_to_move(&self) -> bool {
        self.x.count_ones() == self.o.count_ones()
    }

    /// Does `mask` contain a completed line?
    #[allow(clippy::manual_contains)] // `contains` would need the masked value per line
    fn wins(mask: u16) -> bool {
        LINES.iter().any(|&l| mask & l == l)
    }

    /// Game outcome, if the position is terminal: `Some(+1)` X wins,
    /// `Some(-1)` O wins, `Some(0)` draw, `None` if play continues.
    pub fn outcome(&self) -> Option<Value> {
        if Self::wins(self.x) {
            Some(1)
        } else if Self::wins(self.o) {
            Some(-1)
        } else if (self.x | self.o) == FULL {
            Some(0)
        } else {
            None
        }
    }

    /// Indices of the empty cells, ascending.
    pub fn empty_cells(&self) -> Vec<u16> {
        let occ = self.x | self.o;
        (0..9).filter(|&c| occ & (1 << c) == 0).collect()
    }
}

impl Game for TicTacToe {
    type State = Board;

    fn num_moves(&self, state: &Self::State) -> u32 {
        if state.outcome().is_some() {
            0
        } else {
            9 - (state.x | state.o).count_ones()
        }
    }

    fn apply(&self, state: &Self::State, index: u32) -> Self::State {
        let cell = state.empty_cells()[index as usize];
        let mut next = *state;
        if state.x_to_move() {
            next.x |= 1 << cell;
        } else {
            next.o |= 1 << cell;
        }
        next
    }

    fn evaluate(&self, state: &Self::State) -> Value {
        // Exact at terminals; prefer faster wins by scaling with the
        // number of empty cells remaining.
        let empties = Value::from(9 - (state.x | state.o).count_ones());
        match state.outcome() {
            Some(1) => 10 + empties,
            Some(-1) => -(10 + empties),
            Some(_) => 0,
            None => 0, // horizon heuristic: neutral
        }
    }

    fn first_player_to_move(&self, state: &Self::State) -> bool {
        state.x_to_move()
    }

    fn initial(&self) -> Self::State {
        Board::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_board_has_nine_moves() {
        let g = TicTacToe;
        let b = g.initial();
        assert_eq!(g.num_moves(&b), 9);
        assert!(b.x_to_move());
        assert_eq!(b.outcome(), None);
    }

    #[test]
    fn apply_alternates_players() {
        let g = TicTacToe;
        let b1 = g.apply(&g.initial(), 4); // X center
        assert!(!b1.x_to_move());
        assert_eq!(b1.x, 1 << 4);
        let b2 = g.apply(&b1, 0); // O corner (cell 0)
        assert_eq!(b2.o, 1);
        assert!(b2.x_to_move());
    }

    #[test]
    fn row_win_detected() {
        let b = Board {
            x: 0b000_000_111,
            o: 0b000_011_000,
        };
        assert_eq!(b.outcome(), Some(1));
        assert_eq!(TicTacToe.num_moves(&b), 0);
        assert!(TicTacToe.evaluate(&b) > 0);
    }

    #[test]
    fn diagonal_win_for_o() {
        // O on the anti-diagonal (cells 2, 4, 6).
        let b = Board {
            x: 0b000_011_001,
            o: 0b001_010_100,
        };
        assert_eq!(b.outcome(), Some(-1));
        assert!(TicTacToe.evaluate(&b) < 0);
    }

    #[test]
    fn draw_detected() {
        // X O X / X O O / O X X  — no completed line.
        let b = Board {
            x: 0b110_001_101,
            o: 0b001_110_010,
        };
        assert_eq!((b.x | b.o), FULL);
        assert_eq!(b.outcome(), Some(0));
        assert_eq!(TicTacToe.evaluate(&b), 0);
    }

    #[test]
    fn move_indices_map_to_empty_cells() {
        let g = TicTacToe;
        let mut b = g.initial();
        b = g.apply(&b, 0); // X takes cell 0
                            // Now move index 0 refers to cell 1.
        let b2 = g.apply(&b, 0);
        assert_eq!(b2.o, 1 << 1);
    }
}
