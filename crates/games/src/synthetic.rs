//! A synthetic game with configurable branching factor and leaf cost.
//!
//! The wall-clock experiments need to sweep the ratio of leaf-evaluation
//! cost to bookkeeping overhead (the leaf-evaluation model charges only
//! for leaves, so the paper's speed-ups surface in wall-clock time only
//! when leaves dominate).  `SyntheticGame` provides a deterministic,
//! reproducible game whose heuristic evaluation burns a configurable
//! number of arithmetic operations.

use crate::Game;
use gt_tree::source::mix64;
use gt_tree::Value;

/// A deterministic synthetic game.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticGame {
    /// Number of moves available in every non-terminal position.
    pub branching: u32,
    /// Positions become terminal after this many plies.
    pub max_plies: u32,
    /// Iterations of the mixing loop per evaluation — the artificial
    /// leaf cost.
    pub eval_work: u32,
    /// Instance seed.
    pub seed: u64,
}

impl SyntheticGame {
    /// A synthetic game with the given branching factor, depth and
    /// per-leaf cost.
    pub fn new(branching: u32, max_plies: u32, eval_work: u32, seed: u64) -> Self {
        assert!(branching >= 1);
        SyntheticGame {
            branching,
            max_plies,
            eval_work,
            seed,
        }
    }
}

/// The move history, compressed into a running hash plus the ply count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SyntheticState {
    /// Rolling hash of the move sequence.
    pub digest: u64,
    /// Number of plies played.
    pub plies: u32,
}

impl Game for SyntheticGame {
    type State = SyntheticState;

    fn num_moves(&self, state: &Self::State) -> u32 {
        if state.plies >= self.max_plies {
            0
        } else {
            self.branching
        }
    }

    fn apply(&self, state: &Self::State, index: u32) -> Self::State {
        SyntheticState {
            digest: mix64(state.digest ^ u64::from(index).wrapping_mul(0x9e37_79b9)),
            plies: state.plies + 1,
        }
    }

    fn evaluate(&self, state: &Self::State) -> Value {
        // Burn `eval_work` rounds of mixing, then fold to a small score.
        let mut h = state.digest ^ self.seed;
        for _ in 0..self.eval_work {
            h = mix64(h);
        }
        ((h % 2001) as Value) - 1000
    }

    fn first_player_to_move(&self, state: &Self::State) -> bool {
        state.plies % 2 == 0
    }

    fn initial(&self) -> Self::State {
        SyntheticState {
            digest: mix64(self.seed),
            plies: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_parameters() {
        let g = SyntheticGame::new(3, 2, 0, 1);
        let s0 = g.initial();
        assert_eq!(g.num_moves(&s0), 3);
        let s1 = g.apply(&s0, 1);
        assert_eq!(g.num_moves(&s1), 3);
        let s2 = g.apply(&s1, 0);
        assert_eq!(g.num_moves(&s2), 0, "terminal at max_plies");
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a = SyntheticGame::new(2, 4, 3, 1);
        let b = SyntheticGame::new(2, 4, 3, 1);
        let c = SyntheticGame::new(2, 4, 3, 2);
        let s = a.apply(&a.initial(), 1);
        assert_eq!(a.evaluate(&s), b.evaluate(&b.apply(&b.initial(), 1)));
        assert_ne!(a.initial().digest, c.initial().digest);
    }

    #[test]
    fn different_moves_reach_different_states() {
        let g = SyntheticGame::new(4, 3, 0, 7);
        let s0 = g.initial();
        let kids: Vec<u64> = (0..4).map(|i| g.apply(&s0, i).digest).collect();
        let mut dedup = kids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 4, "digest collision: {kids:?}");
    }

    #[test]
    fn scores_are_bounded() {
        let g = SyntheticGame::new(2, 3, 5, 11);
        let mut s = g.initial();
        for i in 0..3 {
            s = g.apply(&s, i % 2);
        }
        let v = g.evaluate(&s);
        assert!((-1000..=1000).contains(&v));
    }
}
