//! # gt-games — concrete games exposed as game trees
//!
//! The paper motivates game-tree evaluation with game-playing programs
//! ("game trees traditionally occur in the game-playing applications of
//! AI such as chess").  This crate supplies the games the examples and
//! wall-clock benchmarks search:
//!
//! * [`TicTacToe`] — small enough to solve exactly;
//! * [`Connect4`] — a bitboard implementation with a line-counting
//!   heuristic, the "wide and shallow" regime Section 8 contrasts with
//!   the paper's asymptotics;
//! * [`SyntheticGame`] — a reproducible synthetic game with configurable
//!   branching factor and per-leaf evaluation cost, used to sweep the
//!   leaf-cost axis in the wall-clock experiments.
//!
//! [`GameTreeSource`] adapts any [`Game`] + depth limit into a
//! [`gt_tree::TreeSource`], so every simulator and engine in the
//! workspace can run on real game trees unchanged.

pub mod connect4;
pub mod nim;
pub mod othello;
pub mod perft;
pub mod synthetic;
pub mod tictactoe;
pub mod tree;

pub use connect4::Connect4;
pub use nim::{Nim, NimState};
pub use othello::{Othello, OthelloState};
pub use perft::{perft, perft_vector};
pub use synthetic::SyntheticGame;
pub use tictactoe::TicTacToe;
pub use tree::GameTreeSource;

use gt_tree::Value;

/// A two-player, zero-sum, perfect-information game.
///
/// Scores are *absolute*: always from the perspective of the game's
/// first player, independent of whose turn it is.  A search therefore
/// maximizes at positions where the first player moves and minimizes
/// otherwise — the paper's MIN/MAX alternation.
pub trait Game: Sync {
    /// A position.
    type State: Clone + Send + Sync;

    /// Enumerate the legal moves of `state` as child indices `0..n`; `0`
    /// means the position is terminal.
    fn num_moves(&self, state: &Self::State) -> u32;

    /// Apply the `index`-th legal move.
    fn apply(&self, state: &Self::State, index: u32) -> Self::State;

    /// Score `state` from the first player's perspective.  Used both for
    /// terminal positions and as the heuristic at the search horizon.
    fn evaluate(&self, state: &Self::State) -> Value;

    /// True if the game's first player (the maximizer) is to move.
    fn first_player_to_move(&self, state: &Self::State) -> bool;

    /// The starting position.
    fn initial(&self) -> Self::State;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_is_object_safe_enough_for_generics() {
        // Compile-time check: a generic function over Game.
        fn probe<G: Game>(g: &G) -> u32 {
            g.num_moves(&g.initial())
        }
        assert_eq!(probe(&TicTacToe), 9);
        assert_eq!(probe(&Connect4::default()), 7);
    }
}
