//! Othello (Reversi) on a 6×6 board: the most branching-rich game in
//! the suite, with captures, forced passes and a mobility+discs
//! heuristic.  6×6 keeps full-game searches affordable while exercising
//! variable arity (0–12 moves), non-alternating effective turns (pass
//! moves) and deep tactical flips.

use crate::Game;
use gt_tree::Value;

const N: i32 = 6;
const CELLS: u32 = 36;

/// Othello rules object.
#[derive(Debug, Clone, Copy, Default)]
pub struct Othello;

/// A 6×6 Othello position (bitboards over 36 cells, row-major).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OthelloState {
    /// Discs of the first player (Black).
    pub black: u64,
    /// Discs of the second player (White).
    pub white: u64,
    /// True if Black is to move.
    pub black_to_move: bool,
}

const DIRS: [(i32, i32); 8] = [
    (-1, -1),
    (-1, 0),
    (-1, 1),
    (0, -1),
    (0, 1),
    (1, -1),
    (1, 0),
    (1, 1),
];

fn bit(r: i32, c: i32) -> u64 {
    1u64 << (r * N + c)
}

fn on_board(r: i32, c: i32) -> bool {
    (0..N).contains(&r) && (0..N).contains(&c)
}

impl OthelloState {
    /// The standard starting position (center 2×2, diagonal colours).
    pub fn start() -> Self {
        // Center cells (2,2),(3,3) white... use Othello convention:
        // (2,3),(3,2) black; (2,2),(3,3) white.
        OthelloState {
            black: bit(2, 3) | bit(3, 2),
            white: bit(2, 2) | bit(3, 3),
            black_to_move: true,
        }
    }

    fn mover_discs(&self) -> (u64, u64) {
        if self.black_to_move {
            (self.black, self.white)
        } else {
            (self.white, self.black)
        }
    }

    /// Discs that would flip if the mover played at `(r, c)`; 0 if the
    /// move is illegal.
    pub fn flips(&self, r: i32, c: i32) -> u64 {
        let (mine, theirs) = self.mover_discs();
        let occupied = self.black | self.white;
        if !on_board(r, c) || occupied & bit(r, c) != 0 {
            return 0;
        }
        let mut all = 0u64;
        for (dr, dc) in DIRS {
            let mut run = 0u64;
            let (mut rr, mut cc) = (r + dr, c + dc);
            while on_board(rr, cc) && theirs & bit(rr, cc) != 0 {
                run |= bit(rr, cc);
                rr += dr;
                cc += dc;
            }
            if run != 0 && on_board(rr, cc) && mine & bit(rr, cc) != 0 {
                all |= run;
            }
        }
        all
    }

    /// Legal placement cells for the side to move (row-major order).
    pub fn legal_moves(&self) -> Vec<(i32, i32)> {
        let mut out = Vec::new();
        for r in 0..N {
            for c in 0..N {
                if self.flips(r, c) != 0 {
                    out.push((r, c));
                }
            }
        }
        out
    }

    /// Does the side to move have any legal placement?
    pub fn can_move(&self) -> bool {
        for r in 0..N {
            for c in 0..N {
                if self.flips(r, c) != 0 {
                    return true;
                }
            }
        }
        false
    }

    /// Apply a placement (must be legal).
    pub fn place(&self, r: i32, c: i32) -> OthelloState {
        let flips = self.flips(r, c);
        debug_assert_ne!(flips, 0, "illegal move ({r},{c})");
        let mut next = *self;
        if self.black_to_move {
            next.black |= flips | bit(r, c);
            next.white &= !flips;
        } else {
            next.white |= flips | bit(r, c);
            next.black &= !flips;
        }
        next.black_to_move = !next.black_to_move;
        next
    }

    /// Apply a pass (legal only when the mover cannot place but the
    /// opponent can).
    pub fn pass(&self) -> OthelloState {
        let mut next = *self;
        next.black_to_move = !next.black_to_move;
        next
    }

    /// The game is over when neither side can place.
    pub fn is_terminal(&self) -> bool {
        if (self.black | self.white).count_ones() == CELLS {
            return true;
        }
        !self.can_move() && !self.pass().can_move()
    }

    /// Disc difference, Black − White.
    pub fn disc_diff(&self) -> i32 {
        self.black.count_ones() as i32 - self.white.count_ones() as i32
    }
}

impl Game for Othello {
    type State = OthelloState;

    fn num_moves(&self, state: &Self::State) -> u32 {
        if state.is_terminal() {
            return 0;
        }
        let placements = state.legal_moves().len() as u32;
        if placements == 0 {
            1 // forced pass
        } else {
            placements
        }
    }

    fn apply(&self, state: &Self::State, index: u32) -> Self::State {
        let moves = state.legal_moves();
        if moves.is_empty() {
            debug_assert_eq!(index, 0, "pass is the only move");
            state.pass()
        } else {
            let (r, c) = moves[index as usize];
            state.place(r, c)
        }
    }

    fn evaluate(&self, state: &Self::State) -> Value {
        let diff = Value::from(state.disc_diff());
        if state.is_terminal() {
            // Exact outcome dominates any heuristic scale.
            return diff * 1000;
        }
        // Heuristic: discs + mobility (moves available to Black minus
        // moves available to White, each measured on their own turn).
        let my_mob = state.legal_moves().len() as Value;
        let their_mob = state.pass().legal_moves().len() as Value;
        let mobility = if state.black_to_move {
            my_mob - their_mob
        } else {
            their_mob - my_mob
        };
        diff + 3 * mobility
    }

    fn first_player_to_move(&self, state: &Self::State) -> bool {
        state.black_to_move
    }

    fn initial(&self) -> Self::State {
        OthelloState::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GameTreeSource;
    use gt_tree::minimax::{minimax_value, seq_alphabeta};

    #[test]
    fn opening_has_four_moves() {
        // Symmetric start: Black has exactly 4 legal placements.
        let s = OthelloState::start();
        assert_eq!(s.legal_moves().len(), 4);
        assert_eq!(Othello.num_moves(&s), 4);
        assert!(!s.is_terminal());
    }

    #[test]
    fn placement_flips_captured_discs() {
        let s = OthelloState::start();
        let (r, c) = s.legal_moves()[0];
        let next = s.place(r, c);
        // Black gains the placed disc plus at least one flip; White
        // loses exactly the flipped discs.
        assert_eq!(next.black.count_ones(), 4);
        assert_eq!(next.white.count_ones(), 1);
        assert!(!next.black_to_move);
        // Total discs grow by exactly one per placement.
        assert_eq!(
            (next.black | next.white).count_ones(),
            (s.black | s.white).count_ones() + 1
        );
        // No overlap ever.
        assert_eq!(next.black & next.white, 0);
    }

    #[test]
    fn flips_rejects_occupied_and_non_flipping_cells() {
        let s = OthelloState::start();
        assert_eq!(s.flips(2, 2), 0, "occupied");
        assert_eq!(s.flips(0, 0), 0, "no line");
    }

    #[test]
    fn pass_switches_mover_only() {
        let s = OthelloState::start();
        let p = s.pass();
        assert_eq!(p.black, s.black);
        assert_eq!(p.white, s.white);
        assert_ne!(p.black_to_move, s.black_to_move);
    }

    #[test]
    fn search_is_consistent_across_algorithms() {
        let src = GameTreeSource::from_initial(Othello, 5);
        let ab = seq_alphabeta(&src, false);
        assert_eq!(ab.value, minimax_value(&src));
    }

    #[test]
    fn terminal_full_board_detected() {
        // Artificial full board.
        let full = OthelloState {
            black: (1u64 << 36) - 1,
            white: 0,
            black_to_move: true,
        };
        assert!(full.is_terminal());
        assert_eq!(Othello.num_moves(&full), 0);
        assert_eq!(Othello.evaluate(&full), 36 * 1000);
    }

    #[test]
    fn evaluate_is_zero_sum_symmetric_at_start() {
        // Disc diff 0, mobility symmetric: heuristic must be 0.
        assert_eq!(Othello.evaluate(&OthelloState::start()), 0);
    }

    #[test]
    fn deep_positions_keep_disc_invariants() {
        // Play a few plies of greedy self-play and check invariants hold.
        let g = Othello;
        let mut s = g.initial();
        for _ in 0..10 {
            if g.num_moves(&s) == 0 {
                break;
            }
            s = g.apply(&s, 0);
            assert_eq!(s.black & s.white, 0, "disc overlap");
            assert!(s.black.count_ones() + s.white.count_ones() <= CELLS);
        }
    }
}
