//! Multi-pile Nim: a game with a *closed-form* game-theoretic value
//! (Bouton's theorem: the player to move wins iff the XOR of pile sizes
//! is nonzero).  This gives the engines an exactly checkable oracle on
//! trees with highly irregular branching — a stronger correctness probe
//! than heuristic games.

use crate::Game;
use gt_tree::Value;

/// Nim rules: players alternately remove 1..=k stones from one pile
/// (`k = max_take`, unlimited if `None`); taking the last stone wins.
#[derive(Debug, Clone, Copy, Default)]
pub struct Nim {
    /// Cap on stones removable per move (`None` = whole pile allowed).
    pub max_take: Option<u32>,
}

/// A Nim position: pile sizes plus whose turn it is.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NimState {
    /// Pile sizes (zero piles are kept; moves just skip them).
    pub piles: Vec<u32>,
    /// True if the first player is to move.
    pub first_to_move: bool,
}

impl NimState {
    /// A starting position with the given piles, first player to move.
    pub fn new(piles: Vec<u32>) -> Self {
        NimState {
            piles,
            first_to_move: true,
        }
    }

    /// All stones gone?
    pub fn is_empty(&self) -> bool {
        self.piles.iter().all(|&p| p == 0)
    }

    /// Bouton: the mover wins iff the XOR of pile sizes ≠ 0 (standard
    /// Nim, unlimited take).  With `max_take = Some(k)` the analysis
    /// uses pile sizes mod (k+1).
    pub fn mover_wins(&self, max_take: Option<u32>) -> bool {
        let x = self
            .piles
            .iter()
            .map(|&p| match max_take {
                Some(k) => p % (k + 1),
                None => p,
            })
            .fold(0u32, |a, b| a ^ b);
        x != 0
    }
}

impl Nim {
    /// Enumerate the legal `(pile, take)` moves of `state`.
    fn moves(&self, state: &NimState) -> Vec<(usize, u32)> {
        let mut out = Vec::new();
        for (i, &p) in state.piles.iter().enumerate() {
            let cap = self.max_take.map_or(p, |k| k.min(p));
            for take in 1..=cap {
                out.push((i, take));
            }
        }
        out
    }
}

impl Game for Nim {
    type State = NimState;

    fn num_moves(&self, state: &Self::State) -> u32 {
        self.moves(state).len() as u32
    }

    fn apply(&self, state: &Self::State, index: u32) -> Self::State {
        let (pile, take) = self.moves(state)[index as usize];
        let mut next = state.clone();
        next.piles[pile] -= take;
        next.first_to_move = !next.first_to_move;
        next
    }

    fn evaluate(&self, state: &Self::State) -> Value {
        // Terminal: the previous mover took the last stone and won.
        if state.is_empty() {
            return if state.first_to_move { -1 } else { 1 };
        }
        // Horizon heuristic: exact, thanks to Bouton.
        let mover_wins = state.mover_wins(self.max_take);
        match (state.first_to_move, mover_wins) {
            (true, true) | (false, false) => 1,
            _ => -1,
        }
    }

    fn first_player_to_move(&self, state: &Self::State) -> bool {
        state.first_to_move
    }

    fn initial(&self) -> Self::State {
        NimState::new(vec![1, 3, 5])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GameTreeSource;
    use gt_tree::minimax::{minimax_value, seq_alphabeta};

    #[test]
    fn empty_position_is_terminal() {
        let g = Nim::default();
        let s = NimState::new(vec![0, 0]);
        assert_eq!(g.num_moves(&s), 0);
        // First to move with no stones: the second player took the last
        // stone and won.
        assert_eq!(g.evaluate(&s), -1);
    }

    #[test]
    fn move_enumeration_respects_cap() {
        let g = Nim { max_take: Some(2) };
        let s = NimState::new(vec![3, 1]);
        // Pile 0: take 1 or 2; pile 1: take 1.
        assert_eq!(g.num_moves(&s), 3);
    }

    #[test]
    fn search_agrees_with_bouton_on_small_positions() {
        let g = Nim::default();
        for piles in [
            vec![1],
            vec![2, 2],
            vec![1, 2, 3],
            vec![1, 3, 5],
            vec![4, 1],
        ] {
            let s = NimState::new(piles.clone());
            let total: u32 = piles.iter().sum();
            let src = GameTreeSource::new(g, s.clone(), total + 1);
            let search = minimax_value(&src);
            let theory = if s.mover_wins(None) { 1 } else { -1 };
            assert_eq!(search, theory, "piles {piles:?}");
            assert_eq!(seq_alphabeta(&src, false).value, theory, "ab {piles:?}");
        }
    }

    #[test]
    fn capped_nim_agrees_with_modular_bouton() {
        let g = Nim { max_take: Some(2) };
        for piles in [vec![3], vec![3, 3], vec![4, 2], vec![5, 1, 1]] {
            let s = NimState::new(piles.clone());
            let total: u32 = piles.iter().sum();
            let src = GameTreeSource::new(g, s.clone(), total + 1);
            let theory = if s.mover_wins(Some(2)) { 1 } else { -1 };
            assert_eq!(minimax_value(&src), theory, "piles {piles:?}");
        }
    }

    #[test]
    fn alphabeta_solves_mid_game_positions() {
        // (Engine coverage on Nim lives in the root integration tests;
        // here the sequential reference suffices.)
        let g = Nim::default();
        let s = NimState::new(vec![2, 3, 1]);
        let src = GameTreeSource::new(g, s.clone(), 7);
        let theory = if s.mover_wins(None) { 1 } else { -1 };
        assert_eq!(seq_alphabeta(&src, false).value, theory);
    }

    #[test]
    fn default_start_is_a_first_player_win() {
        // 1 ^ 3 ^ 5 = 7 ≠ 0.
        let g = Nim::default();
        assert!(g.initial().mover_wins(None));
    }
}
