//! `perft`: count the positions reachable at each depth of a game tree
//! — the standard way to validate move generators exactly.  For the
//! games here, shallow perft values have closed forms (no terminal
//! positions interfere yet), giving hard oracles.

use crate::Game;

/// Number of leaf positions at exactly `depth` plies below `state`
/// (terminal positions above the horizon count once, where they stop).
pub fn perft<G: Game>(game: &G, state: &G::State, depth: u32) -> u64 {
    if depth == 0 {
        return 1;
    }
    let n = game.num_moves(state);
    if n == 0 {
        return 1;
    }
    (0..n)
        .map(|i| perft(game, &game.apply(state, i), depth - 1))
        .sum()
}

/// Per-depth perft vector `[perft(1), ..., perft(max_depth)]`.
pub fn perft_vector<G: Game>(game: &G, max_depth: u32) -> Vec<u64> {
    let root = game.initial();
    (1..=max_depth).map(|d| perft(game, &root, d)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Connect4, Nim, NimState, Othello, SyntheticGame, TicTacToe};

    #[test]
    fn tictactoe_perft_matches_falling_factorials() {
        // No line can complete before ply 5, so perft(k) = 9!/(9-k)! for
        // k ≤ 4.
        let v = perft_vector(&TicTacToe, 4);
        assert_eq!(v, vec![9, 72, 504, 3024]);
    }

    #[test]
    fn tictactoe_perft5_accounts_for_wins() {
        // At ply 5 the first wins appear: 9*8*7*6*5 = 15120 sequences,
        // minus nothing (wins still count as leaves at exactly depth 5),
        // so perft(5) = 15120.  At depth 6, won games stop early, so
        // perft(6) < 15120 * 4.
        let root = TicTacToe.initial();
        assert_eq!(perft(&TicTacToe, &root, 5), 15120);
        assert!(perft(&TicTacToe, &root, 6) < 15120 * 4);
    }

    #[test]
    fn connect4_perft_is_seven_powers_early() {
        // Columns cannot fill and nobody can win before ply 7, so
        // perft(k) = 7^k for k ≤ 6.
        let v = perft_vector(&Connect4::default(), 5);
        assert_eq!(v, vec![7, 49, 343, 2401, 16807]);
    }

    #[test]
    fn synthetic_perft_is_exact_powers() {
        let g = SyntheticGame::new(3, 4, 0, 9);
        assert_eq!(perft_vector(&g, 4), vec![3, 9, 27, 81]);
        // Beyond max_plies everything is terminal.
        assert_eq!(perft(&g, &g.initial(), 5), 81);
    }

    #[test]
    fn nim_perft_counts_move_sequences() {
        // Nim [2,1]: moves = take 1 or 2 from pile 0, or 1 from pile 1 →
        // perft(1) = 3.
        let g = Nim::default();
        let s = NimState::new(vec![2, 1]);
        assert_eq!(perft(&g, &s, 1), 3);
        // Depth 2: [1,1]→(2 moves each of 2 successors)... enumerate by
        // hand: from [2,1]: take1→[1,1] (2 moves), take2→[0,1] (1 move),
        // pile1→[2,0] (2 moves) ⇒ perft(2) = 2 + 1 + 2 = 5.
        assert_eq!(perft(&g, &s, 2), 5);
    }

    #[test]
    fn othello_perft_opening() {
        // Symmetric 6x6 opening: 4 first moves; every reply count is
        // position-dependent but must be perft(2) = sum over 4 children.
        let g = Othello;
        let v1 = perft(&g, &g.initial(), 1);
        assert_eq!(v1, 4);
        let v2 = perft(&g, &g.initial(), 2);
        // By symmetry all four children have the same reply count.
        let child = g.apply(&g.initial(), 0);
        assert_eq!(v2, 4 * g.num_moves(&child) as u64);
        assert!(v2 >= 8, "suspiciously few replies: {v2}");
    }

    #[test]
    fn perft_zero_is_one() {
        assert_eq!(perft(&TicTacToe, &TicTacToe.initial(), 0), 1);
    }
}
