//! Connect Four on a 7×6 bitboard.
//!
//! This is the "wide and shallow" workload Section 8 contrasts with the
//! paper's deep-tree asymptotics: branching factor up to 7, search depth
//! limited by a heuristic horizon.  The bitboard layout is the classical
//! 7-columns-of-7-bits encoding (one spare bit per column as a sentinel),
//! which makes win detection four shifts.

use crate::Game;
use gt_tree::Value;

/// Connect Four rules object.  `width`/`height` are fixed at 7×6.
#[derive(Debug, Clone, Copy)]
pub struct Connect4 {
    /// Value awarded for a win at the horizon (scaled by remaining depth
    /// so quicker wins score higher).
    pub win_score: Value,
}

impl Default for Connect4 {
    fn default() -> Self {
        Connect4 { win_score: 1_000 }
    }
}

const WIDTH: u32 = 7;
const HEIGHT: u32 = 6;
const COL_BITS: u32 = HEIGHT + 1; // one sentinel bit per column

/// A Connect Four position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Position {
    /// Stones of the player who moved first (MAX).
    pub first: u64,
    /// Stones of both players.
    pub occupied: u64,
    /// Plies played so far.
    pub plies: u32,
}

impl Position {
    /// The empty board.
    pub fn empty() -> Self {
        Position {
            first: 0,
            occupied: 0,
            plies: 0,
        }
    }

    /// True if the first player (MAX) is to move.
    pub fn first_to_move(&self) -> bool {
        self.plies.is_multiple_of(2)
    }

    fn column_mask(col: u32) -> u64 {
        ((1u64 << HEIGHT) - 1) << (col * COL_BITS)
    }

    /// Can a stone be dropped in `col`?
    pub fn column_open(&self, col: u32) -> bool {
        self.occupied & Self::column_mask(col) != Self::column_mask(col)
    }

    /// Columns that accept a stone, left to right.
    pub fn open_columns(&self) -> Vec<u32> {
        (0..WIDTH).filter(|&c| self.column_open(c)).collect()
    }

    /// Drop a stone for the side to move in `col`.
    pub fn drop(&self, col: u32) -> Position {
        debug_assert!(self.column_open(col));
        let col_occ = self.occupied & Self::column_mask(col);
        let bit = if col_occ == 0 {
            1u64 << (col * COL_BITS)
        } else {
            (col_occ + (1u64 << (col * COL_BITS))) & !col_occ & Self::column_mask(col)
        };
        let mut next = *self;
        if self.first_to_move() {
            next.first |= bit;
        }
        next.occupied |= bit;
        next.plies += 1;
        next
    }

    /// Does `stones` contain four in a row?
    pub fn has_four(stones: u64) -> bool {
        // Vertical, horizontal, and the two diagonals.
        for shift in [1, COL_BITS, COL_BITS + 1, COL_BITS - 1] {
            let m = stones & (stones >> shift);
            if m & (m >> (2 * shift)) != 0 {
                return true;
            }
        }
        false
    }

    /// Stones of the second player.
    pub fn second(&self) -> u64 {
        self.occupied & !self.first
    }

    /// Terminal outcome from the first player's perspective, if any.
    pub fn outcome(&self) -> Option<Value> {
        if Self::has_four(self.first) {
            Some(1)
        } else if Self::has_four(self.second()) {
            Some(-1)
        } else if self.plies == WIDTH * HEIGHT {
            Some(0)
        } else {
            None
        }
    }

    /// Count of 4-windows still open for `mine` and not blocked by
    /// `theirs`, weighted by how full they already are — a standard
    /// Connect Four heuristic.
    fn line_potential(mine: u64, theirs: u64) -> Value {
        let mut score = 0;
        for col in 0..WIDTH {
            for row in 0..HEIGHT {
                for (dc, dr) in [(1i32, 0i32), (0, 1), (1, 1), (1, -1)] {
                    let ec = col as i32 + 3 * dc;
                    let er = row as i32 + 3 * dr;
                    if ec < 0 || ec >= WIDTH as i32 || er < 0 || er >= HEIGHT as i32 {
                        continue;
                    }
                    let mut m = 0u32;
                    let mut t = 0u32;
                    for k in 0..4 {
                        let c = (col as i32 + k * dc) as u32;
                        let r = (row as i32 + k * dr) as u32;
                        let bit = 1u64 << (c * COL_BITS + r);
                        if mine & bit != 0 {
                            m += 1;
                        }
                        if theirs & bit != 0 {
                            t += 1;
                        }
                    }
                    if t == 0 && m > 0 {
                        score += (1 << m) as Value; // 2,4,8 for 1,2,3 stones
                    }
                }
            }
        }
        score
    }
}

impl Game for Connect4 {
    type State = Position;

    fn num_moves(&self, state: &Self::State) -> u32 {
        if state.outcome().is_some() {
            0
        } else {
            state.open_columns().len() as u32
        }
    }

    fn apply(&self, state: &Self::State, index: u32) -> Self::State {
        let col = state.open_columns()[index as usize];
        state.drop(col)
    }

    fn evaluate(&self, state: &Self::State) -> Value {
        match state.outcome() {
            Some(1) => self.win_score + Value::from(WIDTH * HEIGHT - state.plies),
            Some(-1) => -(self.win_score + Value::from(WIDTH * HEIGHT - state.plies)),
            Some(_) => 0,
            None => {
                let f = state.first;
                let s = state.second();
                Position::line_potential(f, s) - Position::line_potential(s, f)
            }
        }
    }

    fn first_player_to_move(&self, state: &Self::State) -> bool {
        state.first_to_move()
    }

    fn initial(&self) -> Self::State {
        Position::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_board_has_seven_moves() {
        let g = Connect4::default();
        assert_eq!(g.num_moves(&g.initial()), 7);
    }

    #[test]
    fn stones_stack_in_a_column() {
        let p = Position::empty().drop(3).drop(3).drop(3);
        let col3 = Position::column_mask(3);
        assert_eq!((p.occupied & col3).count_ones(), 3);
        // First player owns rows 0 and 2 of column 3.
        assert_eq!(p.first.count_ones(), 2);
        assert_eq!(p.plies, 3);
    }

    #[test]
    fn column_fills_up() {
        let mut p = Position::empty();
        for _ in 0..6 {
            assert!(p.column_open(0));
            p = p.drop(0);
        }
        assert!(!p.column_open(0));
        assert_eq!(p.open_columns().len(), 6);
    }

    #[test]
    fn vertical_win() {
        // First player drops col 0 four times (second player elsewhere).
        let mut p = Position::empty();
        for _ in 0..3 {
            p = p.drop(0).drop(1);
        }
        p = p.drop(0);
        assert_eq!(p.outcome(), Some(1));
        assert_eq!(Connect4::default().num_moves(&p), 0);
        assert!(Connect4::default().evaluate(&p) > 0);
    }

    #[test]
    fn horizontal_win_for_second_player() {
        // Second player builds a row on the floor of cols 3..7 while the
        // first player stacks in col 0.
        let mut p = Position::empty();
        for c in 3..6 {
            p = p.drop(0).drop(c);
        }
        p = p.drop(0); // first player's 4th in col 0 ... that's a win!
        assert_eq!(p.outcome(), Some(1));
        // Redo with first player spreading instead.
        let mut p = Position::empty();
        for (f, s) in [(0u32, 3u32), (1, 4), (0, 5)] {
            p = p.drop(f).drop(s);
        }
        p = p.drop(2).drop(6); // second player completes 3,4,5,6
        assert_eq!(p.outcome(), Some(-1));
    }

    #[test]
    fn diagonal_win() {
        // Build a / diagonal for the first player: stones at
        // (c0,r0),(c1,r1),(c2,r2),(c3,r3).
        let moves_first = [0u32, 1, 2, 2, 3, 3];
        let moves_second = [1u32, 2, 3, 3, 6];
        let mut p = Position::empty();
        for i in 0..5 {
            p = p.drop(moves_first[i]);
            assert_eq!(p.outcome(), None, "premature end at {i}");
            p = p.drop(moves_second[i]);
            assert_eq!(p.outcome(), None, "premature end at {i}");
        }
        p = p.drop(moves_first[5]);
        assert_eq!(p.outcome(), Some(1));
    }

    #[test]
    fn heuristic_is_antisymmetric_at_start() {
        let g = Connect4::default();
        assert_eq!(g.evaluate(&g.initial()), 0);
    }

    #[test]
    fn heuristic_prefers_center_development() {
        let g = Connect4::default();
        let center = Position::empty().drop(3);
        let edge = Position::empty().drop(0);
        assert!(g.evaluate(&center) > g.evaluate(&edge));
    }
}
