//! Criterion benches for the MIN/MAX pruning process (experiments
//! E4/E10): Sequential α-β vs Parallel α-β across orderings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gt_sim::{parallel_alphabeta, sequential_alphabeta};
use gt_tree::gen::UniformSource;
use gt_tree::minimax::seq_alphabeta;
use gt_tree::scout::scout;
use gt_tree::sss::sss_star;
use std::hint::black_box;

fn bench_orderings(c: &mut Criterion) {
    let mut g = c.benchmark_group("alphabeta_orderings");
    let n = 10u32;
    let iid = UniformSource::minmax_iid(2, n, 0, 1 << 20, 5);
    let best = UniformSource::minmax_best_ordered(2, n, 0);
    let worst = UniformSource::minmax_worst_ordered(2, n);
    g.bench_function("seq_iid", |b| {
        b.iter(|| black_box(seq_alphabeta(&iid, false).leaves_evaluated))
    });
    g.bench_function("seq_best_ordered", |b| {
        b.iter(|| black_box(seq_alphabeta(&best, false).leaves_evaluated))
    });
    g.bench_function("seq_worst_ordered", |b| {
        b.iter(|| black_box(seq_alphabeta(&worst, false).leaves_evaluated))
    });
    g.bench_function("par_w1_iid", |b| {
        b.iter(|| black_box(parallel_alphabeta(&iid, 1, false).steps))
    });
    g.bench_function("par_w1_worst_ordered", |b| {
        b.iter(|| black_box(parallel_alphabeta(&worst, 1, false).steps))
    });
    g.finish();
}

fn bench_pruning_process_vs_recursive(c: &mut Criterion) {
    // The pruning-process simulator at width 0 computes the same leaf
    // sequence as recursive fail-hard alpha-beta; compare their costs.
    let mut g = c.benchmark_group("seq_alphabeta_impls");
    for n in [8u32, 10] {
        let src = UniformSource::minmax_iid(2, n, 0, 1 << 20, 9);
        g.bench_with_input(BenchmarkId::new("recursive", n), &n, |b, _| {
            b.iter(|| black_box(seq_alphabeta(&src, false).leaves_evaluated))
        });
        g.bench_with_input(BenchmarkId::new("pruning_process", n), &n, |b, _| {
            b.iter(|| black_box(sequential_alphabeta(&src, false).total_work))
        });
    }
    g.finish();
}

fn bench_sequential_baselines(c: &mut Criterion) {
    // The three sequential baselines on the same instance: alpha-beta,
    // SCOUT (test-then-search), SSS* (best-first with an OPEN list).
    let mut g = c.benchmark_group("sequential_baselines");
    let src = UniformSource::minmax_iid(2, 10, 0, 1 << 20, 3);
    g.bench_function("alphabeta", |b| {
        b.iter(|| black_box(seq_alphabeta(&src, false).leaves_evaluated))
    });
    g.bench_function("scout", |b| {
        b.iter(|| black_box(scout(&src).leaves_evaluated))
    });
    g.bench_function("sss_star", |b| {
        b.iter(|| black_box(sss_star(&src).leaves_evaluated))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_orderings,
    bench_pruning_process_vs_recursive,
    bench_sequential_baselines
);
criterion_main!(benches);
