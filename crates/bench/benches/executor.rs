//! Criterion benches for the serving layer's evaluation executor:
//! per-job dispatch overhead as a function of micro-batch size.
//!
//! Two layers are measured separately:
//!
//! * `executor_scheduler` — the pure queue discipline ([`Scheduler`]):
//!   push/pop cost with no threads involved, isolating the data
//!   structure from the handoff.
//! * `executor_dispatch` — the full round trip through a running
//!   [`Executor`]: submit under the lock, condvar wake, worker pop,
//!   dispatch closure.  Larger `batch_max` amortizes one wake and one
//!   lock acquisition across the whole batch, which is the mechanism
//!   behind the cold-storm throughput numbers in BENCH_serve.json.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gt_serve::{CostClass, Executor, ExecutorConfig, Scheduler};
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const JOBS: u64 = 256;

fn bench_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor_scheduler");
    g.throughput(Throughput::Elements(JOBS));
    for batch in [1usize, 8, 64] {
        g.bench_with_input(
            BenchmarkId::new("push_pop_256", batch),
            &batch,
            |b, &batch| {
                b.iter(|| {
                    let mut s: Scheduler<u64> = Scheduler::new(JOBS as usize);
                    for i in 0..JOBS {
                        s.push("algo", CostClass::Small, i).unwrap();
                    }
                    let mut sum = 0u64;
                    loop {
                        let popped = s.pop_batch(batch);
                        if popped.is_empty() {
                            break;
                        }
                        sum += popped.iter().sum::<u64>();
                    }
                    black_box(sum)
                })
            },
        );
    }
    g.finish();
}

fn bench_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor_dispatch");
    g.sample_size(20);
    g.throughput(Throughput::Elements(JOBS));
    for batch_max in [1usize, 8, 64] {
        let done = Arc::new(AtomicUsize::new(0));
        let exec: Executor<u64> = Executor::start(
            ExecutorConfig {
                workers: 2,
                queue_depth: JOBS as usize * 2,
                batch_max,
            },
            {
                let done = Arc::clone(&done);
                move |batch| {
                    black_box(batch.iter().sum::<u64>());
                    done.fetch_add(batch.len(), Ordering::SeqCst);
                }
            },
        );
        g.bench_with_input(
            BenchmarkId::new("round_trip_256", batch_max),
            &batch_max,
            |b, _| {
                b.iter(|| {
                    let start = done.load(Ordering::SeqCst);
                    for i in 0..JOBS {
                        // The workers drain concurrently; spin on Full.
                        while exec.submit("algo", CostClass::Small, i).is_err() {
                            std::thread::yield_now();
                        }
                    }
                    while done.load(Ordering::SeqCst) < start + JOBS as usize {
                        std::thread::yield_now();
                    }
                })
            },
        );
        exec.shutdown();
    }
    g.finish();
}

criterion_group!(benches, bench_scheduler, bench_dispatch);
criterion_main!(benches);
