//! Criterion benches for the threaded engines (experiment E12): the
//! wall-clock counterpart of the paper's model-level speed-ups.
//!
//! The interesting axis is per-leaf cost: the leaf-evaluation model
//! charges only for leaves, so the parallel engines should pull ahead
//! exactly as the synthetic game's `eval_work` grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gt_core::engine::{CascadeEngine, RoundEngine, YbwEngine};
use gt_games::{Connect4, GameTreeSource, SyntheticGame};
use gt_tree::minimax::seq_alphabeta;
use std::hint::black_box;

fn bench_leaf_cost_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_leaf_cost");
    g.sample_size(10);
    for work in [0u32, 512, 4096] {
        let game = SyntheticGame::new(4, 6, work, 1);
        let src = GameTreeSource::from_initial(game, 6);
        g.bench_with_input(BenchmarkId::new("sequential", work), &work, |b, _| {
            b.iter(|| black_box(seq_alphabeta(&src, false).value))
        });
        g.bench_with_input(BenchmarkId::new("round_w2", work), &work, |b, _| {
            let e = RoundEngine::with_width(2);
            b.iter(|| black_box(e.solve_minmax(&src).value))
        });
        g.bench_with_input(BenchmarkId::new("cascade_w2", work), &work, |b, _| {
            let e = CascadeEngine::with_width(2);
            b.iter(|| black_box(e.solve_minmax(&src).value))
        });
        g.bench_with_input(BenchmarkId::new("ybw", work), &work, |b, _| {
            let e = YbwEngine::default();
            b.iter(|| black_box(e.solve_minmax(&src).value))
        });
    }
    g.finish();
}

fn bench_connect4(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_connect4");
    g.sample_size(10);
    for depth in [5u32, 6] {
        let src = GameTreeSource::from_initial(Connect4::default(), depth);
        g.bench_with_input(BenchmarkId::new("sequential", depth), &depth, |b, _| {
            b.iter(|| black_box(seq_alphabeta(&src, false).value))
        });
        g.bench_with_input(BenchmarkId::new("cascade_w2", depth), &depth, |b, _| {
            let e = CascadeEngine::with_width(2);
            b.iter(|| black_box(e.solve_minmax(&src).value))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_leaf_cost_sweep, bench_connect4);
criterion_main!(benches);
