//! Criterion benches for the node-expansion model and the randomized
//! algorithms (experiments E5/E6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gt_sim::randomized::{r_parallel_solve, r_sequential_solve};
use gt_sim::{n_parallel_solve, n_sequential_solve};
use gt_tree::gen::{critical_bias, UniformSource};
use std::hint::black_box;

fn bench_expansion_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("node_expansion");
    for n in [10u32, 12] {
        let src = UniformSource::nor_iid(2, n, critical_bias(2), 3);
        g.bench_with_input(BenchmarkId::new("n_sequential", n), &n, |b, _| {
            b.iter(|| black_box(n_sequential_solve(&src, false).total_work))
        });
        g.bench_with_input(BenchmarkId::new("n_parallel_w1", n), &n, |b, _| {
            b.iter(|| black_box(n_parallel_solve(&src, 1, false).steps))
        });
    }
    g.finish();
}

fn bench_randomized(c: &mut Criterion) {
    let mut g = c.benchmark_group("randomized_on_worst_case");
    let src = UniformSource::nor_worst_case(2, 12);
    g.bench_function("r_sequential", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            black_box(r_sequential_solve(&src, seed, false).total_work)
        })
    });
    g.bench_function("r_parallel_w1", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            black_box(r_parallel_solve(&src, 1, seed, false).steps)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_expansion_model, bench_randomized);
criterion_main!(benches);
