//! Criterion benches for the Section 7 message-passing machine
//! (experiment E8): full machine vs zone-multiplexed budgets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gt_msgsim::{simulate, simulate_with_processors};
use gt_tree::gen::{critical_bias, UniformSource};
use std::hint::black_box;

fn bench_full_machine(c: &mut Criterion) {
    let mut g = c.benchmark_group("msgsim_full");
    for n in [8u32, 10, 12] {
        let worst = UniformSource::nor_worst_case(2, n);
        g.bench_with_input(BenchmarkId::new("worst", n), &n, |b, _| {
            b.iter(|| black_box(simulate(&worst).ticks))
        });
        let crit = UniformSource::nor_iid(2, n, critical_bias(2), 2);
        g.bench_with_input(BenchmarkId::new("critical", n), &n, |b, _| {
            b.iter(|| black_box(simulate(&crit).ticks))
        });
    }
    g.finish();
}

fn bench_zone_multiplexing(c: &mut Criterion) {
    let mut g = c.benchmark_group("msgsim_zones");
    let src = UniformSource::nor_worst_case(2, 10);
    for p in [1u32, 2, 4, 11] {
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| black_box(simulate_with_processors(&src, p).ticks))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_full_machine, bench_zone_multiplexing);
criterion_main!(benches);
