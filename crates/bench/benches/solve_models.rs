//! Criterion benches for the NOR-tree algorithms (experiments E1/E2/E7):
//! Sequential SOLVE, Team SOLVE and Parallel SOLVE across workloads and
//! widths.  These measure simulator wall-time; the *model-level* metrics
//! (steps, degrees) are printed by the `expt` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gt_sim::{parallel_solve, sequential_solve, team_solve};
use gt_tree::gen::{critical_bias, UniformSource};
use gt_tree::minimax::seq_solve;
use std::hint::black_box;

fn bench_sequential(c: &mut Criterion) {
    let mut g = c.benchmark_group("sequential_solve");
    for n in [10u32, 12, 14] {
        let src = UniformSource::nor_iid(2, n, critical_bias(2), 42);
        g.bench_with_input(BenchmarkId::new("recursive", n), &n, |b, _| {
            b.iter(|| black_box(seq_solve(&src, false).leaves_evaluated))
        });
        g.bench_with_input(BenchmarkId::new("simulator_width0", n), &n, |b, _| {
            b.iter(|| black_box(sequential_solve(&src, false).steps))
        });
    }
    g.finish();
}

fn bench_parallel_widths(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel_solve_width");
    let src = UniformSource::nor_iid(2, 12, critical_bias(2), 7);
    for w in [1u32, 2, 3] {
        g.bench_with_input(BenchmarkId::from_parameter(w), &w, |b, &w| {
            b.iter(|| black_box(parallel_solve(&src, w, false).steps))
        });
    }
    g.finish();
}

fn bench_team(c: &mut Criterion) {
    let mut g = c.benchmark_group("team_solve");
    let src = UniformSource::nor_worst_case(2, 12);
    for p in [4u32, 16, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| black_box(team_solve(&src, p, false).steps))
        });
    }
    g.finish();
}

fn bench_worst_case(c: &mut Criterion) {
    let mut g = c.benchmark_group("worst_case_solve");
    let src = UniformSource::nor_worst_case(2, 14);
    g.bench_function("sequential", |b| {
        b.iter(|| black_box(seq_solve(&src, false).leaves_evaluated))
    });
    g.bench_function("parallel_w1", |b| {
        b.iter(|| black_box(parallel_solve(&src, 1, false).steps))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sequential,
    bench_parallel_widths,
    bench_team,
    bench_worst_case
);
criterion_main!(benches);
