//! Experiment driver: regenerates every table of the reproduction.
//!
//! ```text
//! cargo run -p gt-bench --release --bin expt -- all
//! cargo run -p gt-bench --release --bin expt -- e1 e8
//! cargo run -p gt-bench --release --bin expt -- all --quick
//! cargo run -p gt-bench --release --bin expt -- e1 e4 --json
//! ```

use gt_bench::{run_experiment, run_experiment_json, ALL};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let ids: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();
    let ids: Vec<&str> = if ids.is_empty() || ids.iter().any(|a| a == "all") {
        ALL.to_vec()
    } else {
        ids.iter().map(|s| s.as_str()).collect()
    };
    if json {
        let mut items = Vec::new();
        for id in ids {
            match run_experiment_json(id, quick) {
                Some(j) => items.push(j),
                None => {
                    eprintln!("unknown experiment id: {id} (known: {ALL:?})");
                    std::process::exit(2);
                }
            }
        }
        println!("{}", gt_analysis::Json::Array(items).render());
        return;
    }
    for id in ids {
        match run_experiment(id, quick) {
            Some(report) => {
                println!("{}", "=".repeat(78));
                println!("{report}");
            }
            None => {
                eprintln!("unknown experiment id: {id} (known: {ALL:?})");
                std::process::exit(2);
            }
        }
    }
}
