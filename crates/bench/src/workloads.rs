//! Shared workload definitions for the experiments.
//!
//! Every experiment draws its instances from here so that instance
//! families are named consistently across tables and EXPERIMENTS.md.

use gt_tree::gen::{critical_bias, IidBernoulli, UniformSource, WorstCaseNor};

/// NOR workload families used across experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NorKind {
    /// I.i.d. leaves at the level-invariant critical bias (fixpoint of
    /// `x = (1-x)^d`) — the "hard random" regime of Section 6.
    Critical,
    /// I.i.d. leaves at p = 0.5.
    Half,
    /// The deterministic worst case (Sequential SOLVE evaluates all
    /// `d^n` leaves).
    WorstCase,
}

impl NorKind {
    /// Human-readable tag used in tables.
    pub fn tag(&self) -> &'static str {
        match self {
            NorKind::Critical => "iid-crit",
            NorKind::Half => "iid-0.5",
            NorKind::WorstCase => "worst",
        }
    }

    /// Materialize a `B(d,n)` instance of this kind.
    pub fn source(&self, d: u32, n: u32, seed: u64) -> NorWorkload {
        match self {
            NorKind::Critical => {
                NorWorkload::Iid(UniformSource::nor_iid(d, n, critical_bias(d), seed))
            }
            NorKind::Half => NorWorkload::Iid(UniformSource::nor_iid(d, n, 0.5, seed)),
            NorKind::WorstCase => NorWorkload::Worst(UniformSource::nor_worst_case(d, n)),
        }
    }
}

/// A concrete NOR instance (enum so callers can hold either family
/// without boxing).
pub enum NorWorkload {
    /// I.i.d. leaves.
    Iid(UniformSource<IidBernoulli>),
    /// Worst-case leaves.
    Worst(UniformSource<WorstCaseNor>),
}

impl gt_tree::TreeSource for NorWorkload {
    fn arity(&self, path: &[u32]) -> u32 {
        match self {
            NorWorkload::Iid(s) => s.arity(path),
            NorWorkload::Worst(s) => s.arity(path),
        }
    }

    fn leaf_value(&self, path: &[u32]) -> i64 {
        match self {
            NorWorkload::Iid(s) => s.leaf_value(path),
            NorWorkload::Worst(s) => s.leaf_value(path),
        }
    }

    fn height_hint(&self) -> Option<u32> {
        match self {
            NorWorkload::Iid(s) => s.height_hint(),
            NorWorkload::Worst(s) => s.height_hint(),
        }
    }
}

/// Heights for the Theorem 1 sweep at branching factor `d`.
pub fn solve_heights(d: u32, quick: bool) -> Vec<u32> {
    match (d, quick) {
        (2, false) => vec![8, 10, 12, 14, 16, 18, 20],
        (2, true) => vec![6, 8],
        (3, false) => vec![6, 8, 10, 12],
        (3, true) => vec![4, 6],
        (4, false) => vec![5, 6, 7, 8, 9],
        (4, true) => vec![4],
        _ => vec![6],
    }
}

/// Heights for the MIN/MAX (Theorem 3) sweep.
pub fn alphabeta_heights(d: u32, quick: bool) -> Vec<u32> {
    match (d, quick) {
        (2, false) => vec![6, 8, 10, 12, 14],
        (2, true) => vec![4, 6],
        (3, false) => vec![4, 6, 8],
        (3, true) => vec![4],
        _ => vec![4],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_tree::minimax::seq_solve;
    use gt_tree::TreeSource;

    #[test]
    fn kinds_produce_expected_shapes() {
        for kind in [NorKind::Critical, NorKind::Half, NorKind::WorstCase] {
            let w = kind.source(2, 5, 1);
            assert_eq!(w.arity(&[]), 2);
            assert_eq!(w.height_hint(), Some(5));
            let st = seq_solve(&w, false);
            assert!(st.leaves_evaluated >= 1);
        }
    }

    #[test]
    fn worst_kind_really_is_worst() {
        let w = NorKind::WorstCase.source(2, 6, 0);
        assert_eq!(seq_solve(&w, false).leaves_evaluated, 64);
    }

    #[test]
    fn height_lists_nonempty() {
        for d in [2, 3, 4] {
            for q in [false, true] {
                assert!(!solve_heights(d, q).is_empty());
                assert!(!alphabeta_heights(d.min(3), q).is_empty());
            }
        }
    }
}
