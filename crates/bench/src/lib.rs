//! # gt-bench — the experiment harness
//!
//! The paper is theoretical: its "evaluation" is a set of provable
//! claims, plus a remark (Section 8) that the authors' simulations show
//! better constants than the proofs guarantee.  This crate reproduces
//! every evaluable claim as a numbered experiment; each experiment
//! prints a table of paper-bound vs. measured quantities.  See DESIGN.md
//! §4 for the experiment index and EXPERIMENTS.md for recorded results.
//!
//! Run all experiments:
//!
//! ```text
//! cargo run -p gt-bench --release --bin expt -- all
//! ```
//!
//! or a single one, e.g. `-- e1`.  The Criterion micro-benchmarks live
//! under `crates/bench/benches/`.

pub mod experiments;
pub mod workloads;

use experiments::*;

/// All experiment ids, in order.
pub const ALL: &[&str] = &[
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14",
];

/// Run one experiment by id and return a machine-readable JSON value:
/// structured sweep data for E1/E4 (whose measurements drive the fits),
/// and `{id, report}` wrappers for the table-shaped experiments.
pub fn run_experiment_json(id: &str, quick: bool) -> Option<gt_analysis::Json> {
    use gt_analysis::Json;
    let json = match id {
        "e1" => {
            let pts = e01_theorem1::sweep(quick);
            Json::obj([
                ("id", Json::from("e1")),
                (
                    "points",
                    Json::Array(
                        pts.iter()
                            .map(|p| {
                                Json::obj([
                                    ("d", Json::from(p.d)),
                                    ("n", Json::from(p.n)),
                                    ("workload", Json::from(p.kind.tag())),
                                    ("s", Json::from(p.s)),
                                    ("p", Json::from(p.p)),
                                    ("speedup", Json::from(p.speedup())),
                                    ("processors", Json::from(p.procs)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        }
        "e4" => {
            let pts = e04_alphabeta::sweep(quick);
            Json::obj([
                ("id", Json::from("e4")),
                (
                    "points",
                    Json::Array(
                        pts.iter()
                            .map(|p| {
                                Json::obj([
                                    ("d", Json::from(p.d)),
                                    ("n", Json::from(p.n)),
                                    ("ordering", Json::from(p.kind.tag())),
                                    ("s", Json::from(p.s)),
                                    ("p", Json::from(p.p)),
                                    ("speedup", Json::from(p.speedup())),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        }
        other => {
            let report = run_experiment(other, quick)?;
            Json::obj([("id", Json::from(other)), ("report", Json::from(report))])
        }
    };
    Some(json)
}

/// Run one experiment by id; `quick` shrinks instance sizes so the whole
/// suite can run in a debug-build test.  Returns the rendered report.
pub fn run_experiment(id: &str, quick: bool) -> Option<String> {
    let out = match id {
        "e1" => e01_theorem1::run(quick),
        "e2" => e02_team::run(quick),
        "e3" => e03_prop3::run(quick),
        "e4" => e04_alphabeta::run(quick),
        "e5" => e05_expansion::run(quick),
        "e6" => e06_randomized::run(quick),
        "e7" => e07_width::run(quick),
        "e8" => e08_msgsim::run(quick),
        "e9" => e09_constant::run(quick),
        "e10" => e10_bounds::run(quick),
        "e11" => e11_skeleton::run(quick),
        "e12" => e12_wallclock::run(quick),
        "e13" => e13_scout::run(quick),
        "e14" => e14_sss::run(quick),
        _ => return None,
    };
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_experiment_is_none() {
        assert!(run_experiment("e99", true).is_none());
    }

    #[test]
    fn json_mode_produces_valid_shapes() {
        let j = run_experiment_json("e1", true).unwrap().render();
        assert!(j.starts_with("{\"id\":\"e1\""));
        assert!(j.contains("\"points\""));
        let j = run_experiment_json("e10", true).unwrap().render();
        assert!(j.contains("\"report\""));
        assert!(run_experiment_json("e99", true).is_none());
    }

    #[test]
    fn all_ids_resolve() {
        // Only check dispatch (don't run the heavy bodies here): ids are
        // spelled consistently.
        for id in ALL {
            assert!(id.starts_with('e'));
        }
    }
}
