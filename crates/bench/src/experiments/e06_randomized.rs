//! E6 — Theorems 5–6: the randomized algorithms achieve a linear
//! *expected* speed-up, with no assumptions on the input.
//!
//! We use the deterministic worst-case instances (on which the
//! deterministic algorithms must expand everything) and average over
//! seeds: R-Sequential SOLVE already beats Sequential SOLVE in
//! expectation (Saks–Wigderson), and R-Parallel SOLVE of width 1 gets a
//! further `Θ(n)` factor — `E[S*]/E[P*] ≥ c(n+1)` (Theorem 5).

use gt_analysis::table::{f2, f3};
use gt_analysis::{Summary, Table};
use gt_sim::randomized::{r_parallel_alphabeta, r_parallel_solve, r_sequential_solve};
use gt_tree::gen::UniformSource;
use gt_tree::minimax::seq_solve;

/// Expected-case measurements on worst-case `B(2,n)`:
/// `(deterministic S*, E[S*_R] summary, E[P*_R] summary)`.
pub fn measure(n: u32, seeds: u64) -> (u64, Summary, Summary) {
    let src = UniformSource::nor_worst_case(2, n);
    let det = seq_solve(&src, false).nodes_expanded;
    let mut seqs = Vec::new();
    let mut pars = Vec::new();
    for seed in 0..seeds {
        seqs.push(r_sequential_solve(&src, seed, false).total_work as f64);
        pars.push(r_parallel_solve(&src, 1, seed, false).steps as f64);
    }
    (det, Summary::of(&seqs), Summary::of(&pars))
}

/// Render the E6 report.
pub fn run(quick: bool) -> String {
    let (heights, seeds): (&[u32], u64) = if quick {
        (&[8, 10], 8)
    } else {
        (&[10, 12, 14, 16], 32)
    };
    let mut t = Table::new([
        "n",
        "det S*",
        "E[S*_R]",
        "+-95%",
        "E[P*_R]",
        "+-95%",
        "E[S*]/E[P*]",
        "ratio/(n+1)",
    ]);
    for &n in heights {
        let (det, s, p) = measure(n, seeds);
        let ratio = s.mean / p.mean;
        t.row([
            n.to_string(),
            det.to_string(),
            f2(s.mean),
            f2(s.ci95()),
            f2(p.mean),
            f2(p.ci95()),
            f2(ratio),
            f3(ratio / (n as f64 + 1.0)),
        ]);
    }
    let mut out = format!(
        "E6  Theorems 5-6: randomized algorithms, expected linear speed-up\n\
         workload: worst-case B(2,n), averaged over {seeds} seeds\n\n{}",
        t.render()
    );
    // A small α-β spot check (Theorem 6).
    let src = UniformSource::minmax_worst_ordered(2, if quick { 6 } else { 10 });
    let mut steps = Vec::new();
    for seed in 0..seeds.min(16) {
        steps.push(r_parallel_alphabeta(&src, 1, seed, false).steps as f64);
    }
    let summ = Summary::of(&steps);
    out.push_str(&format!(
        "\nR-Parallel alpha-beta width 1 on worst-ordered M(2,n): E[steps] = {:.1} +- {:.1}\n",
        summ.mean,
        summ.ci95()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn randomized_parallel_beats_randomized_sequential() {
        let (_, s, p) = measure(9, 8);
        assert!(
            p.mean < s.mean,
            "E[P*]={} should be below E[S*]={}",
            p.mean,
            s.mean
        );
    }

    #[test]
    fn randomized_sequential_beats_deterministic_on_worst_case() {
        let (det, s, _) = measure(9, 8);
        assert!(s.mean < det as f64);
    }

    #[test]
    fn report_renders() {
        assert!(run(true).contains("Theorems 5-6"));
    }
}
