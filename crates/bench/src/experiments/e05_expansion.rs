//! E5 — Theorem 4 / Proposition 6: the node-expansion model.
//!
//! N-Parallel SOLVE of width 1 keeps the linear speed-up when the unit
//! of work is a node expansion, and the number of steps of parallel
//! degree `k+1` is bounded by `Σ_{m=k}^{n} C(m,k)(d−1)^k` (we print the
//! exact hockey-stick form `C(n+1,k+1)(d−1)^k`).

use crate::workloads::{solve_heights, NorKind};
use gt_analysis::table::{f2, f3};
use gt_analysis::Table;
use gt_core::theory::prop6_bound;
use gt_sim::{n_parallel_solve, n_sequential_solve};
use gt_tree::skeleton::nor_skeleton;

/// Speed-up sweep in the node-expansion model.
pub fn sweep(quick: bool) -> Vec<(u32, u32, NorKind, u64, u64, u32)> {
    let mut out = Vec::new();
    let degrees: &[u32] = if quick { &[2] } else { &[2, 3] };
    for &d in degrees {
        for &n in &solve_heights(d, quick) {
            for kind in [NorKind::Critical, NorKind::WorstCase] {
                let src = kind.source(d, n, 0x5EED ^ u64::from(n));
                let seq = n_sequential_solve(&src, false);
                let par = n_parallel_solve(&src, 1, false);
                assert_eq!(seq.value, par.value);
                out.push((d, n, kind, seq.total_work, par.steps, par.processors_used));
            }
        }
    }
    out
}

/// Degree histogram of N-Parallel SOLVE width 1 on the skeleton,
/// against the Proposition 6 bound.
pub fn histogram(d: u32, n: u32, kind: NorKind, seed: u64) -> Vec<(u32, u64, u128)> {
    let src = kind.source(d, n, seed);
    let h = nor_skeleton(&src);
    let st = n_parallel_solve(&h, 1, false);
    (0..=n)
        .filter_map(|k| {
            let t = st.t(k as usize + 1);
            (t > 0).then(|| (k, t, prop6_bound(d, n, k)))
        })
        .collect()
}

/// Render the E5 report.
pub fn run(quick: bool) -> String {
    let mut out = String::from(
        "E5  Theorem 4: node-expansion model — N-Parallel SOLVE width 1\n\
         claim: S*(T)/P*(T) >= c(n+1); degree histogram obeys Prop 6\n\n",
    );
    let mut t = Table::new([
        "d",
        "n",
        "workload",
        "S*(T)",
        "P*(T)",
        "speedup",
        "speedup/(n+1)",
        "procs",
    ]);
    for (d, n, kind, s, p, procs) in sweep(quick) {
        let sp = s as f64 / p as f64;
        t.row([
            d.to_string(),
            n.to_string(),
            kind.tag().to_string(),
            s.to_string(),
            p.to_string(),
            f2(sp),
            f3(sp / (n as f64 + 1.0)),
            procs.to_string(),
        ]);
    }
    out.push_str(&t.render());
    let (d, n) = if quick { (2, 8) } else { (2, 12) };
    let mut h = Table::new(["k", "t*_{k+1} measured", "Prop6 bound", "ok"]);
    for (k, meas, bound) in histogram(d, n, NorKind::WorstCase, 3) {
        h.row([
            k.to_string(),
            meas.to_string(),
            bound.to_string(),
            if (meas as u128) <= bound {
                "yes".to_string()
            } else {
                "VIOLATION".to_string()
            },
        ]);
    }
    out.push_str(&format!(
        "\ndegree histogram on the skeleton of worst-case B({d},{n}):\n{}",
        h.render()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prop6_bound_holds() {
        for seed in 0..8 {
            for kind in [NorKind::Critical, NorKind::WorstCase] {
                for (k, meas, bound) in histogram(2, 8, kind, seed) {
                    assert!((meas as u128) <= bound, "k={k}: {meas} > {bound}");
                }
            }
        }
    }

    #[test]
    fn expansion_speedups_are_sane() {
        for (_, _, _, s, p, _) in sweep(true) {
            assert!(p <= s);
        }
    }

    #[test]
    fn report_renders() {
        assert!(run(true).contains("Theorem 4"));
    }
}
