//! E14 — the reference-\[11\] baseline: SSS\* vs α-β (Vornberger,
//! *Parallel alpha-beta versus parallel SSS\**, cited in Section 1).
//!
//! SSS\*'s classical trade-off: it never evaluates a leaf α-β skips
//! (dominance), at the cost of an OPEN list whose peak size is the
//! memory α-β never needs.  We measure both sides of the trade across
//! orderings, plus the transposition-table engine on Connect Four as
//! the practical "best sequential" reference.

use crate::experiments::e04_alphabeta::MinMaxKind;
use gt_analysis::table::f2;
use gt_analysis::Table;
use gt_core::engine::TtSearch;
use gt_games::{Connect4, Game, GameTreeSource};
use gt_tree::minimax::seq_alphabeta;
use gt_tree::sss::{parallel_sss_star, sss_star};

/// Render the E14 report.
pub fn run(quick: bool) -> String {
    let (d, n) = if quick { (2u32, 6u32) } else { (2, 12) };
    let mut t = Table::new([
        "ordering",
        "alpha-beta leaves",
        "SSS* leaves",
        "ratio",
        "SSS* peak OPEN",
    ]);
    for kind in [
        MinMaxKind::Random,
        MinMaxKind::BestOrdered,
        MinMaxKind::WorstOrdered,
    ] {
        let src = kind.source(d, n, 23);
        let ab = seq_alphabeta(&src, false).leaves_evaluated;
        let sss = sss_star(&src);
        assert!(
            sss.leaves_evaluated <= ab,
            "dominance violated: {} > {ab}",
            sss.leaves_evaluated
        );
        t.row([
            kind.tag().to_string(),
            ab.to_string(),
            sss.leaves_evaluated.to_string(),
            f2(sss.leaves_evaluated as f64 / ab as f64),
            sss.peak_open.to_string(),
        ]);
    }
    // The reference-[11] head-to-head: parallel alpha-beta (width 1,
    // n+1 processors) vs parallel SSS* (width n+1) on the same
    // instances — Vornberger's comparison, in the leaf-evaluation model.
    let mut tpar = Table::new([
        "ordering",
        "par-ab steps",
        "par-ab speedup",
        "par-SSS* leaf-steps",
        "par-SSS* speedup",
    ]);
    for kind in [
        MinMaxKind::Random,
        MinMaxKind::BestOrdered,
        MinMaxKind::WorstOrdered,
    ] {
        let src = kind.source(d, n, 23);
        let ab_seq = seq_alphabeta(&src, false).leaves_evaluated;
        let ab_par = gt_sim::parallel_alphabeta(&src, 1, false);
        let sss_seq = sss_star(&src).leaves_evaluated;
        let sss_par = parallel_sss_star(&src, n + 1);
        tpar.row([
            kind.tag().to_string(),
            ab_par.steps.to_string(),
            f2(ab_seq as f64 / ab_par.steps as f64),
            sss_par.leaf_steps.to_string(),
            f2(sss_seq as f64 / sss_par.leaf_steps as f64),
        ]);
    }

    // Practical engine reference: transposition-table alpha-beta on
    // Connect Four (positions transpose, which the tree algorithms
    // cannot exploit).
    let depth = if quick { 5u32 } else { 8 };
    let g = Connect4::default();
    let src = GameTreeSource::from_initial(g, depth);
    let tree_leaves = seq_alphabeta(&src, false).leaves_evaluated;
    let mut tt = TtSearch::new(g, 1 << 22);
    let _ = tt.search(&g.initial(), depth);
    format!(
        "E14  SSS* vs alpha-beta (reference [11] baseline) on M({d},{n})\n\n{}\n\
         parallel head-to-head (width 1 alpha-beta vs width n+1 SSS*,\n\
         both speedups relative to their own sequential algorithm):\n{}\n\
         practical reference on Connect Four depth {depth}:\n\
         tree-shaped alpha-beta leaves : {tree_leaves}\n\
         TT alpha-beta evaluations     : {} ({} TT hits, {} entries)\n\
         (transpositions are invisible to the paper's tree model; a practical\n\
          engine collapses them and does strictly less evaluation work)\n",
        t.render(),
        tpar.render(),
        tt.stats.evals,
        tt.stats.hits,
        tt.table_len(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_and_dominance_holds() {
        let r = run(true);
        assert!(r.contains("SSS*"));
        assert!(r.contains("dominance") || r.contains("alpha-beta"));
    }
}
