//! E11 — Propositions 2 and 5: the skeleton property `P_w(T) ≤ P_w(H_T)`
//! (and the α-β counterpart `P̃_w(T) ≤ P̃_w(H̃_T)`).
//!
//! The whole Theorem 1 analysis stands on this reduction.  We verify
//! Proposition 2 (NOR — *proved* in the paper via Property A) as a hard
//! invariant: zero violations allowed.
//!
//! Proposition 5 (MIN/MAX) is *stated without proof* in the paper, and
//! our reproduction finds it is **not literally true** as stated: on
//! small random `M(d,n)` instances, Parallel α-β is occasionally slower
//! on `T` than on `H̃_T`.  The mechanism: a NOR node is *determined* the
//! moment one child is 1 (monotone short-circuit, so extra speculative
//! leaves in `T` never delay anything — that is Property A), but a
//! MIN/MAX node only contributes to α/β bounds once it is *finished*,
//! i.e. every leaf of its pruned subtree is evaluated.  The extra
//! non-skeleton leaves present in `T` delay finishing, hence delay bound
//! sharpening, hence can delay cutoffs that `H̃_T` enjoys earlier.  We
//! therefore *measure* the violation rate and magnitude instead of
//! asserting zero; see EXPERIMENTS.md for the recorded discussion.

use gt_analysis::table::f2;
use gt_analysis::Table;
use gt_sim::{parallel_alphabeta, parallel_solve};
use gt_tree::gen::{IidBernoulli, NearUniformSource, UniformSource};
use gt_tree::skeleton::{alphabeta_skeleton, nor_skeleton};

/// Check the NOR skeleton property for one instance at widths `ws`.
/// Returns `(w, P_w(T), P_w(H_T))` rows.
pub fn check_nor<S: gt_tree::TreeSource>(src: &S, ws: &[u32]) -> Vec<(u32, u64, u64)> {
    let h = nor_skeleton(src);
    ws.iter()
        .map(|&w| {
            let on_t = parallel_solve(src, w, false).steps;
            let on_h = parallel_solve(&h, w, false).steps;
            (w, on_t, on_h)
        })
        .collect()
}

/// Check the α-β skeleton property (Proposition 5).
pub fn check_alphabeta<S: gt_tree::TreeSource>(src: &S, ws: &[u32]) -> Vec<(u32, u64, u64)> {
    let h = alphabeta_skeleton(src);
    ws.iter()
        .map(|&w| {
            let on_t = parallel_alphabeta(src, w, false).steps;
            let on_h = parallel_alphabeta(&h, w, false).steps;
            (w, on_t, on_h)
        })
        .collect()
}

/// Render the E11 report.
pub fn run(quick: bool) -> String {
    let (n, seeds) = if quick { (8, 4u64) } else { (12, 16u64) };
    let ws = [1u32, 2, 3];
    // Proposition 2 (proved): hard invariant.
    let mut nor_total = 0u64;
    let mut nor_violations = 0u64;
    let mut nor_margin = Vec::new();
    // Proposition 5 (stated without proof): measured.
    let mut ab_total = 0u64;
    let mut ab_violations = 0u64;
    let mut ab_worst_excess = 0.0f64;
    let mut sample = Table::new(["instance", "w", "P_w(T)", "P_w(H_T)", "P(T)<=P(H_T)"]);
    for seed in 0..seeds {
        // Uniform instances.
        let src = UniformSource::nor_iid(2, n, 0.5, seed);
        for (w, on_t, on_h) in check_nor(&&src, &ws) {
            nor_total += 1;
            if on_t > on_h {
                nor_violations += 1;
            }
            nor_margin.push(on_h as f64 / on_t as f64);
            if seed == 0 {
                sample.row([
                    format!("B(2,{n}) seed {seed}"),
                    w.to_string(),
                    on_t.to_string(),
                    on_h.to_string(),
                    if on_t <= on_h { "yes" } else { "VIOLATION" }.to_string(),
                ]);
            }
        }
        // Corollary 2 near-uniform instances.
        let nu = NearUniformSource::new(3, n, 0.67, 0.5, seed, IidBernoulli::new(0.4, seed));
        for (_w, on_t, on_h) in check_nor(&&nu, &ws) {
            nor_total += 1;
            if on_t > on_h {
                nor_violations += 1;
            }
            nor_margin.push(on_h as f64 / on_t as f64);
        }
        // MIN/MAX (Proposition 5) — measured, not asserted.
        let mm = UniformSource::minmax_iid(2, n.min(10), 0, 1 << 20, seed);
        for (w, on_t, on_h) in check_alphabeta(&&mm, &ws) {
            ab_total += 1;
            if on_t > on_h {
                ab_violations += 1;
                ab_worst_excess = ab_worst_excess.max(on_t as f64 / on_h as f64);
            }
            if seed == 0 {
                sample.row([
                    format!("M(2,{}) seed {seed}", n.min(10)),
                    w.to_string(),
                    on_t.to_string(),
                    on_h.to_string(),
                    if on_t <= on_h { "yes" } else { "violated" }.to_string(),
                ]);
            }
        }
    }
    let mean_margin = nor_margin.iter().sum::<f64>() / nor_margin.len() as f64;
    format!(
        "E11  Propositions 2 & 5: the skeleton property P_w(T) <= P_w(H_T)\n\n\
         Proposition 2 (NOR, proved in the paper): {nor_total} (instance, width)\n\
         pairs across uniform and near-uniform (Corollary 2) trees:\n\
         {nor_violations} violations (0 required); mean skeleton slowdown\n\
         P_w(H_T)/P_w(T) = {}\n\n\
         Proposition 5 (MIN/MAX, stated WITHOUT proof in the paper):\n\
         {ab_violations}/{ab_total} pairs violated; worst excess P(T)/P(H_T) = {}\n\
         — our reproduction shows the alpha-beta skeleton property fails as\n\
         literally stated, and does so on MOST random instances (finishing,\n\
         unlike NOR determination, is delayed by extra speculative leaves).\n\
         The violations are mild, so the Theorem 3 speed-up itself survives\n\
         (see E4); see EXPERIMENTS.md for discussion.\n\n\
         sample rows (seed 0):\n{}",
        f2(mean_margin),
        f2(ab_worst_excess.max(1.0)),
        sample.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skeleton_property_holds_on_uniform_nor() {
        for seed in 0..8 {
            let src = UniformSource::nor_iid(2, 9, 0.5, seed);
            for (w, on_t, on_h) in check_nor(&&src, &[1, 2, 3]) {
                assert!(on_t <= on_h, "w={w}: {on_t} > {on_h} (seed {seed})");
            }
        }
    }

    #[test]
    fn skeleton_property_holds_on_near_uniform() {
        for seed in 0..8 {
            let src = NearUniformSource::new(3, 8, 0.67, 0.5, seed, IidBernoulli::new(0.5, seed));
            for (w, on_t, on_h) in check_nor(&&src, &[1, 2]) {
                assert!(on_t <= on_h, "w={w}: {on_t} > {on_h} (seed {seed})");
            }
        }
    }

    #[test]
    fn alphabeta_skeleton_violations_are_mild() {
        // Proposition 5 is stated without proof; our reproduction finds
        // it is violated on *most* random MIN/MAX instances (see module
        // docs) — but always mildly: P(T) stays within a small constant
        // factor of P(H̃_T), so the Theorem 3 *speed-up* survives (E4).
        let mut total = 0u64;
        let mut violated = 0u64;
        for seed in 0..12 {
            let src = UniformSource::minmax_iid(2, 8, 0, 1000, seed);
            for (_w, on_t, on_h) in check_alphabeta(&&src, &[1, 2]) {
                total += 1;
                if on_t > on_h {
                    violated += 1;
                    assert!(
                        (on_t as f64) < 2.0 * on_h as f64,
                        "violation should be mild: {on_t} vs {on_h} (seed {seed})"
                    );
                }
            }
        }
        // Document the reproduction finding in the assertion itself: the
        // property really does fail routinely (if this starts passing
        // with 0 violations, the finding in EXPERIMENTS.md is stale).
        assert!(
            violated > 0,
            "expected Prop 5 violations, found none in {total}"
        );
    }

    #[test]
    fn report_shows_zero_nor_violations() {
        let r = run(true);
        assert!(r.contains("0 violations (0 required)"), "{r}");
    }
}
