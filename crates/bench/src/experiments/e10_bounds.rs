//! E10 — Facts 1 and 2: the proof-tree lower bounds on total work, and
//! the instances that meet them.
//!
//! * Fact 1: any algorithm on `B(d,n)` evaluates ≥ `d^⌊n/2⌋` leaves; we
//!   verify measured sequential work and the smallest proof-tree size
//!   against it.
//! * Fact 2: any algorithm on `M(d,n)` evaluates ≥ `d^⌊n/2⌋ + d^⌈n/2⌉ −
//!   1` leaves; the best-ordered instances meet this bound *exactly*
//!   under sequential α-β (Knuth–Moore).

use gt_analysis::Table;
use gt_core::theory::{fact1_lower_bound, fact2_lower_bound};
use gt_tree::gen::UniformSource;
use gt_tree::minimax::{seq_alphabeta, seq_solve};
use gt_tree::proof::nor_proof_size;

/// Render the E10 report.
pub fn run(quick: bool) -> String {
    let nor_cases: &[(u32, u32)] = if quick {
        &[(2, 8), (3, 5)]
    } else {
        &[(2, 10), (2, 14), (3, 8), (4, 6)]
    };
    let mut t = Table::new([
        "d",
        "n",
        "Fact1 bound",
        "proof-tree size",
        "seq SOLVE work",
        "ok",
    ]);
    for &(d, n) in nor_cases {
        let src = UniformSource::nor_iid(d, n, 0.5, 77);
        let bound = fact1_lower_bound(d, n);
        let proof = nor_proof_size(&src);
        let work = seq_solve(&src, false).leaves_evaluated;
        t.row([
            d.to_string(),
            n.to_string(),
            bound.to_string(),
            proof.to_string(),
            work.to_string(),
            if proof >= bound && work >= bound {
                "yes".to_string()
            } else {
                "VIOLATION".to_string()
            },
        ]);
    }
    let mm_cases: &[(u32, u32)] = if quick {
        &[(2, 6), (3, 4)]
    } else {
        &[(2, 8), (2, 12), (3, 6), (4, 5)]
    };
    let mut t2 = Table::new([
        "d",
        "n",
        "Fact2 bound",
        "best-ordered seq work",
        "random seq work",
        "meets exactly",
    ]);
    for &(d, n) in mm_cases {
        let bound = fact2_lower_bound(d, n);
        let best = UniformSource::minmax_best_ordered(d, n, 1);
        let best_work = seq_alphabeta(&best, false).leaves_evaluated;
        let rand = UniformSource::minmax_iid(d, n, 0, 1 << 20, 3);
        let rand_work = seq_alphabeta(&rand, false).leaves_evaluated;
        t2.row([
            d.to_string(),
            n.to_string(),
            bound.to_string(),
            best_work.to_string(),
            rand_work.to_string(),
            if best_work == bound {
                "yes".to_string()
            } else {
                "NO".to_string()
            },
        ]);
    }
    format!(
        "E10  Facts 1-2: inherent lower bounds on total work\n\n\
         NOR trees (Fact 1: d^floor(n/2)):\n{}\n\
         MIN/MAX trees (Fact 2: d^floor(n/2) + d^ceil(n/2) - 1):\n{}",
        t.render(),
        t2.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fact1_never_violated_across_seeds() {
        for seed in 0..20 {
            let (d, n) = (2u32, 8u32);
            let src = UniformSource::nor_iid(d, n, 0.4, seed);
            assert!(seq_solve(&src, false).leaves_evaluated >= fact1_lower_bound(d, n));
            assert!(nor_proof_size(&src) >= fact1_lower_bound(d, n));
        }
    }

    #[test]
    fn fact2_never_violated_across_seeds() {
        for seed in 0..20 {
            let (d, n) = (2u32, 8u32);
            let src = UniformSource::minmax_iid(d, n, 0, 1 << 20, seed);
            assert!(
                seq_alphabeta(&src, false).leaves_evaluated >= fact2_lower_bound(d, n),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn report_renders() {
        let r = run(true);
        assert!(r.contains("Fact"));
        assert!(!r.contains("VIOLATION"));
        assert!(!r.contains(" NO"));
    }
}
