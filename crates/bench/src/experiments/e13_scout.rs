//! E13 — the Section 6 remark on SCOUT: *"a randomized version of a
//! variant of N-Sequential α-β called SCOUT was proved to possess this
//! optimality"* (Saks–Wigderson).
//!
//! We compare sequential α-β and SCOUT leaf counts across orderings,
//! and their randomized versions on the worst-ordered instances where
//! randomization is supposed to help.

use crate::experiments::e04_alphabeta::MinMaxKind;
use gt_analysis::table::f2;
use gt_analysis::{Summary, Table};
use gt_tree::gen::UniformSource;
use gt_tree::minimax::seq_alphabeta;
use gt_tree::scout::{r_scout, scout};
use gt_tree::source::Permuted;

/// Render the E13 report.
pub fn run(quick: bool) -> String {
    let (d, n) = if quick { (2u32, 6u32) } else { (2, 12) };
    let mut t = Table::new([
        "ordering",
        "alpha-beta leaves",
        "SCOUT leaves",
        "SCOUT tests",
        "SCOUT re-searches",
    ]);
    for kind in [
        MinMaxKind::Random,
        MinMaxKind::BestOrdered,
        MinMaxKind::WorstOrdered,
    ] {
        let src = kind.source(d, n, 17);
        let ab = seq_alphabeta(&src, false).leaves_evaluated;
        let sc = scout(&src);
        t.row([
            kind.tag().to_string(),
            ab.to_string(),
            sc.leaves_evaluated.to_string(),
            sc.test_leaves.to_string(),
            sc.researches.to_string(),
        ]);
    }
    // Randomized comparison on the worst-ordered instance.
    let src = UniformSource::minmax_worst_ordered(d, n);
    let det_ab = seq_alphabeta(&src, false).leaves_evaluated;
    let det_sc = scout(&src).leaves_evaluated;
    let seeds = if quick { 8u64 } else { 32 };
    let rab: Vec<f64> = (0..seeds)
        .map(|s| seq_alphabeta(&Permuted::new(&src, s), false).leaves_evaluated as f64)
        .collect();
    let rsc: Vec<f64> = (0..seeds)
        .map(|s| r_scout(&src, s).leaves_evaluated as f64)
        .collect();
    let (rab, rsc) = (Summary::of(&rab), Summary::of(&rsc));
    format!(
        "E13  SCOUT vs alpha-beta (Section 6 remark) on M({d},{n})\n\n{}\n\
         randomized, worst-ordered M({d},{n}) over {seeds} seeds:\n\
         deterministic: alpha-beta {det_ab}, SCOUT {det_sc}\n\
         E[R-alpha-beta leaves] = {} +- {}\n\
         E[R-SCOUT leaves]      = {} +- {}\n\
         (randomization beats determinism on adversarial orderings for both;\n\
          R-SCOUT is the algorithm Saks-Wigderson proved optimal)\n",
        t.render(),
        f2(rab.mean),
        f2(rab.ci95()),
        f2(rsc.mean),
        f2(rsc.ci95()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders() {
        let r = run(true);
        assert!(r.contains("SCOUT"));
        assert!(r.contains("alpha-beta"));
    }

    #[test]
    fn randomization_helps_both_on_worst_ordered() {
        let src = UniformSource::minmax_worst_ordered(2, 8);
        let det = seq_alphabeta(&src, false).leaves_evaluated as f64;
        let mean_r: f64 = (0..8)
            .map(|s| seq_alphabeta(&Permuted::new(&src, s), false).leaves_evaluated as f64)
            .sum::<f64>()
            / 8.0;
        assert!(mean_r < det);
        let det_sc = scout(&src).leaves_evaluated as f64;
        let mean_sc: f64 = (0..8)
            .map(|s| r_scout(&src, s).leaves_evaluated as f64)
            .sum::<f64>()
            / 8.0;
        assert!(mean_sc < det_sc);
    }
}
