//! E2 — Proposition 1: Team SOLVE with `p` processors achieves a
//! speed-up of `Θ(√p)` over Sequential SOLVE.
//!
//! We sweep `p = 2^k` on `B(2,n)` instances and fit the measured
//! speed-up to a power law `a·p^b`; Proposition 1 (with the matching
//! upper-bound construction) predicts an exponent around `b ≈ 0.5`,
//! far from the `b = 1` a linear-speed-up scheme would show.

use crate::workloads::NorKind;
use gt_analysis::fit_log_log;
use gt_analysis::table::{f2, f3};
use gt_analysis::Table;
use gt_sim::team_solve;
use gt_tree::minimax::seq_solve;

/// Team workload families.  Besides the shared [`NorKind`] families we
/// add the *all-ones* instance: every leaf is 1, so a NOR node dies on
/// its first child and Sequential SOLVE walks a proof tree of size
/// `≈ 2^{n/2}`.  This is the adversarial regime for Team SOLVE — the
/// team's look-ahead leaves are mostly about to die, which is exactly
/// the `O(√p)` upper-bound construction the paper alludes to ("it is
/// easy to construct a tree ... speed-up of at most O(√p)").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TeamKind {
    /// A shared workload family.
    Nor(NorKind),
    /// All leaves equal to 1.
    AllOnes,
}

impl TeamKind {
    /// Table tag.
    pub fn tag(&self) -> &'static str {
        match self {
            TeamKind::Nor(k) => k.tag(),
            TeamKind::AllOnes => "all-ones",
        }
    }
}

/// Measure Team SOLVE speed-ups on one instance; returns `(p, speedup)`.
pub fn sweep(kind: TeamKind, n: u32, max_log_p: u32, seed: u64) -> Vec<(u32, f64)> {
    let src: Box<dyn gt_tree::TreeSource + Send> = match kind {
        TeamKind::Nor(k) => Box::new(k.source(2, n, seed)),
        TeamKind::AllOnes => Box::new(gt_tree::gen::UniformSource::new(
            2,
            n,
            gt_tree::gen::ConstLeaf(1),
        )),
    };
    let s = seq_solve(&src, false).leaves_evaluated;
    (0..=max_log_p)
        .map(|k| {
            let p = 1u32 << k;
            let st = team_solve(&src, p, false);
            (p, s as f64 / st.steps as f64)
        })
        .collect()
}

/// Render the E2 report.
pub fn run(quick: bool) -> String {
    let (n, max_log_p) = if quick { (8, 4) } else { (14, 8) };
    let mut out = String::from(
        "E2  Proposition 1: Team SOLVE speed-up is Θ(sqrt(p))\n\
         claim: Ω(sqrt(p)) always; O(sqrt(p)) on adversarial instances\n\
         (on the no-pruning worst-case instance Team SOLVE is embarrassingly\n\
          parallel and the speed-up is ~p — shown for contrast)\n\n",
    );
    for kind in [
        TeamKind::AllOnes,
        TeamKind::Nor(NorKind::Critical),
        TeamKind::Nor(NorKind::WorstCase),
    ] {
        let pts = sweep(kind, n, max_log_p, 7);
        let mut t = Table::new(["p", "speedup", "speedup/sqrt(p)"]);
        for &(p, s) in &pts {
            t.row([p.to_string(), f2(s), f3(s / (p as f64).sqrt())]);
        }
        let xs: Vec<f64> = pts.iter().map(|&(p, _)| p as f64).collect();
        let ys: Vec<f64> = pts.iter().map(|&(_, s)| s).collect();
        // Drop p = 1 (speedup exactly 1) to reduce small-p bias.
        let (a, b, r2) = fit_log_log(&xs[1..], &ys[1..]);
        out.push_str(&format!(
            "workload {} on B(2,{n}):\n{}fit: speedup = {:.2} * p^{:.3}   (R^2 = {:.3})\n\n",
            kind.tag(),
            t.render(),
            a,
            b,
            r2
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_capped_by_p_and_monotone_in_p() {
        let pts = sweep(TeamKind::Nor(NorKind::WorstCase), 8, 4, 1);
        for &(p, s) in &pts {
            assert!(s <= p as f64 + 1e-9, "speedup {s} exceeds p={p}");
            assert!(s >= 1.0 - 1e-9);
        }
        for w in pts.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-9, "more processors slowed Team SOLVE");
        }
    }

    #[test]
    fn exponent_is_sublinear_on_all_ones() {
        // The adversarial instance: Team SOLVE wastes its look-ahead.
        let pts = sweep(TeamKind::AllOnes, 12, 6, 3);
        let xs: Vec<f64> = pts.iter().skip(1).map(|&(p, _)| p as f64).collect();
        let ys: Vec<f64> = pts.iter().skip(1).map(|&(_, s)| s).collect();
        let (_, b, _) = fit_log_log(&xs, &ys);
        assert!(
            b < 0.9,
            "Team SOLVE should be clearly sublinear, got p^{b:.2}"
        );
    }

    #[test]
    fn worst_case_is_embarrassingly_parallel_for_teams() {
        // Contrast: with no pruning anywhere, Team SOLVE's speculation is
        // never wasted and the speed-up is essentially p.
        let pts = sweep(TeamKind::Nor(NorKind::WorstCase), 10, 5, 3);
        let &(p, s) = pts.last().unwrap();
        assert!(s > 0.9 * p as f64, "expected ~linear, got {s} at p={p}");
    }

    #[test]
    fn report_renders() {
        assert!(run(true).contains("Proposition 1"));
    }
}
