//! E8 — Section 7: the message-passing implementation of N-Parallel
//! SOLVE of width 1 preserves the linear speed-up, and zone multiplexing
//! lets it run with any fixed processor count.
//!
//! We run the discrete-event machine (one processor per level, unit-time
//! messages, one unit action per processor per tick) and compare its
//! tick count against N-Sequential SOLVE's expansion count, then repeat
//! with fixed processor budgets.

use crate::workloads::NorKind;
use gt_analysis::table::{f2, f3};
use gt_analysis::Table;
use gt_msgsim::{simulate, simulate_with_processors};
use gt_tree::minimax::seq_solve;

/// `(n, S*, ticks, speedup, messages)` per height for the full machine.
pub fn sweep(kind: NorKind, heights: &[u32], seed: u64) -> Vec<(u32, u64, u64, f64, u64)> {
    heights
        .iter()
        .map(|&n| {
            let src = kind.source(2, n, seed);
            let s = seq_solve(&src, false).nodes_expanded;
            let r = simulate(&src);
            assert_eq!(
                r.value,
                gt_tree::minimax::nor_value(&src),
                "machine value wrong at n={n}"
            );
            (n, s, r.ticks, s as f64 / r.ticks as f64, r.total_messages())
        })
        .collect()
}

/// Render the E8 report.
pub fn run(quick: bool) -> String {
    let heights: &[u32] = if quick { &[6, 8] } else { &[8, 10, 12, 14, 16] };
    let mut out = String::from(
        "E8  Section 7: message-passing implementation (binary NOR trees)\n\
         claim: the implementation preserves the linear speed-up of N-Parallel SOLVE\n\n",
    );
    for kind in [NorKind::WorstCase, NorKind::Critical] {
        let mut t = Table::new([
            "n",
            "S*(T)",
            "ticks",
            "speedup",
            "speedup/(n+1)",
            "messages",
        ]);
        for (n, s, ticks, sp, msgs) in sweep(kind, heights, 13) {
            t.row([
                n.to_string(),
                s.to_string(),
                ticks.to_string(),
                f2(sp),
                f3(sp / (n as f64 + 1.0)),
                msgs.to_string(),
            ]);
        }
        out.push_str(&format!(
            "workload {} (p = n+1):\n{}\n",
            kind.tag(),
            t.render()
        ));
    }
    // Load balance of the one-processor-per-level design.
    let bal_n = if quick { 8 } else { 14 };
    let src_bal = NorKind::WorstCase.source(2, bal_n, 0);
    let r_bal = simulate(&src_bal);
    out.push_str(&format!(
        "level load balance on worst-case B(2,{bal_n}): busiest/mean = {:.2}\n\n",
        r_bal.level_imbalance()
    ));

    // The d-ary generalization (the paper's binary restriction was
    // expository; our machine generalizes the P-SOLVE**/*** messages to
    // Resume(v, k)).
    let (d3, n3) = if quick { (3u32, 5u32) } else { (3, 9) };
    let src3 = gt_tree::gen::UniformSource::nor_worst_case(d3, n3);
    let s3 = seq_solve(&src3, false).nodes_expanded;
    let r3 = simulate(&src3);
    out.push_str(&format!(
        "d-ary generalization, worst-case B({d3},{n3}): S* = {s3}, ticks = {}, speedup = {:.2}\n\n",
        r3.ticks,
        s3 as f64 / r3.ticks as f64
    ));

    // Zone multiplexing with fixed p.
    let n = if quick { 8 } else { 14 };
    let src = NorKind::WorstCase.source(2, n, 0);
    let s = seq_solve(&src, false).nodes_expanded;
    let mut t = Table::new(["p", "ticks", "speedup", "speedup/p"]);
    for p in [1u32, 2, 4, 8, n + 1] {
        let r = simulate_with_processors(&src, p);
        let sp = s as f64 / r.ticks as f64;
        t.row([
            p.to_string(),
            r.ticks.to_string(),
            f2(sp),
            f3(sp / p as f64),
        ]);
    }
    out.push_str(&format!(
        "zone multiplexing on worst-case B(2,{n}) (S* = {s}):\n{}",
        t.render()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_speedup_grows_with_height_on_worst_case() {
        let rows = sweep(NorKind::WorstCase, &[6, 10], 1);
        assert!(
            rows[1].3 > rows[0].3,
            "speedup should grow with n: {rows:?}"
        );
    }

    #[test]
    fn message_count_is_linear_in_work() {
        for (_, s, _, _, msgs) in sweep(NorKind::Critical, &[8], 2) {
            // Each expansion triggers a bounded number of messages.
            assert!(msgs <= 8 * s + 64, "messages {msgs} vs work {s}");
        }
    }

    #[test]
    fn report_renders() {
        assert!(run(true).contains("Section 7"));
    }
}
