//! E4 — Theorem 3: Parallel α-β of width 1 achieves a linear speed-up
//! over Sequential α-β on every instance of `M(d,n)`.
//!
//! The MIN/MAX counterpart of E1, across three orderings: i.i.d. random
//! leaves, best-ordered (minimal sequential work — the hardest case for
//! parallel gains), and worst-ordered (no pruning anywhere).

use crate::workloads::alphabeta_heights;
use gt_analysis::table::{f2, f3};
use gt_analysis::Table;
use gt_sim::{parallel_alphabeta, sequential_alphabeta};
use gt_tree::gen::UniformSource;
use gt_tree::TreeSource;

/// MIN/MAX workload families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MinMaxKind {
    /// I.i.d. integer leaves (distinct values with high probability).
    Random,
    /// Depth-correlated (random-walk) leaves: realistic incremental
    /// evaluations, partially informative ordering.
    Correlated,
    /// All-equal leaves: sequential α-β meets the Knuth–Moore minimum.
    BestOrdered,
    /// Worst-to-best child ordering: no cutoffs at all.
    WorstOrdered,
}

impl MinMaxKind {
    /// Table tag.
    pub fn tag(&self) -> &'static str {
        match self {
            MinMaxKind::Random => "iid",
            MinMaxKind::Correlated => "corr",
            MinMaxKind::BestOrdered => "best-ord",
            MinMaxKind::WorstOrdered => "worst-ord",
        }
    }

    /// Materialize `M(d,n)`.
    pub fn source(&self, d: u32, n: u32, seed: u64) -> Box<dyn TreeSource + Send> {
        match self {
            MinMaxKind::Random => Box::new(UniformSource::minmax_iid(d, n, 0, 1 << 30, seed)),
            MinMaxKind::Correlated => Box::new(UniformSource::minmax_correlated(d, n, 8, seed)),
            MinMaxKind::BestOrdered => Box::new(UniformSource::minmax_best_ordered(d, n, 0)),
            MinMaxKind::WorstOrdered => Box::new(UniformSource::minmax_worst_ordered(d, n)),
        }
    }
}

/// One measured point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Branching factor.
    pub d: u32,
    /// Height.
    pub n: u32,
    /// Workload family.
    pub kind: MinMaxKind,
    /// Sequential α-β leaves `S̃(T)`.
    pub s: u64,
    /// Parallel α-β width-1 steps `P̃(T)`.
    pub p: u64,
    /// Processors used.
    pub procs: u32,
}

impl Point {
    /// `S̃(T)/P̃(T)`.
    pub fn speedup(&self) -> f64 {
        self.s as f64 / self.p as f64
    }
}

/// Run the Theorem 3 sweep.
pub fn sweep(quick: bool) -> Vec<Point> {
    let mut out = Vec::new();
    let degrees: &[u32] = if quick { &[2] } else { &[2, 3] };
    for &d in degrees {
        for &n in &alphabeta_heights(d, quick) {
            for kind in [
                MinMaxKind::Random,
                MinMaxKind::Correlated,
                MinMaxKind::BestOrdered,
                MinMaxKind::WorstOrdered,
            ] {
                let src = kind.source(d, n, 0xAB ^ u64::from(d * 31 + n));
                let seq = sequential_alphabeta(&src, false);
                let par = parallel_alphabeta(&src, 1, false);
                assert_eq!(seq.value, par.value, "value mismatch d={d} n={n}");
                out.push(Point {
                    d,
                    n,
                    kind,
                    s: seq.total_work,
                    p: par.steps,
                    procs: par.processors_used,
                });
            }
        }
    }
    out
}

/// Render the E4 report.
pub fn run(quick: bool) -> String {
    let pts = sweep(quick);
    let mut t = Table::new([
        "d",
        "n",
        "ordering",
        "S~(T)",
        "P~(T)",
        "speedup",
        "speedup/(n+1)",
        "procs",
    ]);
    for p in &pts {
        t.row([
            p.d.to_string(),
            p.n.to_string(),
            p.kind.tag().to_string(),
            p.s.to_string(),
            p.p.to_string(),
            f2(p.speedup()),
            f3(p.speedup() / (p.n as f64 + 1.0)),
            p.procs.to_string(),
        ]);
    }
    format!(
        "E4  Theorem 3: width-1 Parallel alpha-beta speed-up on M(d,n)\n\
         claim: S~(T)/P~(T) >= c(n+1) with n+1 processors\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_invariants() {
        for p in sweep(true) {
            assert!(p.p <= p.s, "parallel steps exceed sequential work");
            assert!(p.speedup() >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn best_ordered_sequential_work_is_knuth_moore() {
        let pts = sweep(true);
        for p in pts.iter().filter(|p| p.kind == MinMaxKind::BestOrdered) {
            let km = gt_core::theory::knuth_moore_minimum(p.d, p.n);
            assert_eq!(p.s, km, "d={} n={}", p.d, p.n);
        }
    }

    #[test]
    fn worst_ordered_sequential_work_is_everything() {
        for p in sweep(true)
            .iter()
            .filter(|p| p.kind == MinMaxKind::WorstOrdered)
        {
            assert_eq!(p.s, (p.d as u64).pow(p.n));
        }
    }

    #[test]
    fn report_renders() {
        assert!(run(true).contains("Theorem 3"));
    }
}
