//! E7 — width ablation (Section 8): the paper proves linear speed-up
//! only for width 1 and conjectures it persists for any fixed width,
//! with `O(n^w)` processors.
//!
//! We sweep `w = 0..4` and report steps, processors used (compare the
//! combinatorial cap `Σ_{k≤w} C(n,k)(d−1)^k`), speed-up, and the total
//! work ratio `W(T)/S(T)` (Corollary 1: bounded by a constant for
//! width 1).

use crate::workloads::NorKind;
use gt_analysis::table::{f2, f3};
use gt_analysis::Table;
use gt_core::theory::width_processor_cap;
use gt_sim::{parallel_solve, parallel_solve_capped};
use gt_tree::minimax::seq_solve;

/// One row: `(w, steps, processors, total_work)`.
pub fn sweep(
    d: u32,
    n: u32,
    kind: NorKind,
    widths: &[u32],
    seed: u64,
) -> Vec<(u32, u64, u32, u64)> {
    let src = kind.source(d, n, seed);
    widths
        .iter()
        .map(|&w| {
            let st = parallel_solve(&src, w, false);
            (w, st.steps, st.processors_used, st.total_work)
        })
        .collect()
}

/// Render the E7 report.
pub fn run(quick: bool) -> String {
    let (d, n) = if quick { (2, 9) } else { (2, 14) };
    let widths: &[u32] = &[0, 1, 2, 3, 4];
    let mut out = format!(
        "E7  Width ablation on B({d},{n}) (Section 8 conjecture)\n\
         claim (proved): w=1 linear; (conjectured): fixed w keeps speed-up linear in processors\n\n"
    );
    for kind in [NorKind::Critical, NorKind::WorstCase] {
        let src = kind.source(d, n, 21);
        let s = seq_solve(&src, false).leaves_evaluated;
        let rows = sweep(d, n, kind, widths, 21);
        let mut t = Table::new([
            "w",
            "steps",
            "speedup",
            "procs used",
            "procs cap",
            "work W(T)",
            "W(T)/S(T)",
        ]);
        for (w, steps, procs, work) in rows {
            t.row([
                w.to_string(),
                steps.to_string(),
                f2(s as f64 / steps as f64),
                procs.to_string(),
                width_processor_cap(d, n, w).to_string(),
                work.to_string(),
                f3(work as f64 / s as f64),
            ]);
        }
        out.push_str(&format!(
            "workload {} (S(T) = {s}):\n{}\n",
            kind.tag(),
            t.render()
        ));
    }
    // Fixed-processor budgets in the abstract model (the leaf-model
    // analogue of Section 7's zone-multiplexing remark): width 3, but
    // only the p smallest-pruning-number leaves evaluated per step.
    let src = NorKind::WorstCase.source(d, n, 21);
    let s = seq_solve(&src, false).leaves_evaluated;
    let mut t = Table::new(["p", "steps", "speedup", "speedup/p"]);
    for p in [1u32, 2, 4, 8, 16, 32] {
        let st = parallel_solve_capped(&src, 3, p, false);
        let sp = s as f64 / st.steps as f64;
        t.row([
            p.to_string(),
            st.steps.to_string(),
            f2(sp),
            f3(sp / p as f64),
        ]);
    }
    out.push_str(&format!(
        "fixed processor budgets, width 3, worst-case B({d},{n}):\n{}",
        t.render()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processors_respect_combinatorial_cap() {
        for kind in [NorKind::Critical, NorKind::WorstCase] {
            for (w, _, procs, _) in sweep(2, 8, kind, &[0, 1, 2, 3], 5) {
                let cap = width_processor_cap(2, 8, w);
                assert!(u128::from(procs) <= cap, "w={w}: {procs} procs > cap {cap}");
            }
        }
    }

    #[test]
    fn steps_monotone_in_width() {
        let rows = sweep(2, 8, NorKind::WorstCase, &[0, 1, 2, 3], 9);
        for pair in rows.windows(2) {
            assert!(pair[1].1 <= pair[0].1, "wider got slower: {pair:?}");
        }
    }

    #[test]
    fn corollary1_work_blowup_is_modest_at_width1() {
        let src = NorKind::Critical.source(2, 10, 4);
        let s = seq_solve(&src, false).leaves_evaluated;
        let rows = sweep(2, 10, NorKind::Critical, &[1], 4);
        let work = rows[0].3;
        assert!(
            (work as f64) <= 4.0 * s as f64,
            "width-1 work {work} vs sequential {s}"
        );
    }

    #[test]
    fn report_renders() {
        assert!(run(true).contains("Width ablation"));
    }
}
