//! E9 — the Section 8 remark: *"The provable constant c in Theorem 1 is
//! rather poor.  Some simulations we did indicates that a better
//! constant is achievable."*
//!
//! We estimate the empirical constant by a least-squares fit of measured
//! speed-up against `n+1` (through the origin, per the theorem's form)
//! and set it against the constant implied by the Proposition 4 bound at
//! the same work levels.

use crate::experiments::e01_theorem1::{sweep, Point};
use crate::workloads::NorKind;
use gt_analysis::fit_through_origin;
use gt_analysis::table::f3;
use gt_analysis::Table;
use gt_core::theory::{fact1_u128, n0_estimate, provable_speedup};

/// Fit the empirical constant per `(d, workload)` group.
pub fn fits(points: &[Point]) -> Vec<(u32, NorKind, f64, f64, usize)> {
    let mut out = Vec::new();
    for d in [2u32, 3, 4] {
        for kind in [NorKind::Critical, NorKind::Half, NorKind::WorstCase] {
            let group: Vec<&Point> = points
                .iter()
                .filter(|p| p.d == d && p.kind == kind)
                .collect();
            if group.len() < 2 {
                continue;
            }
            let xs: Vec<f64> = group.iter().map(|p| p.n as f64 + 1.0).collect();
            let ys: Vec<f64> = group.iter().map(|p| p.speedup()).collect();
            let (c, r2) = fit_through_origin(&xs, &ys);
            out.push((d, kind, c, r2, group.len()));
        }
    }
    out
}

/// Render the E9 report.
pub fn run(quick: bool) -> String {
    let pts = sweep(quick);
    let mut t = Table::new(["d", "workload", "fitted c", "R^2", "points"]);
    for (d, kind, c, r2, k) in fits(&pts) {
        t.row([
            d.to_string(),
            kind.tag().to_string(),
            f3(c),
            f3(r2),
            k.to_string(),
        ]);
    }
    // The provable constant at the Fact-1 work level for a reference n.
    let n_ref = if quick { 8 } else { 20 };
    let provable = provable_speedup(2, n_ref, fact1_u128(2, n_ref)) / (n_ref as f64 + 1.0);
    format!(
        "E9  Empirical speed-up constant vs the provable one (Section 8 remark)\n\
         fit: speedup = c * (n+1), through the origin, per (d, workload)\n\n{}\n\
         provable constant from Prop 4 at d=2, n={n_ref}, S=Fact-1 level: c >= {provable:.4}\n\
         (the paper: \"the provable constant c ... is rather poor; simulations indicate\n\
          a better constant is achievable\" — compare the fitted values above)\n\
         provable height threshold n0(2) from Lemma 2's machinery: {:.0}\n\
         (the measured linear shape already appears at n ~ 8; the proof needs n > n0)\n",
        t.render(),
        n0_estimate(2)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fitted_constants_are_positive() {
        let pts = sweep(true);
        let f = fits(&pts);
        assert!(!f.is_empty());
        for (d, kind, c, _, _) in f {
            assert!(c > 0.0, "c must be positive for d={d} {}", kind.tag());
        }
    }

    #[test]
    fn empirical_beats_provable_on_worst_case() {
        // The whole point of the Section 8 remark: measured constants are
        // far better than the provable one.
        let pts = sweep(true);
        let f = fits(&pts);
        let provable = provable_speedup(2, 8, fact1_u128(2, 8)) / 9.0;
        let worst = f
            .iter()
            .find(|(d, kind, ..)| *d == 2 && *kind == NorKind::WorstCase)
            .expect("worst-case group present");
        assert!(
            worst.2 > provable,
            "empirical {} should beat provable {provable}",
            worst.2
        );
    }

    #[test]
    fn report_renders() {
        assert!(run(true).contains("Empirical speed-up constant"));
    }
}
