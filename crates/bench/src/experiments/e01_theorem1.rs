//! E1 — Theorem 1: Parallel SOLVE of width 1 achieves a linear speed-up
//! over Sequential SOLVE on every instance of `B(d,n)`.
//!
//! For each `(d, n, workload)` we run both algorithms in the
//! leaf-evaluation model and report `S(T)`, `P(T)`, the speed-up
//! `S(T)/P(T)`, the per-processor efficiency `speedup/(n+1)` (Theorem 1
//! says this ratio is bounded below by an absolute constant `c` once `n`
//! is large), and the processors actually used (Theorem 1: `n+1`).

use crate::workloads::{solve_heights, NorKind};
use gt_analysis::table::{f2, f3};
use gt_analysis::Table;
use gt_sim::parallel_solve;
use gt_tree::minimax::seq_solve;

/// One measured point of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Branching factor.
    pub d: u32,
    /// Height.
    pub n: u32,
    /// Workload family.
    pub kind: NorKind,
    /// Sequential leaves `S(T)`.
    pub s: u64,
    /// Parallel steps `P(T)` at width 1.
    pub p: u64,
    /// Processors used.
    pub procs: u32,
}

impl Point {
    /// `S(T) / P(T)`.
    pub fn speedup(&self) -> f64 {
        self.s as f64 / self.p as f64
    }

    /// The implied Theorem 1 constant `speedup / (n+1)`.
    pub fn constant(&self) -> f64 {
        self.speedup() / (self.n as f64 + 1.0)
    }
}

/// Run the full measurement sweep (shared with E9's constant fit).
pub fn sweep(quick: bool) -> Vec<Point> {
    let mut out = Vec::new();
    let degrees: &[u32] = if quick { &[2, 3] } else { &[2, 3, 4] };
    for &d in degrees {
        for &n in &solve_heights(d, quick) {
            for kind in [NorKind::Critical, NorKind::Half, NorKind::WorstCase] {
                let src = kind.source(d, n, 0xC0FFEE ^ u64::from(d * 100 + n));
                let seq = seq_solve(&src, false);
                let par = parallel_solve(&src, 1, false);
                assert_eq!(par.value, seq.value, "value mismatch d={d} n={n}");
                out.push(Point {
                    d,
                    n,
                    kind,
                    s: seq.leaves_evaluated,
                    p: par.steps,
                    procs: par.processors_used,
                });
            }
        }
    }
    out
}

/// Render the E1 report.
pub fn run(quick: bool) -> String {
    let pts = sweep(quick);
    let mut t = Table::new([
        "d",
        "n",
        "workload",
        "S(T)",
        "P(T)",
        "speedup",
        "speedup/(n+1)",
        "procs",
        "n+1",
    ]);
    for p in &pts {
        t.row([
            p.d.to_string(),
            p.n.to_string(),
            p.kind.tag().to_string(),
            p.s.to_string(),
            p.p.to_string(),
            f2(p.speedup()),
            f3(p.constant()),
            p.procs.to_string(),
            (p.n + 1).to_string(),
        ]);
    }
    format!(
        "E1  Theorem 1: width-1 Parallel SOLVE speed-up on B(d,n)\n\
         claim: S(T)/P(T) >= c(n+1) with n+1 processors\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_is_consistent() {
        for p in sweep(true) {
            assert!(p.p <= p.s, "parallel steps exceed sequential work");
            assert!(p.procs <= p.n + 1, "processor bound violated");
            assert!(p.speedup() >= 1.0);
        }
    }

    #[test]
    fn report_renders() {
        let r = run(true);
        assert!(r.contains("Theorem 1"));
        assert!(r.contains("speedup"));
    }
}
