//! E3 — Proposition 3: during width-1 Parallel SOLVE on the skeleton
//! `H_T` of any `T ∈ B(d,n)`, the number of steps with parallel degree
//! `k+1` is at most `C(n,k)·(d−1)^k`.
//!
//! We build `H_T` from a Sequential SOLVE run, re-run Parallel SOLVE of
//! width 1 on it, and print the measured degree histogram `t_{k+1}`
//! against the combinatorial bound.

use crate::workloads::NorKind;
use gt_analysis::Table;
use gt_core::theory::prop3_bound;
use gt_sim::parallel_solve;
use gt_tree::skeleton::nor_skeleton;

/// Measured histogram vs. bound for one instance; entries are
/// `(k, t_{k+1}, bound)` for every k with a nonzero measurement.
pub fn histogram(d: u32, n: u32, kind: NorKind, seed: u64) -> Vec<(u32, u64, u128)> {
    let src = kind.source(d, n, seed);
    let h = nor_skeleton(&src);
    let st = parallel_solve(&h, 1, false);
    (0..=n)
        .filter_map(|k| {
            let t = st.t(k as usize + 1);
            (t > 0).then(|| (k, t, prop3_bound(d, n, k)))
        })
        .collect()
}

/// Render the E3 report.
pub fn run(quick: bool) -> String {
    let cases: &[(u32, u32)] = if quick { &[(2, 8)] } else { &[(2, 14), (3, 9)] };
    let mut out = String::from(
        "E3  Proposition 3: steps of degree k+1 on H_T are bounded by C(n,k)(d-1)^k\n\n",
    );
    for &(d, n) in cases {
        for kind in [NorKind::Critical, NorKind::WorstCase] {
            let rows = histogram(d, n, kind, 11);
            let mut t = Table::new(["k", "t_{k+1} measured", "C(n,k)(d-1)^k bound", "ok"]);
            let mut all_ok = true;
            for (k, meas, bound) in &rows {
                let ok = (*meas as u128) <= *bound;
                all_ok &= ok;
                t.row([
                    k.to_string(),
                    meas.to_string(),
                    bound.to_string(),
                    if ok {
                        "yes".into()
                    } else {
                        "VIOLATION".to_string()
                    },
                ]);
            }
            out.push_str(&format!(
                "B({d},{n}) workload {}: bound {}\n{}\n",
                kind.tag(),
                if all_ok { "holds" } else { "VIOLATED" },
                t.render()
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_holds_on_many_random_instances() {
        for seed in 0..10 {
            for (d, n) in [(2u32, 9u32), (3, 6)] {
                for kind in [NorKind::Critical, NorKind::Half] {
                    for (k, meas, bound) in histogram(d, n, kind, seed) {
                        assert!(
                            (meas as u128) <= bound,
                            "Prop 3 violated at k={k}: {meas} > {bound} (d={d} n={n} seed={seed})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn histogram_covers_all_steps() {
        let rows = histogram(2, 8, NorKind::WorstCase, 1);
        assert!(!rows.is_empty());
    }

    #[test]
    fn report_renders() {
        assert!(run(true).contains("Proposition 3"));
    }
}
