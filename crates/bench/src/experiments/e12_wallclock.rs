//! E12 — wall-clock behaviour of the threaded engines.
//!
//! The leaf-evaluation model charges only for leaf evaluations, so the
//! model-level speed-ups of Theorems 1/3 surface as wall-clock speed-ups
//! exactly when per-leaf cost dominates the serial bookkeeping.  We
//! sweep the artificial leaf cost of the synthetic game and report the
//! wall-clock speed-up of the round-synchronous and cascade engines over
//! the sequential baselines, plus a Connect-Four depth sweep.

use gt_analysis::table::f2;
use gt_analysis::Table;
use gt_core::engine::{CascadeEngine, RoundEngine, YbwEngine};
use gt_games::{Connect4, GameTreeSource, SyntheticGame};
use gt_tree::minimax::seq_alphabeta;
use std::time::Instant;

/// `(eval_work, t_seq_ms, t_round_ms, t_cascade_ms, t_ybw_ms)` over the
/// leaf-cost sweep.
pub fn leaf_cost_sweep(quick: bool) -> Vec<(u32, f64, f64, f64, f64)> {
    let (branching, depth) = if quick { (3, 5) } else { (4, 7) };
    let costs: &[u32] = if quick {
        &[0, 256]
    } else {
        &[0, 64, 256, 1024, 4096]
    };
    costs
        .iter()
        .map(|&work| {
            let game = SyntheticGame::new(branching, depth, work, 99);
            let src = GameTreeSource::from_initial(game, depth);
            let t0 = Instant::now();
            let seq = seq_alphabeta(&src, false);
            let t_seq = t0.elapsed().as_secs_f64() * 1e3;
            let round = RoundEngine::with_width(2).solve_minmax(&src);
            assert_eq!(round.value, seq.value);
            let casc = CascadeEngine::with_width(2).solve_minmax(&src);
            assert_eq!(casc.value, seq.value);
            let ybw = YbwEngine::default().solve_minmax(&src);
            assert_eq!(ybw.value, seq.value);
            (
                work,
                t_seq,
                round.elapsed.as_secs_f64() * 1e3,
                casc.elapsed.as_secs_f64() * 1e3,
                ybw.elapsed.as_secs_f64() * 1e3,
            )
        })
        .collect()
}

/// Render the E12 report.
pub fn run(quick: bool) -> String {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = format!(
        "E12  Wall-clock: threaded engines vs sequential (leaf-cost sweep)\n\
         host parallelism: {cores} core(s)\n\
         expectation: with multiple cores, parallel wins grow as per-leaf cost\n\
         dominates bookkeeping; on a single-core host the sweep instead measures\n\
         the engines' overhead (the paper's speed-ups are model-level: see E1-E8)\n\n",
    );
    let mut t = Table::new([
        "leaf work",
        "seq ms",
        "round ms",
        "cascade ms",
        "ybw ms",
        "round speedup",
        "cascade speedup",
        "ybw speedup",
    ]);
    for (w, seq, round, casc, ybw) in leaf_cost_sweep(quick) {
        t.row([
            w.to_string(),
            f2(seq),
            f2(round),
            f2(casc),
            f2(ybw),
            f2(seq / round.max(1e-9)),
            f2(seq / casc.max(1e-9)),
            f2(seq / ybw.max(1e-9)),
        ]);
    }
    out.push_str(&t.render());

    // Connect Four: realistic "wide and shallow" trees (Section 8).
    let depths: &[u32] = if quick { &[4, 5] } else { &[5, 6, 7, 8] };
    let mut t2 = Table::new(["depth", "seq leaves", "seq ms", "cascade ms", "speedup"]);
    for &depth in depths {
        let src = GameTreeSource::from_initial(Connect4::default(), depth);
        let t0 = Instant::now();
        let seq = seq_alphabeta(&src, false);
        let t_seq = t0.elapsed().as_secs_f64() * 1e3;
        let casc = CascadeEngine::with_width(2).solve_minmax(&src);
        assert_eq!(casc.value, seq.value, "depth {depth}");
        let t_casc = casc.elapsed.as_secs_f64() * 1e3;
        t2.row([
            depth.to_string(),
            seq.leaves_evaluated.to_string(),
            f2(t_seq),
            f2(t_casc),
            f2(t_seq / t_casc.max(1e-9)),
        ]);
    }
    out.push_str(&format!(
        "\nConnect Four depth sweep (cascade width 2, heuristic leaves):\n{}",
        t2.render()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_agree_with_sequential_on_synthetic_game() {
        let rows = leaf_cost_sweep(true);
        assert!(!rows.is_empty());
        // Agreement is asserted inside the sweep; here just sanity-check
        // timings are positive.
        for (_, a, b, c, y) in rows {
            assert!(a >= 0.0 && b >= 0.0 && c >= 0.0 && y >= 0.0);
        }
    }

    #[test]
    fn report_renders() {
        assert!(run(true).contains("Wall-clock"));
    }
}
