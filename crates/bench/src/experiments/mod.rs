//! One module per reproduced claim; see DESIGN.md §4 for the index.

pub mod e01_theorem1;
pub mod e02_team;
pub mod e03_prop3;
pub mod e04_alphabeta;
pub mod e05_expansion;
pub mod e06_randomized;
pub mod e07_width;
pub mod e08_msgsim;
pub mod e09_constant;
pub mod e10_bounds;
pub mod e11_skeleton;
pub mod e12_wallclock;
pub mod e13_scout;
pub mod e14_sss;
