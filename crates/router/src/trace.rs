//! Fleet-wide distributed tracing: one span tree per traced request.
//!
//! The router is the only vantage point that sees a request end to
//! end — the routing decision, every upstream copy (initial, retry,
//! hedge), the split plan's scatter-gather structure, and the local
//! expiry backstop.  This module gives it a [`SpanRecorder`]: traced
//! requests get a [`TraceHandle`] whose spans the data path fills in
//! as the request moves, and the finished tree is queryable through
//! the router's `op:"trace"` verb.
//!
//! ## Propagation
//!
//! A trace is born at the router (sampled via `--trace-sample`) or
//! supplied by the client as `"trace":{"trace_id":...}` — a client
//! context always wins and is always recorded (while tracing is
//! enabled at all), so callers can trace a specific request on
//! demand.  Every upstream copy carries
//! `"trace":{"trace_id":...,"parent_span":<span>}`, where `<span>`
//! is the dispatch span created for that copy; the replica echoes the
//! context with its own stage offsets, which land on the span as
//! `stages`/`work` detail.  The client reply carries the `trace_id`
//! so the tree can be fetched afterwards.
//!
//! ## Span model
//!
//! Spans are flat records `{id, parent, kind, label, start_us,
//! end_us, status, ...detail}` with microsecond offsets from the
//! trace's start; the tree is the `parent` relation.  The root span
//! (id 1, kind `request`) brackets the whole request.  Everything is
//! offsets on one clock — the router's — so sibling spans are
//! directly comparable, and replica-relative stage offsets are
//! rebased by adding them to their span's `start_us`.

use gt_analysis::Json;
use gt_serve::protocol::TraceContext;
use std::collections::hash_map::RandomState;
use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasher, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The root span's id in every trace.
pub const ROOT_SPAN: u64 = 1;

/// One node of a span tree.
#[derive(Debug, Clone)]
pub struct Span {
    pub id: u64,
    /// Parent span id; `None` only for the root (or for a root whose
    /// client supplied `parent_span` — then it grafts into the
    /// client's own, larger tree).
    pub parent: Option<u64>,
    /// What the span covers: `request`, `route`, `dispatch`, `retry`,
    /// `hedge`, `split`, `subeval`, `redispatch`, `skip`, `discard`,
    /// `expire`.
    pub kind: &'static str,
    pub label: String,
    /// Offset from the trace's start, microseconds.
    pub start_us: u64,
    /// `None` while the span is still open.
    pub end_us: Option<u64>,
    /// Terminal status (`ok`, `busy`, `error`, `timeout`, `lost`,
    /// `discarded`, …); `None` while open.
    pub status: Option<String>,
    /// Extra fields rendered flat into the span's JSON object —
    /// replica echo (`stages`, `work`), counts, window bounds.
    pub extra: Vec<(String, Json)>,
}

impl Span {
    fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> = vec![
            ("id".into(), Json::from(self.id)),
            (
                "parent".into(),
                match self.parent {
                    Some(p) => Json::from(p),
                    None => Json::Null,
                },
            ),
            ("kind".into(), Json::from(self.kind)),
            ("label".into(), Json::from(self.label.clone())),
            ("start_us".into(), Json::from(self.start_us)),
            (
                "end_us".into(),
                match self.end_us {
                    Some(e) => Json::from(e),
                    None => Json::Null,
                },
            ),
            (
                "status".into(),
                match &self.status {
                    Some(s) => Json::from(s.clone()),
                    None => Json::Null,
                },
            ),
        ];
        fields.extend(self.extra.iter().cloned());
        Json::Object(fields)
    }
}

struct TraceState {
    spans: Vec<Span>,
    next: u64,
}

/// One traced request's span tree, shared by everything that touches
/// the request (client io, upstream readers, the pacer).  All methods
/// take the internal lock briefly; none call out while holding it.
pub struct TraceHandle {
    pub trace_id: String,
    started: Instant,
    state: Mutex<TraceState>,
}

impl TraceHandle {
    fn new(trace_id: String, root_label: String, client_parent: Option<u64>) -> TraceHandle {
        TraceHandle {
            trace_id,
            started: Instant::now(),
            state: Mutex::new(TraceState {
                spans: vec![Span {
                    id: ROOT_SPAN,
                    parent: client_parent,
                    kind: "request",
                    label: root_label,
                    start_us: 0,
                    end_us: None,
                    status: None,
                    extra: Vec::new(),
                }],
                next: ROOT_SPAN + 1,
            }),
        }
    }

    /// Microseconds since the trace began.
    pub fn elapsed_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    /// Open a child span; returns its id.
    pub fn span(&self, parent: u64, kind: &'static str, label: String) -> u64 {
        let start_us = self.elapsed_us();
        let mut st = self.state.lock().unwrap();
        let id = st.next;
        st.next += 1;
        st.spans.push(Span {
            id,
            parent: Some(parent),
            kind,
            label,
            start_us,
            end_us: None,
            status: None,
            extra: Vec::new(),
        });
        id
    }

    /// Record an instantaneous event as an already-closed span.
    pub fn event(&self, parent: u64, kind: &'static str, label: String, status: &str) -> u64 {
        let id = self.span(parent, kind, label);
        self.end(id, status);
        id
    }

    pub fn end(&self, id: u64, status: &str) {
        self.end_with(id, status, Vec::new());
    }

    /// Close a span with extra detail (idempotent: the first close
    /// wins, like the reply claims it mirrors).
    pub fn end_with(&self, id: u64, status: &str, extra: Vec<(String, Json)>) {
        let end_us = self.elapsed_us();
        let mut st = self.state.lock().unwrap();
        if let Some(span) = st.spans.iter_mut().find(|s| s.id == id) {
            if span.end_us.is_none() {
                span.end_us = Some(end_us);
                span.status = Some(status.to_string());
                span.extra.extend(extra);
            }
        }
    }

    /// Attach detail to a span without closing it.
    pub fn annotate(&self, id: u64, key: &str, value: Json) {
        let mut st = self.state.lock().unwrap();
        if let Some(span) = st.spans.iter_mut().find(|s| s.id == id) {
            span.extra.push((key.to_string(), value));
        }
    }

    /// Spans recorded so far.
    pub fn span_count(&self) -> usize {
        self.state.lock().unwrap().spans.len()
    }

    /// The assembled tree: `{"trace_id":..., "spans":[...]}`.
    pub fn to_json(&self) -> Json {
        let st = self.state.lock().unwrap();
        Json::Object(vec![
            ("trace_id".into(), Json::from(self.trace_id.clone())),
            (
                "spans".into(),
                Json::Array(st.spans.iter().map(Span::to_json).collect()),
            ),
        ])
    }
}

/// Counters the metrics snapshot reads off the recorder.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    pub started: u64,
    pub finished: u64,
    pub spans: u64,
    pub active: u64,
    pub ringed: u64,
}

struct RecorderState {
    active: HashMap<String, Arc<TraceHandle>>,
    finished: VecDeque<Arc<TraceHandle>>,
}

/// The router's trace registry: sampling decision, id generation,
/// the active map, and a bounded ring of finished trees served by
/// `op:"trace"`.
pub struct SpanRecorder {
    /// Fraction of requests traced when the client supplies no
    /// context; `0` disables tracing entirely, `1` traces everything.
    sample: f64,
    ring: usize,
    ids: RandomState,
    seq: AtomicU64,
    sampled_seq: AtomicU64,
    started: AtomicU64,
    finished_total: AtomicU64,
    state: Mutex<RecorderState>,
}

impl SpanRecorder {
    pub fn new(sample: f64, ring: usize) -> SpanRecorder {
        SpanRecorder {
            sample: sample.clamp(0.0, 1.0),
            ring: ring.max(1),
            ids: RandomState::new(),
            seq: AtomicU64::new(0),
            sampled_seq: AtomicU64::new(0),
            started: AtomicU64::new(0),
            finished_total: AtomicU64::new(0),
            state: Mutex::new(RecorderState {
                active: HashMap::new(),
                finished: VecDeque::new(),
            }),
        }
    }

    /// Whether tracing is enabled at all.
    pub fn enabled(&self) -> bool {
        self.sample > 0.0
    }

    fn fresh_id(&self) -> String {
        let mut h = self.ids.build_hasher();
        h.write_u64(self.seq.fetch_add(1, Ordering::Relaxed));
        format!("rt-{:016x}", h.finish())
    }

    /// Deterministic 1-in-N sampling (N = round(1/sample)); cheaper
    /// and steadier than a coin flip, and reproducible under load.
    fn sampled(&self) -> bool {
        if self.sample <= 0.0 {
            return false;
        }
        if self.sample >= 1.0 {
            return true;
        }
        let interval = (1.0 / self.sample).round().max(1.0) as u64;
        self.sampled_seq
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(interval)
    }

    /// Start a trace for one request, or `None` when it goes
    /// untraced.  A client-supplied context is always honoured (its
    /// id becomes the trace id and its `parent_span` grafts the root)
    /// unless tracing is disabled outright.
    pub fn begin(
        &self,
        client: Option<&TraceContext>,
        root_label: &str,
    ) -> Option<Arc<TraceHandle>> {
        if !self.enabled() {
            return None;
        }
        if client.is_none() && !self.sampled() {
            return None;
        }
        let (trace_id, parent) = match client {
            Some(ctx) => (ctx.trace_id.clone(), ctx.parent_span),
            None => (self.fresh_id(), None),
        };
        let handle = Arc::new(TraceHandle::new(
            trace_id.clone(),
            root_label.to_string(),
            parent,
        ));
        self.started.fetch_add(1, Ordering::Relaxed);
        self.state
            .lock()
            .unwrap()
            .active
            .insert(trace_id, Arc::clone(&handle));
        Some(handle)
    }

    /// The request answered: move its trace from the active map to
    /// the finished ring (oldest evicted beyond capacity).
    pub fn finish(&self, handle: &Arc<TraceHandle>) {
        self.finished_total.fetch_add(1, Ordering::Relaxed);
        let mut st = self.state.lock().unwrap();
        st.active.remove(&handle.trace_id);
        st.finished.push_back(Arc::clone(handle));
        while st.finished.len() > self.ring {
            st.finished.pop_front();
        }
    }

    /// Look up one tree by id — active traces included, so a slow
    /// request can be inspected mid-flight.
    pub fn lookup(&self, trace_id: &str) -> Option<Arc<TraceHandle>> {
        let st = self.state.lock().unwrap();
        st.active.get(trace_id).cloned().or_else(|| {
            st.finished
                .iter()
                .rev()
                .find(|h| h.trace_id == trace_id)
                .cloned()
        })
    }

    /// The most recent `n` finished trees, newest first.
    pub fn latest(&self, n: usize) -> Vec<Arc<TraceHandle>> {
        let st = self.state.lock().unwrap();
        st.finished.iter().rev().take(n).cloned().collect()
    }

    pub fn stats(&self) -> TraceStats {
        let (active, ringed, spans) = {
            let st = self.state.lock().unwrap();
            let spans = st
                .active
                .values()
                .chain(st.finished.iter())
                .map(|h| h.span_count() as u64)
                .sum();
            (st.active.len() as u64, st.finished.len() as u64, spans)
        };
        TraceStats {
            started: self.started.load(Ordering::Relaxed),
            finished: self.finished_total.load(Ordering::Relaxed),
            spans,
            active,
            ringed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_tree_assembles_with_offsets_and_detail() {
        let rec = SpanRecorder::new(1.0, 8);
        let h = rec.begin(None, "worst:d=2,n=4|cascade:w=1").unwrap();
        assert!(h.trace_id.starts_with("rt-"));
        let route = h.event(ROOT_SPAN, "route", "0,1".into(), "ok");
        let d = h.span(ROOT_SPAN, "dispatch", "127.0.0.1:7171".into());
        h.end_with(
            d,
            "ok",
            vec![("work".into(), Json::obj([("leaves", Json::from(16u64))]))],
        );
        h.end(ROOT_SPAN, "ok");
        rec.finish(&h);

        let j = h.to_json();
        let spans = match j.get("spans").unwrap() {
            Json::Array(s) => s.clone(),
            other => panic!("spans not an array: {other:?}"),
        };
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].get("kind").and_then(Json::as_str), Some("request"));
        assert!(matches!(spans[0].get("parent"), Some(Json::Null)));
        assert_eq!(spans[1].get("id").and_then(Json::as_u64), Some(route));
        assert_eq!(
            spans[2].get("parent").and_then(Json::as_u64),
            Some(ROOT_SPAN)
        );
        assert_eq!(
            spans[2]
                .get("work")
                .and_then(|w| w.get("leaves"))
                .and_then(Json::as_u64),
            Some(16)
        );
        // Offsets are monotone within a span.
        let s = spans[2].get("start_us").and_then(Json::as_u64).unwrap();
        let e = spans[2].get("end_us").and_then(Json::as_u64).unwrap();
        assert!(e >= s);
        assert_eq!(rec.stats().finished, 1);
    }

    #[test]
    fn client_context_pins_the_id_and_grafts_the_root() {
        let rec = SpanRecorder::new(1.0, 8);
        let ctx = TraceContext {
            trace_id: "client-7".into(),
            parent_span: Some(42),
        };
        let h = rec.begin(Some(&ctx), "spec").unwrap();
        assert_eq!(h.trace_id, "client-7");
        let j = h.to_json();
        let spans = match j.get("spans").unwrap() {
            Json::Array(s) => s.clone(),
            other => panic!("{other:?}"),
        };
        assert_eq!(spans[0].get("parent").and_then(Json::as_u64), Some(42));
        // Mid-flight lookup sees the active trace.
        assert!(rec.lookup("client-7").is_some());
        rec.finish(&h);
        assert!(rec.lookup("client-7").is_some());
        assert!(rec.lookup("nope").is_none());
    }

    #[test]
    fn ring_evicts_oldest_and_latest_is_newest_first() {
        let rec = SpanRecorder::new(1.0, 2);
        let ids: Vec<String> = (0..3)
            .map(|_| {
                let h = rec.begin(None, "x").unwrap();
                h.end(ROOT_SPAN, "ok");
                rec.finish(&h);
                h.trace_id.clone()
            })
            .collect();
        assert!(rec.lookup(&ids[0]).is_none(), "oldest evicted");
        let latest = rec.latest(8);
        assert_eq!(latest.len(), 2);
        assert_eq!(latest[0].trace_id, ids[2]);
        assert_eq!(latest[1].trace_id, ids[1]);
        let stats = rec.stats();
        assert_eq!(stats.started, 3);
        assert_eq!(stats.ringed, 2);
    }

    #[test]
    fn sampling_zero_disables_even_client_contexts() {
        let rec = SpanRecorder::new(0.0, 8);
        assert!(!rec.enabled());
        let ctx = TraceContext {
            trace_id: "t".into(),
            parent_span: None,
        };
        assert!(rec.begin(Some(&ctx), "x").is_none());
        assert!(rec.begin(None, "x").is_none());
    }

    #[test]
    fn fractional_sampling_traces_one_in_n() {
        let rec = SpanRecorder::new(0.25, 64);
        let traced = (0..40).filter(|_| rec.begin(None, "x").is_some()).count();
        assert_eq!(traced, 10, "deterministic 1-in-4");
    }

    #[test]
    fn double_end_keeps_the_first_close() {
        let rec = SpanRecorder::new(1.0, 8);
        let h = rec.begin(None, "x").unwrap();
        let s = h.span(ROOT_SPAN, "dispatch", "a".into());
        h.end(s, "ok");
        h.end(s, "discarded");
        let j = h.to_json();
        let spans = match j.get("spans").unwrap() {
            Json::Array(s) => s.clone(),
            other => panic!("{other:?}"),
        };
        assert_eq!(spans[1].get("status").and_then(Json::as_str), Some("ok"));
    }
}
