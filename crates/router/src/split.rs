//! Scatter-gather split planning: the router-side master of the
//! Karp–Zhang Section 7 machine.
//!
//! An eval whose estimated cost clears the split threshold is not
//! forwarded whole.  Instead the router walks the tree's *eldest
//! chain* — root, its first child, that node's first child, … — and
//! builds one [`SplitMachine`] level per chain node, each level owning
//! the children of its node.  Evaluation then runs as distributed
//! PV-split: the deepest eldest subtree is dispatched first; when its
//! value lands it narrows the level's α/β window and the remaining
//! siblings fan out to replicas under the narrowed window; levels
//! settle bottom-up through the minimax/NOR fold of
//! [`gt_tree::split::Aggregator`].
//!
//! Cutoffs follow the paper's pre-emption rule: the router never sends
//! an abort.  A cutoff merely *skips* children not yet dispatched and
//! marks the level settled; in-flight losers run to completion on
//! their replicas and are *discarded on arrival* (the replica's cache
//! keeps the work reusable).  Both events are counted
//! (`subevals_skipped_on_cutoff`, `subevals_discarded_on_cutoff`).
//!
//! The machine is deliberately pure: it consumes events (a subtree
//! value landed, a subeval failed hard, the deadline expired) and
//! returns [`Effects`] — subevals to dispatch, counter deltas, and
//! possibly the final outcome.  All sockets, locks, and retry pacing
//! live in `router.rs`, which makes the cutoff/window logic testable
//! by replaying value arrivals in any order.

use gt_serve::workload::estimated_subtree_cost;
use gt_tree::split::{node_mode, split_children, Aggregator, SubtreeSpec};
use gt_tree::Value;

/// Split-planner knobs, carried inside `RouterConfig`.
#[derive(Debug, Clone)]
pub struct SplitConfig {
    /// Estimated-leaf-count threshold above which an eval is split
    /// across the fleet; `None` disables splitting entirely.
    pub cost_threshold: Option<u64>,
    /// Baseline mode for benchmarks: dispatch every child of every
    /// level immediately, all under the root window — no eldest-first
    /// ordering, no narrowing.  Values still fold correctly.
    pub naive: bool,
    /// Dispatch each level's second child speculatively, alongside the
    /// eldest, under the not-yet-narrowed window.  Buys latency on
    /// trees where the eldest rarely cuts, at the price of some wasted
    /// (discarded) work when it does.
    pub speculative: bool,
    /// Maximum levels in the eldest chain (plan recursion depth).
    pub max_depth: usize,
}

impl Default for SplitConfig {
    fn default() -> Self {
        SplitConfig {
            cost_threshold: None,
            naive: false,
            speculative: false,
            max_depth: 3,
        }
    }
}

/// Why a plan failed without producing a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailKind {
    /// No replica would take a subeval (fleet busy/unreachable).
    Busy,
    /// The plan's deadline expired.
    Timeout,
    /// An upstream returned a non-retryable error.
    Internal,
}

/// Terminal state of a plan.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// The root value, with the leaves absorbed into it and the number
    /// of subeval results that contributed.  Work done by discarded
    /// losers is *not* included — it lands after the answer.
    Value {
        value: Value,
        work: u64,
        subevals: u64,
    },
    /// The plan failed; the router answers the client with an error.
    Fail { kind: FailKind, message: String },
}

/// One subeval the router should place on the fleet now.
#[derive(Debug, Clone)]
pub struct Dispatch {
    /// Level index in the plan (0 = root).
    pub level: usize,
    /// Child index within the level.
    pub child: usize,
    /// What to send: subtree plus the window stamped at decision time.
    pub sub: SubtreeSpec,
}

/// What an event made the machine want to do.
#[derive(Debug, Default)]
pub struct Effects {
    /// Subevals to place on replicas.
    pub dispatch: Vec<Dispatch>,
    /// Children a cutoff skipped before they were ever dispatched.
    pub skipped: u64,
    /// In-flight results that arrived after their level settled and
    /// were thrown away (the no-abort rule's losers).
    pub discarded: u64,
    /// Set exactly once, when the plan reaches a terminal state.
    pub done: Option<Outcome>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChildState {
    /// Not yet dispatched (waiting for the eldest to narrow the
    /// window).
    Waiting,
    /// On a replica (or, for a chain child, being computed by the
    /// level below).
    InFlight,
    /// Value absorbed.
    Done,
    /// Never dispatched: a cutoff made it irrelevant.
    Skipped,
}

struct MachineLevel {
    /// Children of this level's chain node, windows as inherited at
    /// plan time; the live window comes from `agg` at dispatch time.
    children: Vec<SubtreeSpec>,
    state: Vec<ChildState>,
    agg: Aggregator,
    /// Child 0 is produced by the level below, not by a subeval.
    chain: bool,
    /// Settled indirectly: an ancestor level cut while this one was
    /// still working, so its value no longer matters.
    moot: bool,
}

impl MachineLevel {
    fn settled(&self) -> bool {
        self.moot || self.agg.settled()
    }
}

/// One plan level: an eldest-chain node and its child subtrees.
pub type PlanLevel = (SubtreeSpec, Vec<SubtreeSpec>);

/// Decide whether `root` is worth splitting and lay out the plan: one
/// level per eldest-chain node whose subtree still clears `threshold`,
/// bounded by `max_depth`.  Returns `None` for trees too cheap, too
/// narrow (arity < 2), or too shallow to split.
pub fn plan_levels(
    root: &SubtreeSpec,
    threshold: u64,
    max_depth: usize,
) -> Result<Option<Vec<PlanLevel>>, String> {
    if estimated_subtree_cost(root) < threshold {
        return Ok(None);
    }
    let source = root.spec.build()?;
    let mut levels = Vec::new();
    let mut node = root.clone();
    loop {
        let children = split_children(&source, &node);
        if children.len() < 2 {
            break;
        }
        let eldest = children[0].clone();
        levels.push((node, children));
        if levels.len() >= max_depth.max(1) || estimated_subtree_cost(&eldest) < threshold {
            break;
        }
        node = eldest;
    }
    Ok(if levels.is_empty() {
        None
    } else {
        Some(levels)
    })
}

/// The pure scatter-gather state machine for one split plan.
pub struct SplitMachine {
    levels: Vec<MachineLevel>,
    naive: bool,
    /// Leaves absorbed from subeval replies.
    work: u64,
    /// Subeval values absorbed (chain propagations excluded).
    subevals_ok: u64,
    done: bool,
}

impl SplitMachine {
    /// Build the machine from [`plan_levels`] output and return it
    /// with the initial dispatch wave.
    pub fn new(shape: Vec<PlanLevel>, config: &SplitConfig) -> (SplitMachine, Effects) {
        let depth = shape.len();
        let levels: Vec<MachineLevel> = shape
            .into_iter()
            .enumerate()
            .map(|(k, (node, children))| {
                let mode = node_mode(&node.spec, node.path.len());
                let expected = children.len() as u32;
                let chain = k + 1 < depth;
                let mut state = vec![ChildState::Waiting; children.len()];
                if chain {
                    // Supplied by the level below from the start.
                    state[0] = ChildState::InFlight;
                }
                MachineLevel {
                    state,
                    agg: Aggregator::new(mode, expected, node.alpha, node.beta),
                    children,
                    chain,
                    moot: false,
                }
            })
            .collect();
        let mut machine = SplitMachine {
            levels,
            naive: config.naive,
            work: 0,
            subevals_ok: 0,
            done: false,
        };
        let mut fx = Effects::default();
        if config.naive {
            for k in 0..machine.levels.len() {
                for i in 0..machine.levels[k].children.len() {
                    machine.stage(k, i, &mut fx);
                }
            }
        } else {
            let deepest = machine.levels.len() - 1;
            machine.stage(deepest, 0, &mut fx);
            if config.speculative {
                for k in 0..machine.levels.len() {
                    machine.stage(k, 1, &mut fx);
                }
            }
        }
        (machine, fx)
    }

    /// Number of levels in the plan.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Subevals the plan would dispatch with no cutoffs at all.
    pub fn planned_subevals(&self) -> u64 {
        self.levels
            .iter()
            .map(|l| (l.children.len() - usize::from(l.chain)) as u64)
            .sum()
    }

    /// Mark `child` in-flight and emit its dispatch under the level's
    /// current window.  No-op unless the child is `Waiting`.
    fn stage(&mut self, level: usize, child: usize, fx: &mut Effects) {
        let lv = &mut self.levels[level];
        if child >= lv.children.len() || lv.state[child] != ChildState::Waiting {
            return;
        }
        lv.state[child] = ChildState::InFlight;
        let (alpha, beta) = lv.agg.window();
        let mut sub = lv.children[child].clone();
        sub.alpha = alpha;
        sub.beta = beta;
        fx.dispatch.push(Dispatch { level, child, sub });
    }

    /// A subeval reply landed: absorb it (or discard it, if its level
    /// already settled).
    pub fn on_value(&mut self, level: usize, child: usize, value: Value, leaves: u64) -> Effects {
        let mut fx = Effects::default();
        if self.done || level >= self.levels.len() || self.levels[level].settled() {
            fx.discarded += 1;
            return fx;
        }
        self.work = self.work.saturating_add(leaves);
        self.subevals_ok += 1;
        self.absorb(level, child, value, &mut fx);
        fx
    }

    /// A subeval failed for good (retries exhausted, hard upstream
    /// error): the whole plan fails — a missing child value cannot be
    /// folded around.
    pub fn on_fail(&mut self, kind: FailKind, message: &str) -> Effects {
        let mut fx = Effects::default();
        if self.done {
            return fx;
        }
        self.done = true;
        fx.done = Some(Outcome::Fail {
            kind,
            message: message.to_string(),
        });
        fx
    }

    /// The window a re-dispatch of `(level, child)` should carry right
    /// now, or `None` when the result no longer matters (plan done or
    /// level settled) and the copy should simply be dropped.
    pub fn redispatch(&self, level: usize, child: usize) -> Option<SubtreeSpec> {
        if self.done || level >= self.levels.len() || self.levels[level].settled() {
            return None;
        }
        let lv = &self.levels[level];
        let (alpha, beta) = lv.agg.window();
        let mut sub = lv.children.get(child)?.clone();
        sub.alpha = alpha;
        sub.beta = beta;
        Some(sub)
    }

    /// Has the plan reached a terminal state?
    pub fn finished(&self) -> bool {
        self.done
    }

    fn absorb(&mut self, level: usize, child: usize, value: Value, fx: &mut Effects) {
        self.levels[level].state[child] = ChildState::Done;
        self.levels[level].agg.absorb(value);
        if self.levels[level].settled() {
            self.settle(level, fx);
        } else if !self.naive && self.levels[level].state[0] == ChildState::Done {
            // The eldest (or its chain) is in: fan the remaining
            // siblings out under the narrowed window.
            for i in 1..self.levels[level].children.len() {
                self.stage(level, i, fx);
            }
        }
    }

    /// Level `level` has its value.  Skip what a cutoff made
    /// irrelevant (here and in every deeper level), then fold the
    /// value into the parent level — or finish the plan at the root.
    fn settle(&mut self, level: usize, fx: &mut Effects) {
        for k in level..self.levels.len() {
            let lv = &mut self.levels[k];
            if k > level && !lv.settled() {
                lv.moot = true;
            }
            for st in lv.state.iter_mut() {
                if *st == ChildState::Waiting {
                    *st = ChildState::Skipped;
                    fx.skipped += 1;
                }
            }
        }
        let value = self.levels[level].agg.value();
        if level == 0 {
            self.done = true;
            fx.done = Some(Outcome::Value {
                value,
                work: self.work,
                subevals: self.subevals_ok,
            });
        } else {
            self.absorb(level - 1, 0, value, fx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_tree::minimax::{seq_alphabeta, seq_solve};
    use gt_tree::split::sub_evaluate;
    use gt_tree::GenSpec;

    fn whole(spec: &str) -> SubtreeSpec {
        SubtreeSpec::whole(GenSpec::parse(spec).unwrap())
    }

    /// Drive a machine to completion the way the router would, serving
    /// dispatches with the sequential reference evaluator.  `stride`
    /// permutes delivery order so out-of-order arrival is exercised.
    fn run_to_completion(
        shape: Vec<PlanLevel>,
        config: &SplitConfig,
        stride: usize,
    ) -> (Outcome, u64, u64, u64) {
        let (mut m, fx) = SplitMachine::new(shape, config);
        let mut queue = fx.dispatch;
        let (mut skipped, mut discarded, mut dispatched) = (fx.skipped, fx.discarded, 0u64);
        let mut outcome = fx.done;
        while outcome.is_none() {
            assert!(!queue.is_empty(), "machine stalled with no outcome");
            let pick = (queue.len() - 1).min(stride % queue.len());
            let d = queue.swap_remove(pick);
            dispatched += 1;
            let st = sub_evaluate(&d.sub).unwrap();
            let fx = m.on_value(d.level, d.child, st.value, st.leaves_evaluated);
            queue.extend(fx.dispatch);
            skipped += fx.skipped;
            discarded += fx.discarded;
            if fx.done.is_some() {
                outcome = fx.done;
            }
        }
        // Anything left in the queue was never sent; in-flight copies
        // landing late would be counted discarded by on_value.
        (outcome.unwrap(), skipped, discarded, dispatched)
    }

    fn plan(spec: &str, threshold: u64, depth: usize) -> Vec<PlanLevel> {
        plan_levels(&whole(spec), threshold, depth)
            .unwrap()
            .expect("spec should be splittable")
    }

    #[test]
    fn cheap_or_narrow_trees_do_not_split() {
        assert!(plan_levels(&whole("minmax:d=2,n=3"), 1000, 3)
            .unwrap()
            .is_none());
        // Arity 1: cost clears the (tiny) threshold but there is
        // nothing to fan out.
        assert!(plan_levels(&whole("minmax:d=1,n=12"), 1, 3)
            .unwrap()
            .is_none());
    }

    #[test]
    fn chain_descends_while_the_eldest_clears_the_threshold() {
        let levels = plan("minmax:d=2,n=8,seed=5", 16, 8);
        // Costs along the chain: 256, 128, 64, 32, 16 — five levels.
        assert_eq!(levels.len(), 5);
        for (k, (node, children)) in levels.iter().enumerate() {
            assert_eq!(node.path, vec![0u32; k]);
            assert_eq!(children.len(), 2);
        }
        let capped = plan("minmax:d=2,n=8,seed=5", 16, 2);
        assert_eq!(capped.len(), 2);
    }

    #[test]
    fn split_evaluation_matches_sequential_for_minmax() {
        for spec in [
            "minmax:d=3,n=5,seed=11",
            "minmax-best:d=2,n=8,value=7",
            "minmax-worst:d=2,n=7",
            "minmax-corr:d=3,n=5,seed=2",
        ] {
            let src = GenSpec::parse(spec).unwrap().build().unwrap();
            let want = seq_alphabeta(&src, false).value;
            for stride in [0, 1, 3] {
                let shape = plan(spec, 8, 4);
                let (outcome, ..) = run_to_completion(shape, &SplitConfig::default(), stride);
                match outcome {
                    Outcome::Value { value, work, .. } => {
                        assert_eq!(value, want, "{spec} stride={stride}");
                        assert!(work > 0);
                    }
                    other => panic!("{spec}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn split_evaluation_matches_sequential_for_nor() {
        for spec in [
            "nor:d=2,n=9,p=0.3,seed=4",
            "crit:d=3,n=6,seed=9",
            "worst:d=2,n=9",
        ] {
            let src = GenSpec::parse(spec).unwrap().build().unwrap();
            let want = seq_solve(&src, false).value;
            let shape = plan(spec, 8, 4);
            let (outcome, ..) = run_to_completion(shape, &SplitConfig::default(), 1);
            match outcome {
                Outcome::Value { value, .. } => assert_eq!(value, want, "{spec}"),
                other => panic!("{spec}: {other:?}"),
            }
        }
    }

    #[test]
    fn nor_cutoffs_skip_undispatched_siblings() {
        // allones NOR values alternate with height: leaves are 1, so
        // height-1 nodes are 0, height-2 nodes are 1, and so on.  In a
        // three-level plan over n=6 the middle level's eldest child
        // has value 1 and cuts the level the moment it folds in —
        // its three siblings must never be dispatched.
        let shape = plan("allones:d=4,n=6", 8, 3);
        let (outcome, skipped, _discarded, dispatched) =
            run_to_completion(shape, &SplitConfig::default(), 0);
        match outcome {
            Outcome::Value { value, .. } => assert_eq!(value, 1),
            other => panic!("{other:?}"),
        }
        assert_eq!(skipped, 3, "the cut level strands its siblings");
        assert_eq!(
            dispatched, 7,
            "deepest eldest + its 3 siblings + the root's 3 siblings"
        );
    }

    #[test]
    fn late_arrivals_after_a_cutoff_are_discarded() {
        let shape = plan("allones:d=3,n=5", 4, 2);
        let (mut m, fx) = SplitMachine::new(
            shape,
            &SplitConfig {
                speculative: true,
                ..SplitConfig::default()
            },
        );
        // Speculative mode dispatches each level's child 1 alongside
        // the deepest eldest.
        assert!(fx.dispatch.len() > 1);
        let mut fx_all = Effects::default();
        let mut queue = fx.dispatch;
        let mut outcome = None;
        // Deliver every dispatched result, even after the plan
        // settles: the stragglers must be counted as discarded.
        while let Some(d) = queue.pop() {
            let st = sub_evaluate(&d.sub).unwrap();
            let fx = m.on_value(d.level, d.child, st.value, st.leaves_evaluated);
            queue.extend(fx.dispatch);
            fx_all.discarded += fx.discarded;
            if fx.done.is_some() {
                outcome = fx.done;
            }
        }
        match outcome.expect("plan should settle") {
            Outcome::Value { value, .. } => assert_eq!(value, 0),
            other => panic!("{other:?}"),
        }
        assert!(
            fx_all.discarded > 0,
            "speculative losers should be discarded on arrival"
        );
    }

    #[test]
    fn windowed_dispatch_does_less_leaf_work_than_naive() {
        let spec = "minmax-best:d=3,n=7,value=9";
        let work_of = |config: &SplitConfig| {
            let shape = plan(spec, 27, 4);
            match run_to_completion(shape, config, 0).0 {
                Outcome::Value { value, work, .. } => {
                    assert_eq!(value, 9);
                    work
                }
                other => panic!("{other:?}"),
            }
        };
        let pv = work_of(&SplitConfig::default());
        let naive = work_of(&SplitConfig {
            naive: true,
            ..SplitConfig::default()
        });
        assert!(
            pv < naive,
            "narrowed windows should prune: pv={pv} naive={naive}"
        );
    }

    #[test]
    fn a_hard_failure_fails_the_plan_once() {
        let shape = plan("minmax:d=2,n=6,seed=1", 4, 2);
        let (mut m, _fx) = SplitMachine::new(shape, &SplitConfig::default());
        let fx = m.on_fail(FailKind::Busy, "no routable replica");
        match fx.done {
            Some(Outcome::Fail { kind, .. }) => assert_eq!(kind, FailKind::Busy),
            other => panic!("{other:?}"),
        }
        assert!(m.finished());
        // Late events after failure are inert.
        assert!(m.on_fail(FailKind::Timeout, "late").done.is_none());
        assert_eq!(m.on_value(0, 1, 3, 10).discarded, 1);
        assert!(m.redispatch(0, 1).is_none());
    }

    #[test]
    fn redispatch_restamps_the_current_window() {
        let shape = plan("minmax:d=2,n=6,seed=3", 4, 1);
        let (mut m, fx) = SplitMachine::new(shape, &SplitConfig::default());
        let eldest = &fx.dispatch[0].sub;
        assert!(eldest.full_window());
        let st = sub_evaluate(eldest).unwrap();
        let fx2 = m.on_value(0, 0, st.value, st.leaves_evaluated);
        assert_eq!(fx2.dispatch.len(), 1, "sibling follows the eldest");
        // A lost sibling re-dispatches under the narrowed window, not
        // the original one.
        let again = m.redispatch(0, 1).unwrap();
        assert_eq!((again.alpha, again.beta), (st.value, Value::MAX));
    }
}
