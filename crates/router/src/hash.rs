//! Rendezvous (highest-random-weight) hashing over replica addresses.
//!
//! Every canonical cache key is scored against every replica address;
//! the highest score owns the key and the descending order is the
//! failover sequence.  Because each (key, member) score is independent
//! of the member set, adding or removing a replica only moves the keys
//! that scored highest on it — every other key keeps its owner and its
//! failover order, so replica-local LRU caches stay warm through
//! membership churn.  That minimal-disruption property is why this
//! beats `hash(key) % n` for cache affinity.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Rendezvous score of `member` for `key`; higher wins.  Key and
/// member are chained through one FNV-1a stream with a `0xff`
/// separator (a byte that cannot occur in UTF-8), so `("ab", "c")`
/// and `("a", "bc")` cannot collide structurally.
pub fn score(key: &str, member: &str) -> u64 {
    let h = fnv1a(FNV_OFFSET, key.as_bytes());
    let h = fnv1a(h, &[0xff]);
    fnv1a(h, member.as_bytes())
}

/// Member indices ordered by descending score for `key`: the routing
/// preference order (owner first, then failover candidates).  Ties
/// break on the lower index so the order is total and deterministic.
pub fn rank(key: &str, members: &[String]) -> Vec<usize> {
    let scores: Vec<u64> = members.iter().map(|m| score(key, m)).collect();
    let mut order: Vec<usize> = (0..members.len()).collect();
    order.sort_by(|&a, &b| scores[b].cmp(&scores[a]).then(a.cmp(&b)));
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn members(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{i}:7171")).collect()
    }

    fn keys(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| format!("worst:d=3,n=8,seed={i}|cascade:w=1"))
            .collect()
    }

    #[test]
    fn rank_is_deterministic_and_a_permutation() {
        let ms = members(5);
        for key in keys(50) {
            let a = rank(&key, &ms);
            let b = rank(&key, &ms);
            assert_eq!(a, b);
            let mut sorted = a.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..5).collect::<Vec<_>>());
        }
    }

    #[test]
    fn keys_spread_across_members() {
        // 1000 keys over 3 members: rendezvous is not uniform-perfect,
        // but no member may be starved or dominant.
        let ms = members(3);
        let mut owners = [0usize; 3];
        for key in keys(1000) {
            owners[rank(&key, &ms)[0]] += 1;
        }
        for (i, &n) in owners.iter().enumerate() {
            assert!(
                (150..=550).contains(&n),
                "member {i} owns {n} of 1000 keys: {owners:?}"
            );
        }
    }

    #[test]
    fn removing_a_member_only_moves_its_own_keys() {
        // The minimal-disruption property: drop member 2 and every
        // key's preference order over the survivors is unchanged.
        let full = members(4);
        let reduced: Vec<String> = full
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 2)
            .map(|(_, m)| m.clone())
            .collect();
        for key in keys(200) {
            let with: Vec<usize> = rank(&key, &full)
                .into_iter()
                .filter(|&i| i != 2)
                .map(|i| if i > 2 { i - 1 } else { i })
                .collect();
            let without = rank(&key, &reduced);
            assert_eq!(with, without, "survivor order changed for {key}");
        }
    }

    #[test]
    fn distinct_keys_get_distinct_scores_in_practice() {
        // Smoke against degenerate hashing: many keys, one member,
        // scores should essentially never collide.
        let mut seen = std::collections::HashSet::new();
        for key in keys(1000) {
            seen.insert(score(&key, "10.0.0.1:7171"));
        }
        assert!(seen.len() >= 999, "only {} distinct scores", seen.len());
    }
}
