//! Rendezvous (highest-random-weight) hashing over replica addresses.
//!
//! Every canonical cache key is scored against every replica address;
//! the highest score owns the key and the descending order is the
//! failover sequence.  Because each (key, member) score is independent
//! of the member set, adding or removing a replica only moves the keys
//! that scored highest on it — every other key keeps its owner and its
//! failover order, so replica-local LRU caches stay warm through
//! membership churn.  That minimal-disruption property is why this
//! beats `hash(key) % n` for cache affinity.
//!
//! ## Weighted members
//!
//! Heterogeneous hosts carry an integer **weight** (announced at
//! join time): a member's expected share of the keyspace is
//! proportional to its weight.  [`weighted_score`] uses the standard
//! logarithmic construction — map the raw 64-bit hash to a uniform
//! `u ∈ (0,1)` and score `weight / -ln(u)` — which keeps every
//! (key, member) score independent of every other member, so the
//! minimal-disruption property survives joins, leaves, *and*
//! reweights: changing one member's weight can only move keys onto or
//! off that member, and never reorders the other members relative to
//! each other.  With equal weights the ordering coincides with the
//! unweighted [`rank`] (the transform is monotone in the raw hash).

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Rendezvous score of `member` for `key`; higher wins.  Key and
/// member are chained through one FNV-1a stream with a `0xff`
/// separator (a byte that cannot occur in UTF-8), so `("ab", "c")`
/// and `("a", "bc")` cannot collide structurally.
pub fn score(key: &str, member: &str) -> u64 {
    let h = fnv1a(FNV_OFFSET, key.as_bytes());
    let h = fnv1a(h, &[0xff]);
    fnv1a(h, member.as_bytes())
}

/// Member indices ordered by descending score for `key`: the routing
/// preference order (owner first, then failover candidates).  Ties
/// break on the lower index so the order is total and deterministic.
pub fn rank(key: &str, members: &[String]) -> Vec<usize> {
    let scores: Vec<u64> = members.iter().map(|m| score(key, m)).collect();
    let mut order: Vec<usize> = (0..members.len()).collect();
    order.sort_by(|&a, &b| scores[b].cmp(&scores[a]).then(a.cmp(&b)));
    order
}

/// Weight-scaled rendezvous score of `member` for `key`; higher wins.
///
/// The raw hash is mapped to a uniform `u ∈ (0,1)` and scored as
/// `weight / -ln(u)`, so a member's long-run share of owned keys is
/// proportional to its weight while each score stays independent of
/// every other member.  Weight 0 scores 0 — the member never owns a
/// key while any positively-weighted member exists, but still appears
/// (last) in the failover order.
pub fn weighted_score(key: &str, member: &str, weight: u64) -> f64 {
    if weight == 0 {
        return 0.0;
    }
    let h = score(key, member);
    // (h + 0.5) / 2^64 ∈ (0,1) strictly, so ln(u) is finite and < 0.
    let u = (h as f64 + 0.5) / 18_446_744_073_709_551_616.0;
    weight as f64 / -u.ln()
}

/// Member indices ordered by descending [`weighted_score`] for `key`.
/// Ties break on the lower index so the order is total and
/// deterministic.  With all weights equal this agrees with [`rank`]
/// wherever the raw 64-bit scores are distinct.
pub fn rank_weighted(key: &str, members: &[(String, u64)]) -> Vec<usize> {
    let scores: Vec<f64> = members
        .iter()
        .map(|(m, w)| weighted_score(key, m, *w))
        .collect();
    let mut order: Vec<usize> = (0..members.len()).collect();
    // Scores are finite and non-negative (never NaN), so the partial
    // order is total here.
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn members(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{i}:7171")).collect()
    }

    fn keys(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| format!("worst:d=3,n=8,seed={i}|cascade:w=1"))
            .collect()
    }

    #[test]
    fn rank_is_deterministic_and_a_permutation() {
        let ms = members(5);
        for key in keys(50) {
            let a = rank(&key, &ms);
            let b = rank(&key, &ms);
            assert_eq!(a, b);
            let mut sorted = a.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..5).collect::<Vec<_>>());
        }
    }

    #[test]
    fn keys_spread_across_members() {
        // 1000 keys over 3 members: rendezvous is not uniform-perfect,
        // but no member may be starved or dominant.
        let ms = members(3);
        let mut owners = [0usize; 3];
        for key in keys(1000) {
            owners[rank(&key, &ms)[0]] += 1;
        }
        for (i, &n) in owners.iter().enumerate() {
            assert!(
                (150..=550).contains(&n),
                "member {i} owns {n} of 1000 keys: {owners:?}"
            );
        }
    }

    #[test]
    fn removing_a_member_only_moves_its_own_keys() {
        // The minimal-disruption property: drop member 2 and every
        // key's preference order over the survivors is unchanged.
        let full = members(4);
        let reduced: Vec<String> = full
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 2)
            .map(|(_, m)| m.clone())
            .collect();
        for key in keys(200) {
            let with: Vec<usize> = rank(&key, &full)
                .into_iter()
                .filter(|&i| i != 2)
                .map(|i| if i > 2 { i - 1 } else { i })
                .collect();
            let without = rank(&key, &reduced);
            assert_eq!(with, without, "survivor order changed for {key}");
        }
    }

    #[test]
    fn equal_weights_agree_with_the_unweighted_order() {
        let ms = members(5);
        let weighted: Vec<(String, u64)> = ms.iter().map(|m| (m.clone(), 3)).collect();
        for key in keys(100) {
            assert_eq!(rank(&key, &ms), rank_weighted(&key, &weighted), "{key}");
        }
    }

    #[test]
    fn ownership_tracks_weight_share() {
        // Weights 1:2:4 over many keys: owned shares must order the
        // same way and be roughly proportional.
        let weighted: Vec<(String, u64)> = members(3).into_iter().zip([1u64, 2, 4]).collect();
        let mut owners = [0usize; 3];
        for key in keys(2000) {
            owners[rank_weighted(&key, &weighted)[0]] += 1;
        }
        assert!(owners[0] < owners[1] && owners[1] < owners[2], "{owners:?}");
        // Member 2 holds 4/7 ≈ 57% of the keyspace; allow wide slack.
        assert!(
            (900..=1400).contains(&owners[2]),
            "weight-4 member owns {} of 2000",
            owners[2]
        );
    }

    #[test]
    fn zero_weight_members_never_own_keys() {
        let mut weighted: Vec<(String, u64)> = members(3).into_iter().map(|m| (m, 1)).collect();
        weighted[1].1 = 0;
        for key in keys(200) {
            let order = rank_weighted(&key, &weighted);
            assert_ne!(order[0], 1, "zero-weight member owned {key}");
            assert_eq!(order[2], 1, "zero-weight member must rank last");
        }
    }

    #[test]
    fn reweighting_a_member_never_reorders_the_others() {
        let base: Vec<(String, u64)> = members(4).into_iter().zip([2u64, 3, 1, 2]).collect();
        let mut boosted = base.clone();
        boosted[1].1 = 9;
        for key in keys(300) {
            let before: Vec<usize> = rank_weighted(&key, &base)
                .into_iter()
                .filter(|&i| i != 1)
                .collect();
            let after: Vec<usize> = rank_weighted(&key, &boosted)
                .into_iter()
                .filter(|&i| i != 1)
                .collect();
            assert_eq!(before, after, "non-reweighted order changed for {key}");
        }
    }

    #[test]
    fn distinct_keys_get_distinct_scores_in_practice() {
        // Smoke against degenerate hashing: many keys, one member,
        // scores should essentially never collide.
        let mut seen = std::collections::HashSet::new();
        for key in keys(1000) {
            seen.insert(score(&key, "10.0.0.1:7171"));
        }
        assert!(seen.len() >= 999, "only {} distinct scores", seen.len());
    }
}
