//! Router metrics registry: fleet-level counters, per-replica
//! counters, and a route-latency histogram.
//!
//! The registry is all atomics (plus gt-serve's lock-free
//! [`LatencyHistogram`]) so the data path never takes a lock to count.
//! [`RouterMetrics::snapshot`] freezes the fleet-level half; the
//! router adds per-replica rows (whose counters live next to the
//! connection state) to form a [`RouterSnapshot`], which renders both
//! as `op:"stats"` JSON and Prometheus text exposition for the
//! `/metrics` listener.

use crate::membership::MembershipCounters;
use crate::trace::TraceStats;
use gt_analysis::json::Json;
use gt_serve::metrics::{HistogramSnapshot, LatencyHistogram};
use gt_serve::protocol::PROTOCOL_VERSION;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Per-replica data-path counters.  These live on the replica (next
/// to its connections), not in [`RouterMetrics`], but snapshot into
/// the same [`RouterSnapshot`].
#[derive(Default)]
pub struct ReplicaCounters {
    /// Eval attempts written to this replica.
    pub sent: AtomicU64,
    /// Ok replies received.
    pub ok: AtomicU64,
    /// 429/503 replies received (each triggers a failover retry).
    pub busy: AtomicU64,
    /// Other error replies (forwarded to the client as-is).
    pub errors: AtomicU64,
    /// Transport failures: write errors, resets, orphaned in-flight
    /// requests on connection death.
    pub transport: AtomicU64,
    /// Failed health probes.
    pub probe_failures: AtomicU64,
}

impl ReplicaCounters {
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// Fleet-level router counters and the end-to-end route-latency
/// histogram (client line in → client line out, for ok replies).
pub struct RouterMetrics {
    start: Instant,
    /// Eval requests accepted from clients.
    pub requests: AtomicU64,
    /// Ok replies relayed to clients.
    pub ok: AtomicU64,
    /// Upstream error replies relayed verbatim (not busy/draining).
    pub forwarded_errors: AtomicU64,
    /// Failover re-dispatches (busy reply, transport loss, dead
    /// candidate skipped).
    pub retries: AtomicU64,
    /// Hedge attempts launched.
    pub hedges: AtomicU64,
    /// Requests won by the hedge copy.
    pub hedge_wins: AtomicU64,
    /// Duplicate replies discarded because the other copy won.
    pub hedge_losers: AtomicU64,
    /// Requests shed by the router itself (window full or no
    /// routable replica).
    pub shed: AtomicU64,
    /// Requests that exhausted their deadline inside the router.
    pub expired: AtomicU64,
    /// Requests rejected because the router is draining.
    pub draining: AtomicU64,
    /// Malformed or invalid client requests.
    pub bad_request: AtomicU64,
    /// Upstream replies that matched no pending request.
    pub stale_replies: AtomicU64,
    /// Requests that ran out of routable candidates.
    pub unrouted: AtomicU64,
    /// Client connections accepted.
    pub connections: AtomicU64,
    /// Evals decomposed into scatter-gather split plans.
    pub splits_total: AtomicU64,
    /// Subevals placed on replicas (initial sends and re-dispatches).
    pub subevals_dispatched: AtomicU64,
    /// Subevals re-dispatched down the hash order (busy reply or
    /// transport loss).
    pub subevals_retried: AtomicU64,
    /// In-flight subeval results discarded on arrival because a
    /// cutoff had already settled their level (the no-abort rule).
    pub subevals_discarded_on_cutoff: AtomicU64,
    /// Subevals a cutoff skipped before they were ever dispatched.
    pub subevals_skipped_on_cutoff: AtomicU64,
    /// Deepest eldest chain any plan has used (monotone high-water).
    pub split_depth: AtomicU64,
    /// Membership-change counters (joins, refreshes, reweights).
    pub members: MembershipCounters,
    /// End-to-end latency of ok replies, microseconds.
    pub route_latency: LatencyHistogram,
}

impl Default for RouterMetrics {
    fn default() -> Self {
        RouterMetrics {
            start: Instant::now(),
            requests: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            forwarded_errors: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            hedges: AtomicU64::new(0),
            hedge_wins: AtomicU64::new(0),
            hedge_losers: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            draining: AtomicU64::new(0),
            bad_request: AtomicU64::new(0),
            stale_replies: AtomicU64::new(0),
            unrouted: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            splits_total: AtomicU64::new(0),
            subevals_dispatched: AtomicU64::new(0),
            subevals_retried: AtomicU64::new(0),
            subevals_discarded_on_cutoff: AtomicU64::new(0),
            subevals_skipped_on_cutoff: AtomicU64::new(0),
            split_depth: AtomicU64::new(0),
            members: MembershipCounters::default(),
            route_latency: LatencyHistogram::default(),
        }
    }
}

impl RouterMetrics {
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Microseconds since the registry (≈ the router) started.
    pub fn uptime_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// Freeze the fleet-level counters.  The router supplies the
    /// per-replica rows it assembles from live replica state and the
    /// routing table's membership revision.
    pub fn snapshot(
        &self,
        replicas: Vec<ReplicaSnapshot>,
        trace: TraceStats,
        membership_version: u64,
    ) -> RouterSnapshot {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        RouterSnapshot {
            uptime_us: self.start.elapsed().as_micros() as u64,
            trace,
            membership_version,
            members_joined: load(&self.members.joined),
            members_refreshed: load(&self.members.refreshed),
            members_reweighted: load(&self.members.reweighted),
            members_stale_joins: load(&self.members.stale_joins),
            members_duplicate_joins: load(&self.members.duplicate_joins),
            requests: load(&self.requests),
            ok: load(&self.ok),
            forwarded_errors: load(&self.forwarded_errors),
            retries: load(&self.retries),
            hedges: load(&self.hedges),
            hedge_wins: load(&self.hedge_wins),
            hedge_losers: load(&self.hedge_losers),
            shed: load(&self.shed),
            expired: load(&self.expired),
            draining: load(&self.draining),
            bad_request: load(&self.bad_request),
            stale_replies: load(&self.stale_replies),
            unrouted: load(&self.unrouted),
            connections: load(&self.connections),
            splits_total: load(&self.splits_total),
            subevals_dispatched: load(&self.subevals_dispatched),
            subevals_retried: load(&self.subevals_retried),
            subevals_discarded_on_cutoff: load(&self.subevals_discarded_on_cutoff),
            subevals_skipped_on_cutoff: load(&self.subevals_skipped_on_cutoff),
            split_depth: load(&self.split_depth),
            route_latency: self.route_latency.snapshot_full(),
            replicas,
        }
    }

    /// Raise the split-depth high-water mark.
    pub fn record_split_depth(&self, depth: u64) {
        self.split_depth.fetch_max(depth, Ordering::Relaxed);
    }
}

/// One replica's row in the stats snapshot.
#[derive(Debug, Clone)]
pub struct ReplicaSnapshot {
    pub addr: String,
    /// Health state name (`healthy`/`degraded`/`ejected`/`half-open`).
    pub state: &'static str,
    /// Routing preference tier (0 best, 3 worst).
    pub tier: u8,
    /// Weighted-rendezvous routing weight.
    pub weight: u64,
    /// Last generation this member announced (0 for static seeds).
    pub generation: u64,
    /// Times this replica has been ejected.
    pub ejects: u64,
    pub sent: u64,
    pub ok: u64,
    pub busy: u64,
    pub errors: u64,
    pub transport: u64,
    pub probe_failures: u64,
    /// Requests currently awaiting a reply from this replica.
    pub inflight: u64,
    /// Seconds since the prober last finished a probe of this
    /// replica; `None` until the first probe completes.
    pub last_probe_age_s: Option<f64>,
}

impl ReplicaSnapshot {
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("addr", Json::from(self.addr.as_str())),
            ("state", Json::from(self.state)),
            ("tier", Json::from(u64::from(self.tier))),
            ("weight", Json::from(self.weight)),
            ("generation", Json::from(self.generation)),
            ("ejects", Json::from(self.ejects)),
            ("sent", Json::from(self.sent)),
            ("ok", Json::from(self.ok)),
            ("busy", Json::from(self.busy)),
            ("errors", Json::from(self.errors)),
            ("transport", Json::from(self.transport)),
            ("probe_failures", Json::from(self.probe_failures)),
            ("inflight", Json::from(self.inflight)),
            (
                "last_probe_age_s",
                match self.last_probe_age_s {
                    Some(age) => Json::from(age),
                    None => Json::Null,
                },
            ),
        ])
    }
}

/// A frozen view of the whole router: fleet counters, route latency,
/// and one row per replica.
#[derive(Debug, Clone)]
pub struct RouterSnapshot {
    pub uptime_us: u64,
    pub requests: u64,
    pub ok: u64,
    pub forwarded_errors: u64,
    pub retries: u64,
    pub hedges: u64,
    pub hedge_wins: u64,
    pub hedge_losers: u64,
    pub shed: u64,
    pub expired: u64,
    pub draining: u64,
    pub bad_request: u64,
    pub stale_replies: u64,
    pub unrouted: u64,
    pub connections: u64,
    pub splits_total: u64,
    pub subevals_dispatched: u64,
    pub subevals_retried: u64,
    pub subevals_discarded_on_cutoff: u64,
    pub subevals_skipped_on_cutoff: u64,
    pub split_depth: u64,
    /// Routing-table revision: bumped on every membership change.
    pub membership_version: u64,
    pub members_joined: u64,
    pub members_refreshed: u64,
    pub members_reweighted: u64,
    pub members_stale_joins: u64,
    pub members_duplicate_joins: u64,
    pub route_latency: HistogramSnapshot,
    pub replicas: Vec<ReplicaSnapshot>,
    /// Span-recorder counters (traces started/finished, spans opened,
    /// live and ring-buffered trees).
    pub trace: TraceStats,
}

impl RouterSnapshot {
    /// The `stats` object returned by `op:"stats"`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("version", Json::from(PROTOCOL_VERSION)),
            ("uptime_us", Json::from(self.uptime_us)),
            ("uptime_s", Json::from(self.uptime_us as f64 / 1e6)),
            ("requests", Json::from(self.requests)),
            ("ok", Json::from(self.ok)),
            ("forwarded_errors", Json::from(self.forwarded_errors)),
            ("retries", Json::from(self.retries)),
            ("hedges", Json::from(self.hedges)),
            ("hedge_wins", Json::from(self.hedge_wins)),
            ("hedge_losers", Json::from(self.hedge_losers)),
            ("shed", Json::from(self.shed)),
            ("expired", Json::from(self.expired)),
            ("draining", Json::from(self.draining)),
            ("bad_request", Json::from(self.bad_request)),
            ("stale_replies", Json::from(self.stale_replies)),
            ("unrouted", Json::from(self.unrouted)),
            ("connections", Json::from(self.connections)),
            ("splits_total", Json::from(self.splits_total)),
            ("subevals_dispatched", Json::from(self.subevals_dispatched)),
            ("subevals_retried", Json::from(self.subevals_retried)),
            (
                "subevals_discarded_on_cutoff",
                Json::from(self.subevals_discarded_on_cutoff),
            ),
            (
                "subevals_skipped_on_cutoff",
                Json::from(self.subevals_skipped_on_cutoff),
            ),
            ("split_depth", Json::from(self.split_depth)),
            (
                "membership",
                Json::obj([
                    ("version", Json::from(self.membership_version)),
                    ("members", Json::from(self.replicas.len())),
                    ("joined", Json::from(self.members_joined)),
                    ("refreshed", Json::from(self.members_refreshed)),
                    ("reweighted", Json::from(self.members_reweighted)),
                    ("stale_joins", Json::from(self.members_stale_joins)),
                    ("duplicate_joins", Json::from(self.members_duplicate_joins)),
                ]),
            ),
            (
                "traces",
                Json::obj([
                    ("started", Json::from(self.trace.started)),
                    ("finished", Json::from(self.trace.finished)),
                    ("spans", Json::from(self.trace.spans)),
                    ("active", Json::from(self.trace.active)),
                    ("ringed", Json::from(self.trace.ringed)),
                ]),
            ),
            ("route_latency", self.route_latency.to_json()),
            (
                "replicas",
                Json::Array(self.replicas.iter().map(|r| r.to_json()).collect()),
            ),
        ])
    }

    /// Prometheus text exposition (format 0.0.4) for the `/metrics`
    /// listener.  Route latency renders as a summary.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        fn counter(out: &mut String, name: &str, help: &str, v: u64) {
            use std::fmt::Write as _;
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        }
        let mut out = String::new();
        counter(
            &mut out,
            "router_requests_total",
            "Eval requests accepted from clients.",
            self.requests,
        );
        counter(
            &mut out,
            "router_ok_total",
            "Ok replies relayed to clients.",
            self.ok,
        );
        counter(
            &mut out,
            "router_retries_total",
            "Failover re-dispatches to another replica.",
            self.retries,
        );
        counter(
            &mut out,
            "router_hedges_total",
            "Hedge attempts launched.",
            self.hedges,
        );
        counter(
            &mut out,
            "router_hedge_wins_total",
            "Requests won by the hedge copy.",
            self.hedge_wins,
        );
        counter(
            &mut out,
            "router_ejects_total",
            "Replica ejections by the health prober.",
            self.replicas.iter().map(|r| r.ejects).sum(),
        );
        counter(
            &mut out,
            "router_shed_total",
            "Requests shed by the router (window full or unroutable).",
            self.shed,
        );
        counter(
            &mut out,
            "router_expired_total",
            "Requests that exhausted their deadline in the router.",
            self.expired,
        );
        counter(
            &mut out,
            "router_forwarded_errors_total",
            "Upstream error replies relayed verbatim.",
            self.forwarded_errors,
        );
        counter(
            &mut out,
            "router_connections_total",
            "Client connections accepted.",
            self.connections,
        );
        counter(
            &mut out,
            "router_splits_total",
            "Evals decomposed into scatter-gather split plans.",
            self.splits_total,
        );
        counter(
            &mut out,
            "router_subevals_dispatched_total",
            "Subevals placed on replicas.",
            self.subevals_dispatched,
        );
        counter(
            &mut out,
            "router_subevals_retried_total",
            "Subevals re-dispatched down the hash order.",
            self.subevals_retried,
        );
        counter(
            &mut out,
            "router_subevals_discarded_on_cutoff_total",
            "In-flight subeval results discarded after a cutoff.",
            self.subevals_discarded_on_cutoff,
        );
        counter(
            &mut out,
            "router_subevals_skipped_on_cutoff_total",
            "Subevals skipped before dispatch by a cutoff.",
            self.subevals_skipped_on_cutoff,
        );
        let _ = writeln!(
            out,
            "# HELP router_split_depth Deepest eldest chain any split plan has used."
        );
        let _ = writeln!(out, "# TYPE router_split_depth gauge");
        let _ = writeln!(out, "router_split_depth {}", self.split_depth);

        let _ = writeln!(out, "# HELP router_members Members in the routing table.");
        let _ = writeln!(out, "# TYPE router_members gauge");
        let _ = writeln!(out, "router_members {}", self.replicas.len());
        let _ = writeln!(
            out,
            "# HELP router_membership_version Routing-table revision (bumped per membership change)."
        );
        let _ = writeln!(out, "# TYPE router_membership_version gauge");
        let _ = writeln!(out, "router_membership_version {}", self.membership_version);
        counter(
            &mut out,
            "router_members_joined_total",
            "Members admitted by a join announcement.",
            self.members_joined,
        );
        counter(
            &mut out,
            "router_members_refreshed_total",
            "Re-joins of a known address with a higher generation.",
            self.members_refreshed,
        );
        counter(
            &mut out,
            "router_members_reweighted_total",
            "In-place weight changes.",
            self.members_reweighted,
        );
        counter(
            &mut out,
            "router_members_stale_joins_total",
            "Stale (lower-generation) announcements ignored.",
            self.members_stale_joins,
        );
        counter(
            &mut out,
            "router_members_duplicate_joins_total",
            "Announce retries that changed nothing.",
            self.members_duplicate_joins,
        );
        let _ = writeln!(
            out,
            "# HELP router_replica_weight Weighted-rendezvous routing weight per member."
        );
        let _ = writeln!(out, "# TYPE router_replica_weight gauge");
        for r in &self.replicas {
            let _ = writeln!(
                out,
                "router_replica_weight{{replica=\"{}\"}} {}",
                r.addr, r.weight
            );
        }

        counter(
            &mut out,
            "router_span_traces_started_total",
            "Traces the span recorder opened (sampled or client-pinned).",
            self.trace.started,
        );
        counter(
            &mut out,
            "router_span_traces_finished_total",
            "Traces whose root span has closed.",
            self.trace.finished,
        );
        counter(
            &mut out,
            "router_span_spans_total",
            "Spans opened across all traces.",
            self.trace.spans,
        );
        let _ = writeln!(
            out,
            "# HELP router_span_active_traces Traces still being assembled."
        );
        let _ = writeln!(out, "# TYPE router_span_active_traces gauge");
        let _ = writeln!(out, "router_span_active_traces {}", self.trace.active);
        let _ = writeln!(
            out,
            "# HELP router_span_ring_traces Finished traces held in the query ring."
        );
        let _ = writeln!(out, "# TYPE router_span_ring_traces gauge");
        let _ = writeln!(out, "router_span_ring_traces {}", self.trace.ringed);

        let _ = writeln!(
            out,
            "# HELP router_route_latency_us End-to-end ok-reply latency."
        );
        let _ = writeln!(out, "# TYPE router_route_latency_us summary");
        for (label, q) in [("0.5", 0.50), ("0.9", 0.90), ("0.99", 0.99)] {
            let v = self.route_latency.quantile_us(q).unwrap_or(0);
            let _ = writeln!(out, "router_route_latency_us{{quantile=\"{label}\"}} {v}");
        }
        let _ = writeln!(
            out,
            "router_route_latency_us_sum {}",
            self.route_latency.sum_us
        );
        let _ = writeln!(
            out,
            "router_route_latency_us_count {}",
            self.route_latency.count
        );

        let _ = writeln!(
            out,
            "# HELP router_replica_requests_total Eval attempts sent per replica."
        );
        let _ = writeln!(out, "# TYPE router_replica_requests_total counter");
        for r in &self.replicas {
            let _ = writeln!(
                out,
                "router_replica_requests_total{{replica=\"{}\"}} {}",
                r.addr, r.sent
            );
        }
        let _ = writeln!(
            out,
            "# HELP router_replica_tier Routing tier (0 healthy .. 3 ejected)."
        );
        let _ = writeln!(out, "# TYPE router_replica_tier gauge");
        for r in &self.replicas {
            let _ = writeln!(
                out,
                "router_replica_tier{{replica=\"{}\"}} {}",
                r.addr, r.tier
            );
        }
        let _ = writeln!(
            out,
            "# HELP router_replica_inflight Requests awaiting a reply per replica."
        );
        let _ = writeln!(out, "# TYPE router_replica_inflight gauge");
        for r in &self.replicas {
            let _ = writeln!(
                out,
                "router_replica_inflight{{replica=\"{}\"}} {}",
                r.addr, r.inflight
            );
        }
        let _ = writeln!(
            out,
            "# HELP router_replica_last_probe_age_s Seconds since the last health probe finished."
        );
        let _ = writeln!(out, "# TYPE router_replica_last_probe_age_s gauge");
        for r in &self.replicas {
            if let Some(age) = r.last_probe_age_s {
                let _ = writeln!(
                    out,
                    "router_replica_last_probe_age_s{{replica=\"{}\"}} {age:.3}",
                    r.addr
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn replica_row(addr: &str) -> ReplicaSnapshot {
        ReplicaSnapshot {
            addr: addr.to_string(),
            state: "healthy",
            tier: 0,
            weight: 2,
            generation: 1,
            ejects: 2,
            sent: 10,
            ok: 8,
            busy: 1,
            errors: 0,
            transport: 1,
            probe_failures: 3,
            inflight: 1,
            last_probe_age_s: Some(0.25),
        }
    }

    #[test]
    fn snapshot_round_trips_counters_into_json() {
        let m = RouterMetrics::default();
        m.requests.fetch_add(7, Ordering::Relaxed);
        m.retries.fetch_add(3, Ordering::Relaxed);
        m.splits_total.fetch_add(2, Ordering::Relaxed);
        m.subevals_dispatched.fetch_add(9, Ordering::Relaxed);
        m.subevals_discarded_on_cutoff
            .fetch_add(1, Ordering::Relaxed);
        m.record_split_depth(3);
        m.record_split_depth(2);
        m.route_latency.record(500);
        m.members.record(crate::membership::JoinAction::Admit);
        m.members.record(crate::membership::JoinAction::Reweight);
        let snap = m.snapshot(
            vec![replica_row("127.0.0.1:7171")],
            TraceStats {
                started: 5,
                finished: 4,
                spans: 21,
                active: 1,
                ringed: 4,
            },
            3,
        );
        let j = snap.to_json();
        assert_eq!(j.get("version").and_then(Json::as_u64), Some(1));
        assert!(
            j.get("uptime_s").and_then(Json::as_f64).is_some(),
            "stats must expose uptime_s for parity with the replica tier"
        );
        assert_eq!(j.get("requests").and_then(Json::as_u64), Some(7));
        let traces = j.get("traces").expect("traces block");
        assert_eq!(traces.get("started").and_then(Json::as_u64), Some(5));
        assert_eq!(traces.get("ringed").and_then(Json::as_u64), Some(4));
        assert_eq!(j.get("retries").and_then(Json::as_u64), Some(3));
        assert_eq!(j.get("splits_total").and_then(Json::as_u64), Some(2));
        assert_eq!(j.get("subevals_dispatched").and_then(Json::as_u64), Some(9));
        assert_eq!(
            j.get("subevals_discarded_on_cutoff").and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            j.get("split_depth").and_then(Json::as_u64),
            Some(3),
            "split_depth is a high-water mark, not a sum"
        );
        let membership = j.get("membership").expect("membership block");
        assert_eq!(membership.get("version").and_then(Json::as_u64), Some(3));
        assert_eq!(membership.get("members").and_then(Json::as_u64), Some(1));
        assert_eq!(membership.get("joined").and_then(Json::as_u64), Some(1));
        assert_eq!(membership.get("reweighted").and_then(Json::as_u64), Some(1));
        let replicas = match j.get("replicas") {
            Some(Json::Array(rs)) => rs,
            other => panic!("replicas not an array: {other:?}"),
        };
        assert_eq!(replicas.len(), 1);
        assert_eq!(
            replicas[0].get("addr").and_then(Json::as_str),
            Some("127.0.0.1:7171")
        );
        assert_eq!(replicas[0].get("ejects").and_then(Json::as_u64), Some(2));
        assert_eq!(replicas[0].get("weight").and_then(Json::as_u64), Some(2));
        assert_eq!(
            replicas[0].get("generation").and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn prometheus_exposition_names_the_required_series() {
        let m = RouterMetrics::default();
        m.retries.fetch_add(4, Ordering::Relaxed);
        m.splits_total.fetch_add(1, Ordering::Relaxed);
        m.subevals_skipped_on_cutoff.fetch_add(5, Ordering::Relaxed);
        m.route_latency.record(1_000);
        m.members.record(crate::membership::JoinAction::Admit);
        let text = m
            .snapshot(
                vec![replica_row("127.0.0.1:7171"), replica_row("127.0.0.1:7172")],
                TraceStats {
                    started: 6,
                    finished: 6,
                    spans: 30,
                    active: 0,
                    ringed: 6,
                },
                1,
            )
            .render_prometheus();
        assert!(text.contains("router_retries_total 4"), "{text}");
        assert!(text.contains("router_requests_total"), "{text}");
        assert!(
            text.contains("router_replica_requests_total{replica=\"127.0.0.1:7172\"} 10"),
            "{text}"
        );
        assert!(
            text.contains("router_route_latency_us{quantile=\"0.5\"}"),
            "{text}"
        );
        assert!(text.contains("router_route_latency_us_count 1"), "{text}");
        // ejects sums across replicas
        assert!(text.contains("router_ejects_total 4"), "{text}");
        assert!(text.contains("router_splits_total 1"), "{text}");
        assert!(
            text.contains("router_subevals_dispatched_total 0"),
            "{text}"
        );
        assert!(
            text.contains("router_subevals_skipped_on_cutoff_total 5"),
            "{text}"
        );
        assert!(text.contains("router_split_depth 0"), "{text}");
        assert!(text.contains("router_members 2"), "{text}");
        assert!(text.contains("router_membership_version 1"), "{text}");
        assert!(text.contains("router_members_joined_total 1"), "{text}");
        assert!(
            text.contains("router_replica_weight{replica=\"127.0.0.1:7171\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("router_span_traces_started_total 6"),
            "{text}"
        );
        assert!(text.contains("router_span_spans_total 30"), "{text}");
        assert!(text.contains("router_span_ring_traces 6"), "{text}");
        assert!(
            text.contains("router_replica_last_probe_age_s{replica=\"127.0.0.1:7171\"} 0.250"),
            "{text}"
        );
    }
}
