//! Per-replica health state machine, driven by the probe loop.
//!
//! Health is fed **only** by the background prober — never by
//! data-path replies.  A replica that is draining still answers eval
//! requests correctly for a while; judging it by data-path errors
//! would flap it in and out of the ring while the prober (which asks
//! `op:"health"` and checks the `draining` flag) has the authoritative
//! answer.  The data path records transport errors in counters and
//! fails over per-request; the prober decides membership.
//!
//! States and transitions:
//!
//! ```text
//!             probe ok ×promote_after
//!   Healthy <------------------------- Degraded
//!      |                                 ^   |
//!      | probe fail ×degrade_after       |   | probe fail ×eject_after
//!      +---------------------------------+   v
//!             probe ok                    Ejected
//!                     ^                    |
//!                     | probe fail         | readmit_after elapsed
//!                  HalfOpen <--------------+
//!                     | probe ok
//!                     v
//!                  Degraded
//! ```
//!
//! Routing maps states to preference tiers ([`HealthState::tier`]):
//! the rendezvous order is stable-sorted by tier, so a degraded owner
//! still receives its keys before a healthy non-owner steals them
//! (cache affinity survives a blip), but an ejected owner is skipped
//! until it re-admits.

use std::time::{Duration, Instant};

/// Replica availability as judged by the prober.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Probes succeeding; full routing preference.
    Healthy,
    /// Recent probe failures (or recovering); still routable.
    Degraded,
    /// Consecutive failures crossed the eject threshold; skipped by
    /// routing unless no better candidate exists.
    Ejected,
    /// Eject timer elapsed; next probe decides readmission.
    HalfOpen,
}

impl HealthState {
    /// Routing preference tier: lower routes first.  The rendezvous
    /// order is stable-sorted by this value.
    pub fn tier(self) -> u8 {
        match self {
            HealthState::Healthy => 0,
            HealthState::Degraded => 1,
            HealthState::HalfOpen => 2,
            HealthState::Ejected => 3,
        }
    }

    /// Stable lowercase name for metrics and stats output.
    pub fn name(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Ejected => "ejected",
            HealthState::HalfOpen => "half-open",
        }
    }
}

/// Thresholds for the health state machine.
#[derive(Debug, Clone)]
pub struct HealthPolicy {
    /// Consecutive probe failures before Healthy demotes to Degraded.
    pub degrade_after: u32,
    /// Consecutive probe failures before ejection.
    pub eject_after: u32,
    /// How long an ejected replica sits out before going half-open.
    pub readmit_after: Duration,
    /// Consecutive probe successes before Degraded promotes back to
    /// Healthy.
    pub promote_after: u32,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            degrade_after: 1,
            eject_after: 3,
            readmit_after: Duration::from_millis(500),
            promote_after: 2,
        }
    }
}

/// One replica's health trajectory.  Time is injected (`tick(now)`)
/// so transitions are unit-testable with synthetic instants.
#[derive(Debug)]
pub struct HealthMachine {
    policy: HealthPolicy,
    state: HealthState,
    consecutive_failures: u32,
    consecutive_successes: u32,
    ejected_at: Option<Instant>,
    /// Total times this replica has been ejected (monotone counter).
    pub ejects: u64,
}

impl HealthMachine {
    pub fn new(policy: HealthPolicy) -> Self {
        HealthMachine {
            policy,
            state: HealthState::Healthy,
            consecutive_failures: 0,
            consecutive_successes: 0,
            ejected_at: None,
            ejects: 0,
        }
    }

    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Advance time-based transitions: an ejected replica whose
    /// sit-out has elapsed goes half-open, letting the next probe
    /// decide readmission.
    pub fn tick(&mut self, now: Instant) {
        if self.state == HealthState::Ejected {
            if let Some(at) = self.ejected_at {
                if now.duration_since(at) >= self.policy.readmit_after {
                    self.state = HealthState::HalfOpen;
                }
            }
        }
    }

    /// Record a successful probe.
    pub fn on_success(&mut self) {
        self.consecutive_failures = 0;
        self.consecutive_successes = self.consecutive_successes.saturating_add(1);
        match self.state {
            HealthState::HalfOpen => {
                // One good probe readmits, but only to Degraded: the
                // replica must string together promote_after successes
                // before it is trusted as Healthy again.
                self.state = HealthState::Degraded;
                self.consecutive_successes = 1;
            }
            HealthState::Degraded => {
                if self.consecutive_successes >= self.policy.promote_after {
                    self.state = HealthState::Healthy;
                }
            }
            HealthState::Healthy => {}
            HealthState::Ejected => {}
        }
    }

    /// Record a failed probe at `now` (used to stamp eject time).
    pub fn on_failure(&mut self, now: Instant) {
        self.consecutive_successes = 0;
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        match self.state {
            HealthState::HalfOpen => {
                // Failed its readmission audition: back to the bench,
                // with the sit-out clock restarted.
                self.state = HealthState::Ejected;
                self.ejected_at = Some(now);
                self.ejects += 1;
            }
            HealthState::Ejected => {}
            _ => {
                if self.consecutive_failures >= self.policy.eject_after {
                    self.state = HealthState::Ejected;
                    self.ejected_at = Some(now);
                    self.ejects += 1;
                } else if self.consecutive_failures >= self.policy.degrade_after {
                    self.state = HealthState::Degraded;
                }
            }
        }
    }
}

/// Re-order a rendezvous ranking by health tier, keeping hash order
/// within each tier.  Pure so the routing policy is testable without
/// sockets: `tier_of[i]` is replica `i`'s current tier.
pub fn tier_route(order: &[usize], tier_of: &[u8]) -> Vec<usize> {
    let mut out = order.to_vec();
    out.sort_by_key(|&i| tier_of[i]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> HealthMachine {
        HealthMachine::new(HealthPolicy::default())
    }

    #[test]
    fn one_failure_degrades_three_eject() {
        let t0 = Instant::now();
        let mut h = machine();
        assert_eq!(h.state(), HealthState::Healthy);
        h.on_failure(t0);
        assert_eq!(h.state(), HealthState::Degraded);
        h.on_failure(t0);
        assert_eq!(h.state(), HealthState::Degraded);
        h.on_failure(t0);
        assert_eq!(h.state(), HealthState::Ejected);
        assert_eq!(h.ejects, 1);
    }

    #[test]
    fn readmission_goes_through_half_open_and_degraded() {
        let t0 = Instant::now();
        let mut h = machine();
        for _ in 0..3 {
            h.on_failure(t0);
        }
        assert_eq!(h.state(), HealthState::Ejected);

        // Before the sit-out elapses, still ejected.
        h.tick(t0 + Duration::from_millis(100));
        assert_eq!(h.state(), HealthState::Ejected);

        h.tick(t0 + Duration::from_millis(600));
        assert_eq!(h.state(), HealthState::HalfOpen);

        // One good probe readmits to Degraded, not straight to
        // Healthy; promote_after=2 successes finish the climb.
        h.on_success();
        assert_eq!(h.state(), HealthState::Degraded);
        h.on_success();
        assert_eq!(h.state(), HealthState::Healthy);
    }

    #[test]
    fn half_open_failure_re_ejects_with_fresh_timer() {
        let t0 = Instant::now();
        let mut h = machine();
        for _ in 0..3 {
            h.on_failure(t0);
        }
        h.tick(t0 + Duration::from_millis(600));
        assert_eq!(h.state(), HealthState::HalfOpen);

        let t1 = t0 + Duration::from_millis(700);
        h.on_failure(t1);
        assert_eq!(h.state(), HealthState::Ejected);
        assert_eq!(h.ejects, 2);

        // Timer restarted at t1: 400ms later still ejected, 600ms
        // later half-open again.
        h.tick(t1 + Duration::from_millis(400));
        assert_eq!(h.state(), HealthState::Ejected);
        h.tick(t1 + Duration::from_millis(600));
        assert_eq!(h.state(), HealthState::HalfOpen);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let t0 = Instant::now();
        let mut h = machine();
        h.on_failure(t0);
        h.on_failure(t0);
        h.on_success();
        // Streak broken: two more failures only re-degrade, the third
        // ejects.
        h.on_failure(t0);
        h.on_failure(t0);
        assert_eq!(h.state(), HealthState::Degraded);
        h.on_failure(t0);
        assert_eq!(h.state(), HealthState::Ejected);
    }

    #[test]
    fn tier_route_prefers_healthier_but_keeps_hash_order_within_tier() {
        // Hash order 2,0,3,1; replica 2 ejected, 3 degraded.
        let order = [2, 0, 3, 1];
        let tier_of = [0u8, 0, 3, 1];
        assert_eq!(tier_route(&order, &tier_of), vec![0, 1, 3, 2]);

        // All healthy: pure hash order survives.
        assert_eq!(tier_route(&order, &[0, 0, 0, 0]), vec![2, 0, 3, 1]);
    }
}
