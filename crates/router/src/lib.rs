//! gt-router: a replica-aware routing tier that makes N `gt-serve`
//! replicas behave like one fast evaluator.
//!
//! The router is a standalone NDJSON/TCP front tier owning a pool of
//! replica addresses.  Each eval request is validated at the edge and
//! routed by **rendezvous hashing on its canonical cache key**, so a
//! given key always lands on the replica whose LRU already holds it —
//! replica-local caches compose into one sharded fleet cache without
//! any cross-replica invalidation traffic.  Around that core:
//!
//! * **Health gating** ([`health`]) — a background probe loop drives a
//!   per-replica state machine (healthy → degraded → ejected, with
//!   half-open re-admission); routing prefers healthier tiers and only
//!   falls back to ejected replicas when nothing else is left.
//! * **Failover** — 429/503 replies and transport failures re-route
//!   the request to the next replica in hash order, bounded by a retry
//!   budget and biased by the upstream's `retry_after_ms` hint.
//! * **Hedging** — with a latency threshold configured, a request
//!   still unanswered after `hedge_ms` is raced against the next
//!   candidate; the first reply wins and the loser is discarded under
//!   last-waiter-out semantics.
//! * **Observability** ([`metrics`]) — per-replica request / retry /
//!   hedge / eject counters and a route-latency histogram, surfaced
//!   through `op:"stats"` and the Prometheus `/metrics` listener.
//! * **Distributed tracing** ([`trace`]) — a sampled span recorder
//!   assembles one span tree per request (routing decision, every
//!   dispatch/retry/hedge attempt, split-plan structure, replica-side
//!   stage offsets), queryable via `op:"trace"`.
//!
//! This is the serving-fleet analogue of the paper's Section 7
//! machine: a fixed processor set, work assigned by a fixed rule, and
//! a pre-emption mechanism (here: hedging and failover) that keeps
//! every processor useful even when one stalls.

pub mod hash;
pub mod health;
pub mod membership;
pub mod metrics;
pub mod router;
pub mod split;
pub mod trace;

pub use health::{HealthPolicy, HealthState};
pub use metrics::{ReplicaSnapshot, RouterMetrics, RouterSnapshot};
pub use router::{Router, RouterConfig};
pub use split::SplitConfig;
pub use trace::{SpanRecorder, TraceHandle, TraceStats};
