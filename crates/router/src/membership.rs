//! Fleet membership: the control-plane half of dynamic replicas.
//!
//! The router's member set is **append-only**: every data-path
//! structure (relays, split sub-flights, pending-reply entries) holds
//! raw replica indices, so a member is never removed from the list —
//! a replica that goes away is simply driven to health tier 3 by the
//! probe loop and stops receiving traffic.  Joins extend the list;
//! re-joins and reweights update the member in place.
//!
//! ## The join protocol
//!
//! A replica announces itself by sending the router a single line on
//! the client port:
//!
//! ```text
//! {"op":"join","addr":"10.0.0.7:7171","weight":4,"generation":2}
//! ```
//!
//! `addr` is the replica's serving address (the router connects back;
//! membership is never taken on faith from the socket's peer
//! address).  `weight` scales the member's keyspace share under
//! weighted rendezvous hashing ([`crate::hash::rank_weighted`]).
//! `generation` is a counter the replica bumps every (re)start, so
//! the router can order announcements from the same address:
//!
//! * unknown `addr` → **admit** (append a member),
//! * known `addr`, higher generation → **refresh** (a reborn
//!   replica: adopt its weight and generation),
//! * same generation, different weight → **reweight** in place,
//! * same generation and weight → harmless duplicate (announce
//!   retries are idempotent),
//! * lower generation → **stale** (an old announcement arriving
//!   late; ignored).
//!
//! [`classify_join`] is that decision, pure and testable; the router
//! applies it under its membership lock.
//!
//! ## The routing table
//!
//! Routing wants a stable `&[(addr, weight)]` slice per request
//! without cloning addresses on the hot path, so the weighted pairs
//! live in a [`RoutingTable`] — an `Arc`-swapped snapshot rebuilt
//! only when membership actually changes.  Requests in flight keep
//! whatever snapshot they started with; indices they carry stay
//! valid forever because the member list only grows.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Default routing weight for members that never announced one (the
/// static `--replica` list, and joins that omit `weight`).
pub const DEFAULT_WEIGHT: u64 = 1;

/// What a `join` announcement should do to the member set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinAction {
    /// Unknown address: append a new member.
    Admit,
    /// Known address announcing a higher generation: a reborn
    /// replica.  Adopt its weight and generation.
    Refresh,
    /// Same generation, new weight: reweight the member in place.
    Reweight,
    /// Same generation and weight: an announce retry; nothing to do.
    Duplicate,
    /// Lower generation than the member already announced: a stale
    /// duplicate arriving late.  Ignore it.
    Stale,
}

/// Decide what a `join` for some address does, given the weight and
/// generation that address currently has (`None` when unknown).
pub fn classify_join(current: Option<(u64, u64)>, weight: u64, generation: u64) -> JoinAction {
    match current {
        None => JoinAction::Admit,
        Some((_, cur_gen)) if generation > cur_gen => JoinAction::Refresh,
        Some((_, cur_gen)) if generation < cur_gen => JoinAction::Stale,
        Some((cur_weight, _)) if weight != cur_weight => JoinAction::Reweight,
        Some(_) => JoinAction::Duplicate,
    }
}

/// One member as the control plane reports it (health/stats rows and
/// the warm-fill peer list).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemberView {
    /// Serving address.
    pub addr: String,
    /// Routing weight.
    pub weight: u64,
    /// Last announced generation (0 for static seed members that
    /// never announced).
    pub generation: u64,
}

/// The weighted `(addr, weight)` pairs routing hashes over, swapped
/// atomically as a whole on every membership change so the request
/// path reads one `Arc` and never takes the membership lock.
pub struct RoutingTable {
    pairs: RwLock<Arc<Vec<(String, u64)>>>,
    /// Membership revision: bumped on every swap.  Cheap to read, so
    /// pollers can skip re-reading an unchanged table.
    version: AtomicU64,
}

impl RoutingTable {
    /// Table over the seed addresses, all at [`DEFAULT_WEIGHT`].
    pub fn seeded(addrs: &[String]) -> RoutingTable {
        RoutingTable {
            pairs: RwLock::new(Arc::new(
                addrs.iter().map(|a| (a.clone(), DEFAULT_WEIGHT)).collect(),
            )),
            version: AtomicU64::new(0),
        }
    }

    /// The current `(addr, weight)` snapshot.  Requests hold it for
    /// their whole lifetime; a concurrent swap never perturbs it.
    pub fn snapshot(&self) -> Arc<Vec<(String, u64)>> {
        Arc::clone(&self.pairs.read().unwrap())
    }

    /// Replace the table (on admit/refresh/reweight) and bump the
    /// version.  `pairs` must keep existing members at their existing
    /// indices — the member list is append-only.
    pub fn replace(&self, pairs: Vec<(String, u64)>) {
        *self.pairs.write().unwrap() = Arc::new(pairs);
        self.version.fetch_add(1, Ordering::Release);
    }

    /// Members currently in the table.
    pub fn len(&self) -> usize {
        self.pairs.read().unwrap().len()
    }

    /// Whether the table has no members.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership revision (number of swaps so far).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }
}

/// Membership-change counters, reported in `stats` and `/metrics` as
/// the `router_members_*` series.
#[derive(Default)]
pub struct MembershipCounters {
    /// Members admitted by a join (seed members not counted).
    pub joined: AtomicU64,
    /// Re-joins of a known address with a higher generation.
    pub refreshed: AtomicU64,
    /// In-place weight changes.
    pub reweighted: AtomicU64,
    /// Stale (lower-generation) announcements ignored.
    pub stale_joins: AtomicU64,
    /// Announce retries that changed nothing.
    pub duplicate_joins: AtomicU64,
}

impl MembershipCounters {
    /// Count one classified join.
    pub fn record(&self, action: JoinAction) {
        let c = match action {
            JoinAction::Admit => &self.joined,
            JoinAction::Refresh => &self.refreshed,
            JoinAction::Reweight => &self.reweighted,
            JoinAction::Duplicate => &self.duplicate_joins,
            JoinAction::Stale => &self.stale_joins,
        };
        c.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_classification_follows_the_generation_order() {
        // Unknown address: admit.
        assert_eq!(classify_join(None, 1, 0), JoinAction::Admit);
        // Reborn replica: higher generation wins regardless of weight.
        assert_eq!(classify_join(Some((1, 1)), 1, 2), JoinAction::Refresh);
        assert_eq!(classify_join(Some((4, 1)), 4, 5), JoinAction::Refresh);
        // Same generation: weight change is a reweight, else a no-op.
        assert_eq!(classify_join(Some((1, 3)), 8, 3), JoinAction::Reweight);
        assert_eq!(classify_join(Some((8, 3)), 8, 3), JoinAction::Duplicate);
        // Older generation: stale, never applied.
        assert_eq!(classify_join(Some((8, 3)), 2, 2), JoinAction::Stale);
        assert_eq!(classify_join(Some((1, 1)), 1, 0), JoinAction::Stale);
    }

    #[test]
    fn routing_table_snapshots_survive_swaps() {
        let addrs: Vec<String> = (0..2).map(|i| format!("10.0.0.{i}:7171")).collect();
        let table = RoutingTable::seeded(&addrs);
        assert_eq!(table.len(), 2);
        assert_eq!(table.version(), 0);
        let held = table.snapshot();

        // A join appends; the held snapshot is untouched.
        let mut grown = held.as_ref().clone();
        grown.push(("10.0.0.9:7171".to_string(), 4));
        table.replace(grown);
        assert_eq!(table.len(), 3);
        assert_eq!(table.version(), 1);
        assert_eq!(held.len(), 2, "in-flight snapshot must not grow");
        assert_eq!(table.snapshot()[2].1, 4);
    }

    #[test]
    fn membership_counters_track_each_action() {
        let c = MembershipCounters::default();
        for action in [
            JoinAction::Admit,
            JoinAction::Admit,
            JoinAction::Refresh,
            JoinAction::Reweight,
            JoinAction::Duplicate,
            JoinAction::Stale,
        ] {
            c.record(action);
        }
        assert_eq!(c.joined.load(Ordering::Relaxed), 2);
        assert_eq!(c.refreshed.load(Ordering::Relaxed), 1);
        assert_eq!(c.reweighted.load(Ordering::Relaxed), 1);
        assert_eq!(c.duplicate_joins.load(Ordering::Relaxed), 1);
        assert_eq!(c.stale_joins.load(Ordering::Relaxed), 1);
    }
}
