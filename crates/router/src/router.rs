//! The routing tier itself: client accept loop, rendezvous routing,
//! per-replica pipelined connection pools, retry/hedge pacing, and
//! lifecycle (spawned replicas, probes, graceful drain).
//!
//! ## Data path
//!
//! A client connection speaks the same NDJSON protocol as `gt-serve`.
//! Each `eval` is validated at the edge (bad requests never cost an
//! upstream round trip), keyed by its canonical cache key, and routed
//! along the key's rendezvous order re-sorted by health tier.  The
//! request is relayed upstream with a globally unique numeric id;
//! replies are matched back to their [`Relay`], rewritten to carry the
//! client's original id (plus `replica`, `retries`, `hedged`
//! annotations), and written to the client.  One request may have
//! several upstream copies in flight (a hedge, or a retry racing a
//! slow first attempt); the first reply wins via an atomic claim and
//! the rest are discarded.
//!
//! ## Control path
//!
//! A background prober drives each replica's health machine (see
//! [`crate::health`] — data-path errors never touch health), a pacer
//! thread fires deferred retries, hedges, and a last-resort expiry for
//! every relay, and upstream reader threads reconnect with backoff
//! when replicas die, re-dispatching any requests orphaned in flight.

use crate::hash;
use crate::health::{tier_route, HealthMachine, HealthPolicy};
use crate::membership::{self, JoinAction, RoutingTable};
use crate::metrics::{ReplicaCounters, ReplicaSnapshot, RouterMetrics, RouterSnapshot};
use crate::split::{plan_levels, Dispatch, Effects, FailKind, Outcome, SplitConfig, SplitMachine};
use crate::trace::{SpanRecorder, TraceHandle, ROOT_SPAN};
use gt_analysis::Json;
use gt_serve::io::{BufferPool, LineAction, LineReader, Poller, Waker};
use gt_serve::protocol::{
    error_line_with, ok_line, ErrorCode, Op, Request, Response, TraceContext, PROTOCOL_VERSION,
};
use gt_serve::trace::{spawn_metrics_listener, MetricsListener};
use gt_serve::workload;
use gt_tree::split::{path_text, SubtreeSpec};
use gt_tree::Value;
use std::collections::{BinaryHeap, HashMap};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocking reads wake to poll stop flags.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Delay before reconnecting a dead upstream connection.
const RECONNECT_DELAY: Duration = Duration::from_millis(50);

/// Slack past a relay's deadline before the router answers `timeout`
/// locally.  Within the slack the upstream — which was handed the same
/// deadline — gets to deliver its own, more informative, timeout.
const EXPIRE_GRACE: Duration = Duration::from_millis(100);

/// Largest accepted client request line.
const MAX_LINE_BYTES: usize = 64 * 1024;

/// Algorithm used when an eval names none (mirrors gt-serve).
const DEFAULT_ALGO: &str = "cascade:w=1";

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address for the client listener; port 0 for ephemeral.
    pub addr: String,
    /// Upstream replica addresses (`host:port`).
    pub replicas: Vec<String>,
    /// Number of in-process `gt-serve` replicas to spawn on ephemeral
    /// ports, in addition to `replicas`.
    pub spawn: usize,
    /// Configuration template for spawned replicas (its `addr` is
    /// ignored; each replica binds `127.0.0.1:0`).
    pub spawn_config: gt_serve::Config,
    /// Pipelined connections per replica.
    pub pool: usize,
    /// Requests in flight per upstream connection; the router's side
    /// of gt-serve's `--conn-window` contract.
    pub conn_window: usize,
    /// Requests in flight per client connection.
    pub client_window: usize,
    /// Scheduled failover retries per request (inline skips over dead
    /// replicas are not budgeted — they are how a live one is found).
    pub retries: u32,
    /// Hedge a request still unanswered after this many milliseconds
    /// against the next replica in route order; `None` disables.
    pub hedge_ms: Option<u64>,
    /// Base backoff before a busy-retry, doubled per retry, capped at
    /// 250ms; the upstream's `retry_after_ms` hint overrides it.
    pub backoff_ms: u64,
    /// Health probe period.
    pub probe_interval_ms: u64,
    /// Health probe connect/read timeout.
    pub probe_timeout_ms: u64,
    /// Deadline applied to evals that do not carry `deadline_ms`.
    pub default_deadline_ms: u64,
    /// Bind address for the Prometheus `/metrics` listener; `None`
    /// disables it.
    pub metrics_addr: Option<String>,
    /// Health state-machine thresholds.
    pub health: HealthPolicy,
    /// Scatter-gather split planning (see [`crate::split`]).
    pub split: SplitConfig,
    /// Fraction of requests traced when the client supplies no trace
    /// context (`0` disables tracing, `1` traces everything).  A
    /// client-supplied `trace` object is always honoured whenever this
    /// is above zero.  Defaults to 1-in-20: span trees cost a few
    /// microseconds of router CPU per request, which saturated
    /// cached-hit traffic would otherwise pay on every single reply
    /// (the `trace_overhead` scenario in scripts/bench_serve.sh holds
    /// the default under a 3% p50 budget).
    pub trace_sample: f64,
    /// Finished span trees kept for `op:"trace"`.
    pub trace_ring: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".into(),
            replicas: Vec::new(),
            spawn: 0,
            spawn_config: gt_serve::Config::default(),
            pool: 1,
            conn_window: 32,
            client_window: 32,
            retries: 3,
            hedge_ms: None,
            backoff_ms: 2,
            probe_interval_ms: 100,
            probe_timeout_ms: 250,
            default_deadline_ms: 10_000,
            metrics_addr: None,
            health: HealthPolicy::default(),
            split: SplitConfig::default(),
            trace_sample: 0.05,
            trace_ring: 256,
        }
    }
}

// ---------------------------------------------------------------------------
// Client-side pipelining window (same discipline as gt-serve's).
// ---------------------------------------------------------------------------

struct ClientWindow {
    slots: Mutex<usize>,
    cv: Condvar,
}

impl ClientWindow {
    fn new() -> ClientWindow {
        ClientWindow {
            slots: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    /// Claim a slot.  The client-io loop checks [`in_flight`] against
    /// the limit *before* consuming a request line (deferring the line
    /// otherwise), and only this connection's io thread ever acquires,
    /// so in practice the wait never blocks — it is kept as a guard
    /// against future callers with weaker discipline.
    fn acquire(&self, limit: usize) {
        let mut n = self.slots.lock().unwrap();
        while *n >= limit.max(1) {
            n = self.cv.wait(n).unwrap();
        }
        *n += 1;
    }

    fn release(&self) {
        *self.slots.lock().unwrap() -= 1;
        self.cv.notify_all();
    }

    /// Requests currently holding a slot — the io loop's non-blocking
    /// probe for flow control and drain completion.
    fn in_flight(&self) -> usize {
        *self.slots.lock().unwrap()
    }
}

// ---------------------------------------------------------------------------
// Upstream state.
// ---------------------------------------------------------------------------

/// One pipelined connection to a replica.  `writer` is `None` while
/// disconnected; `pending` maps upstream sequence ids to whatever
/// awaits the reply.
struct UpstreamConn {
    writer: Mutex<Option<TcpStream>>,
    pending: Mutex<HashMap<u64, PendingReply>>,
}

/// What an upstream sequence id resolves to: a whole client request
/// being relayed, or one subeval of a split plan.
enum PendingReply {
    Whole(Arc<Relay>),
    Sub(Arc<SubFlight>),
}

/// One replica: its address, connection pool, health trajectory, and
/// data-path counters.
struct Replica {
    idx: usize,
    addr: String,
    conns: Vec<Arc<UpstreamConn>>,
    rr: AtomicUsize,
    health: Mutex<HealthMachine>,
    counters: ReplicaCounters,
    /// Routing weight under weighted rendezvous hashing; updated in
    /// place by `join` announcements (see [`crate::membership`]).
    weight: AtomicU64,
    /// Last generation this member announced (0 for static seeds).
    generation: AtomicU64,
    /// When the prober last finished a round trip against this
    /// replica, in `RouterMetrics::uptime_us` units; `u64::MAX`
    /// until the first probe completes.
    last_probe_us: AtomicU64,
}

impl Replica {
    fn new(idx: usize, addr: String, pool: usize, health: HealthPolicy, weight: u64) -> Replica {
        Replica {
            idx,
            addr,
            conns: (0..pool.max(1))
                .map(|_| {
                    Arc::new(UpstreamConn {
                        writer: Mutex::new(None),
                        pending: Mutex::new(HashMap::new()),
                    })
                })
                .collect(),
            rr: AtomicUsize::new(0),
            health: Mutex::new(HealthMachine::new(health)),
            counters: ReplicaCounters::default(),
            weight: AtomicU64::new(weight),
            generation: AtomicU64::new(0),
            last_probe_us: AtomicU64::new(u64::MAX),
        }
    }

    fn tier(&self) -> u8 {
        self.health.lock().unwrap().state().tier()
    }

    fn inflight(&self) -> u64 {
        self.conns
            .iter()
            .map(|c| c.pending.lock().unwrap().len() as u64)
            .sum()
    }
}

/// Where an upstream copy of a relay currently lives.
struct OutstandingEntry {
    replica: usize,
    conn: usize,
    seq: u64,
    is_hedge: bool,
    /// The dispatch span covering this copy; `0` when untraced.
    span: u64,
}

/// One client request in flight through the router.  Shared by the
/// client reader (creation), upstream readers (replies), and the
/// pacer (retries/hedges/expiry); `answered` is the single claim that
/// guarantees exactly one reply line reaches the client.
struct Relay {
    client_id: Option<String>,
    /// What to send upstream: `Op::Eval` or `Op::Subeval`.
    op: Op,
    /// Canonical spec/algo strings sent upstream — the same strings
    /// that formed the routing key, so every replica computes the
    /// identical cache key.
    spec: String,
    algo: String,
    /// Subeval-only: canonical dot-joined path and the window bounds
    /// (absent bounds mean the full window).
    path: Option<String>,
    alpha: Option<i64>,
    beta: Option<i64>,
    /// Tenant id forwarded upstream so replica-side fair scheduling
    /// sees the same tenant the client declared.
    tenant: Option<String>,
    start: Instant,
    deadline: Instant,
    /// Replica indices in routing preference order.
    route: Vec<usize>,
    /// Next position in `route` to try (monotone; wraps via modulo).
    cursor: AtomicUsize,
    retries: AtomicU32,
    hedged: AtomicBool,
    answered: AtomicBool,
    outstanding: Mutex<Vec<OutstandingEntry>>,
    writer: Arc<Mutex<TcpStream>>,
    window: Arc<ClientWindow>,
    /// The request's span tree, when it is being traced.
    trace: Option<Arc<TraceHandle>>,
}

impl Relay {
    /// Claim the right to answer; at most one caller ever wins.
    fn try_claim(&self) -> bool {
        !self.answered.swap(true, Ordering::SeqCst)
    }

    fn remove_outstanding(&self, seq: u64) -> Option<OutstandingEntry> {
        let mut out = self.outstanding.lock().unwrap();
        out.iter()
            .position(|e| e.seq == seq)
            .map(|i| out.swap_remove(i))
    }
}

// ---------------------------------------------------------------------------
// Pacer: one thread, one min-heap of deferred actions.
// ---------------------------------------------------------------------------

enum Action {
    /// Re-dispatch after a busy backoff.
    Retry,
    /// Launch the hedge copy if still unanswered.
    Hedge,
    /// Last resort: answer `timeout` locally so the client window is
    /// always released, even with a wedged upstream.
    Expire,
}

struct PacerEntry {
    due: Instant,
    tiebreak: u64,
    relay: Weak<Relay>,
    action: Action,
}

impl PartialEq for PacerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.tiebreak == other.tiebreak
    }
}
impl Eq for PacerEntry {}
impl PartialOrd for PacerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PacerEntry {
    // Reversed so BinaryHeap pops the earliest deadline first.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .due
            .cmp(&self.due)
            .then(other.tiebreak.cmp(&self.tiebreak))
    }
}

struct Pacer {
    heap: Mutex<BinaryHeap<PacerEntry>>,
    cv: Condvar,
    stop: AtomicBool,
    counter: AtomicU64,
}

impl Pacer {
    fn new() -> Pacer {
        Pacer {
            heap: Mutex::new(BinaryHeap::new()),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
            counter: AtomicU64::new(0),
        }
    }

    fn schedule(&self, due: Instant, relay: &Arc<Relay>, action: Action) {
        let tiebreak = self.counter.fetch_add(1, Ordering::Relaxed);
        self.heap.lock().unwrap().push(PacerEntry {
            due,
            tiebreak,
            relay: Arc::downgrade(relay),
            action,
        });
        self.cv.notify_all();
    }

    fn halt(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.cv.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Shared router state.
// ---------------------------------------------------------------------------

struct Inner {
    config: RouterConfig,
    /// The append-only member list.  Swapped whole (never mutated in
    /// place) so every reader takes one `Arc` snapshot; raw replica
    /// indices carried by relays and split plans stay valid across
    /// joins because members are only ever appended.
    replicas: RwLock<Arc<Vec<Arc<Replica>>>>,
    /// `(addr, weight)` pairs routing hashes over; rebuilt from the
    /// member list on every membership change.
    table: RoutingTable,
    /// Serializes membership changes; the data path never takes it.
    member_lock: Mutex<()>,
    /// Upstream reader threads spawned for members that joined at
    /// runtime, joined at shutdown after the static pool's threads.
    joined_threads: Mutex<Vec<JoinHandle<()>>>,
    metrics: RouterMetrics,
    recorder: SpanRecorder,
    pacer: Pacer,
    seq: AtomicU64,
    /// Client-facing drain flag: stop accepting, reject new evals.
    draining: AtomicBool,
    /// Second shutdown phase: stop upstream/probe threads.
    stop_upstream: AtomicBool,
}

impl Inner {
    /// The current member list.  Holders keep whatever snapshot they
    /// took; a concurrent join never perturbs it.
    fn members(&self) -> Arc<Vec<Arc<Replica>>> {
        Arc::clone(&self.replicas.read().unwrap())
    }
}

/// Compute a key's routing order: weighted rendezvous rank over the
/// routing table, stable-sorted by health tier so healthier replicas
/// come first but hash affinity survives within a tier.
fn route_for(key: &str, table: &[(String, u64)], tiers: &[u8]) -> Vec<usize> {
    tier_route(&hash::rank_weighted(key, table), tiers)
}

/// One coherent routing view: the `(addr, weight)` table snapshot and
/// the matching health tiers.  The member list is read *after* the
/// table and truncated to it — a join appends to the member list
/// before swapping the table in, so the list is never the shorter of
/// the two.
fn routing_view(inner: &Inner) -> (Arc<Vec<(String, u64)>>, Vec<u8>) {
    let table = inner.table.snapshot();
    let reps = inner.members();
    let tiers = reps.iter().take(table.len()).map(|r| r.tier()).collect();
    (table, tiers)
}

/// Record the routing decision as an instantaneous span: the chosen
/// candidate order, each annotated with its health tier.
fn record_route_span(h: &TraceHandle, route: &[usize], table: &[(String, u64)], tiers: &[u8]) {
    let label = route
        .iter()
        .map(|&i| format!("{}(t{})", table[i].0, tiers[i]))
        .collect::<Vec<_>>()
        .join(" > ");
    h.event(ROOT_SPAN, "route", label, "ok");
}

fn write_client(relay: &Relay, line: &str) {
    let mut w = relay.writer.lock().unwrap();
    let _ = w.write_all(line.as_bytes());
    let _ = w.write_all(b"\n");
}

fn write_line(writer: &Mutex<TcpStream>, line: &str) {
    let mut w = writer.lock().unwrap();
    let _ = w.write_all(line.as_bytes());
    let _ = w.write_all(b"\n");
}

/// Rebuild an upstream reply line for the client: drop the upstream
/// sequence id, restore the client's id (right after `ok`, where
/// gt-serve puts it), and annotate with the answering replica plus
/// retry/hedge provenance.  Pure for testability.
fn rewrite_reply(
    body: &Json,
    client_id: &Option<String>,
    replica_addr: &str,
    retries: u32,
    hedged: bool,
    trace_id: Option<&str>,
) -> String {
    let mut pairs: Vec<(String, Json)> = Vec::new();
    if let Json::Object(fields) = body {
        for (k, v) in fields {
            if k == "id" {
                continue;
            }
            pairs.push((k.clone(), v.clone()));
            if k == "ok" {
                if let Some(id) = client_id {
                    pairs.push(("id".into(), Json::from(id.clone())));
                }
            }
        }
    }
    pairs.push(("replica".into(), Json::from(replica_addr)));
    if retries > 0 {
        pairs.push(("retries".into(), Json::from(u64::from(retries))));
    }
    if hedged {
        pairs.push(("hedged".into(), Json::Bool(true)));
    }
    if let Some(id) = trace_id {
        pairs.push(("trace_id".into(), Json::from(id)));
    }
    Json::Object(pairs).render()
}

/// Detail copied from an upstream reply onto its dispatch span: the
/// answering replica, the replica's stage-offset echo, and its work
/// counters (leaves, par grants/steals) when present.
fn span_detail_from(resp: &Response, replica_addr: &str) -> Vec<(String, Json)> {
    let mut extra = vec![("replica".into(), Json::from(replica_addr))];
    if let Some(stages) = resp.body.get("trace").and_then(|t| t.get("stages")) {
        extra.push(("stages".into(), stages.clone()));
    }
    if let Some(work) = resp.body.get("work") {
        extra.push(("work".into(), work.clone()));
    }
    extra
}

// ---------------------------------------------------------------------------
// Settling: exactly one reply per relay.
// ---------------------------------------------------------------------------

/// Remove every upstream copy of `relay` from the pending maps so a
/// late duplicate reply is counted stale instead of re-settling.
fn cleanup_outstanding(inner: &Inner, relay: &Relay) {
    let entries: Vec<OutstandingEntry> = std::mem::take(&mut *relay.outstanding.lock().unwrap());
    let reps = inner.members();
    for e in entries {
        reps[e.replica].conns[e.conn]
            .pending
            .lock()
            .unwrap()
            .remove(&e.seq);
    }
}

/// Forward an upstream reply (ok or non-retryable error) to the
/// client, if this copy wins the claim.
fn settle_forward(
    inner: &Inner,
    relay: &Relay,
    replica: &Replica,
    resp: &Response,
    is_hedge: bool,
    span: u64,
) {
    let status = if resp.ok { "ok" } else { "error" };
    if !relay.try_claim() {
        // This copy lost the race: its span records the wasted work.
        if let Some(h) = &relay.trace {
            if span != 0 {
                h.end_with(span, "discarded", span_detail_from(resp, &replica.addr));
            }
        }
        if relay.hedged.load(Ordering::SeqCst) {
            RouterMetrics::bump(&inner.metrics.hedge_losers);
        }
        return;
    }
    if is_hedge {
        RouterMetrics::bump(&inner.metrics.hedge_wins);
    }
    cleanup_outstanding(inner, relay);
    if let Some(h) = &relay.trace {
        if span != 0 {
            h.end_with(span, status, span_detail_from(resp, &replica.addr));
        }
        h.end(ROOT_SPAN, status);
        inner.recorder.finish(h);
    }
    let line = rewrite_reply(
        &resp.body,
        &relay.client_id,
        &replica.addr,
        relay.retries.load(Ordering::SeqCst),
        relay.hedged.load(Ordering::SeqCst),
        relay.trace.as_ref().map(|h| h.trace_id.as_str()),
    );
    write_client(relay, &line);
    if resp.ok {
        RouterMetrics::bump(&inner.metrics.ok);
        inner
            .metrics
            .route_latency
            .record(relay.start.elapsed().as_micros() as u64);
    } else {
        RouterMetrics::bump(&inner.metrics.forwarded_errors);
    }
    relay.window.release();
}

/// Answer the client from the router itself (shed/timeout/draining).
fn settle_local(
    inner: &Inner,
    relay: &Relay,
    code: ErrorCode,
    message: &str,
    mut extra: Vec<(&'static str, Json)>,
) {
    if !relay.try_claim() {
        return;
    }
    cleanup_outstanding(inner, relay);
    let status = match code {
        ErrorCode::Busy => "busy",
        ErrorCode::Timeout => "timeout",
        ErrorCode::Draining => "draining",
        _ => "error",
    };
    if let Some(h) = &relay.trace {
        if matches!(code, ErrorCode::Timeout) {
            // The local 408 backstop: upstream never answered in time.
            h.event(ROOT_SPAN, "expire", message.to_string(), status);
        }
        h.end(ROOT_SPAN, status);
        inner.recorder.finish(h);
        extra.push(("trace_id", Json::from(h.trace_id.clone())));
    }
    write_client(
        relay,
        &error_line_with(&relay.client_id, code, message, extra),
    );
    match code {
        ErrorCode::Busy => RouterMetrics::bump(&inner.metrics.shed),
        ErrorCode::Timeout => RouterMetrics::bump(&inner.metrics.expired),
        ErrorCode::Draining => RouterMetrics::bump(&inner.metrics.draining),
        _ => {}
    }
    relay.window.release();
}

/// Out of candidates: shed, unless another copy is still racing.
fn fail_unrouted(inner: &Inner, relay: &Relay) {
    if !relay.outstanding.lock().unwrap().is_empty() {
        return;
    }
    RouterMetrics::bump(&inner.metrics.unrouted);
    settle_local(
        inner,
        relay,
        ErrorCode::Busy,
        "no routable replica",
        vec![("retry_after_ms", Json::from(inner.config.backoff_ms.max(1)))],
    );
}

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

#[derive(Clone, Copy)]
enum AttemptKind {
    Initial,
    Retry,
    Hedge,
}

impl AttemptKind {
    fn span_kind(self) -> &'static str {
        match self {
            AttemptKind::Initial => "dispatch",
            AttemptKind::Retry => "retry",
            AttemptKind::Hedge => "hedge",
        }
    }

    fn is_hedge(self) -> bool {
        matches!(self, AttemptKind::Hedge)
    }
}

/// Try to place one upstream copy of `relay`, walking its route from
/// the cursor.  The first candidate of an Initial or Hedge attempt is
/// free; every further candidate — tried because the previous one was
/// unreachable — counts as a retry, as does the whole of a scheduled
/// Retry attempt.  So `retries` reflects every time the request moved
/// because the fleet made it move.
fn dispatch_attempt(inner: &Inner, relay: &Arc<Relay>, kind: AttemptKind) {
    if relay.answered.load(Ordering::SeqCst) {
        return;
    }
    if Instant::now() >= relay.deadline {
        settle_local(
            inner,
            relay,
            ErrorCode::Timeout,
            "deadline expired in router",
            Vec::new(),
        );
        return;
    }
    let reps = inner.members();
    let len = relay.route.len();
    for iter in 0..len {
        let pos = relay.cursor.fetch_add(1, Ordering::SeqCst) % len;
        let replica = &reps[relay.route[pos]];
        let free = iter == 0 && matches!(kind, AttemptKind::Initial | AttemptKind::Hedge);
        if !free {
            relay.retries.fetch_add(1, Ordering::SeqCst);
            RouterMetrics::bump(&inner.metrics.retries);
        }
        if try_send(inner, relay, replica, kind).is_ok() {
            return;
        }
    }
    fail_unrouted(inner, relay);
}

/// Place the copy on one of `replica`'s connections (round-robin,
/// first with window room and a live writer).
fn try_send(
    inner: &Inner,
    relay: &Arc<Relay>,
    replica: &Replica,
    kind: AttemptKind,
) -> Result<(), ()> {
    let start = replica.rr.fetch_add(1, Ordering::Relaxed);
    for k in 0..replica.conns.len() {
        let ci = (start + k) % replica.conns.len();
        if conn_try_send(inner, relay, replica, ci, kind).is_ok() {
            return Ok(());
        }
    }
    Err(())
}

fn conn_try_send(
    inner: &Inner,
    relay: &Arc<Relay>,
    replica: &Replica,
    ci: usize,
    kind: AttemptKind,
) -> Result<(), ()> {
    let conn = &replica.conns[ci];
    let seq = inner.seq.fetch_add(1, Ordering::SeqCst) + 1;
    {
        let mut pending = conn.pending.lock().unwrap();
        if pending.len() >= inner.config.conn_window.max(1) {
            return Err(());
        }
        // Registered before the write: if the write half dies mid-way,
        // ownership of the failure is decided by who removes this
        // entry first (see below).
        pending.insert(seq, PendingReply::Whole(Arc::clone(relay)));
    }
    // One span per wire attempt, opened before the write so a failed
    // write still leaves its mark on the tree.
    let span = match &relay.trace {
        Some(h) => h.span(ROOT_SPAN, kind.span_kind(), replica.addr.clone()),
        None => 0,
    };
    relay.outstanding.lock().unwrap().push(OutstandingEntry {
        replica: replica.idx,
        conn: ci,
        seq,
        is_hedge: kind.is_hedge(),
        span,
    });
    let remaining = relay
        .deadline
        .saturating_duration_since(Instant::now())
        .as_millis() as u64;
    let line = Request {
        id: Some(seq.to_string()),
        op: relay.op,
        spec: Some(relay.spec.clone()),
        algo: match relay.op {
            Op::Eval => Some(relay.algo.clone()),
            _ => None,
        },
        deadline_ms: Some(remaining.max(1)),
        path: relay.path.clone(),
        alpha: relay.alpha,
        beta: relay.beta,
        trace: relay.trace.as_ref().map(|h| TraceContext {
            trace_id: h.trace_id.clone(),
            parent_span: Some(span),
        }),
        tenant: relay.tenant.clone(),
        ..Default::default()
    }
    .render();
    let wrote = {
        let mut w = conn.writer.lock().unwrap();
        let ok = match w.as_mut() {
            None => false,
            Some(stream) => stream
                .write_all(line.as_bytes())
                .and_then(|_| stream.write_all(b"\n"))
                .is_ok(),
        };
        if !ok {
            *w = None;
        }
        ok
    };
    if wrote {
        ReplicaCounters::bump(&replica.counters.sent);
        return Ok(());
    }
    // The write failed.  If our pending entry is still there, we own
    // the failure: undo and let the caller try the next candidate.  If
    // it is gone, the reader noticed the dead connection first, drained
    // pending, and owns the re-dispatch — report success so the copy
    // is not dispatched twice.
    if conn.pending.lock().unwrap().remove(&seq).is_some() {
        relay.remove_outstanding(seq);
        if let Some(h) = &relay.trace {
            if span != 0 {
                h.end(span, "transport");
            }
        }
        ReplicaCounters::bump(&replica.counters.transport);
        Err(())
    } else {
        Ok(())
    }
}

/// Schedule a deferred re-dispatch after a busy reply, biased by the
/// upstream's own estimate of when its backlog will have drained.
fn schedule_retry(inner: &Inner, relay: &Arc<Relay>, hint_ms: Option<u64>) {
    if relay.answered.load(Ordering::SeqCst) {
        return;
    }
    let n = relay.retries.load(Ordering::SeqCst);
    if n >= inner.config.retries {
        fail_unrouted(inner, relay);
        return;
    }
    let backoff = hint_ms
        .unwrap_or(inner.config.backoff_ms << n.min(4))
        .clamp(1, 250);
    let due = Instant::now() + Duration::from_millis(backoff);
    if due >= relay.deadline {
        settle_local(
            inner,
            relay,
            ErrorCode::Timeout,
            "deadline expired in router",
            Vec::new(),
        );
        return;
    }
    inner.pacer.schedule(due, relay, Action::Retry);
}

// ---------------------------------------------------------------------------
// Split plans: scatter-gather evaluation across the fleet.
// ---------------------------------------------------------------------------

/// One split plan in flight: the pure [`SplitMachine`] plus everything
/// the router needs to answer the client exactly once.  The machine
/// holds all evaluation state; this wrapper only does I/O bookkeeping.
struct ActivePlan {
    client_id: Option<String>,
    /// Canonical spec text (no path, no window) — the stable part of
    /// every subeval routing key and upstream request.
    spec_text: String,
    machine: Mutex<SplitMachine>,
    answered: AtomicBool,
    start: Instant,
    deadline: Instant,
    depth: usize,
    naive: bool,
    writer: Arc<Mutex<TcpStream>>,
    window: Arc<ClientWindow>,
    /// The request's span tree, when it is being traced.
    trace: Option<Arc<TraceHandle>>,
    /// The `split` span every subeval span parents to; `0` untraced.
    split_span: u64,
}

impl ActivePlan {
    /// Claim the right to answer; at most one caller ever wins.
    fn try_claim(&self) -> bool {
        !self.answered.swap(true, Ordering::SeqCst)
    }
}

/// One subeval of a split plan on the wire.  Routing state mirrors a
/// [`Relay`]'s, but under the paper's no-abort rule there is never
/// more than one live copy: the router never hedges a subeval and
/// never sends abort traffic — a loser is simply skipped before
/// dispatch or discarded on arrival.
struct SubFlight {
    plan: Arc<ActivePlan>,
    level: usize,
    child: usize,
    /// Replica indices in routing preference order for this subtree.
    route: Vec<usize>,
    /// Next position in `route` (monotone; wraps via modulo), so a
    /// re-dispatch walks on down the hash order.
    cursor: AtomicUsize,
    /// Busy-retry budget consumed (transport skips are unbudgeted).
    busy_retries: AtomicU32,
    /// The span covering the current wire copy (`0` when none); a
    /// re-dispatch replaces it — subevals never have two live copies.
    span: AtomicU64,
}

/// Answer the plan's client exactly once and release the window slot.
fn answer_plan(inner: &Inner, plan: &ActivePlan, outcome: &Outcome) {
    if !plan.try_claim() {
        return;
    }
    match outcome {
        Outcome::Value {
            value,
            work,
            subevals,
        } => {
            if let Some(h) = &plan.trace {
                h.end(plan.split_span, "ok");
                h.end(ROOT_SPAN, "ok");
                inner.recorder.finish(h);
            }
            let mut fields = vec![
                ("value", Json::from(*value)),
                (
                    "work",
                    Json::Object(vec![("leaves".into(), Json::from(*work))]),
                ),
                ("cached", Json::Bool(false)),
                (
                    "split",
                    Json::Object(vec![
                        ("depth".into(), Json::from(plan.depth)),
                        ("subevals".into(), Json::from(*subevals)),
                        ("naive".into(), Json::Bool(plan.naive)),
                    ]),
                ),
                (
                    "latency_us",
                    Json::from(plan.start.elapsed().as_micros() as u64),
                ),
            ];
            if let Some(h) = &plan.trace {
                fields.push(("trace_id", Json::from(h.trace_id.clone())));
            }
            let line = ok_line(&plan.client_id, fields);
            write_line(&plan.writer, &line);
            RouterMetrics::bump(&inner.metrics.ok);
            inner
                .metrics
                .route_latency
                .record(plan.start.elapsed().as_micros() as u64);
        }
        Outcome::Fail { kind, message } => {
            let code = match kind {
                FailKind::Busy => ErrorCode::Busy,
                FailKind::Timeout => ErrorCode::Timeout,
                FailKind::Internal => ErrorCode::Internal,
            };
            let status = match kind {
                FailKind::Busy => "busy",
                FailKind::Timeout => "timeout",
                FailKind::Internal => "error",
            };
            let mut extra: Vec<(&'static str, Json)> = Vec::new();
            if let Some(h) = &plan.trace {
                if matches!(kind, FailKind::Timeout) {
                    h.event(ROOT_SPAN, "expire", message.to_string(), status);
                }
                h.end(plan.split_span, status);
                h.end(ROOT_SPAN, status);
                inner.recorder.finish(h);
                extra.push(("trace_id", Json::from(h.trace_id.clone())));
            }
            write_line(
                &plan.writer,
                &error_line_with(&plan.client_id, code, message, extra),
            );
            match code {
                ErrorCode::Busy => RouterMetrics::bump(&inner.metrics.shed),
                ErrorCode::Timeout => RouterMetrics::bump(&inner.metrics.expired),
                _ => RouterMetrics::bump(&inner.metrics.forwarded_errors),
            }
        }
    }
    plan.window.release();
}

/// Fail the plan: feed the machine (so late arrivals count as
/// discards) and answer the client.
fn fail_plan(inner: &Inner, plan: &Arc<ActivePlan>, kind: FailKind, message: &str) {
    let fx = plan.machine.lock().unwrap().on_fail(kind, message);
    apply_effects(inner, plan, fx);
}

/// Carry out what a machine event asked for: cutoff counters, new
/// subeval dispatches, or the terminal answer.  Always called with the
/// machine lock released — dispatch does socket writes.
fn apply_effects(inner: &Inner, plan: &Arc<ActivePlan>, fx: Effects) {
    if fx.skipped > 0 {
        inner
            .metrics
            .subevals_skipped_on_cutoff
            .fetch_add(fx.skipped, Ordering::Relaxed);
        if let Some(h) = &plan.trace {
            h.event(
                plan.split_span,
                "skip",
                format!("cutoff skipped {} undispatched sibling(s)", fx.skipped),
                "skipped",
            );
        }
    }
    if fx.discarded > 0 {
        inner
            .metrics
            .subevals_discarded_on_cutoff
            .fetch_add(fx.discarded, Ordering::Relaxed);
        if let Some(h) = &plan.trace {
            h.event(
                plan.split_span,
                "discard",
                format!("cutoff discarded {} in-flight result(s)", fx.discarded),
                "discarded",
            );
        }
    }
    if let Some(outcome) = fx.done {
        // Dispatches staged by the same event are moot: the plan has
        // its answer, and the no-abort rule means nothing to cancel.
        answer_plan(inner, plan, &outcome);
        return;
    }
    for d in fx.dispatch {
        dispatch_new_sub(inner, plan, d);
    }
}

/// Route one fresh subeval by rendezvous hash on its subtree key and
/// put it on the wire.
fn dispatch_new_sub(inner: &Inner, plan: &Arc<ActivePlan>, d: Dispatch) {
    // The routing key deliberately omits the window: re-dispatches
    // re-stamp the window from the live aggregator, and the subtree
    // keeps its replica (cache) affinity across that.
    let key = format!("sub:{}#{}", plan.spec_text, path_text(&d.sub.path));
    let (table, tiers) = routing_view(inner);
    let route = route_for(&key, &table, &tiers);
    let sf = Arc::new(SubFlight {
        plan: Arc::clone(plan),
        level: d.level,
        child: d.child,
        route,
        cursor: AtomicUsize::new(0),
        busy_retries: AtomicU32::new(0),
        span: AtomicU64::new(0),
    });
    send_sub(inner, &sf, &d.sub, "subeval");
}

/// Walk the subflight's route from its cursor until a replica takes
/// the subeval.  Exhausting the route fails the whole plan — a missing
/// child value cannot be folded around.
fn send_sub(inner: &Inner, sf: &Arc<SubFlight>, sub: &SubtreeSpec, kind: &'static str) {
    if sf.plan.answered.load(Ordering::SeqCst) {
        return;
    }
    let reps = inner.members();
    let len = sf.route.len();
    for _ in 0..len {
        let pos = sf.cursor.fetch_add(1, Ordering::SeqCst) % len;
        let replica = &reps[sf.route[pos]];
        if sub_try_send(inner, sf, replica, sub, kind).is_ok() {
            RouterMetrics::bump(&inner.metrics.subevals_dispatched);
            return;
        }
    }
    fail_plan(
        inner,
        &sf.plan,
        FailKind::Busy,
        "no routable replica for subeval",
    );
}

/// Place the subeval on one of `replica`'s connections (round-robin,
/// first with window room and a live writer).  Same pending-before-
/// write ownership rule as [`conn_try_send`].
fn sub_try_send(
    inner: &Inner,
    sf: &Arc<SubFlight>,
    replica: &Replica,
    sub: &SubtreeSpec,
    kind: &'static str,
) -> Result<(), ()> {
    let start = replica.rr.fetch_add(1, Ordering::Relaxed);
    for k in 0..replica.conns.len() {
        let ci = (start + k) % replica.conns.len();
        let conn = &replica.conns[ci];
        let seq = inner.seq.fetch_add(1, Ordering::SeqCst) + 1;
        {
            let mut pending = conn.pending.lock().unwrap();
            if pending.len() >= inner.config.conn_window.max(1) {
                continue;
            }
            pending.insert(seq, PendingReply::Sub(Arc::clone(sf)));
        }
        // The subeval's span: labelled with path, replica, and the
        // (possibly narrowed) alpha/beta window of this copy.
        let span = match &sf.plan.trace {
            Some(h) => {
                let s = h.span(
                    sf.plan.split_span,
                    kind,
                    format!(
                        "{}@{} window=[{},{}]",
                        path_text(&sub.path),
                        replica.addr,
                        sub.alpha,
                        sub.beta
                    ),
                );
                sf.span.store(s, Ordering::SeqCst);
                s
            }
            None => 0,
        };
        let remaining = sf
            .plan
            .deadline
            .saturating_duration_since(Instant::now())
            .as_millis() as u64;
        let mut req = Request::subeval(
            &sf.plan.spec_text,
            &path_text(&sub.path),
            sub.alpha,
            sub.beta,
            Some(remaining.max(1)),
        );
        req.id = Some(seq.to_string());
        req.trace = sf.plan.trace.as_ref().map(|h| TraceContext {
            trace_id: h.trace_id.clone(),
            parent_span: Some(span),
        });
        let line = req.render();
        let wrote = {
            let mut w = conn.writer.lock().unwrap();
            let ok = match w.as_mut() {
                None => false,
                Some(stream) => stream
                    .write_all(line.as_bytes())
                    .and_then(|_| stream.write_all(b"\n"))
                    .is_ok(),
            };
            if !ok {
                *w = None;
            }
            ok
        };
        if wrote {
            ReplicaCounters::bump(&replica.counters.sent);
            return Ok(());
        }
        // If our pending entry is gone, the reader noticed the dead
        // connection first and owns the re-dispatch: report success so
        // the subeval is not placed twice.
        if conn.pending.lock().unwrap().remove(&seq).is_some() {
            if let Some(h) = &sf.plan.trace {
                if span != 0 {
                    h.end(span, "transport");
                }
            }
            ReplicaCounters::bump(&replica.counters.transport);
            continue;
        }
        return Ok(());
    }
    Err(())
}

/// A subeval bounced off a busy replica: re-stamp the window from the
/// live aggregator and walk on down the hash order, bounded by the
/// retry budget.
fn retry_sub(inner: &Inner, sf: &Arc<SubFlight>) {
    let n = sf.busy_retries.fetch_add(1, Ordering::SeqCst) + 1;
    if n > inner.config.retries {
        fail_plan(inner, &sf.plan, FailKind::Busy, "subeval retries exhausted");
        return;
    }
    let Some(sub) = sf
        .plan
        .machine
        .lock()
        .unwrap()
        .redispatch(sf.level, sf.child)
    else {
        // The level settled while this copy bounced: its value no
        // longer matters.  Dropping it here IS the pre-emption — no
        // abort message, nothing to clean up.
        return;
    };
    RouterMetrics::bump(&inner.metrics.subevals_retried);
    send_sub(inner, sf, &sub, "redispatch");
}

/// A subeval's connection died with it in flight: re-dispatch,
/// unbudgeted — the route walk is how a live replica is found.
fn redispatch_sub(inner: &Inner, sf: &Arc<SubFlight>) {
    if sf.plan.answered.load(Ordering::SeqCst) {
        return;
    }
    let Some(sub) = sf
        .plan
        .machine
        .lock()
        .unwrap()
        .redispatch(sf.level, sf.child)
    else {
        return;
    };
    RouterMetrics::bump(&inner.metrics.subevals_retried);
    send_sub(inner, sf, &sub, "redispatch");
}

/// An upstream reply matched a subeval: feed the machine and carry out
/// what it wants.
fn handle_sub_reply(inner: &Inner, replica: &Replica, sf: &Arc<SubFlight>, resp: &Response) {
    if let Some(h) = &sf.plan.trace {
        let span = sf.span.load(Ordering::SeqCst);
        if span != 0 {
            let status = if resp.ok {
                "ok"
            } else if resp.status == 429 || resp.status == 503 {
                "busy"
            } else {
                "error"
            };
            h.end_with(span, status, span_detail_from(resp, &replica.addr));
        }
    }
    if resp.ok {
        ReplicaCounters::bump(&replica.counters.ok);
        let Some(value) = resp.value() else {
            fail_plan(
                inner,
                &sf.plan,
                FailKind::Internal,
                "subeval reply carried no value",
            );
            return;
        };
        let leaves = resp.leaves().unwrap_or(0);
        let fx = sf
            .plan
            .machine
            .lock()
            .unwrap()
            .on_value(sf.level, sf.child, value, leaves);
        apply_effects(inner, &sf.plan, fx);
    } else if resp.status == 429 || resp.status == 503 {
        ReplicaCounters::bump(&replica.counters.busy);
        retry_sub(inner, sf);
    } else {
        // A deterministic upstream failure fails the plan: its child
        // value is a hole the aggregation cannot fold around.
        ReplicaCounters::bump(&replica.counters.errors);
        let kind = if resp.status == 408 {
            FailKind::Timeout
        } else {
            FailKind::Internal
        };
        let msg = resp.error.as_deref().unwrap_or("upstream error");
        fail_plan(inner, &sf.plan, kind, msg);
    }
}

/// Per-plan watchdog: split plans are not paced by the relay pacer, so
/// a thread polls until the plan answers, or fails it with `timeout`
/// at the deadline (plus the same grace the pacer gives relays).
fn spawn_plan_watchdog(inner: &Arc<Inner>, plan: &Arc<ActivePlan>) {
    let inner = Arc::clone(inner);
    let plan = Arc::clone(plan);
    let _ = std::thread::Builder::new()
        .name("gt-router-split".into())
        .spawn(move || {
            let expiry = plan.deadline + EXPIRE_GRACE;
            while !plan.answered.load(Ordering::SeqCst) {
                if Instant::now() >= expiry {
                    fail_plan(
                        &inner,
                        &plan,
                        FailKind::Timeout,
                        "deadline expired in router",
                    );
                    return;
                }
                std::thread::sleep(POLL_INTERVAL);
            }
        });
}

/// Decide whether this eval splits across the fleet.  Returns `true`
/// if the request was consumed (plan launched, or rejected with an
/// error); `false` to fall through to whole-eval relaying.
fn start_split_plan(
    inner: &Arc<Inner>,
    writer: &Arc<Mutex<TcpStream>>,
    window: &Arc<ClientWindow>,
    req: &Request,
    spec_c: &str,
) -> bool {
    let Some(threshold) = inner.config.split.cost_threshold else {
        return false;
    };
    // Explicit alpha/beta on an eval seed the plan's root window
    // (full when absent).
    let root = match workload::validate_subeval(spec_c, "", req.alpha, req.beta) {
        Ok(v) => v.sub,
        Err(e) => {
            if req.alpha.is_some() || req.beta.is_some() {
                RouterMetrics::bump(&inner.metrics.bad_request);
                write_line(
                    writer,
                    &error_line_with(&req.id, ErrorCode::BadRequest, &e, Vec::new()),
                );
                return true;
            }
            // Games and other non-decomposable workloads relay whole.
            return false;
        }
    };
    let shape = match plan_levels(&root, threshold, inner.config.split.max_depth) {
        Ok(Some(shape)) => shape,
        // Too cheap, too narrow, or (unreachably, post-validate) a
        // build error: relay whole.
        _ => return false,
    };
    window.acquire(inner.config.client_window);
    let deadline_ms = req
        .deadline_ms
        .unwrap_or(inner.config.default_deadline_ms)
        .max(1);
    let now = Instant::now();
    let (machine, fx) = SplitMachine::new(shape, &inner.config.split);
    let depth = machine.depth();
    let trace = inner.recorder.begin(req.trace.as_ref(), spec_c);
    let split_span = match &trace {
        Some(h) => h.span(
            ROOT_SPAN,
            "split",
            format!(
                "depth={} naive={} threshold={}",
                depth, inner.config.split.naive, threshold
            ),
        ),
        None => 0,
    };
    let plan = Arc::new(ActivePlan {
        client_id: req.id.clone(),
        spec_text: spec_c.to_string(),
        machine: Mutex::new(machine),
        answered: AtomicBool::new(false),
        start: now,
        deadline: now + Duration::from_millis(deadline_ms),
        depth,
        naive: inner.config.split.naive,
        writer: Arc::clone(writer),
        window: Arc::clone(window),
        trace,
        split_span,
    });
    RouterMetrics::bump(&inner.metrics.splits_total);
    inner.metrics.record_split_depth(depth as u64);
    spawn_plan_watchdog(inner, &plan);
    apply_effects(inner, &plan, fx);
    true
}

// ---------------------------------------------------------------------------
// Upstream connections.
// ---------------------------------------------------------------------------

fn connect_to(addr: &str, timeout: Duration) -> std::io::Result<TcpStream> {
    let mut last = None;
    for sa in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&sa, timeout) {
            Ok(s) => return Ok(s),
            Err(e) => last = Some(e),
        }
    }
    Err(last.unwrap_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::AddrNotAvailable,
            "address resolved to nothing",
        )
    }))
}

/// A connection died: orphan every pending request and re-dispatch the
/// ones with no other copy still racing.
fn conn_died(inner: &Inner, replica: &Replica, ci: usize) {
    let conn = &replica.conns[ci];
    *conn.writer.lock().unwrap() = None;
    let orphans: Vec<(u64, PendingReply)> = conn.pending.lock().unwrap().drain().collect();
    for (seq, entry) in orphans {
        ReplicaCounters::bump(&replica.counters.transport);
        match entry {
            PendingReply::Whole(relay) => {
                if let Some(e) = relay.remove_outstanding(seq) {
                    if let Some(h) = &relay.trace {
                        if e.span != 0 {
                            h.end(e.span, "lost");
                        }
                    }
                }
                if relay.answered.load(Ordering::SeqCst) {
                    continue;
                }
                if relay.outstanding.lock().unwrap().is_empty() {
                    dispatch_attempt(inner, &relay, AttemptKind::Retry);
                }
            }
            PendingReply::Sub(sf) => {
                if let Some(h) = &sf.plan.trace {
                    let span = sf.span.load(Ordering::SeqCst);
                    if span != 0 {
                        h.end(span, "lost");
                    }
                }
                redispatch_sub(inner, &sf);
            }
        }
    }
}

fn handle_reply(inner: &Inner, replica: &Replica, ci: usize, line: &str) {
    if line.is_empty() {
        return;
    }
    let Ok(resp) = Response::parse(line) else {
        RouterMetrics::bump(&inner.metrics.stale_replies);
        return;
    };
    let Some(seq) = resp.id.as_deref().and_then(|s| s.parse::<u64>().ok()) else {
        RouterMetrics::bump(&inner.metrics.stale_replies);
        return;
    };
    let Some(entry) = replica.conns[ci].pending.lock().unwrap().remove(&seq) else {
        RouterMetrics::bump(&inner.metrics.stale_replies);
        return;
    };
    let relay = match entry {
        PendingReply::Whole(relay) => relay,
        PendingReply::Sub(sf) => {
            handle_sub_reply(inner, replica, &sf, &resp);
            return;
        }
    };
    let (is_hedge, span) = relay
        .remove_outstanding(seq)
        .map(|e| (e.is_hedge, e.span))
        .unwrap_or((false, 0));
    if resp.ok {
        ReplicaCounters::bump(&replica.counters.ok);
        settle_forward(inner, &relay, replica, &resp, is_hedge, span);
    } else if resp.status == 429 || resp.status == 503 {
        // Retryable: the next replica in hash order gets its chance.
        ReplicaCounters::bump(&replica.counters.busy);
        if let Some(h) = &relay.trace {
            if span != 0 {
                h.end_with(span, "busy", span_detail_from(&resp, &replica.addr));
            }
        }
        schedule_retry(inner, &relay, resp.retry_after_ms());
    } else {
        // Deterministic failures (bad request, internal, timeout)
        // would fail identically elsewhere: forward verbatim.
        ReplicaCounters::bump(&replica.counters.errors);
        settle_forward(inner, &relay, replica, &resp, is_hedge, span);
    }
}

fn upstream_loop(inner: Arc<Inner>, replica: Arc<Replica>, ci: usize) {
    let timeout = Duration::from_millis(inner.config.probe_timeout_ms.max(10));
    while !inner.stop_upstream.load(Ordering::SeqCst) {
        let stream = match connect_to(&replica.addr, timeout) {
            Ok(s) => s,
            Err(_) => {
                sleep_checking(RECONNECT_DELAY, &inner.stop_upstream);
                continue;
            }
        };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
        let Ok(read_half) = stream.try_clone() else {
            continue;
        };
        *replica.conns[ci].writer.lock().unwrap() = Some(stream);
        let mut reader = BufReader::new(read_half);
        let mut line = String::new();
        loop {
            if inner.stop_upstream.load(Ordering::SeqCst) {
                break;
            }
            match reader.read_line(&mut line) {
                Ok(0) => break,
                Ok(_) => {
                    handle_reply(&inner, &replica, ci, line.trim());
                    line.clear();
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    // Poll tick; a partial line stays buffered in
                    // `line` and completes on the next read.
                    continue;
                }
                Err(_) => break,
            }
        }
        conn_died(&inner, &replica, ci);
        if !inner.stop_upstream.load(Ordering::SeqCst) {
            sleep_checking(RECONNECT_DELAY, &inner.stop_upstream);
        }
    }
    // Final sweep: by the time stop_upstream is set every relay has
    // settled, so this only clears the writer.
    conn_died(&inner, &replica, ci);
}

fn sleep_checking(total: Duration, stop: &AtomicBool) {
    let mut slept = Duration::ZERO;
    while slept < total && !stop.load(Ordering::SeqCst) {
        let step = POLL_INTERVAL.min(total - slept);
        std::thread::sleep(step);
        slept += step;
    }
}

// ---------------------------------------------------------------------------
// Health probing.
// ---------------------------------------------------------------------------

/// One probe round trip on a fresh connection: `{"op":"health"}`,
/// with connect and read bounded by the probe timeout.  A replica is
/// up iff it answers ok and is not draining — a draining replica still
/// evaluates, but routing new work at it only buys 503s later.
fn probe_once(addr: &str, timeout: Duration) -> bool {
    let Ok(mut stream) = connect_to(addr, timeout) else {
        return false;
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(timeout));
    if stream.write_all(b"{\"op\":\"health\"}\n").is_err() {
        return false;
    }
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(n) if n > 0 => match Response::parse(line.trim()) {
            Ok(resp) => {
                let draining = resp
                    .body
                    .get("draining")
                    .and_then(Json::as_bool)
                    .unwrap_or(false);
                resp.ok && !draining
            }
            Err(_) => false,
        },
        _ => false,
    }
}

fn probe_loop(inner: Arc<Inner>) {
    let interval = Duration::from_millis(inner.config.probe_interval_ms.max(10));
    let timeout = Duration::from_millis(inner.config.probe_timeout_ms.max(10));
    while !inner.stop_upstream.load(Ordering::SeqCst) {
        // Re-snapshot each round so members that joined since the
        // last round are probed too.
        let reps = inner.members();
        for replica in reps.iter() {
            if inner.stop_upstream.load(Ordering::SeqCst) {
                break;
            }
            let up = probe_once(&replica.addr, timeout);
            replica
                .last_probe_us
                .store(inner.metrics.uptime_us(), Ordering::Relaxed);
            let now = Instant::now();
            let mut h = replica.health.lock().unwrap();
            h.tick(now);
            if up {
                h.on_success();
            } else {
                h.on_failure(now);
                ReplicaCounters::bump(&replica.counters.probe_failures);
            }
        }
        sleep_checking(interval, &inner.stop_upstream);
    }
}

// ---------------------------------------------------------------------------
// Pacer thread.
// ---------------------------------------------------------------------------

fn pacer_loop(inner: Arc<Inner>) {
    loop {
        let entry = {
            let mut heap = inner.pacer.heap.lock().unwrap();
            loop {
                if inner.pacer.stop.load(Ordering::SeqCst) {
                    return;
                }
                let now = Instant::now();
                let wait = match heap.peek() {
                    None => POLL_INTERVAL,
                    Some(top) if top.due > now => (top.due - now).min(POLL_INTERVAL),
                    Some(_) => break heap.pop().unwrap(),
                };
                let (h, _) = inner.pacer.cv.wait_timeout(heap, wait).unwrap();
                heap = h;
            }
        };
        let Some(relay) = entry.relay.upgrade() else {
            continue;
        };
        if relay.answered.load(Ordering::SeqCst) {
            continue;
        }
        match entry.action {
            Action::Retry => dispatch_attempt(&inner, &relay, AttemptKind::Retry),
            Action::Hedge => {
                if !relay.hedged.swap(true, Ordering::SeqCst) {
                    RouterMetrics::bump(&inner.metrics.hedges);
                    dispatch_attempt(&inner, &relay, AttemptKind::Hedge);
                }
            }
            Action::Expire => settle_local(
                &inner,
                &relay,
                ErrorCode::Timeout,
                "deadline expired in router",
                Vec::new(),
            ),
        }
    }
}

// ---------------------------------------------------------------------------
// Client connections.
// ---------------------------------------------------------------------------

fn route_eval(
    inner: &Arc<Inner>,
    writer: &Arc<Mutex<TcpStream>>,
    window: &Arc<ClientWindow>,
    req: Request,
) {
    RouterMetrics::bump(&inner.metrics.requests);
    if inner.draining.load(Ordering::SeqCst) {
        RouterMetrics::bump(&inner.metrics.draining);
        write_line(
            writer,
            &error_line_with(
                &req.id,
                ErrorCode::Draining,
                "router is draining",
                Vec::new(),
            ),
        );
        return;
    }
    let spec_text = req.spec.as_deref().unwrap_or("");
    let algo_text = req.algo.as_deref().unwrap_or(DEFAULT_ALGO);
    let validated = match workload::validate(spec_text, algo_text) {
        Ok(v) => v,
        Err(e) => {
            RouterMetrics::bump(&inner.metrics.bad_request);
            write_line(
                writer,
                &error_line_with(&req.id, ErrorCode::BadRequest, &e, Vec::new()),
            );
            return;
        }
    };
    let key = validated.cache_key;
    // The canonical key is "spec|algo"; send those exact strings
    // upstream so the replica's cache key matches the routing key.
    let (spec_c, algo_c) = key.split_once('|').unwrap_or((spec_text, algo_text));
    // Above the configured cost threshold the eval is not relayed at
    // all: the split planner scatters subevals across the fleet and
    // the router itself aggregates the answer.
    if start_split_plan(inner, writer, window, &req, spec_c) {
        return;
    }
    let (table, tiers) = routing_view(inner);
    let route = route_for(&key, &table, &tiers);
    let trace = inner.recorder.begin(req.trace.as_ref(), &key);
    if let Some(h) = &trace {
        record_route_span(h, &route, &table, &tiers);
    }
    window.acquire(inner.config.client_window);
    let deadline_ms = req
        .deadline_ms
        .unwrap_or(inner.config.default_deadline_ms)
        .max(1);
    let now = Instant::now();
    let relay = Arc::new(Relay {
        client_id: req.id,
        op: Op::Eval,
        spec: spec_c.to_string(),
        algo: algo_c.to_string(),
        path: None,
        alpha: None,
        beta: None,
        tenant: req.tenant.clone(),
        start: now,
        deadline: now + Duration::from_millis(deadline_ms),
        route,
        cursor: AtomicUsize::new(0),
        retries: AtomicU32::new(0),
        hedged: AtomicBool::new(false),
        answered: AtomicBool::new(false),
        outstanding: Mutex::new(Vec::new()),
        writer: Arc::clone(writer),
        window: Arc::clone(window),
        trace,
    });
    inner
        .pacer
        .schedule(relay.deadline + EXPIRE_GRACE, &relay, Action::Expire);
    if let Some(hedge_ms) = inner.config.hedge_ms {
        if relay.route.len() > 1 {
            inner
                .pacer
                .schedule(now + Duration::from_millis(hedge_ms), &relay, Action::Hedge);
        }
    }
    dispatch_attempt(inner, &relay, AttemptKind::Initial);
}

/// Relay a client-issued `subeval` to the fleet, with the same
/// failover/hedge/expiry machinery as a whole eval.  Routed by the
/// window-free subtree key so a client probing a subtree lands on the
/// same replica the split planner would use.
fn route_subeval(
    inner: &Arc<Inner>,
    writer: &Arc<Mutex<TcpStream>>,
    window: &Arc<ClientWindow>,
    req: Request,
) {
    RouterMetrics::bump(&inner.metrics.requests);
    if inner.draining.load(Ordering::SeqCst) {
        RouterMetrics::bump(&inner.metrics.draining);
        write_line(
            writer,
            &error_line_with(
                &req.id,
                ErrorCode::Draining,
                "router is draining",
                Vec::new(),
            ),
        );
        return;
    }
    let spec_text = req.spec.as_deref().unwrap_or("");
    let path_str = req.path.as_deref().unwrap_or("");
    let sub = match workload::validate_subeval(spec_text, path_str, req.alpha, req.beta) {
        Ok(v) => v.sub,
        Err(e) => {
            RouterMetrics::bump(&inner.metrics.bad_request);
            write_line(
                writer,
                &error_line_with(&req.id, ErrorCode::BadRequest, &e, Vec::new()),
            );
            return;
        }
    };
    // `render()` is "spec#path#window"; the leading segment is the
    // canonical spec text.
    let rendered = sub.render();
    let spec_c = rendered.split('#').next().unwrap_or(spec_text).to_string();
    let key = format!("sub:{}#{}", spec_c, path_text(&sub.path));
    let (table, tiers) = routing_view(inner);
    let route = route_for(&key, &table, &tiers);
    let trace = inner.recorder.begin(req.trace.as_ref(), &key);
    if let Some(h) = &trace {
        record_route_span(h, &route, &table, &tiers);
    }
    window.acquire(inner.config.client_window);
    let deadline_ms = req
        .deadline_ms
        .unwrap_or(inner.config.default_deadline_ms)
        .max(1);
    let now = Instant::now();
    let relay = Arc::new(Relay {
        client_id: req.id,
        op: Op::Subeval,
        spec: spec_c,
        algo: String::new(),
        path: Some(path_text(&sub.path)).filter(|p| !p.is_empty()),
        alpha: (sub.alpha != Value::MIN).then_some(sub.alpha),
        beta: (sub.beta != Value::MAX).then_some(sub.beta),
        tenant: req.tenant.clone(),
        start: now,
        deadline: now + Duration::from_millis(deadline_ms),
        route,
        cursor: AtomicUsize::new(0),
        retries: AtomicU32::new(0),
        hedged: AtomicBool::new(false),
        answered: AtomicBool::new(false),
        outstanding: Mutex::new(Vec::new()),
        writer: Arc::clone(writer),
        window: Arc::clone(window),
        trace,
    });
    inner
        .pacer
        .schedule(relay.deadline + EXPIRE_GRACE, &relay, Action::Expire);
    if let Some(hedge_ms) = inner.config.hedge_ms {
        if relay.route.len() > 1 {
            inner
                .pacer
                .schedule(now + Duration::from_millis(hedge_ms), &relay, Action::Hedge);
        }
    }
    dispatch_attempt(inner, &relay, AttemptKind::Initial);
}

// ---------------------------------------------------------------------------
// Membership: the `join` control verb.
// ---------------------------------------------------------------------------

/// Rebuild the routing table from the member list.  Caller holds the
/// membership lock.
fn rebuild_table(inner: &Inner) {
    let reps = inner.members();
    inner.table.replace(
        reps.iter()
            .map(|r| (r.addr.clone(), r.weight.load(Ordering::Relaxed)))
            .collect(),
    );
}

/// Start the upstream reader threads for a member admitted at runtime
/// (the static pool's threads are spawned in [`Router::start`]).
fn spawn_member_threads(inner: &Arc<Inner>, replica: &Arc<Replica>) {
    let mut handles = inner.joined_threads.lock().unwrap();
    for ci in 0..replica.conns.len() {
        let inner2 = Arc::clone(inner);
        let replica2 = Arc::clone(replica);
        if let Ok(h) = std::thread::Builder::new()
            .name(format!("gt-router-up-{}-{}", replica.idx, ci))
            .spawn(move || upstream_loop(inner2, replica2, ci))
        {
            handles.push(h);
        }
    }
}

/// Record a membership change as its own queryable trace.  The
/// synthetic context pins the trace past sampling, so every admit /
/// refresh / reweight leaves a span tree (when tracing is on at all).
fn record_membership_trace(inner: &Inner, action: JoinAction, addr: &str, weight: u64, gen: u64) {
    let ctx = TraceContext {
        trace_id: format!("member-{}-v{}", addr, inner.table.version()),
        parent_span: None,
    };
    if let Some(h) = inner.recorder.begin(Some(&ctx), "membership") {
        let label = format!("{action:?} {addr} weight={weight} generation={gen}");
        h.event(ROOT_SPAN, "member", label, "ok");
        h.end(ROOT_SPAN, "ok");
        inner.recorder.finish(&h);
    }
}

/// Apply one `join` announcement under the membership lock and answer
/// the announcer.  See [`crate::membership`] for the protocol.
fn handle_join(inner: &Arc<Inner>, writer: &Arc<Mutex<TcpStream>>, req: &Request) {
    let addr = req.addr.clone().unwrap_or_default();
    let weight = req.weight.unwrap_or(membership::DEFAULT_WEIGHT);
    let generation = req.generation.unwrap_or(0);
    let _guard = inner.member_lock.lock().unwrap();
    let reps = inner.members();
    let existing = reps.iter().find(|r| r.addr == addr);
    let action = membership::classify_join(
        existing.map(|r| {
            (
                r.weight.load(Ordering::Relaxed),
                r.generation.load(Ordering::Relaxed),
            )
        }),
        weight,
        generation,
    );
    inner.metrics.members.record(action);
    match action {
        JoinAction::Admit => {
            let replica = Arc::new(Replica::new(
                reps.len(),
                addr.clone(),
                inner.config.pool,
                inner.config.health.clone(),
                weight,
            ));
            replica.generation.store(generation, Ordering::Relaxed);
            let mut grown: Vec<Arc<Replica>> = reps.as_ref().clone();
            grown.push(Arc::clone(&replica));
            // List first, then table: `routing_view` relies on the
            // member list never being the shorter of the two.
            *inner.replicas.write().unwrap() = Arc::new(grown);
            rebuild_table(inner);
            spawn_member_threads(inner, &replica);
        }
        JoinAction::Refresh => {
            let r = existing.expect("refresh implies a known member");
            r.weight.store(weight, Ordering::Relaxed);
            r.generation.store(generation, Ordering::Relaxed);
            rebuild_table(inner);
        }
        JoinAction::Reweight => {
            let r = existing.expect("reweight implies a known member");
            r.weight.store(weight, Ordering::Relaxed);
            rebuild_table(inner);
        }
        JoinAction::Duplicate | JoinAction::Stale => {}
    }
    if !matches!(action, JoinAction::Duplicate | JoinAction::Stale) {
        record_membership_trace(inner, action, &addr, weight, generation);
    }
    let action_name = match action {
        JoinAction::Admit => "admitted",
        JoinAction::Refresh => "refreshed",
        JoinAction::Reweight => "reweighted",
        JoinAction::Duplicate => "duplicate",
        JoinAction::Stale => "stale",
    };
    write_line(
        writer,
        &ok_line(
            &req.id,
            vec![
                ("member", Json::from(addr)),
                ("action", Json::from(action_name)),
                ("members", Json::from(inner.table.len())),
                ("membership_version", Json::from(inner.table.version())),
            ],
        ),
    );
}

fn handle_client_line(
    inner: &Arc<Inner>,
    writer: &Arc<Mutex<TcpStream>>,
    window: &Arc<ClientWindow>,
    line: &str,
) {
    if line.is_empty() {
        return;
    }
    if line.len() > MAX_LINE_BYTES {
        RouterMetrics::bump(&inner.metrics.bad_request);
        write_line(
            writer,
            &error_line_with(
                &None,
                ErrorCode::BadRequest,
                "request line too long",
                Vec::new(),
            ),
        );
        return;
    }
    let req = match Request::parse(line) {
        Ok(r) => r,
        Err(e) => {
            RouterMetrics::bump(&inner.metrics.bad_request);
            write_line(
                writer,
                &error_line_with(&None, ErrorCode::BadRequest, &e, Vec::new()),
            );
            return;
        }
    };
    match req.op {
        Op::Eval => route_eval(inner, writer, window, req),
        Op::Subeval => route_subeval(inner, writer, window, req),
        Op::Ping => write_line(
            writer,
            &ok_line(
                &req.id,
                vec![
                    ("version", Json::from(PROTOCOL_VERSION)),
                    ("role", Json::from("router")),
                    ("replicas", Json::from(inner.members().len())),
                ],
            ),
        ),
        Op::Health => {
            let reps = inner.members();
            let routable = reps.iter().filter(|r| r.tier() < 3).count();
            let members: Vec<Json> = reps
                .iter()
                .map(|r| {
                    Json::obj([
                        ("addr", Json::from(r.addr.as_str())),
                        ("weight", Json::from(r.weight.load(Ordering::Relaxed))),
                        (
                            "generation",
                            Json::from(r.generation.load(Ordering::Relaxed)),
                        ),
                        ("tier", Json::from(u64::from(r.tier()))),
                    ])
                })
                .collect();
            write_line(
                writer,
                &ok_line(
                    &req.id,
                    vec![
                        (
                            "uptime_s",
                            Json::from(inner.metrics.uptime_us() as f64 / 1e6),
                        ),
                        ("replicas", Json::from(reps.len())),
                        ("routable", Json::from(routable)),
                        ("membership_version", Json::from(inner.table.version())),
                        ("members", Json::Array(members)),
                        (
                            "draining",
                            Json::Bool(inner.draining.load(Ordering::SeqCst)),
                        ),
                    ],
                ),
            );
        }
        Op::Join => handle_join(inner, writer, &req),
        Op::Cachepull => {
            RouterMetrics::bump(&inner.metrics.bad_request);
            write_line(
                writer,
                &error_line_with(
                    &req.id,
                    ErrorCode::BadRequest,
                    "cachepull is a replica verb; ask a gt-serve member directly",
                    Vec::new(),
                ),
            );
        }
        Op::Stats => write_line(
            writer,
            &ok_line(&req.id, vec![("stats", snapshot_of(inner).to_json())]),
        ),
        Op::Trace => {
            if !inner.recorder.enabled() {
                RouterMetrics::bump(&inner.metrics.bad_request);
                write_line(
                    writer,
                    &error_line_with(
                        &req.id,
                        ErrorCode::BadRequest,
                        "tracing is disabled (--trace-sample 0)",
                        Vec::new(),
                    ),
                );
            } else if let Some(ctx) = &req.trace {
                // Query one assembled tree by id (active or finished).
                match inner.recorder.lookup(&ctx.trace_id) {
                    Some(h) => write_line(writer, &ok_line(&req.id, vec![("trace", h.to_json())])),
                    None => {
                        RouterMetrics::bump(&inner.metrics.bad_request);
                        write_line(
                            writer,
                            &error_line_with(
                                &req.id,
                                ErrorCode::BadRequest,
                                "unknown trace_id (expired from the ring?)",
                                Vec::new(),
                            ),
                        );
                    }
                }
            } else {
                let n = req.n.unwrap_or(16).min(1024) as usize;
                let traces: Vec<Json> = inner
                    .recorder
                    .latest(n)
                    .iter()
                    .map(|h| h.to_json())
                    .collect();
                write_line(
                    writer,
                    &ok_line(&req.id, vec![("traces", Json::Array(traces))]),
                );
            }
        }
        Op::Shutdown => {
            inner.draining.store(true, Ordering::SeqCst);
            write_line(
                writer,
                &ok_line(&req.id, vec![("draining", Json::Bool(true))]),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Client-side I/O: a fixed pool of readiness-driven threads.
//
// The router used to spawn one `gt-router-conn` thread per client; a
// fleet of mostly-idle connections (the c10k shape gt-serve now
// handles with its own event loop) would have meant a thread census
// proportional to the connection count.  Instead the accept thread
// hands each accepted socket to one of CLIENT_IO_THREADS event-loop
// threads round-robin; each thread multiplexes its connections with
// the same `gt_serve::io` poller/line-reader machinery the replicas
// use.  Client sockets stay *blocking*: a read is only issued after
// the poller reports readiness (a ready TCP socket returns what it
// has without blocking, and a short read timeout backstops spurious
// wakeups), so `write_line` — called from upstream reader threads as
// replies land — keeps its simple blocking discipline.
//
// Flow control is the same window as before, made non-blocking: the
// feed closure defers a request line (leaves it buffered, unconsumed)
// while the connection's window is full, and retries on the next poll
// tick.  Only the connection's own io thread acquires slots, so the
// pre-check guarantees `ClientWindow::acquire` never waits.
// ---------------------------------------------------------------------------

/// Client-io pool size.  Two threads soak thousands of mostly-idle
/// connections; the heavy lifting stays in the upstream pools.
const CLIENT_IO_THREADS: usize = 2;

/// Token for a client-io thread's waker; connections start above it.
const CLIENT_TOKEN_BASE: u64 = 1;

/// Accepted sockets in flight from the accept thread to an io thread.
struct ClientIoHandle {
    injector: Mutex<Vec<TcpStream>>,
    waker: Waker,
}

/// One multiplexed client connection.
struct ClientConn {
    stream: TcpStream,
    writer: Arc<Mutex<TcpStream>>,
    window: Arc<ClientWindow>,
    reader: LineReader,
    peer_closed: bool,
}

fn client_io_loop(inner: Arc<Inner>, handle: Arc<ClientIoHandle>) {
    let Ok(poller) = Poller::new() else { return };
    if poller.add(handle.waker.read_fd(), 0, true, false).is_err() {
        return;
    }
    let mut conns: Vec<Option<ClientConn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut pool = BufferPool::new(64, MAX_LINE_BYTES);
    let mut scratch = vec![0u8; 16 * 1024];
    let mut events = Vec::new();
    loop {
        let _ = poller.wait(&mut events, POLL_INTERVAL.as_millis() as i32);
        let draining = inner.draining.load(Ordering::SeqCst);
        handle.waker.drain();
        let fresh = std::mem::take(&mut *handle.injector.lock().unwrap());
        for stream in fresh {
            if draining {
                continue; // raced the drain; never registered
            }
            let _ = stream.set_nodelay(true);
            // Reads are readiness-gated; the timeout only bounds the
            // rare spurious wakeup so one socket cannot park the loop.
            let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
            let Ok(write_half) = stream.try_clone() else {
                continue;
            };
            let conn = ClientConn {
                stream,
                writer: Arc::new(Mutex::new(write_half)),
                window: Arc::new(ClientWindow::new()),
                reader: LineReader::new(MAX_LINE_BYTES),
                peer_closed: false,
            };
            let idx = free.pop().unwrap_or_else(|| {
                conns.push(None);
                conns.len() - 1
            });
            use std::os::unix::io::AsRawFd;
            if poller
                .add(
                    conn.stream.as_raw_fd(),
                    CLIENT_TOKEN_BASE + idx as u64,
                    true,
                    false,
                )
                .is_err()
            {
                free.push(idx);
                continue;
            }
            conns[idx] = Some(conn);
        }
        for ev in events.drain(..) {
            if ev.token < CLIENT_TOKEN_BASE {
                continue; // waker, already drained
            }
            let idx = (ev.token - CLIENT_TOKEN_BASE) as usize;
            let Some(conn) = conns.get_mut(idx).and_then(Option::as_mut) else {
                continue; // stale event for a retired slot
            };
            if ev.readable && !draining {
                match conn.stream.read(&mut scratch) {
                    Ok(0) => conn.peer_closed = true,
                    Ok(n) => {
                        if !feed_client(&inner, conn, &scratch[..n], &mut pool) {
                            conn.peer_closed = true;
                        }
                    }
                    Err(e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) => {}
                    Err(_) => conn.peer_closed = true,
                }
            } else if ev.hangup {
                conn.peer_closed = true;
            }
        }
        // Tick: resume lines deferred on a full window, then retire
        // connections that are finished.  A closed or draining
        // connection lingers until its window drains so every
        // accepted eval is answered before the socket goes away.
        for idx in 0..conns.len() {
            let Some(conn) = conns.get_mut(idx).and_then(Option::as_mut) else {
                continue;
            };
            if !conn.peer_closed
                && !draining
                && conn.reader.has_carry()
                && !feed_client(&inner, conn, &[], &mut pool)
            {
                conn.peer_closed = true;
            }
            if (conn.peer_closed || draining) && conn.window.in_flight() == 0 {
                let conn = conns[idx].take().unwrap();
                use std::os::unix::io::AsRawFd;
                let _ = poller.delete(conn.stream.as_raw_fd());
                free.push(idx);
            }
        }
        if draining && conns.iter().all(Option::is_none) {
            return;
        }
    }
}

/// Feed bytes from (or buffered for) a client connection through its
/// line reader.  Returns `false` when the connection should close
/// (over-long or undecodable request line).
fn feed_client(
    inner: &Arc<Inner>,
    conn: &mut ClientConn,
    data: &[u8],
    pool: &mut BufferPool,
) -> bool {
    let ClientConn {
        writer,
        window,
        reader,
        ..
    } = conn;
    let limit = inner.config.client_window;
    let mut bad = false;
    let fed = reader.feed(data, pool, |line| {
        if window.in_flight() >= limit.max(1) {
            return LineAction::Defer;
        }
        let Ok(text) = std::str::from_utf8(line) else {
            RouterMetrics::bump(&inner.metrics.bad_request);
            write_line(
                writer,
                &error_line_with(
                    &None,
                    ErrorCode::BadRequest,
                    "request line is not UTF-8",
                    Vec::new(),
                ),
            );
            bad = true;
            return LineAction::Stop;
        };
        handle_client_line(inner, writer, window, text.trim());
        LineAction::Continue
    });
    reader.release(pool);
    match fed {
        Ok(_) => !bad,
        Err(_) => {
            RouterMetrics::bump(&inner.metrics.bad_request);
            write_line(
                writer,
                &error_line_with(
                    &None,
                    ErrorCode::BadRequest,
                    "request line too long",
                    Vec::new(),
                ),
            );
            false
        }
    }
}

fn accept_loop(inner: Arc<Inner>, listener: TcpListener, io: Vec<Arc<ClientIoHandle>>) {
    let mut next = 0usize;
    loop {
        if inner.draining.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                RouterMetrics::bump(&inner.metrics.connections);
                let target = &io[next % io.len()];
                next = next.wrapping_add(1);
                target.injector.lock().unwrap().push(stream);
                target.waker.wake();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn snapshot_of(inner: &Inner) -> RouterSnapshot {
    let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
    let now_us = inner.metrics.uptime_us();
    let rows = inner
        .members()
        .iter()
        .map(|r| {
            let (state, ejects) = {
                let h = r.health.lock().unwrap();
                (h.state(), h.ejects)
            };
            let probed_at = r.last_probe_us.load(Ordering::Relaxed);
            let last_probe_age_s = if probed_at == u64::MAX {
                None
            } else {
                Some(now_us.saturating_sub(probed_at) as f64 / 1e6)
            };
            ReplicaSnapshot {
                addr: r.addr.clone(),
                state: state.name(),
                tier: state.tier(),
                weight: r.weight.load(Ordering::Relaxed),
                generation: r.generation.load(Ordering::Relaxed),
                ejects,
                sent: load(&r.counters.sent),
                ok: load(&r.counters.ok),
                busy: load(&r.counters.busy),
                errors: load(&r.counters.errors),
                transport: load(&r.counters.transport),
                probe_failures: load(&r.counters.probe_failures),
                inflight: r.inflight(),
                last_probe_age_s,
            }
        })
        .collect();
    inner
        .metrics
        .snapshot(rows, inner.recorder.stats(), inner.table.version())
}

// ---------------------------------------------------------------------------
// The Router handle.
// ---------------------------------------------------------------------------

/// A running router: client listener, upstream pools, prober, pacer,
/// and any replicas it spawned itself.
pub struct Router {
    inner: Arc<Inner>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    client_io: Vec<Arc<ClientIoHandle>>,
    client_io_threads: Vec<JoinHandle<()>>,
    pacer_thread: Option<JoinHandle<()>>,
    upstream_threads: Vec<JoinHandle<()>>,
    probe_thread: Option<JoinHandle<()>>,
    metrics_listener: Option<MetricsListener>,
    spawned: Vec<gt_serve::Server>,
}

impl Router {
    /// Spawn any owned replicas, connect the pools, and start
    /// accepting clients.
    pub fn start(config: RouterConfig) -> std::io::Result<Router> {
        let mut spawned = Vec::new();
        let mut addrs = config.replicas.clone();
        for _ in 0..config.spawn {
            let server = gt_serve::Server::start(gt_serve::Config {
                addr: "127.0.0.1:0".into(),
                ..config.spawn_config.clone()
            })?;
            addrs.push(server.local_addr().to_string());
            spawned.push(server);
        }
        if addrs.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "router needs at least one replica (--replica or --spawn)",
            ));
        }
        let pool = config.pool.max(1);
        let replicas: Vec<Arc<Replica>> = addrs
            .iter()
            .enumerate()
            .map(|(idx, addr)| {
                Arc::new(Replica::new(
                    idx,
                    addr.clone(),
                    pool,
                    config.health.clone(),
                    membership::DEFAULT_WEIGHT,
                ))
            })
            .collect();
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let recorder = SpanRecorder::new(config.trace_sample, config.trace_ring);
        let inner = Arc::new(Inner {
            config,
            table: RoutingTable::seeded(&addrs),
            replicas: RwLock::new(Arc::new(replicas)),
            member_lock: Mutex::new(()),
            joined_threads: Mutex::new(Vec::new()),
            metrics: RouterMetrics::default(),
            pacer: Pacer::new(),
            seq: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            stop_upstream: AtomicBool::new(false),
            recorder,
        });

        let pacer_thread = {
            let inner2 = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("gt-router-pacer".into())
                .spawn(move || pacer_loop(inner2))?
        };
        let mut upstream_threads = Vec::new();
        for replica in inner.members().iter() {
            for ci in 0..replica.conns.len() {
                let inner2 = Arc::clone(&inner);
                let replica2 = Arc::clone(replica);
                upstream_threads.push(
                    std::thread::Builder::new()
                        .name(format!("gt-router-up-{}-{}", replica.idx, ci))
                        .spawn(move || upstream_loop(inner2, replica2, ci))?,
                );
            }
        }
        let probe_thread = {
            let inner2 = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("gt-router-probe".into())
                .spawn(move || probe_loop(inner2))?
        };
        let mut client_io = Vec::new();
        let mut client_io_threads = Vec::new();
        for i in 0..CLIENT_IO_THREADS {
            let handle = Arc::new(ClientIoHandle {
                injector: Mutex::new(Vec::new()),
                waker: Waker::new()?,
            });
            client_io.push(Arc::clone(&handle));
            let inner2 = Arc::clone(&inner);
            client_io_threads.push(
                std::thread::Builder::new()
                    .name(format!("gt-router-io-{i}"))
                    .spawn(move || client_io_loop(inner2, handle))?,
            );
        }
        let accept = {
            let inner2 = Arc::clone(&inner);
            let io = client_io.clone();
            std::thread::Builder::new()
                .name("gt-router-accept".into())
                .spawn(move || accept_loop(inner2, listener, io))?
        };
        let metrics_listener = match inner.config.metrics_addr.clone() {
            Some(addr) => {
                let inner2 = Arc::clone(&inner);
                Some(spawn_metrics_listener(
                    addr.as_str(),
                    Arc::new(move || snapshot_of(&inner2).render_prometheus()),
                )?)
            }
            None => None,
        };
        Ok(Router {
            inner,
            local_addr,
            accept: Some(accept),
            client_io,
            client_io_threads,
            pacer_thread: Some(pacer_thread),
            upstream_threads,
            probe_thread: Some(probe_thread),
            metrics_listener,
            spawned,
        })
    }

    /// The client-facing bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The upstream replica addresses, spawned and joined ones
    /// included.
    pub fn replica_addrs(&self) -> Vec<String> {
        self.inner
            .members()
            .iter()
            .map(|r| r.addr.clone())
            .collect()
    }

    /// The bound `/metrics` address, when the listener is enabled.
    pub fn metrics_listener_addr(&self) -> Option<SocketAddr> {
        self.metrics_listener.as_ref().map(|l| l.local_addr())
    }

    /// Begin a graceful drain: stop accepting, reject new evals,
    /// finish in-flight ones.  `join` completes the shutdown.
    pub fn request_shutdown(&self) {
        self.inner.draining.store(true, Ordering::SeqCst);
    }

    /// Whether a drain has been requested (by signal or by a client's
    /// `shutdown` op).
    pub fn draining(&self) -> bool {
        self.inner.draining.load(Ordering::SeqCst)
    }

    /// Live stats snapshot.
    pub fn snapshot(&self) -> RouterSnapshot {
        snapshot_of(&self.inner)
    }

    /// Drain and stop everything, in dependency order: the listener
    /// and client connections first (their windows guarantee every
    /// accepted eval has been answered — the pacer and upstream pools
    /// must still be alive for that), then the pacer, then upstream
    /// and probe threads, then owned replicas.  Returns the final
    /// stats snapshot.
    pub fn join(mut self) -> RouterSnapshot {
        self.inner.draining.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // The io threads notice the drain flag, hold each connection
        // until its window empties (every accepted eval answered),
        // then exit once their slabs are empty.
        for handle in &self.client_io {
            handle.waker.wake();
        }
        for h in self.client_io_threads.drain(..) {
            let _ = h.join();
        }
        self.inner.pacer.halt();
        if let Some(h) = self.pacer_thread.take() {
            let _ = h.join();
        }
        self.inner.stop_upstream.store(true, Ordering::SeqCst);
        for h in self.upstream_threads.drain(..) {
            let _ = h.join();
        }
        for h in std::mem::take(&mut *self.inner.joined_threads.lock().unwrap()) {
            let _ = h.join();
        }
        if let Some(h) = self.probe_thread.take() {
            let _ = h.join();
        }
        if let Some(l) = self.metrics_listener.take() {
            l.shutdown();
        }
        let snap = snapshot_of(&self.inner);
        for server in self.spawned.drain(..) {
            server.request_shutdown();
            let _ = server.join();
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_serve::Client;

    #[test]
    fn rewrite_restores_the_client_id_and_annotates_provenance() {
        let body = Json::parse(
            r#"{"ok":true,"id":"41","value":1,"work":64,"cached":false,"latency_us":812}"#,
        )
        .unwrap();
        let line = rewrite_reply(&body, &Some("r7".into()), "127.0.0.1:7171", 2, true, None);
        let back = Json::parse(&line).unwrap();
        assert_eq!(back.get("id").and_then(Json::as_str), Some("r7"));
        assert_eq!(back.get("value").and_then(Json::as_u64), Some(1));
        assert_eq!(
            back.get("replica").and_then(Json::as_str),
            Some("127.0.0.1:7171")
        );
        assert_eq!(back.get("retries").and_then(Json::as_u64), Some(2));
        assert_eq!(back.get("hedged").and_then(Json::as_bool), Some(true));
        // The upstream sequence id must not leak to the client.
        assert!(!line.contains("\"41\""), "{line}");
    }

    #[test]
    fn rewrite_omits_noise_on_the_clean_path() {
        let body = Json::parse(r#"{"ok":true,"id":"9","value":0}"#).unwrap();
        let line = rewrite_reply(&body, &None, "a:1", 0, false, None);
        assert!(!line.contains("retries"), "{line}");
        assert!(!line.contains("hedged"), "{line}");
        assert!(!line.contains("\"id\""), "{line}");
    }

    #[test]
    fn route_prefers_health_but_keeps_affinity_within_a_tier() {
        let table: Vec<(String, u64)> = (0..3).map(|i| (format!("10.0.0.{i}:7171"), 1)).collect();
        let key = "worst:d=3,n=8|cascade:w=1";
        let all_up = route_for(key, &table, &[0, 0, 0]);
        // Same key, same fleet: same route, every time.
        assert_eq!(all_up, route_for(key, &table, &[0, 0, 0]));
        // Eject the owner: it drops to the back, the rest keep order.
        let mut tiers = [0u8; 3];
        tiers[all_up[0]] = 3;
        let rerouted = route_for(key, &table, &tiers);
        assert_eq!(rerouted[2], all_up[0]);
        assert_eq!(rerouted[..2], all_up[1..]);
    }

    #[test]
    fn pacer_heap_pops_earliest_due_first() {
        let now = Instant::now();
        let mut heap = BinaryHeap::new();
        for (i, ms) in [30u64, 10, 20].iter().enumerate() {
            heap.push(PacerEntry {
                due: now + Duration::from_millis(*ms),
                tiebreak: i as u64,
                relay: Weak::new(),
                action: Action::Retry,
            });
        }
        let order: Vec<Instant> = std::iter::from_fn(|| heap.pop().map(|e| e.due)).collect();
        assert_eq!(order.len(), 3);
        assert!(order[0] < order[1] && order[1] < order[2]);
    }

    #[test]
    fn router_round_trips_an_eval_through_a_spawned_replica() {
        let router = Router::start(RouterConfig {
            spawn: 1,
            ..RouterConfig::default()
        })
        .unwrap();
        let mut client = Client::connect(router.local_addr()).unwrap();

        let ping = client.ping().unwrap();
        assert!(ping.ok);
        assert_eq!(ping.body.get("role").and_then(Json::as_str), Some("router"));

        let reply = client.eval("worst:d=2,n=8", "cascade:w=1", None).unwrap();
        assert!(reply.ok, "{reply:?}");
        assert!(reply.body.get("replica").and_then(Json::as_str).is_some());

        // Same key again: replica-local cache serves it.
        let again = client.eval("worst:d=2,n=8", "cascade:w=1", None).unwrap();
        assert!(again.ok && again.cached(), "{again:?}");

        let stats = client.stats().unwrap();
        assert!(stats.ok);
        let snap = router.join();
        assert_eq!(snap.ok, 2);
        assert_eq!(snap.requests, 2);
        assert_eq!(snap.forwarded_errors, 0);
    }

    #[test]
    fn split_eval_matches_sequential_and_reports_provenance() {
        let router = Router::start(RouterConfig {
            spawn: 3,
            split: SplitConfig {
                cost_threshold: Some(16),
                ..SplitConfig::default()
            },
            ..RouterConfig::default()
        })
        .unwrap();
        let mut client = Client::connect(router.local_addr()).unwrap();
        let spec = "minmax:d=3,n=7,seed=11";
        let expected = gt_tree::split::sub_evaluate(&SubtreeSpec::whole(
            gt_tree::GenSpec::parse(spec).unwrap(),
        ))
        .unwrap()
        .value;

        let reply = client.eval(spec, "cascade:w=1", None).unwrap();
        assert!(reply.ok, "{reply:?}");
        assert_eq!(reply.value(), Some(expected));
        // The answer is router-aggregated, with split provenance
        // instead of a single answering replica.
        let split = reply.body.get("split").expect("split provenance");
        assert!(split.get("depth").and_then(Json::as_u64).unwrap_or(0) >= 1);
        assert!(reply.leaves().unwrap_or(0) > 0, "{reply:?}");

        let snap = router.join();
        assert_eq!(snap.splits_total, 1, "{snap:?}");
        assert!(snap.subevals_dispatched >= 2, "{snap:?}");
        assert_eq!(snap.ok, 1);
    }

    #[test]
    fn split_cutoffs_skip_undispatched_siblings_across_the_fleet() {
        let router = Router::start(RouterConfig {
            spawn: 3,
            split: SplitConfig {
                cost_threshold: Some(8),
                max_depth: 3,
                ..SplitConfig::default()
            },
            ..RouterConfig::default()
        })
        .unwrap();
        let mut client = Client::connect(router.local_addr()).unwrap();
        // allones NOR values alternate with height parity, so the
        // deepest eldest level settles to 1 and cuts its parent: the
        // parent's three siblings are never dispatched.
        let reply = client.eval("allones:d=4,n=6", "cascade:w=1", None).unwrap();
        assert!(reply.ok, "{reply:?}");
        assert_eq!(reply.value(), Some(1));
        let snap = router.join();
        assert_eq!(snap.splits_total, 1, "{snap:?}");
        assert_eq!(snap.subevals_skipped_on_cutoff, 3, "{snap:?}");
        assert_eq!(snap.subevals_dispatched, 7, "{snap:?}");
    }

    #[test]
    fn join_admits_reweights_and_rejects_stale_announcements() {
        let router = Router::start(RouterConfig {
            spawn: 1,
            ..RouterConfig::default()
        })
        .unwrap();
        let extra = gt_serve::Server::start(gt_serve::Config {
            addr: "127.0.0.1:0".into(),
            ..gt_serve::Config::default()
        })
        .unwrap();
        let addr = extra.local_addr().to_string();
        let mut client = Client::connect(router.local_addr()).unwrap();

        let action = |resp: &gt_serve::protocol::Response| {
            resp.body
                .get("action")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string()
        };
        // Admit: unknown address joins the fleet.
        let r = client.send(&Request::join(&addr, 2, 1)).unwrap();
        assert!(r.ok, "{r:?}");
        assert_eq!(action(&r), "admitted");
        assert_eq!(r.body.get("members").and_then(Json::as_u64), Some(2));
        // Announce retries are idempotent.
        let r = client.send(&Request::join(&addr, 2, 1)).unwrap();
        assert_eq!(action(&r), "duplicate");
        // Same generation, new weight: reweight in place.
        let r = client.send(&Request::join(&addr, 5, 1)).unwrap();
        assert_eq!(action(&r), "reweighted");
        // An old announcement arriving late changes nothing.
        let r = client.send(&Request::join(&addr, 9, 0)).unwrap();
        assert_eq!(action(&r), "stale");
        assert_eq!(r.body.get("members").and_then(Json::as_u64), Some(2));

        // Health enumerates the membership with weight and generation.
        let h = client.health().unwrap();
        assert_eq!(h.body.get("replicas").and_then(Json::as_u64), Some(2));
        let members = match h.body.get("members") {
            Some(Json::Array(ms)) => ms.clone(),
            other => panic!("members not an array: {other:?}"),
        };
        let joined = members
            .iter()
            .find(|m| m.get("addr").and_then(Json::as_str) == Some(addr.as_str()))
            .expect("joined member listed");
        assert_eq!(joined.get("weight").and_then(Json::as_u64), Some(5));
        assert_eq!(joined.get("generation").and_then(Json::as_u64), Some(1));

        // The fleet still answers evals after the churn, and stats
        // reports the membership counters.
        let reply = client.eval("worst:d=2,n=6", "cascade:w=1", None).unwrap();
        assert!(reply.ok, "{reply:?}");
        let snap = router.join();
        assert_eq!(snap.members_joined, 1, "{snap:?}");
        assert_eq!(snap.members_reweighted, 1, "{snap:?}");
        assert_eq!(snap.members_duplicate_joins, 1, "{snap:?}");
        assert_eq!(snap.members_stale_joins, 1, "{snap:?}");
        assert_eq!(snap.replicas.len(), 2);
        assert!(snap.membership_version >= 2, "{snap:?}");
        extra.request_shutdown();
        extra.join();
    }

    #[test]
    fn router_relays_a_client_subeval() {
        let router = Router::start(RouterConfig {
            spawn: 2,
            ..RouterConfig::default()
        })
        .unwrap();
        let mut client = Client::connect(router.local_addr()).unwrap();
        let sub = SubtreeSpec {
            spec: gt_tree::GenSpec::parse("minmax:d=2,n=5,seed=3").unwrap(),
            path: vec![1],
            alpha: Value::MIN,
            beta: Value::MAX,
        };
        let expected = gt_tree::split::sub_evaluate(&sub).unwrap().value;
        let reply = client
            .subeval("minmax:d=2,n=5,seed=3", "1", Value::MIN, Value::MAX, None)
            .unwrap();
        assert!(reply.ok, "{reply:?}");
        assert_eq!(reply.value(), Some(expected));
        assert!(reply.body.get("replica").and_then(Json::as_str).is_some());
        router.join();
    }
}
