//! The load generator: client fleets for measuring throughput, tail
//! latency, and shedding behaviour against a running server.
//!
//! Two modes, chosen by [`LoadgenConfig::rps`]:
//!
//! * **Open loop** (`rps > 0`) — each connection fires on a fixed
//!   schedule regardless of how long replies take, the model that
//!   actually exposes queueing delay (closed-loop clients slow down
//!   with the server and hide it).  Late ticks are not skipped; the
//!   generator sends them back-to-back, which is exactly the burst an
//!   open-loop arrival process produces.
//! * **Closed loop** (`rps == 0`) — each connection sends the next
//!   request as soon as the previous reply lands: a saturation probe.
//!
//! The closed loop optionally **pipelines**: with
//! [`LoadgenConfig::pipeline`] `= n > 1`, each connection keeps `n`
//! requests outstanding, reading one reply and immediately sending
//! the next.  Requests carry sequence-number ids and latencies are
//! correlated through them, since a pipelined server replies in
//! completion order.
//!
//! **Fan-in mode** ([`LoadgenConfig::connections`] `= n > 0`) layers
//! `n` additional mostly-idle connections under whatever active load
//! the run generates, from this one process: a small pool of
//! connector threads opens the connections up front (one retry each),
//! parks them for the run, and reports how many actually came up
//! ([`LoadgenReport::fan_in_open`] / [`LoadgenReport::fan_in_failed`]).
//! This is how the c10k benchmarks and smoke tests drive thousands of
//! concurrent sockets against a replica without a client fleet.

use crate::client::Client;
use crate::protocol::{Op, Request};
use gt_analysis::{percentile, Json};
use std::collections::HashMap;
use std::thread;
use std::time::{Duration, Instant};

/// Load generator configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address, e.g. `127.0.0.1:7171`.
    pub addr: String,
    /// Concurrent connections.
    pub conns: usize,
    /// Extra mostly-idle connections held open for the whole run
    /// (fan-in mode); 0 disables.  These carry no requests — they
    /// exist to push the server's concurrent-connection count to
    /// c10k-scale while the `conns` workers generate the actual load.
    pub connections: usize,
    /// Total target request rate across all connections; 0 runs closed
    /// loop.
    pub rps: f64,
    /// How long to generate load.
    pub duration: Duration,
    /// Workload spec sent in every request.
    pub spec: String,
    /// Algorithm selector sent in every request.
    pub algo: String,
    /// Per-request deadline, if any.
    pub deadline_ms: Option<u64>,
    /// Requests kept in flight per connection in closed-loop mode;
    /// 0 or 1 is the classic one-at-a-time loop.  Ignored in open
    /// loop (`rps > 0`).
    pub pipeline: usize,
    /// Cold-storm mode: append a unique `seed=<k>` parameter to every
    /// request's spec so each request has a distinct canonical key and
    /// nothing is served from the cache or coalesced — the measurement
    /// exercises the cold dispatch path exclusively.
    pub distinct: bool,
    /// Split-heavy mode: ignore `spec` and send a rotating pool of
    /// large-tree specs sized to clear a router's split threshold, so
    /// every request exercises the scatter-gather planner (and repeat
    /// seeds still exercise the fleet's subeval caches).
    pub split_heavy: bool,
    /// After the run, fetch the server's `stats` snapshot over a fresh
    /// connection and embed it in the report (batch-size distribution,
    /// cache telemetry, ...).
    pub include_server_stats: bool,
    /// After the run, fetch the span trees of the N slowest traced
    /// requests via the router's `op:"trace"` verb and embed them in
    /// the report (flame-style in `render`, raw trees in `to_json`).
    /// Requires the target to be a router with tracing enabled; 0
    /// disables.
    pub sample_traces: usize,
    /// Multi-tenant mode (`--tenants N`): tag requests round-robin
    /// with tenants `t0..t{N-1}` and break the report out per tenant
    /// (sent/ok/shed and latency quantiles).  0 sends untagged
    /// requests, exactly as before tenancy existed.
    pub tenants: usize,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:7171".into(),
            conns: 1,
            connections: 0,
            rps: 0.0,
            duration: Duration::from_secs(5),
            spec: "worst:d=2,n=8".into(),
            algo: "cascade:w=1".into(),
            deadline_ms: None,
            pipeline: 1,
            distinct: false,
            split_heavy: false,
            include_server_stats: false,
            sample_traces: 0,
            tenants: 0,
        }
    }
}

/// The tenant tag for one request: round-robin `t0..t{N-1}` over the
/// request sequence when multi-tenant mode is on, `None` otherwise.
/// The connection index is folded in so single-request connections
/// still spread across tenants.
fn tenant_for(config: &LoadgenConfig, conn: usize, seq: u64) -> Option<String> {
    if config.tenants == 0 {
        None
    } else {
        Some(format!("t{}", (conn as u64 + seq) % config.tenants as u64))
    }
}

/// The spec text for one request: verbatim, or — in cold-storm mode —
/// salted with a per-(connection, sequence) seed so every request has
/// its own canonical key.
fn spec_for(config: &LoadgenConfig, conn: usize, seq: u64) -> String {
    if config.split_heavy {
        // Eight seeds: large enough a fleet sees variety, small
        // enough that subeval results get cache hits on repeats.
        let seed = (conn as u64 * 7 + seq) % 8;
        return format!("minmax:d=3,n=8,seed={seed}");
    }
    if !config.distinct {
        return config.spec.clone();
    }
    let salt = conn as u64 * 1_000_000 + seq;
    if config.spec.contains(':') {
        format!("{},seed={salt}", config.spec)
    } else {
        format!("{}:seed={salt}", config.spec)
    }
}

/// Per-thread tally, merged into the final report.
#[derive(Debug, Default, Clone)]
struct Tally {
    sent: u64,
    ok: u64,
    cached: u64,
    coalesced: u64,
    shed: u64,
    timeout: u64,
    bad: u64,
    draining: u64,
    other_error: u64,
    transport_errors: u64,
    retry_hints: u64,
    latencies_us: Vec<f64>,
    /// `(latency_us, trace_id)` of each ok reply that carried one.
    traced: Vec<(f64, String)>,
    /// Per-tenant slices, populated when [`LoadgenConfig::tenants`]
    /// tags requests.
    tenants: HashMap<String, TenantTally>,
}

/// One tenant's slice of a [`Tally`].
#[derive(Debug, Default, Clone)]
struct TenantTally {
    sent: u64,
    ok: u64,
    shed: u64,
    latencies_us: Vec<f64>,
}

impl Tally {
    /// Count one request sent, on the run total and on the tenant's
    /// slice when the request was tagged.
    fn note_sent(&mut self, tenant: Option<&str>) {
        self.sent += 1;
        if let Some(t) = tenant {
            self.tenants.entry(t.to_string()).or_default().sent += 1;
        }
    }

    fn absorb(&mut self, other: Tally) {
        self.sent += other.sent;
        self.ok += other.ok;
        self.cached += other.cached;
        self.coalesced += other.coalesced;
        self.shed += other.shed;
        self.timeout += other.timeout;
        self.bad += other.bad;
        self.draining += other.draining;
        self.other_error += other.other_error;
        self.transport_errors += other.transport_errors;
        self.retry_hints += other.retry_hints;
        self.latencies_us.extend(other.latencies_us);
        self.traced.extend(other.traced);
        for (name, t) in other.tenants {
            let mine = self.tenants.entry(name).or_default();
            mine.sent += t.sent;
            mine.ok += t.ok;
            mine.shed += t.shed;
            mine.latencies_us.extend(t.latencies_us);
        }
    }
}

/// Aggregated results of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Requests sent.
    pub sent: u64,
    /// Successful replies.
    pub ok: u64,
    /// Successful replies served from the cache.
    pub cached: u64,
    /// Successful replies coalesced onto another request's engine run.
    pub coalesced: u64,
    /// 429 `busy` rejections (queue full).
    pub shed: u64,
    /// 408 `timeout` replies.
    pub timeout: u64,
    /// 400 `bad-request` replies.
    pub bad: u64,
    /// 503 `draining` rejections.
    pub draining: u64,
    /// Error replies outside the codes above.
    pub other_error: u64,
    /// Connections that failed at the transport level (connect, I/O,
    /// or unparseable replies).
    pub transport_errors: u64,
    /// Shed replies whose `retry_after_ms` hint the generator honored
    /// by backing off before its next send.
    pub retry_hints: u64,
    /// Idle fan-in connections successfully opened and held for the
    /// run ([`LoadgenConfig::connections`] mode).
    pub fan_in_open: u64,
    /// Idle fan-in connections that failed to open even after one
    /// retry.
    pub fan_in_failed: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Client-observed latencies of successful replies, microseconds.
    pub latencies_us: Vec<f64>,
    /// Latencies of the replies that carried a `trace_id` — the
    /// requests the router actually traced.  Comparing their p50
    /// against the run-wide p50 isolates the cost of span recording
    /// inside one run, immune to run-to-run machine drift (the
    /// `trace_overhead` scenario in scripts/bench_serve.sh).
    pub traced_latencies_us: Vec<f64>,
    /// The server's post-run `stats` snapshot, when
    /// [`LoadgenConfig::include_server_stats`] asked for it.
    pub server_stats: Option<Json>,
    /// Span trees of the slowest traced requests, fetched post-run
    /// when [`LoadgenConfig::sample_traces`] `> 0`.  Each entry is
    /// `{"latency_us":..., "trace":{"trace_id":...,"spans":[...]}}`.
    pub sampled_traces: Vec<Json>,
    /// Per-tenant breakdown, sorted by tenant tag.  Empty unless
    /// [`LoadgenConfig::tenants`] tagged the run's requests.
    pub tenants: Vec<TenantReport>,
}

/// One tenant's slice of a [`LoadgenReport`]: how a single tenant
/// fared inside a shared run — the view that makes fairness (or its
/// absence) visible when one tenant floods the server.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Tenant tag (`t0`, `t1`, ...).
    pub tenant: String,
    /// Requests sent under this tag.
    pub sent: u64,
    /// Successful replies.
    pub ok: u64,
    /// 429 `busy` rejections (queue full or tenant over its inflight
    /// cap).
    pub shed: u64,
    /// Client-observed latencies of this tenant's successful replies,
    /// microseconds.
    pub latencies_us: Vec<f64>,
}

impl TenantReport {
    /// Latency quantile over this tenant's successful replies.
    pub fn latency_quantile(&self, q: f64) -> Option<f64> {
        if self.latencies_us.is_empty() {
            None
        } else {
            Some(percentile(&self.latencies_us, q))
        }
    }

    fn to_json(&self) -> Json {
        let quantile = |q: f64| match self.latency_quantile(q) {
            Some(v) => Json::from(v),
            None => Json::Null,
        };
        Json::obj([
            ("sent", Json::from(self.sent)),
            ("ok", Json::from(self.ok)),
            ("shed", Json::from(self.shed)),
            ("latency_p50_us", quantile(0.50)),
            ("latency_p99_us", quantile(0.99)),
        ])
    }
}

impl LoadgenReport {
    /// Replies received per second (any status).
    pub fn achieved_rps(&self) -> f64 {
        let replies =
            self.ok + self.shed + self.timeout + self.bad + self.draining + self.other_error;
        replies as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    fn latency_quantile(&self, q: f64) -> Option<f64> {
        if self.latencies_us.is_empty() {
            None
        } else {
            Some(percentile(&self.latencies_us, q))
        }
    }

    /// Serialize for scripting.
    pub fn to_json(&self) -> Json {
        let quantile = |q: f64| match self.latency_quantile(q) {
            Some(v) => Json::from(v),
            None => Json::Null,
        };
        Json::obj([
            ("sent", Json::from(self.sent)),
            ("ok", Json::from(self.ok)),
            ("cached", Json::from(self.cached)),
            ("coalesced", Json::from(self.coalesced)),
            ("shed", Json::from(self.shed)),
            ("timeout", Json::from(self.timeout)),
            ("bad", Json::from(self.bad)),
            ("draining", Json::from(self.draining)),
            ("other_error", Json::from(self.other_error)),
            ("transport_errors", Json::from(self.transport_errors)),
            ("retry_hints_honored", Json::from(self.retry_hints)),
            ("fan_in_open", Json::from(self.fan_in_open)),
            ("fan_in_failed", Json::from(self.fan_in_failed)),
            ("elapsed_ms", Json::from(self.elapsed.as_millis() as u64)),
            ("achieved_rps", Json::from(self.achieved_rps())),
            ("latency_p50_us", quantile(0.50)),
            ("latency_p90_us", quantile(0.90)),
            ("latency_p99_us", quantile(0.99)),
            ("traced", Json::from(self.traced_latencies_us.len() as u64)),
            (
                "latency_p50_traced_us",
                if self.traced_latencies_us.is_empty() {
                    Json::Null
                } else {
                    Json::from(percentile(&self.traced_latencies_us, 0.50))
                },
            ),
            (
                "server",
                match &self.server_stats {
                    Some(s) => s.clone(),
                    None => Json::Null,
                },
            ),
            ("sampled_traces", Json::Array(self.sampled_traces.clone())),
            (
                "tenants",
                Json::Object(
                    self.tenants
                        .iter()
                        .map(|t| (t.tenant.clone(), t.to_json()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "sent {} in {:.2}s ({:.1} replies/s)",
            self.sent,
            self.elapsed.as_secs_f64(),
            self.achieved_rps()
        );
        let _ = writeln!(
            out,
            "ok {} (cached {} coalesced {})  shed {}  timeout {}  bad {}  draining {}  other {}  \
             transport {}",
            self.ok,
            self.cached,
            self.coalesced,
            self.shed,
            self.timeout,
            self.bad,
            self.draining,
            self.other_error,
            self.transport_errors
        );
        if self.retry_hints > 0 {
            let _ = writeln!(out, "honored {} retry_after_ms hints", self.retry_hints);
        }
        if self.fan_in_open > 0 || self.fan_in_failed > 0 {
            let _ = writeln!(
                out,
                "fan-in {} idle connections held ({} failed to open)",
                self.fan_in_open, self.fan_in_failed
            );
        }
        if !self.latencies_us.is_empty() {
            let _ = writeln!(
                out,
                "latency p50 {:.0}us  p90 {:.0}us  p99 {:.0}us",
                self.latency_quantile(0.50).unwrap_or(0.0),
                self.latency_quantile(0.90).unwrap_or(0.0),
                self.latency_quantile(0.99).unwrap_or(0.0),
            );
        }
        for t in &self.tenants {
            let _ = writeln!(
                out,
                "tenant {}: sent {}  ok {}  shed {}  p50 {:.0}us  p99 {:.0}us",
                t.tenant,
                t.sent,
                t.ok,
                t.shed,
                t.latency_quantile(0.50).unwrap_or(0.0),
                t.latency_quantile(0.99).unwrap_or(0.0),
            );
        }
        if !self.traced_latencies_us.is_empty() {
            let _ = writeln!(
                out,
                "traced {} requests  p50 {:.0}us",
                self.traced_latencies_us.len(),
                percentile(&self.traced_latencies_us, 0.50),
            );
        }
        if let Some(stats) = &self.server_stats {
            let batches = stats.get("batches").and_then(Json::as_u64).unwrap_or(0);
            let jobs = stats.get("batch_jobs").and_then(Json::as_u64).unwrap_or(0);
            if batches > 0 {
                let _ = writeln!(
                    out,
                    "server batches {batches} ({jobs} jobs, mean size {:.2})",
                    jobs as f64 / batches as f64
                );
            }
        }
        if !self.sampled_traces.is_empty() {
            let _ = writeln!(
                out,
                "--- span trees of the {} slowest traced requests ---",
                self.sampled_traces.len()
            );
            for entry in &self.sampled_traces {
                let us = entry
                    .get("latency_us")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0);
                let tid = entry
                    .get("trace")
                    .and_then(|t| t.get("trace_id"))
                    .and_then(Json::as_str)
                    .unwrap_or("?");
                let _ = writeln!(out, "{tid} ({us:.0}us client latency)");
                if let Some(trace) = entry.get("trace") {
                    render_trace_tree(trace, &mut out);
                }
            }
        }
        out
    }
}

/// Flame-style indented rendering of one span tree fetched via
/// `op:"trace"`: each line is a span at its tree depth, with its
/// start offset, duration, and terminal status.  Children print in
/// open order (span ids are issued in open order), which is also
/// start order on the router's single clock.
fn render_trace_tree(trace: &Json, out: &mut String) {
    let spans = match trace.get("spans") {
        Some(Json::Array(spans)) => spans,
        _ => return,
    };
    let ids: std::collections::HashSet<u64> = spans
        .iter()
        .filter_map(|s| s.get("id").and_then(Json::as_u64))
        .collect();
    let mut children: HashMap<u64, Vec<&Json>> = HashMap::new();
    let mut roots: Vec<&Json> = Vec::new();
    for span in spans {
        // A span whose parent is absent from this tree is a root —
        // either the true root (parent null) or one grafted into a
        // larger client-side trace via `parent_span`.
        match span.get("parent").and_then(Json::as_u64) {
            Some(p) if ids.contains(&p) => children.entry(p).or_default().push(span),
            _ => roots.push(span),
        }
    }
    fn line(span: &Json, depth: usize, children: &HashMap<u64, Vec<&Json>>, out: &mut String) {
        use std::fmt::Write as _;
        let start = span.get("start_us").and_then(Json::as_u64).unwrap_or(0);
        let dur = match span.get("end_us").and_then(Json::as_u64) {
            Some(end) => format!("+{}us", end.saturating_sub(start)),
            None => "open".into(),
        };
        let _ = writeln!(
            out,
            "  {:indent$}{} {} [{start}us {dur}] {}",
            "",
            span.get("kind").and_then(Json::as_str).unwrap_or("?"),
            span.get("label").and_then(Json::as_str).unwrap_or(""),
            span.get("status").and_then(Json::as_str).unwrap_or("open"),
            indent = depth * 2
        );
        if let Some(id) = span.get("id").and_then(Json::as_u64) {
            if let Some(kids) = children.get(&id) {
                for kid in kids {
                    line(kid, depth + 1, children, out);
                }
            }
        }
    }
    for root in roots {
        line(root, 0, &children, out);
    }
}

/// Longest per-reply backoff the generator will sit out; a hint above
/// this is truncated so one overloaded server cannot park a worker for
/// the rest of the run.
const MAX_SHED_BACKOFF_MS: u64 = 250;

/// Honor the `retry_after_ms` hint on a shed reply: back off for the
/// server's suggested drain time before this worker's next send.
fn honor_shed_hint(tally: &mut Tally, reply: &crate::protocol::Response) {
    if reply.status != 429 {
        return;
    }
    if let Some(ms) = reply.retry_after_ms() {
        tally.retry_hints += 1;
        thread::sleep(Duration::from_millis(ms.min(MAX_SHED_BACKOFF_MS)));
    }
}

fn classify(
    tally: &mut Tally,
    tenant: Option<&str>,
    reply: &crate::protocol::Response,
    latency_us: Option<f64>,
) {
    if reply.ok {
        tally.ok += 1;
        if reply.cached() {
            tally.cached += 1;
        }
        if reply.coalesced() {
            tally.coalesced += 1;
        }
        if let Some(t) = tenant {
            tally.tenants.entry(t.to_string()).or_default().ok += 1;
        }
        if let Some(us) = latency_us {
            tally.latencies_us.push(us);
            if let Some(tid) = reply.trace_id() {
                tally.traced.push((us, tid.to_string()));
            }
            if let Some(t) = tenant {
                tally
                    .tenants
                    .entry(t.to_string())
                    .or_default()
                    .latencies_us
                    .push(us);
            }
        }
        return;
    }
    match reply.status {
        429 => {
            tally.shed += 1;
            if let Some(t) = tenant {
                tally.tenants.entry(t.to_string()).or_default().shed += 1;
            }
        }
        408 => tally.timeout += 1,
        400 => tally.bad += 1,
        503 => tally.draining += 1,
        _ => tally.other_error += 1,
    }
}

fn connection_worker(
    config: &LoadgenConfig,
    conn: usize,
    per_conn_interval: Option<Duration>,
) -> Tally {
    let mut tally = Tally::default();
    let mut client = match Client::connect(&config.addr) {
        Ok(c) => c,
        Err(_) => {
            tally.transport_errors += 1;
            return tally;
        }
    };
    let start = Instant::now();
    let mut i: u32 = 0;
    while start.elapsed() < config.duration {
        if let Some(interval) = per_conn_interval {
            // Open loop: wait for this request's scheduled send time.
            let due = start + interval * i;
            let now = Instant::now();
            if due > now {
                thread::sleep(due - now);
            }
            if start.elapsed() >= config.duration {
                break;
            }
        }
        let spec = spec_for(config, conn, i as u64);
        let tenant = tenant_for(config, conn, i as u64);
        i += 1;
        tally.note_sent(tenant.as_deref());
        let request = Request {
            op: Op::Eval,
            spec: Some(spec),
            algo: Some(config.algo.clone()),
            deadline_ms: config.deadline_ms,
            tenant: tenant.clone(),
            ..Default::default()
        };
        let sent_at = Instant::now();
        match client.send(&request) {
            Ok(reply) => {
                let latency_us = sent_at.elapsed().as_secs_f64() * 1e6;
                classify(&mut tally, tenant.as_deref(), &reply, Some(latency_us));
                honor_shed_hint(&mut tally, &reply);
            }
            Err(_) => {
                tally.transport_errors += 1;
                return tally; // the connection is broken; stop this worker
            }
        }
    }
    tally
}

/// Closed loop with `window` requests outstanding: pre-fill the
/// window, then read-one-send-one until the clock runs out and the
/// window drains.  Latencies are correlated by sequence-number id
/// because replies arrive in completion order.
fn pipelined_worker(config: &LoadgenConfig, conn: usize, window: usize) -> Tally {
    let mut tally = Tally::default();
    let mut client = match Client::connect(&config.addr) {
        Ok(c) => c,
        Err(_) => {
            tally.transport_errors += 1;
            return tally;
        }
    };
    let start = Instant::now();
    // Replies arrive in completion order, so each in-flight id keeps
    // both its send time and its tenant tag for correlation.
    let mut in_flight: HashMap<String, (Instant, Option<String>)> = HashMap::new();
    let mut seq: u64 = 0;
    let mut send_next = |client: &mut Client,
                         in_flight: &mut HashMap<String, (Instant, Option<String>)>,
                         tally: &mut Tally| {
        let id = seq.to_string();
        let spec = spec_for(config, conn, seq);
        let tenant = tenant_for(config, conn, seq);
        seq += 1;
        let request = Request {
            id: Some(id.clone()),
            op: Op::Eval,
            spec: Some(spec),
            algo: Some(config.algo.clone()),
            deadline_ms: config.deadline_ms,
            tenant: tenant.clone(),
            ..Default::default()
        };
        tally.note_sent(tenant.as_deref());
        match client.write_request(&request) {
            Ok(()) => {
                in_flight.insert(id, (Instant::now(), tenant));
                true
            }
            Err(_) => {
                tally.transport_errors += 1;
                false
            }
        }
    };
    while in_flight.len() < window && start.elapsed() < config.duration {
        if !send_next(&mut client, &mut in_flight, &mut tally) {
            return tally;
        }
    }
    while !in_flight.is_empty() {
        let reply = match client.read_response() {
            Ok(r) => r,
            Err(_) => {
                // Everything still outstanding is lost with the
                // connection.
                tally.transport_errors += in_flight.len() as u64;
                return tally;
            }
        };
        let entry = reply.id.as_ref().and_then(|id| in_flight.remove(id));
        let latency_us = entry
            .as_ref()
            .map(|(at, _)| at.elapsed().as_secs_f64() * 1e6);
        let tenant = entry.and_then(|(_, t)| t);
        classify(&mut tally, tenant.as_deref(), &reply, latency_us);
        honor_shed_hint(&mut tally, &reply);
        if start.elapsed() < config.duration && !send_next(&mut client, &mut in_flight, &mut tally)
        {
            return tally;
        }
    }
    tally
}

/// Threads used to open fan-in connections; each opens its share of
/// [`LoadgenConfig::connections`] and then parks holding them.
const FAN_IN_CONNECTORS: usize = 16;

/// Open `count` idle connections (one retry each), hold them until
/// `done` flips, and report `(opened, failed)`.  The streams carry no
/// traffic — their job is to occupy server-side connection slots.
fn fan_in_worker(addr: &str, count: usize, done: &std::sync::atomic::AtomicBool) -> (u64, u64) {
    use std::net::TcpStream;
    use std::sync::atomic::Ordering;
    let mut held: Vec<TcpStream> = Vec::with_capacity(count);
    let mut failed = 0u64;
    for _ in 0..count {
        match TcpStream::connect(addr).or_else(|_| {
            // One retry: listen backlogs overflow transiently when
            // thousands of SYNs land at once.
            thread::sleep(Duration::from_millis(10));
            TcpStream::connect(addr)
        }) {
            Ok(s) => held.push(s),
            Err(_) => failed += 1,
        }
    }
    let opened = held.len() as u64;
    while !done.load(Ordering::Acquire) {
        thread::sleep(Duration::from_millis(20));
    }
    (opened, failed)
}

/// Run a load-generation session against `config.addr` and aggregate
/// the results.
pub fn run_loadgen(config: &LoadgenConfig) -> LoadgenReport {
    use std::sync::atomic::{AtomicBool, Ordering};
    let conns = config.conns.max(1);
    let per_conn_interval = if config.rps > 0.0 {
        Some(Duration::from_secs_f64(conns as f64 / config.rps))
    } else {
        None
    };
    let window = config.pipeline.max(1);
    let fan_in_done = AtomicBool::new(false);
    let started = Instant::now();
    let (tallies, fan_in): (Vec<Tally>, Vec<(u64, u64)>) = thread::scope(|scope| {
        let fan_in_handles: Vec<_> = if config.connections > 0 {
            let connectors = FAN_IN_CONNECTORS.min(config.connections);
            let per = config.connections / connectors;
            let extra = config.connections % connectors;
            let done = &fan_in_done;
            (0..connectors)
                .map(|i| {
                    let count = per + usize::from(i < extra);
                    scope.spawn(move || fan_in_worker(&config.addr, count, done))
                })
                .collect()
        } else {
            Vec::new()
        };
        let handles: Vec<_> = (0..conns)
            .map(|conn| {
                scope.spawn(move || {
                    if per_conn_interval.is_none() && window > 1 {
                        pipelined_worker(config, conn, window)
                    } else {
                        connection_worker(config, conn, per_conn_interval)
                    }
                })
            })
            .collect();
        let tallies = handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect();
        fan_in_done.store(true, Ordering::Release);
        let fan_in = fan_in_handles
            .into_iter()
            .map(|h| h.join().unwrap_or((0, 0)))
            .collect();
        (tallies, fan_in)
    });
    let elapsed = started.elapsed();
    let mut total = Tally::default();
    for t in tallies {
        total.absorb(t);
    }
    let (fan_in_open, fan_in_failed) = fan_in
        .into_iter()
        .fold((0, 0), |(o, f), (po, pf)| (o + po, f + pf));
    let server_stats = if config.include_server_stats {
        Client::connect(&config.addr)
            .ok()
            .and_then(|mut c| c.stats().ok())
            .and_then(|reply| reply.body.get("stats").cloned())
    } else {
        None
    };
    let sampled_traces = if config.sample_traces > 0 {
        fetch_slowest_traces(&config.addr, &total.traced, config.sample_traces)
    } else {
        Vec::new()
    };
    let traced_latencies_us: Vec<f64> = total.traced.iter().map(|(us, _)| *us).collect();
    let mut tenants: Vec<TenantReport> = total
        .tenants
        .into_iter()
        .map(|(tenant, t)| TenantReport {
            tenant,
            sent: t.sent,
            ok: t.ok,
            shed: t.shed,
            latencies_us: t.latencies_us,
        })
        .collect();
    tenants.sort_by(|a, b| a.tenant.cmp(&b.tenant));
    LoadgenReport {
        sent: total.sent,
        ok: total.ok,
        cached: total.cached,
        coalesced: total.coalesced,
        shed: total.shed,
        timeout: total.timeout,
        bad: total.bad,
        draining: total.draining,
        other_error: total.other_error,
        transport_errors: total.transport_errors,
        retry_hints: total.retry_hints,
        fan_in_open,
        fan_in_failed,
        elapsed,
        latencies_us: total.latencies_us,
        traced_latencies_us,
        server_stats,
        sampled_traces,
        tenants,
    }
}

/// Fetch the span trees of the `n` slowest traced requests from the
/// router's trace ring.  Best-effort: traces evicted from the ring
/// (or a target that is not a tracing router) just drop out.
fn fetch_slowest_traces(addr: &str, traced: &[(f64, String)], n: usize) -> Vec<Json> {
    let mut slowest: Vec<&(f64, String)> = traced.iter().collect();
    slowest.sort_by(|a, b| b.0.total_cmp(&a.0));
    let mut seen = std::collections::HashSet::new();
    let picked: Vec<&(f64, String)> = slowest
        .into_iter()
        .filter(|(_, tid)| seen.insert(tid.clone()))
        .take(n)
        .collect();
    if picked.is_empty() {
        return Vec::new();
    }
    let Ok(mut client) = Client::connect(addr) else {
        return Vec::new();
    };
    picked
        .iter()
        .enumerate()
        .filter_map(|(i, (latency_us, tid))| {
            let line = format!(r#"{{"op":"trace","id":"lg-{i}","trace":{{"trace_id":"{tid}"}}}}"#);
            client
                .send_line(&line)
                .ok()
                .filter(|reply| reply.ok)
                .and_then(|reply| reply.body.get("trace").cloned())
                .map(|trace| Json::obj([("latency_us", Json::from(*latency_us)), ("trace", trace)]))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Config, Server};

    #[test]
    fn closed_loop_run_against_a_live_server() {
        let server = Server::start(Config {
            workers: 2,
            ..Config::default()
        })
        .unwrap();
        let report = run_loadgen(&LoadgenConfig {
            addr: server.local_addr().to_string(),
            conns: 2,
            rps: 0.0,
            duration: Duration::from_millis(300),
            spec: "worst:d=2,n=6".into(),
            algo: "seq-solve".into(),
            deadline_ms: Some(5_000),
            pipeline: 1,
            ..LoadgenConfig::default()
        });
        assert!(report.sent > 0);
        assert_eq!(report.transport_errors, 0);
        assert!(report.ok > 0, "report: {}", report.render());
        // Identical requests: everything after the first misses is
        // served from the cache.
        assert!(report.cached > 0);
        assert!(!report.render().is_empty());
        let j = report.to_json();
        assert_eq!(j.get("ok").and_then(Json::as_u64), Some(report.ok));
        server.request_shutdown();
        server.join();
    }

    #[test]
    fn open_loop_paces_requests() {
        let server = Server::start(Config::default()).unwrap();
        let report = run_loadgen(&LoadgenConfig {
            addr: server.local_addr().to_string(),
            conns: 1,
            rps: 50.0,
            duration: Duration::from_millis(400),
            spec: "worst:d=2,n=4".into(),
            algo: "seq-solve".into(),
            deadline_ms: Some(5_000),
            pipeline: 1,
            ..LoadgenConfig::default()
        });
        // 50 rps for 0.4s ≈ 20 requests; allow generous slack for
        // scheduling noise but catch runaway closed-loop behaviour.
        assert!(report.sent <= 30, "sent {}", report.sent);
        assert!(report.sent >= 5, "sent {}", report.sent);
        server.request_shutdown();
        server.join();
    }

    #[test]
    fn pipelined_closed_loop_keeps_a_window_in_flight() {
        let server = Server::start(Config {
            workers: 2,
            ..Config::default()
        })
        .unwrap();
        let report = run_loadgen(&LoadgenConfig {
            addr: server.local_addr().to_string(),
            conns: 1,
            rps: 0.0,
            duration: Duration::from_millis(300),
            spec: "worst:d=2,n=6".into(),
            algo: "seq-solve".into(),
            deadline_ms: Some(5_000),
            pipeline: 8,
            ..LoadgenConfig::default()
        });
        assert_eq!(report.transport_errors, 0, "report: {}", report.render());
        assert!(report.ok > 0);
        // Identical requests: the first cold burst coalesces, the
        // rest hit the cache; every reply is accounted for.
        assert_eq!(
            report.ok
                + report.shed
                + report.timeout
                + report.bad
                + report.draining
                + report.other_error,
            report.sent
        );
        assert!(report.cached > 0, "report: {}", report.render());
        assert_eq!(report.latencies_us.len() as u64, report.ok);
        server.request_shutdown();
        server.join();
    }

    #[test]
    fn shed_hints_back_off_and_are_counted() {
        use crate::protocol::{error_line, error_line_with, ErrorCode, Response};
        let line = error_line_with(
            &None,
            ErrorCode::Busy,
            "queue full",
            vec![("retry_after_ms", Json::from(20u64))],
        );
        let reply = Response::parse(&line).unwrap();
        let mut tally = Tally::default();
        let start = Instant::now();
        honor_shed_hint(&mut tally, &reply);
        assert_eq!(tally.retry_hints, 1);
        assert!(start.elapsed() >= Duration::from_millis(20));
        // No hint, or a non-shed reply: no sleep, no count.
        let bare = Response::parse(&error_line(&None, ErrorCode::Busy, "queue full")).unwrap();
        honor_shed_hint(&mut tally, &bare);
        let to = Response::parse(&error_line(&None, ErrorCode::Timeout, "late")).unwrap();
        honor_shed_hint(&mut tally, &to);
        assert_eq!(tally.retry_hints, 1);
    }

    #[test]
    fn fan_in_holds_idle_connections_alongside_active_load() {
        let server = Server::start(Config {
            workers: 2,
            ..Config::default()
        })
        .unwrap();
        let report = run_loadgen(&LoadgenConfig {
            addr: server.local_addr().to_string(),
            conns: 1,
            connections: 50,
            rps: 0.0,
            duration: Duration::from_millis(300),
            spec: "worst:d=2,n=6".into(),
            algo: "seq-solve".into(),
            deadline_ms: Some(5_000),
            pipeline: 1,
            ..LoadgenConfig::default()
        });
        assert_eq!(report.fan_in_open, 50, "report: {}", report.render());
        assert_eq!(report.fan_in_failed, 0);
        assert!(report.ok > 0, "active load ran under the idle fan-in");
        let j = report.to_json();
        assert_eq!(j.get("fan_in_open").and_then(Json::as_u64), Some(50));
        assert_eq!(j.get("fan_in_failed").and_then(Json::as_u64), Some(0));
        assert!(report.render().contains("fan-in 50 idle connections"));
        server.request_shutdown();
        let stats = server.join();
        // The server accounted every socket: 50 idle + 1 worker (plus
        // none left open at join time).
        assert!(stats.connections >= 51, "connections {}", stats.connections);
        assert_eq!(stats.open_conns, 0);
    }

    #[test]
    fn flame_rendering_indents_children_under_parents() {
        let trace = Json::parse(
            r#"{"trace_id":"rt-1","spans":[
                {"id":1,"parent":null,"kind":"request","label":"worst:d=2,n=6","start_us":0,"end_us":900,"status":"ok"},
                {"id":2,"parent":1,"kind":"route","label":"a(t0) > b(t1)","start_us":5,"end_us":5,"status":"ok"},
                {"id":3,"parent":1,"kind":"dispatch","label":"a:7171","start_us":10,"end_us":880,"status":"ok"},
                {"id":4,"parent":9,"kind":"orphan","label":"grafted","start_us":1,"end_us":2,"status":"ok"}
            ]}"#,
        )
        .unwrap();
        let mut out = String::new();
        render_trace_tree(&trace, &mut out);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(
            lines[0].contains("request worst:d=2,n=6 [0us +900us] ok"),
            "{out}"
        );
        // Children are indented one level deeper than the root.
        assert!(lines[1].starts_with("    route"), "{out}");
        assert!(
            lines[2].contains("dispatch a:7171 [10us +870us] ok"),
            "{out}"
        );
        // A span whose parent is missing from the tree prints as a root.
        assert!(lines[3].starts_with("  orphan"), "{out}");
    }

    #[test]
    fn multi_tenant_runs_break_the_report_out_per_tenant() {
        let server = Server::start(Config {
            workers: 2,
            ..Config::default()
        })
        .unwrap();
        let report = run_loadgen(&LoadgenConfig {
            addr: server.local_addr().to_string(),
            conns: 2,
            duration: Duration::from_millis(300),
            spec: "worst:d=2,n=6".into(),
            algo: "seq-solve".into(),
            deadline_ms: Some(5_000),
            pipeline: 4,
            tenants: 3,
            include_server_stats: true,
            ..LoadgenConfig::default()
        });
        assert_eq!(report.transport_errors, 0, "report: {}", report.render());
        assert!(report.ok > 0);
        // Every request was tagged, so the per-tenant slices cover the
        // whole run exactly.
        assert_eq!(report.tenants.len(), 3, "report: {}", report.render());
        let tags: Vec<&str> = report.tenants.iter().map(|t| t.tenant.as_str()).collect();
        assert_eq!(tags, ["t0", "t1", "t2"]);
        let sent: u64 = report.tenants.iter().map(|t| t.sent).sum();
        let ok: u64 = report.tenants.iter().map(|t| t.ok).sum();
        let shed: u64 = report.tenants.iter().map(|t| t.shed).sum();
        assert_eq!(sent, report.sent);
        assert_eq!(ok, report.ok);
        assert_eq!(shed, report.shed);
        for t in &report.tenants {
            assert_eq!(t.latencies_us.len() as u64, t.ok);
        }
        // The report surfaces the breakdown in both formats...
        let j = report.to_json();
        let jt = j.get("tenants").expect("tenants object in json");
        assert_eq!(
            jt.get("t0")
                .and_then(|t| t.get("ok"))
                .and_then(Json::as_u64),
            Some(report.tenants[0].ok)
        );
        assert!(report.render().contains("tenant t0:"));
        // ...and the server kept its own per-tenant cards for the same
        // tags (dispatch-side accounting, so totals can differ from
        // the client's view only by coalesced followers — never by tag).
        let stats = report.server_stats.as_ref().expect("server stats embedded");
        let server_tenants = stats.get("tenants").expect("server tenants object");
        for tag in ["t0", "t1", "t2"] {
            assert!(
                server_tenants.get(tag).is_some(),
                "server stats missing tenant {tag}: {stats:?}"
            );
        }
        server.request_shutdown();
        server.join();
    }

    #[test]
    fn distinct_mode_defeats_cache_and_coalescing() {
        let server = Server::start(Config {
            workers: 2,
            ..Config::default()
        })
        .unwrap();
        let report = run_loadgen(&LoadgenConfig {
            addr: server.local_addr().to_string(),
            conns: 2,
            duration: Duration::from_millis(300),
            spec: "crit:d=2,n=4".into(),
            algo: "seq-solve".into(),
            deadline_ms: Some(5_000),
            pipeline: 4,
            distinct: true,
            include_server_stats: true,
            ..LoadgenConfig::default()
        });
        assert_eq!(report.transport_errors, 0, "report: {}", report.render());
        assert!(report.ok > 0);
        assert_eq!(report.cached, 0, "every key is distinct: no cache hits");
        assert_eq!(report.coalesced, 0, "no two requests share a key");
        let stats = report.server_stats.as_ref().expect("server stats embedded");
        assert_eq!(
            stats.get("cache_hits").and_then(Json::as_u64),
            Some(0),
            "server agrees nothing hit the cache"
        );
        assert!(stats.get("batches").and_then(Json::as_u64).unwrap_or(0) > 0);
        let j = report.to_json();
        assert!(j.get("server").is_some());
        server.request_shutdown();
        server.join();
    }
}
