//! Request validation and engine dispatch.
//!
//! A request names a workload with the [`GenSpec`] string format and an
//! algorithm with the same `name:key=val,...` syntax.  Validation is
//! front-loaded on the connection thread so malformed work is rejected
//! *before* it occupies a queue slot; [`evaluate`] then runs on a
//! worker with the request's cancellation flag threaded into every
//! engine.  All algorithms honour the flag cooperatively, so a
//! deadline bounds any admitted workload and no size ceiling is
//! needed.

use gt_core::engine::{Cancelled, CascadeEngine, RoundEngine, TtSearch, YbwEngine};
use gt_games::{Connect4, Game, Nim, TicTacToe};
use gt_sim::{parallel_alphabeta_cancellable, parallel_solve_cancellable};
use gt_tree::minimax::{
    seq_alphabeta_cancellable, seq_alphabeta_windowed_cancellable, seq_solve_cancellable,
};
use gt_tree::par::{par_alphabeta, par_solve};
use gt_tree::split::parse_path;
use gt_tree::{GenSpec, SourceVisitor, SubtreeSpec, SubtreeView, TreeSource, Value};
use std::collections::BTreeMap;
use std::sync::atomic::AtomicBool;

/// A parsed algorithm selector: `name` or `name:key=val,...`.
#[derive(Debug, Clone, PartialEq)]
pub struct AlgoSpec {
    /// Algorithm name (`seq-solve`, `alphabeta`, `parallel-solve`,
    /// `round`, `cascade`, `ybw`, `tt`, `par-alphabeta`, `par-solve`).
    pub name: String,
    /// Key/value parameters (`w`, `cutoff`, ...).
    pub params: BTreeMap<String, String>,
}

impl AlgoSpec {
    /// Parse an algorithm selector (same grammar as [`GenSpec`]).
    pub fn parse(text: &str) -> Result<AlgoSpec, String> {
        let g = GenSpec::parse(text)?;
        Ok(AlgoSpec {
            name: g.kind,
            params: g.params,
        })
    }

    fn u32_param(&self, key: &str, default: u32) -> Result<u32, String> {
        match self.params.get(key) {
            Some(v) => v.parse().map_err(|e| format!("bad {key}={v}: {e}")),
            None => Ok(default),
        }
    }

    /// Evaluation width (`w`), defaulting to 1.
    pub fn width(&self) -> Result<u32, String> {
        let w = self.u32_param("w", 1)?;
        if w == 0 {
            return Err("width w must be at least 1".into());
        }
        Ok(w)
    }

    /// Canonical string form: name plus sorted parameters.
    pub fn canonical(&self) -> String {
        canonical_text(&self.name, &self.params)
    }
}

fn canonical_text(kind: &str, params: &BTreeMap<String, String>) -> String {
    let mut out = kind.to_string();
    for (i, (k, v)) in params.iter().enumerate() {
        out.push(if i == 0 { ':' } else { ',' });
        out.push_str(k);
        out.push('=');
        out.push_str(v);
    }
    out
}

/// The result cache key: canonical spec and algorithm, joined.  Two
/// textually different requests naming the same work (reordered or
/// re-spaced parameters) collapse to one key.
pub fn canonical_key(spec: &GenSpec, algo: &AlgoSpec) -> String {
    format!(
        "{}|{}",
        canonical_text(&spec.kind, &spec.params),
        algo.canonical()
    )
}

/// What an engine produced for one request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalOutcome {
    /// Root value.
    pub value: Value,
    /// Work performed: leaves evaluated (tree engines) or positions
    /// evaluated (game search).
    pub work: u64,
    /// Parallel steps/rounds, where the algorithm counts them; 0 for
    /// purely sequential algorithms.
    pub steps: u64,
    /// Largest parallel degree of any step — the paper's "processors
    /// used" (1 for sequential algorithms; for the fork-join engines,
    /// the configured concurrency bound; for `par-*`, the worker
    /// threads granted).
    pub max_width: u32,
    /// Pruning events: α≥β cutoffs, NOR short-circuits, or (for `tt`)
    /// transposition-table hits — searches avoided rather than done.
    pub pruned: u64,
    /// Work-stealing engines only: tasks taken from another worker's
    /// deque.  0 for every other algorithm.
    pub steals: u64,
    /// Work-stealing engines only: tasks retired unrun (or discarded
    /// on late arrival) by a cutoff — the pre-emption rule firing.
    pub retired: u64,
    /// Work-stealing engines only: shared-window bound movements.
    pub narrowings: u64,
}

impl EvalOutcome {
    /// The reply's `work` object: the root value plus the paper's work
    /// counters (leaves ≈ W(T), steps ≈ rounds, max_width ≈ processors
    /// used, and the work-stealing pre-emption counters).
    pub fn work_json(&self) -> gt_analysis::Json {
        use gt_analysis::Json;
        Json::obj([
            ("value", Json::from(self.value)),
            ("leaves", Json::from(self.work)),
            ("steps", Json::from(self.steps)),
            ("max_width", Json::from(self.max_width)),
            ("pruned", Json::from(self.pruned)),
            ("steals", Json::from(self.steals)),
            ("retired", Json::from(self.retired)),
            ("narrowed", Json::from(self.narrowings)),
        ])
    }
}

/// Why an evaluation did not produce an outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The request was invalid in a way validation did not catch.
    Bad(String),
    /// The cancellation flag was set mid-flight.
    Cancelled,
}

impl From<Cancelled> for EvalError {
    fn from(_: Cancelled) -> Self {
        EvalError::Cancelled
    }
}

/// A request that passed validation and may enter the queue.
#[derive(Debug, Clone)]
pub struct ValidatedRequest {
    /// The workload.
    pub spec: GenSpec,
    /// The algorithm.
    pub algo: AlgoSpec,
    /// Result-cache key.
    pub cache_key: String,
}

const ALGOS: &[&str] = &[
    "seq-solve",
    "alphabeta",
    "parallel-solve",
    "round",
    "cascade",
    "ybw",
    "tt",
    "par-alphabeta",
    "par-solve",
];

/// Names of games the `tt` algorithm accepts as `spec` kinds.
const GAMES: &[&str] = &["ttt", "tictactoe", "connect4", "nim"];

/// Check a request end to end: both strings parse, the algorithm
/// exists, the workload builds, and the tree family matches the
/// algorithm's semantics.
pub fn validate(spec_text: &str, algo_text: &str) -> Result<ValidatedRequest, String> {
    let spec = GenSpec::parse(spec_text)?;
    let algo = AlgoSpec::parse(algo_text)?;
    if !ALGOS.contains(&algo.name.as_str()) {
        return Err(format!(
            "unknown algorithm {:?} (expected one of {})",
            algo.name,
            ALGOS.join(", ")
        ));
    }
    algo.width()?;
    if algo.name == "tt" {
        if !GAMES.contains(&spec.kind.as_str()) {
            return Err(format!(
                "algorithm \"tt\" searches a game, not a generated tree; \
                 spec kind must be one of {} (got {:?})",
                GAMES.join(", "),
                spec.kind
            ));
        }
        // Depth must parse; the search itself is cancellable, so no
        // size ceiling is needed.
        tt_depth(&spec)?;
    } else {
        // Tree algorithms: the generator must build, and the family
        // must match the algorithm's semantics.
        spec.build()?;
        match algo.name.as_str() {
            "seq-solve" if spec.is_minmax() => {
                return Err("seq-solve evaluates NOR trees; use alphabeta for minmax specs".into());
            }
            "par-solve" if spec.is_minmax() => {
                return Err(
                    "par-solve evaluates NOR trees; use par-alphabeta for minmax specs".into(),
                );
            }
            "alphabeta" | "ybw" | "par-alphabeta" if !spec.is_minmax() => {
                return Err(format!(
                    "{} evaluates minmax trees; use seq-solve/round/cascade/par-solve \
                     for NOR specs",
                    algo.name
                ));
            }
            _ => {}
        }
    }
    let cache_key = canonical_key(&spec, &algo);
    Ok(ValidatedRequest {
        spec,
        algo,
        cache_key,
    })
}

/// A `subeval` request that passed validation.
#[derive(Debug, Clone)]
pub struct ValidatedSubeval {
    /// The subtree and its window.
    pub sub: SubtreeSpec,
    /// Result-cache key.  Embeds the path *and* the window, so a
    /// result computed under a narrow window can never satisfy a
    /// wider-window probe — fail-soft values are only bounds outside
    /// their own window.
    pub cache_key: String,
}

/// Check a `subeval` request: the spec parses and builds, the path
/// stays inside the generated tree, and the window is non-empty.
/// Absent bounds default to the full window.
pub fn validate_subeval(
    spec_text: &str,
    path_text: &str,
    alpha: Option<Value>,
    beta: Option<Value>,
) -> Result<ValidatedSubeval, String> {
    let spec = GenSpec::parse(spec_text)?;
    if GAMES.contains(&spec.kind.as_str()) {
        return Err(format!(
            "subeval decomposes generated trees, not games (got {:?})",
            spec.kind
        ));
    }
    spec.build()?;
    let path = parse_path(path_text)?;
    let alpha = alpha.unwrap_or(Value::MIN);
    let beta = beta.unwrap_or(Value::MAX);
    if alpha >= beta {
        return Err(format!("empty window {alpha}..{beta}"));
    }
    // Walk the path against the real generator so an out-of-range
    // segment is a 400, not a silently mis-seeded subtree.
    struct PathCheck<'a> {
        path: &'a [u32],
    }
    impl SourceVisitor for PathCheck<'_> {
        type Out = Result<(), String>;
        fn visit<S: TreeSource + Send + 'static>(self, src: S) -> Self::Out {
            for depth in 0..self.path.len() {
                let arity = src.arity(&self.path[..depth]);
                if arity == 0 {
                    return Err(format!(
                        "path {} descends through a leaf at depth {depth}",
                        gt_tree::split::path_text(self.path)
                    ));
                }
                if self.path[depth] >= arity {
                    return Err(format!(
                        "path segment {} at depth {depth} exceeds arity {arity}",
                        self.path[depth]
                    ));
                }
            }
            Ok(())
        }
    }
    spec.build_visit(PathCheck { path: &path })??;
    let sub = SubtreeSpec {
        spec,
        path,
        alpha,
        beta,
    };
    let cache_key = format!("sub:{}", sub.render());
    Ok(ValidatedSubeval { sub, cache_key })
}

/// Run one validated subtree evaluation on the calling thread: NOR
/// families run the short-circuit solver on the subtree view, minmax
/// families run windowed fail-soft α-β with the player chosen by the
/// path's depth parity.
pub fn evaluate_subtree(sub: &SubtreeSpec, cancel: &AtomicBool) -> Result<EvalOutcome, EvalError> {
    struct SubRun<'a> {
        sub: &'a SubtreeSpec,
        cancel: &'a AtomicBool,
    }
    impl SourceVisitor for SubRun<'_> {
        type Out = Result<EvalOutcome, EvalError>;
        fn visit<S: TreeSource + Send + 'static>(self, src: S) -> Self::Out {
            let view = SubtreeView::new(src, self.sub.path.clone());
            let st = if self.sub.spec.is_minmax() {
                seq_alphabeta_windowed_cancellable(
                    &view,
                    false,
                    self.sub.alpha,
                    self.sub.beta,
                    self.sub.maximizing(),
                    self.cancel,
                )?
            } else {
                seq_solve_cancellable(&view, false, self.cancel)?
            };
            Ok(EvalOutcome {
                value: st.value,
                work: st.leaves_evaluated,
                steps: 0,
                max_width: 1,
                pruned: st.cutoffs,
                ..Default::default()
            })
        }
    }
    sub.spec
        .build_visit(SubRun { sub, cancel })
        .map_err(EvalError::Bad)?
}

/// [`estimated_cost`] for a subtree: the whole tree's uniform leaf
/// count shrunk by the levels the path has already descended.
pub fn estimated_subtree_cost(sub: &SubtreeSpec) -> u64 {
    let d: u64 = sub
        .spec
        .params
        .get("d")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let n: u32 = sub
        .spec
        .params
        .get("n")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    d.max(1)
        .saturating_pow(n.saturating_sub(sub.path.len() as u32))
}

/// Rough size of the workload in positions/leaves, saturating.  The
/// executor classifies jobs with this: cheap deterministic specs are
/// batchable, anything big gets a dedicated dispatch.  Precision does
/// not matter — only which side of the small/large threshold a job
/// lands on, and a uniform-tree leaf count (`d^n`, or `b^d` for game
/// search) tracks real cost well enough for that.
pub fn estimated_cost(spec: &GenSpec, algo: &AlgoSpec) -> u64 {
    if algo.name == "tt" {
        let depth = tt_depth(spec).unwrap_or(8);
        let branching: u64 = match spec.kind.as_str() {
            "nim" => 3,
            "connect4" => 7,
            // ttt, tictactoe, and anything new default high.
            _ => 8,
        };
        return branching.saturating_pow(depth.min(64));
    }
    let d: u64 = spec
        .params
        .get("d")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let n: u32 = spec
        .params
        .get("n")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    d.max(1).saturating_pow(n)
}

fn tt_depth(spec: &GenSpec) -> Result<u32, String> {
    match spec.params.get("d") {
        Some(v) => v.parse().map_err(|e| format!("bad d={v}: {e}")),
        None => Ok(8),
    }
}

fn run_tt<G: Game>(game: G, depth: u32, cancel: &AtomicBool) -> Result<EvalOutcome, EvalError>
where
    G::State: Eq + std::hash::Hash,
{
    let initial = game.initial();
    let mut tt = TtSearch::new(game, 1 << 20);
    let value = tt.search_cancellable(&initial, depth, cancel)?;
    Ok(EvalOutcome {
        value,
        work: tt.stats.evals,
        steps: 0,
        max_width: 1,
        pruned: tt.stats.hits,
        ..Default::default()
    })
}

/// Run one validated request to completion (or cancellation) on the
/// calling thread, with one worker.
pub fn evaluate(
    spec: &GenSpec,
    algo: &AlgoSpec,
    cancel: &AtomicBool,
) -> Result<EvalOutcome, EvalError> {
    evaluate_with_grant(spec, algo, cancel, 1)
}

/// Run one validated request with a worker grant: the `par-*`
/// work-stealing algorithms spread the single evaluation across
/// `grant` threads (the calling thread plus `grant - 1` scoped
/// spawns, all joined before returning); every other algorithm
/// ignores the grant and runs exactly as [`evaluate`].  The one
/// cancellation flag is polled by every thread of the grant, so a
/// deadline reaper flipping it stops the whole evaluation.
pub fn evaluate_with_grant(
    spec: &GenSpec,
    algo: &AlgoSpec,
    cancel: &AtomicBool,
    grant: u32,
) -> Result<EvalOutcome, EvalError> {
    if algo.name == "tt" {
        let depth = tt_depth(spec).map_err(EvalError::Bad)?;
        return match spec.kind.as_str() {
            "ttt" | "tictactoe" => run_tt(TicTacToe, depth, cancel),
            "connect4" => run_tt(Connect4::default(), depth, cancel),
            "nim" => run_tt(Nim::default(), depth, cancel),
            other => Err(EvalError::Bad(format!("unknown game {other:?}"))),
        };
    }
    let width = algo.width().map_err(EvalError::Bad)?;
    // Run the engines through the monomorphizing visitor: each engine's
    // `arity`/`leaf_value` loop compiles against the concrete source
    // type, so the hot path pays no virtual call per node.  (On small
    // specs the dyn-dispatch tax rivals the protocol overhead.)
    struct EngineRun<'a> {
        spec: &'a GenSpec,
        algo: &'a AlgoSpec,
        width: u32,
        cancel: &'a AtomicBool,
        grant: u32,
    }
    impl SourceVisitor for EngineRun<'_> {
        type Out = Result<EvalOutcome, EvalError>;
        fn visit<S: TreeSource + Send + 'static>(self, src: S) -> Self::Out {
            let EngineRun {
                spec,
                algo,
                width,
                cancel,
                grant,
            } = self;
            let outcome = match algo.name.as_str() {
                "seq-solve" => {
                    let st = seq_solve_cancellable(&src, false, cancel)?;
                    EvalOutcome {
                        value: st.value,
                        work: st.leaves_evaluated,
                        steps: 0,
                        max_width: 1,
                        pruned: st.cutoffs,
                        ..Default::default()
                    }
                }
                "alphabeta" => {
                    let st = seq_alphabeta_cancellable(&src, false, cancel)?;
                    EvalOutcome {
                        value: st.value,
                        work: st.leaves_evaluated,
                        steps: 0,
                        max_width: 1,
                        pruned: st.cutoffs,
                        ..Default::default()
                    }
                }
                "parallel-solve" => {
                    let st = if spec.is_minmax() {
                        parallel_alphabeta_cancellable(&src, width, false, cancel)?
                    } else {
                        parallel_solve_cancellable(&src, width, false, cancel)?
                    };
                    EvalOutcome {
                        value: st.value,
                        work: st.total_work,
                        steps: st.steps,
                        max_width: st.processors_used,
                        pruned: st.cutoffs,
                        ..Default::default()
                    }
                }
                "round" => {
                    let engine = RoundEngine::with_width(width);
                    let r = if spec.is_minmax() {
                        engine.solve_minmax_cancellable(&src, cancel)?
                    } else {
                        engine.solve_nor_cancellable(&src, cancel)?
                    };
                    EvalOutcome {
                        value: r.value,
                        work: r.leaves_evaluated,
                        steps: r.rounds,
                        max_width: r.max_round_size,
                        pruned: 0,
                        ..Default::default()
                    }
                }
                "cascade" => {
                    let engine = CascadeEngine::with_width(width);
                    let r = if spec.is_minmax() {
                        engine.solve_minmax_cancellable(&src, cancel)?
                    } else {
                        engine.solve_nor_cancellable(&src, cancel)?
                    };
                    EvalOutcome {
                        value: r.value,
                        work: r.leaves_evaluated,
                        steps: r.rounds,
                        max_width: r.max_round_size,
                        pruned: 0,
                        ..Default::default()
                    }
                }
                "ybw" => {
                    let engine = match algo.params.get("cutoff") {
                        Some(v) => YbwEngine::with_cutoff(
                            v.parse()
                                .map_err(|e| EvalError::Bad(format!("bad cutoff={v}: {e}")))?,
                        ),
                        None => YbwEngine::default(),
                    };
                    let r = engine.solve_minmax_cancellable(&src, cancel)?;
                    EvalOutcome {
                        value: r.value,
                        work: r.leaves_evaluated,
                        steps: r.rounds,
                        // YBW does not track its own frontier width.
                        max_width: r.max_round_size.max(1),
                        pruned: 0,
                        ..Default::default()
                    }
                }
                "par-alphabeta" => {
                    let st = par_alphabeta(&src, grant.max(1), cancel)?;
                    EvalOutcome {
                        value: st.value,
                        work: st.leaves_evaluated,
                        steps: 0,
                        max_width: st.workers,
                        pruned: st.cutoffs,
                        steals: st.steals,
                        retired: st.retired,
                        narrowings: st.window_narrowings,
                    }
                }
                "par-solve" => {
                    let st = par_solve(&src, grant.max(1), cancel)?;
                    EvalOutcome {
                        value: st.value,
                        work: st.leaves_evaluated,
                        steps: 0,
                        max_width: st.workers,
                        pruned: st.cutoffs,
                        steals: st.steals,
                        retired: st.retired,
                        narrowings: st.window_narrowings,
                    }
                }
                other => return Err(EvalError::Bad(format!("unknown algorithm {other:?}"))),
            };
            Ok(outcome)
        }
    }
    spec.build_visit(EngineRun {
        spec,
        algo,
        width,
        cancel,
        grant,
    })
    .map_err(EvalError::Bad)?
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    fn never() -> AtomicBool {
        AtomicBool::new(false)
    }

    #[test]
    fn validates_and_canonicalizes() {
        let v = validate("worst: n=4 , d=2", "cascade:w=2").unwrap();
        assert_eq!(v.cache_key, "worst:d=2,n=4|cascade:w=2");
        // Reordered parameters produce the same key.
        let v2 = validate("worst:d=2,n=4", "cascade:w=2").unwrap();
        assert_eq!(v.cache_key, v2.cache_key);
    }

    #[test]
    fn rejects_unknown_or_mismatched_algorithms() {
        assert!(validate("worst:n=4", "quantum").is_err());
        assert!(validate("worst:n=4", "cascade:w=0").is_err());
        assert!(validate("minmax:n=4", "seq-solve").is_err());
        assert!(validate("worst:n=4", "alphabeta").is_err());
        assert!(validate("worst:n=4", "ybw").is_err());
        assert!(validate("nope:n=4", "cascade").is_err());
        assert!(validate("worst:n=4", "tt").is_err(), "tt needs a game");
        assert!(validate("ttt:d=5", "tt").is_ok());
    }

    #[test]
    fn large_workloads_are_admitted_for_every_algorithm() {
        // worst:d=2,n=20 has 2^20 leaves; with cancellation threaded
        // through every engine there is no admission ceiling.
        for algo in ["seq-solve", "parallel-solve:w=4", "cascade:w=4"] {
            assert!(validate("worst:d=2,n=20", algo).is_ok(), "{algo}");
        }
    }

    #[test]
    fn engines_agree_on_a_nor_workload() {
        let spec = GenSpec::parse("crit:d=2,n=8,seed=11").unwrap();
        let flag = never();
        let baseline = evaluate(&spec, &AlgoSpec::parse("seq-solve").unwrap(), &flag)
            .unwrap()
            .value;
        for algo in ["parallel-solve:w=3", "round:w=2", "cascade:w=2"] {
            let got = evaluate(&spec, &AlgoSpec::parse(algo).unwrap(), &flag).unwrap();
            assert_eq!(got.value, baseline, "{algo}");
            assert!(got.work >= 1, "{algo}");
        }
    }

    #[test]
    fn engines_agree_on_a_minmax_workload() {
        let spec = GenSpec::parse("minmax:d=3,n=4,lo=-9,hi=9,seed=3").unwrap();
        let flag = never();
        let baseline = evaluate(&spec, &AlgoSpec::parse("alphabeta").unwrap(), &flag)
            .unwrap()
            .value;
        for algo in ["parallel-solve:w=2", "round:w=2", "cascade:w=2", "ybw"] {
            let got = evaluate(&spec, &AlgoSpec::parse(algo).unwrap(), &flag).unwrap();
            assert_eq!(got.value, baseline, "{algo}");
        }
    }

    #[test]
    fn par_algos_validate_family_rules() {
        assert!(validate("minmax:n=4,seed=1", "par-solve").is_err());
        assert!(validate("worst:n=4", "par-alphabeta").is_err());
        assert!(validate("worst:n=4", "par-solve").is_ok());
        assert!(validate("minmax:n=4,seed=1", "par-alphabeta").is_ok());
    }

    #[test]
    fn par_engines_agree_with_sequential_baselines_at_any_grant() {
        let flag = never();
        let nor = GenSpec::parse("crit:d=2,n=8,seed=11").unwrap();
        let want = evaluate(&nor, &AlgoSpec::parse("seq-solve").unwrap(), &flag)
            .unwrap()
            .value;
        for grant in [1u32, 2, 4] {
            let got =
                evaluate_with_grant(&nor, &AlgoSpec::parse("par-solve").unwrap(), &flag, grant)
                    .unwrap();
            assert_eq!(got.value, want, "par-solve grant={grant}");
            assert!(got.max_width >= 1 && got.max_width <= grant.max(1));
        }
        let mm = GenSpec::parse("minmax:d=3,n=4,lo=-9,hi=9,seed=3").unwrap();
        let want = evaluate(&mm, &AlgoSpec::parse("alphabeta").unwrap(), &flag)
            .unwrap()
            .value;
        for grant in [1u32, 2, 4] {
            let got = evaluate_with_grant(
                &mm,
                &AlgoSpec::parse("par-alphabeta").unwrap(),
                &flag,
                grant,
            )
            .unwrap();
            assert_eq!(got.value, want, "par-alphabeta grant={grant}");
        }
    }

    #[test]
    fn par_cancellation_stops_every_thread_of_the_grant() {
        let flag = AtomicBool::new(true);
        for (spec, algo) in [
            ("worst:d=2,n=14", "par-solve"),
            ("minmax-worst:d=2,n=14", "par-alphabeta"),
        ] {
            let spec = GenSpec::parse(spec).unwrap();
            let got = evaluate_with_grant(&spec, &AlgoSpec::parse(algo).unwrap(), &flag, 4);
            assert_eq!(got, Err(EvalError::Cancelled), "{algo}");
        }
    }

    #[test]
    fn work_json_carries_the_par_counters() {
        let o = EvalOutcome {
            value: 3,
            work: 10,
            steals: 2,
            retired: 1,
            narrowings: 4,
            ..Default::default()
        };
        let text = o.work_json().render();
        assert!(text.contains("\"steals\":2"), "{text}");
        assert!(text.contains("\"retired\":1"), "{text}");
        assert!(text.contains("\"narrowed\":4"), "{text}");
    }

    #[test]
    fn tt_solves_tictactoe_to_a_draw() {
        let spec = GenSpec::parse("ttt:d=9").unwrap();
        let got = evaluate(&spec, &AlgoSpec::parse("tt").unwrap(), &never()).unwrap();
        assert_eq!(got.value, 0, "perfect tic-tac-toe is a draw");
        assert!(got.work > 0);
    }

    #[test]
    fn estimated_cost_tracks_leaf_counts() {
        let cost = |s: &str, a: &str| {
            estimated_cost(&GenSpec::parse(s).unwrap(), &AlgoSpec::parse(a).unwrap())
        };
        assert_eq!(cost("worst:d=2,n=6", "seq-solve"), 64);
        assert_eq!(cost("worst:d=2,n=12", "seq-solve"), 4096);
        assert_eq!(cost("crit:d=3,n=4,seed=1", "cascade:w=2"), 81);
        // Saturates instead of overflowing.
        assert_eq!(cost("worst:d=2,n=4000", "seq-solve"), u64::MAX);
        // Game search scales with depth.
        assert!(cost("ttt:d=9", "tt") > cost("ttt:d=3", "tt"));
        assert!(cost("nim:d=6", "tt") < cost("connect4:d=6", "tt"));
    }

    #[test]
    fn subeval_validation_checks_path_and_window() {
        assert!(validate_subeval("minmax:d=3,n=4,seed=2", "2.0", None, None).is_ok());
        assert!(validate_subeval("crit:d=2,n=6,seed=1", "", None, None).is_ok());
        // Segment 3 exceeds arity 3 (indices are 0..3).
        assert!(validate_subeval("minmax:d=3,n=4", "3", None, None).is_err());
        // A path longer than the tree descends through a leaf.
        assert!(validate_subeval("worst:d=2,n=2", "0.1.0", None, None).is_err());
        assert!(validate_subeval("minmax:d=3,n=4", "1", Some(5), Some(5)).is_err());
        assert!(
            validate_subeval("ttt:d=9", "", None, None).is_err(),
            "games don't split"
        );
        assert!(validate_subeval("minmax:d=3,n=4", "x.y", None, None).is_err());
    }

    #[test]
    fn subeval_cache_keys_are_window_and_path_scoped() {
        let key = |path: &str, a: Option<i64>, b: Option<i64>| {
            validate_subeval("minmax:d=3,n=4,seed=2", path, a, b)
                .unwrap()
                .cache_key
        };
        // A result computed under a narrow window must never satisfy a
        // wider-window probe: every distinct (path, α, β) triple gets
        // its own exact-match key.
        assert_ne!(key("1", Some(0), Some(5)), key("1", None, None));
        assert_ne!(key("1", Some(0), Some(5)), key("1", Some(0), Some(6)));
        assert_ne!(key("1", None, None), key("2", None, None));
        // Same triple, same key (and the full window is canonical
        // whether spelled out or defaulted).
        assert_eq!(
            key("1", Some(i64::MIN), Some(i64::MAX)),
            key("1", None, None)
        );
    }

    #[test]
    fn subeval_matches_the_tree_layer_reference() {
        use gt_tree::split::sub_evaluate;
        for (spec, path, a, b) in [
            ("minmax:d=3,n=4,seed=7", "2", Some(-4), Some(9)),
            ("minmax-best:d=2,n=6,value=3", "0.1", None, None),
            ("crit:d=2,n=7,seed=5", "1", None, None),
            ("nor:d=3,n=4,seed=9", "", None, None),
        ] {
            let v = validate_subeval(spec, path, a, b).unwrap();
            let got = evaluate_subtree(&v.sub, &never()).unwrap();
            let want = sub_evaluate(&v.sub).unwrap();
            assert_eq!(got.value, want.value, "{spec}#{path}");
            assert_eq!(got.work, want.leaves_evaluated, "{spec}#{path}");
        }
    }

    #[test]
    fn subeval_cost_shrinks_with_depth() {
        let cost = |spec: &str, path: &str| {
            estimated_subtree_cost(&validate_subeval(spec, path, None, None).unwrap().sub)
        };
        assert_eq!(cost("worst:d=2,n=6", ""), 64);
        assert_eq!(cost("worst:d=2,n=6", "0"), 32);
        assert_eq!(cost("worst:d=2,n=6", "0.1.0"), 8);
        assert_eq!(cost("minmax:d=3,n=4", "2.1"), 9);
    }

    #[test]
    fn subeval_cancellation_surfaces() {
        let flag = AtomicBool::new(true);
        let v = validate_subeval("minmax:d=2,n=14,seed=1", "0", None, None).unwrap();
        assert_eq!(evaluate_subtree(&v.sub, &flag), Err(EvalError::Cancelled));
    }

    #[test]
    fn cancellation_surfaces_as_eval_error() {
        let flag = AtomicBool::new(false);
        flag.store(true, Ordering::Relaxed);
        // Every engine family honours the flag, including the
        // formerly-uncancellable baselines.
        for (spec, algo) in [
            ("worst:d=2,n=12", "cascade:w=2"),
            ("worst:d=2,n=12", "seq-solve"),
            ("worst:d=2,n=12", "parallel-solve:w=2"),
            ("minmax:d=2,n=12,seed=1", "alphabeta"),
        ] {
            let spec = GenSpec::parse(spec).unwrap();
            let got = evaluate(&spec, &AlgoSpec::parse(algo).unwrap(), &flag);
            assert_eq!(got, Err(EvalError::Cancelled), "{algo}");
        }
    }
}
