//! The evaluation server: accept loop, pipelined connection handlers,
//! worker pool, sharded result cache, single-flight coalescing, and
//! graceful shutdown.
//!
//! ## Thread structure
//!
//! ```text
//! accept thread ──spawns──▶ one reader thread per connection
//! reader threads ──spawn (≤ conn_window each)──▶ request threads
//! request threads ──bounded queue──▶ worker pool (shared receiver)
//! workers ──publish into the request's Flight──▶ every parked waiter
//! ```
//!
//! Each connection is **pipelined**: its reader thread keeps reading
//! NDJSON lines, answers control ops and cache hits inline, and hands
//! every miss to a detached request thread (at most `conn_window` of
//! them in flight per connection).  Replies go out in completion
//! order through a shared writer, correlated by the echoed `id`; a
//! client that keeps one request outstanding observes the old strict
//! request/reply alternation unchanged.
//!
//! ## Single flight
//!
//! A miss first joins the [`FlightTable`].  The first request for a
//! canonical key (the *leader*) pushes the job onto the bounded queue;
//! every concurrent duplicate parks on the leader's [`Flight`] and is
//! counted as a `coalesced_hit` — one engine run, N replies.  The
//! worker inserts the outcome into the cache *before* publishing, so
//! by the time any waiter (or any later request) looks, the result is
//! already cached.
//!
//! ## Deadlines
//!
//! Every eval waits on its flight only until its own deadline
//! (request `deadline_ms` or the server default), then answers
//! `timeout` right away.  Abandoning a flight only cancels the engine
//! run when the abandoner was the *last* waiter; otherwise the run
//! keeps going for the others.
//!
//! ## Shutdown
//!
//! `request_shutdown` (or a `shutdown` request, or the CLI's SIGINT
//! handler) sets a flag that every loop polls: the accept loop stops
//! accepting, readers stop reading, each connection drains its
//! in-flight window (bounded by the requests' own deadlines), new
//! evals are refused with `draining`, and [`Server::join`] reaps
//! every thread before handing back the final metrics snapshot.

use crate::cache::ShardedCache;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::protocol::{error_line, ok_line, ErrorCode, Op, Request, PROTOCOL_VERSION};
use crate::queue::{bounded, BoundedSender, PushError};
use crate::singleflight::{Flight, FlightResult, FlightTable, Joined};
use crate::workload::{evaluate, validate, AlgoSpec, EvalError, EvalOutcome, ValidatedRequest};
use gt_analysis::Json;
use gt_tree::GenSpec;
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Longest accepted request line; longer input closes the connection.
const MAX_LINE_BYTES: usize = 64 * 1024;

/// How often blocked loops poll the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Algorithm used when an eval names none: cancellable and valid for
/// both NOR and minmax workloads.
const DEFAULT_ALGO: &str = "cascade:w=1";

/// Server configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker threads evaluating requests.
    pub workers: usize,
    /// Bounded queue depth; pushes beyond it are shed with `busy`.
    pub queue_depth: usize,
    /// Result-cache entries across all shards (0 disables caching).
    pub cache_capacity: usize,
    /// Cache shards (rounded up to a power of two).
    pub cache_shards: usize,
    /// Concurrent evals allowed per connection (pipelining window);
    /// requests past it wait in the reader until a slot frees.
    pub conn_window: usize,
    /// Deadline applied to evals that do not carry `deadline_ms`.
    pub default_deadline_ms: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_depth: 64,
            cache_capacity: 256,
            cache_shards: 8,
            conn_window: 32,
            default_deadline_ms: 10_000,
        }
    }
}

/// One queued evaluation.  The flight carries the cancellation flag
/// and every waiter; the worker publishes its result there.
struct Job {
    spec: GenSpec,
    algo: AlgoSpec,
    cache_key: String,
    flight: Arc<Flight>,
}

type ResultCache = Arc<ShardedCache<String, EvalOutcome>>;

/// Everything a connection thread needs, cheap to clone.
#[derive(Clone)]
struct Shared {
    metrics: Arc<Metrics>,
    cache: ResultCache,
    flights: Arc<FlightTable>,
    job_tx: BoundedSender<Job>,
    shutdown: Arc<AtomicBool>,
    default_deadline_ms: u64,
    conn_window: usize,
}

/// Counts a connection's in-flight evals; the reader blocks past the
/// window and drains to zero before closing, so every reply is
/// written before the connection thread exits.
struct Window {
    slots: Mutex<usize>,
    cv: Condvar,
}

impl Window {
    fn new() -> Window {
        Window {
            slots: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    fn acquire(&self, limit: usize) {
        let mut n = self.slots.lock().unwrap();
        while *n >= limit.max(1) {
            n = self.cv.wait(n).unwrap();
        }
        *n += 1;
    }

    fn release(&self) {
        *self.slots.lock().unwrap() -= 1;
        self.cv.notify_all();
    }

    fn drain(&self) {
        let mut n = self.slots.lock().unwrap();
        while *n > 0 {
            n = self.cv.wait(n).unwrap();
        }
    }
}

/// A running evaluation server.
pub struct Server {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<Metrics>,
    accept_handle: JoinHandle<()>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    workers: Vec<JoinHandle<()>>,
    // Dropped in `join` so idle workers see the channel close.
    job_tx: Option<BoundedSender<Job>>,
}

impl Server {
    /// Bind and start accepting; returns once the listener is live.
    pub fn start(config: Config) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(Metrics::default());
        let cache: ResultCache = Arc::new(ShardedCache::new(
            config.cache_capacity,
            config.cache_shards,
        ));
        let flights = Arc::new(FlightTable::new());
        let (job_tx, job_rx) = bounded::<Job>(config.queue_depth);
        let job_rx = Arc::new(Mutex::new(job_rx));

        let workers = (0..config.workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&job_rx);
                let cache = Arc::clone(&cache);
                let flights = Arc::clone(&flights);
                let metrics = Arc::clone(&metrics);
                thread::spawn(move || worker_loop(&rx, &cache, &flights, &metrics))
            })
            .collect();

        let shared = Shared {
            metrics: Arc::clone(&metrics),
            cache,
            flights,
            job_tx: job_tx.clone(),
            shutdown: Arc::clone(&shutdown),
            default_deadline_ms: config.default_deadline_ms,
            conn_window: config.conn_window,
        };
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_handle = {
            let conns = Arc::clone(&conns);
            let shutdown = Arc::clone(&shutdown);
            thread::spawn(move || accept_loop(&listener, &shared, &conns, &shutdown))
        };

        Ok(Server {
            local_addr,
            shutdown,
            metrics,
            accept_handle,
            conns,
            workers,
            job_tx: Some(job_tx),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared shutdown flag — hand this to a signal handler.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// The live metrics registry.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// Begin a graceful drain (idempotent, returns immediately).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Drain and reap every thread; returns the final metrics.  Call
    /// [`Server::request_shutdown`] first (or let a client's `shutdown`
    /// request do it) or this blocks until one arrives.
    pub fn join(mut self) -> MetricsSnapshot {
        let _ = self.accept_handle.join();
        // The accept loop has exited, so the connection list is final.
        // Each connection drains its window before its thread exits.
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.conns.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
        // Close the queue: every connection-side sender is gone now.
        drop(self.job_tx.take());
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.metrics.snapshot()
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Shared,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    shutdown: &AtomicBool,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
                let shared = shared.clone();
                let handle = thread::spawn(move || connection_loop(stream, &shared));
                conns.lock().unwrap().push(handle);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(POLL_INTERVAL),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => thread::sleep(POLL_INTERVAL),
        }
    }
}

/// Read one newline-terminated line, polling the shutdown flag while
/// idle.  `Ok(true)` means a complete line is in `line`; `Ok(false)`
/// means the connection should close (EOF, shutdown, or an over-long
/// line).
fn read_request_line(
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
    shutdown: &AtomicBool,
) -> std::io::Result<bool> {
    line.clear();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(false);
        }
        // Cap the line length; `take` makes `read_line` stop early and
        // report a clean pseudo-EOF instead of buffering unboundedly.
        let budget = (MAX_LINE_BYTES + 1).saturating_sub(line.len()) as u64;
        let mut limited = reader.take(budget);
        match limited.read_line(line) {
            Ok(0) => return Ok(false), // EOF
            Ok(_) => {
                if line.ends_with('\n') {
                    return Ok(true);
                }
                if line.len() > MAX_LINE_BYTES {
                    return Ok(false); // over-long line: cut the connection
                }
                // Partial line followed by EOF.
                return Ok(false);
            }
            Err(e)
                if e.kind() == ErrorKind::WouldBlock
                    || e.kind() == ErrorKind::TimedOut
                    || e.kind() == ErrorKind::Interrupted =>
            {
                // Read timeout with a possibly partial line buffered in
                // `line`; keep it and retry — `read_line` appends.
                continue;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Write one reply line through the connection's shared writer.
fn write_reply(writer: &Mutex<TcpStream>, reply: &str) -> std::io::Result<()> {
    let mut w = writer.lock().unwrap();
    w.write_all(reply.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// How one request line is to be answered.
enum Handled {
    /// Reply computed on the reader thread (control ops, cache hits,
    /// and every error that needs no engine run).
    Inline(String),
    /// A cache miss that must go through the flight table; runs on a
    /// request thread so the reader can keep reading.
    Dispatch {
        id: Option<String>,
        validated: ValidatedRequest,
        deadline: Instant,
        start: Instant,
    },
}

fn connection_loop(stream: TcpStream, shared: &Shared) {
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    // Replies are small writes the client may block on; Nagle would
    // hold them for the peer's delayed ACK (~40ms per request).
    let _ = stream.set_nodelay(true);
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let window = Arc::new(Window::new());
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    while let Ok(true) = read_request_line(&mut reader, &mut line, &shared.shutdown) {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        shared.metrics.received.fetch_add(1, Ordering::Relaxed);
        match process_line(trimmed, shared) {
            Handled::Inline(reply) => {
                if write_reply(&writer, &reply).is_err() {
                    break;
                }
            }
            Handled::Dispatch {
                id,
                validated,
                deadline,
                start,
            } => {
                window.acquire(shared.conn_window);
                let shared = shared.clone();
                let writer = Arc::clone(&writer);
                let window = Arc::clone(&window);
                thread::spawn(move || {
                    let reply = eval_via_flight(&shared, &id, validated, deadline, start);
                    let _ = write_reply(&writer, &reply);
                    window.release();
                });
            }
        }
    }
    // Every dispatched request has written its reply once the window
    // is empty; only then may the connection thread retire.
    window.drain();
}

/// Handle one request line on the reader thread.
fn process_line(line: &str, shared: &Shared) -> Handled {
    let m = &shared.metrics;
    let request = match Request::parse(line) {
        Ok(r) => r,
        Err(e) => {
            m.bad_request.fetch_add(1, Ordering::Relaxed);
            return Handled::Inline(error_line(&None, ErrorCode::BadRequest, &e));
        }
    };
    let id = request.id.clone();
    match request.op {
        Op::Ping => Handled::Inline(ok_line(
            &id,
            vec![
                ("version", Json::from(PROTOCOL_VERSION)),
                (
                    "draining",
                    Json::Bool(shared.shutdown.load(Ordering::SeqCst)),
                ),
            ],
        )),
        Op::Stats => {
            let mut stats = m.snapshot().to_json();
            if let Json::Object(fields) = &mut stats {
                fields.push(("cache".into(), shared.cache.stats().to_json()));
            }
            Handled::Inline(ok_line(&id, vec![("stats", stats)]))
        }
        Op::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            Handled::Inline(ok_line(&id, vec![("draining", Json::Bool(true))]))
        }
        Op::Eval => process_eval(&request, shared),
    }
}

fn process_eval(request: &Request, shared: &Shared) -> Handled {
    let m = &shared.metrics;
    let id = &request.id;
    if shared.shutdown.load(Ordering::SeqCst) {
        m.draining.fetch_add(1, Ordering::Relaxed);
        return Handled::Inline(error_line(id, ErrorCode::Draining, "server is draining"));
    }
    let spec_text = request.spec.as_deref().unwrap_or_default();
    let algo_text = request.algo.as_deref().unwrap_or(DEFAULT_ALGO);
    let validated = match validate(spec_text, algo_text) {
        Ok(v) => v,
        Err(e) => {
            m.bad_request.fetch_add(1, Ordering::Relaxed);
            return Handled::Inline(error_line(id, ErrorCode::BadRequest, &e));
        }
    };
    let start = Instant::now();

    if let Some(hit) = shared.cache.get(&validated.cache_key) {
        m.cache_hits.fetch_add(1, Ordering::Relaxed);
        return Handled::Inline(ok_eval_line(id, &hit, true, false, start, m));
    }
    m.cache_misses.fetch_add(1, Ordering::Relaxed);

    let deadline_ms = request.deadline_ms.unwrap_or(shared.default_deadline_ms);
    // Clamp to a day so absurd values cannot overflow Instant math.
    let deadline = start + Duration::from_millis(deadline_ms.min(86_400_000));
    Handled::Dispatch {
        id: id.clone(),
        validated,
        deadline,
        start,
    }
}

/// Run one cache miss through the flight table: lead (enqueue the job)
/// or follow (coalesce), then wait out the result or the deadline.
fn eval_via_flight(
    shared: &Shared,
    id: &Option<String>,
    validated: ValidatedRequest,
    deadline: Instant,
    start: Instant,
) -> String {
    let m = &shared.metrics;
    let key = validated.cache_key.clone();
    let mut coalesced = false;
    let flight = match shared.flights.join(&key) {
        Joined::Leader(flight) => {
            let job = Job {
                spec: validated.spec,
                algo: validated.algo,
                cache_key: key.clone(),
                flight: Arc::clone(&flight),
            };
            match shared.job_tx.try_push(job) {
                Ok(()) => {}
                Err(PushError::Full(_)) => {
                    // Publish so any follower that raced in is also
                    // answered instead of hanging.
                    shared.flights.publish(&key, &flight, FlightResult::Busy);
                }
                Err(PushError::Closed(_)) => {
                    shared.flights.publish(
                        &key,
                        &flight,
                        FlightResult::Failed("worker pool is gone".into()),
                    );
                }
            }
            flight
        }
        Joined::Follower(flight) => {
            m.coalesced_hits.fetch_add(1, Ordering::Relaxed);
            coalesced = true;
            flight
        }
    };
    match flight.wait(deadline) {
        Some(FlightResult::Done(outcome)) => ok_eval_line(id, &outcome, false, coalesced, start, m),
        Some(FlightResult::Cancelled) => {
            // Only reachable through drain races; waiters normally
            // leave (and count their own timeout) before a run is
            // cancelled.
            m.timeout.fetch_add(1, Ordering::Relaxed);
            error_line(id, ErrorCode::Timeout, "evaluation cancelled")
        }
        Some(FlightResult::Failed(e)) => {
            m.internal.fetch_add(1, Ordering::Relaxed);
            error_line(id, ErrorCode::Internal, &e)
        }
        Some(FlightResult::Busy) => {
            m.shed.fetch_add(1, Ordering::Relaxed);
            error_line(id, ErrorCode::Busy, "queue full")
        }
        None => {
            // Deadline passed first.  Leaving the flight already
            // cancelled the run if nobody else is waiting.
            m.timeout.fetch_add(1, Ordering::Relaxed);
            error_line(id, ErrorCode::Timeout, "deadline exceeded")
        }
    }
}

fn ok_eval_line(
    id: &Option<String>,
    outcome: &EvalOutcome,
    cached: bool,
    coalesced: bool,
    start: Instant,
    m: &Metrics,
) -> String {
    let latency_us = start.elapsed().as_micros().min(u64::MAX as u128) as u64;
    m.ok.fetch_add(1, Ordering::Relaxed);
    m.latency.record(latency_us);
    ok_line(
        id,
        vec![
            ("value", Json::from(outcome.value)),
            ("work", Json::from(outcome.work)),
            ("steps", Json::from(outcome.steps)),
            ("cached", Json::Bool(cached)),
            ("coalesced", Json::Bool(coalesced)),
            ("latency_us", Json::from(latency_us)),
        ],
    )
}

fn worker_loop(
    rx: &Arc<Mutex<Receiver<Job>>>,
    cache: &ResultCache,
    flights: &FlightTable,
    metrics: &Metrics,
) {
    loop {
        // Hold the lock only for the receive itself.
        let job = match rx.lock().unwrap().recv() {
            Ok(job) => job,
            Err(_) => return, // queue closed: all senders gone
        };
        // Every waiter already gave up (last one out set the flag):
        // skip the run, retire the flight.
        if job.flight.cancel.load(Ordering::Relaxed) {
            flights.publish(&job.cache_key, &job.flight, FlightResult::Cancelled);
            continue;
        }
        let result = match evaluate(&job.spec, &job.algo, &job.flight.cancel) {
            Ok(outcome) => {
                metrics.evaluated.fetch_add(1, Ordering::Relaxed);
                // Insert before publishing: once any waiter observes
                // the result, the cache must already have it.
                cache.insert(job.cache_key.clone(), outcome);
                FlightResult::Done(outcome)
            }
            Err(EvalError::Cancelled) => FlightResult::Cancelled,
            Err(EvalError::Bad(e)) => FlightResult::Failed(e),
        };
        flights.publish(&job.cache_key, &job.flight, result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Response;
    use std::io::BufRead;

    fn send(stream: &TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> Response {
        let mut w = stream.try_clone().unwrap();
        w.write_all(line.as_bytes()).unwrap();
        w.write_all(b"\n").unwrap();
        w.flush().unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        Response::parse(reply.trim()).unwrap()
    }

    fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
        let stream = TcpStream::connect(addr).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        (stream, reader)
    }

    #[test]
    fn serves_eval_ping_stats_and_drains() {
        let server = Server::start(Config {
            workers: 2,
            ..Config::default()
        })
        .unwrap();
        let (stream, mut reader) = connect(server.local_addr());

        let r = send(&stream, &mut reader, r#"{"op":"ping"}"#);
        assert!(r.ok);
        assert_eq!(r.body.get("version").and_then(Json::as_u64), Some(1));

        let r = send(
            &stream,
            &mut reader,
            r#"{"id":"a","spec":"worst:d=2,n=6","algo":"seq-solve"}"#,
        );
        assert!(r.ok, "eval failed: {:?}", r.error);
        assert_eq!(r.id.as_deref(), Some("a"));
        assert_eq!(r.body.get("work").and_then(Json::as_u64), Some(64));
        assert!(!r.cached());

        // Same canonical request again: cache hit.
        let r = send(
            &stream,
            &mut reader,
            r#"{"spec":"worst: n=6 ,d=2","algo":"seq-solve"}"#,
        );
        assert!(r.ok);
        assert!(r.cached());

        // Malformed line: error reply, connection survives.
        let r = send(&stream, &mut reader, "{nope");
        assert!(!r.ok);
        assert_eq!(r.status, 400);
        let r = send(&stream, &mut reader, r#"{"op":"stats"}"#);
        let stats = r.body.get("stats").unwrap();
        assert_eq!(stats.get("cache_hits").and_then(Json::as_u64), Some(1));
        assert_eq!(stats.get("bad_request").and_then(Json::as_u64), Some(1));
        // The stats snapshot also reports the sharded cache.
        let cache = stats.get("cache").unwrap();
        assert_eq!(cache.get("len").and_then(Json::as_u64), Some(1));
        assert_eq!(cache.get("shards").and_then(Json::as_u64), Some(8));

        let r = send(&stream, &mut reader, r#"{"op":"shutdown"}"#);
        assert!(r.ok);
        let snapshot = server.join();
        assert_eq!(snapshot.ok, 2);
        assert_eq!(snapshot.cache_hits, 1);
        assert_eq!(snapshot.evaluated, 1);
    }

    fn test_shared(draining: bool) -> Shared {
        let (job_tx, _job_rx) = bounded::<Job>(1);
        Shared {
            metrics: Arc::new(Metrics::default()),
            cache: Arc::new(ShardedCache::new(4, 2)),
            flights: Arc::new(FlightTable::new()),
            job_tx,
            shutdown: Arc::new(AtomicBool::new(draining)),
            default_deadline_ms: 1000,
            conn_window: 4,
        }
    }

    #[test]
    fn draining_server_refuses_new_evals() {
        // Unit-level: a request processed after the flag flips gets a
        // 503 (over the wire this is a race window, so test it here).
        let shared = test_shared(true);
        let reply = match process_line(r#"{"spec":"worst:d=2,n=4"}"#, &shared) {
            Handled::Inline(reply) => reply,
            Handled::Dispatch { .. } => panic!("draining evals must not dispatch"),
        };
        let r = Response::parse(&reply).unwrap();
        assert!(!r.ok);
        assert_eq!(r.status, 503);
        assert_eq!(r.code.as_deref(), Some("draining"));
        assert_eq!(shared.metrics.snapshot().draining, 1);
        // Control ops still answer while draining.
        let reply = match process_line(r#"{"op":"ping"}"#, &shared) {
            Handled::Inline(reply) => reply,
            Handled::Dispatch { .. } => panic!("ping is inline"),
        };
        let r = Response::parse(&reply).unwrap();
        assert!(r.ok);
        assert_eq!(r.body.get("draining").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn cache_misses_dispatch_and_hits_stay_inline() {
        let shared = test_shared(false);
        let line = r#"{"spec":"worst:d=2,n=4","algo":"seq-solve"}"#;
        match process_line(line, &shared) {
            Handled::Dispatch { validated, .. } => {
                assert_eq!(validated.cache_key, "worst:d=2,n=4|seq-solve");
            }
            Handled::Inline(r) => panic!("miss must dispatch, got {r}"),
        }
        let hit = EvalOutcome {
            value: 1,
            work: 16,
            steps: 0,
        };
        shared.cache.insert("worst:d=2,n=4|seq-solve".into(), hit);
        match process_line(line, &shared) {
            Handled::Inline(reply) => {
                let r = Response::parse(&reply).unwrap();
                assert!(r.ok);
                assert!(r.cached());
            }
            Handled::Dispatch { .. } => panic!("hit must answer inline"),
        }
        assert_eq!(shared.metrics.snapshot().cache_hits, 1);
        assert_eq!(shared.metrics.snapshot().cache_misses, 1);
    }

    #[test]
    fn join_after_request_shutdown_reaps_everything() {
        let server = Server::start(Config::default()).unwrap();
        let addr = server.local_addr();
        let (stream, mut reader) = connect(addr);
        let r = send(
            &stream,
            &mut reader,
            r#"{"spec":"crit:d=2,n=4","algo":"round:w=2"}"#,
        );
        assert!(r.ok);
        server.request_shutdown();
        let snapshot = server.join();
        assert_eq!(snapshot.ok, 1);
        assert_eq!(snapshot.connections, 1);
    }
}
