//! The evaluation server: accept loop, connection handlers, worker
//! pool, result cache, and graceful shutdown.
//!
//! ## Thread structure
//!
//! ```text
//! accept thread ──spawns──▶ one thread per connection
//! connection threads ──bounded queue──▶ worker pool (shared receiver)
//! workers ──per-request mpsc reply──▶ the waiting connection thread
//! ```
//!
//! Connection threads do all protocol work (parse, validate, cache
//! lookup, reply rendering) so workers only ever run engines.  Requests
//! enter the worker pool through the bounded [`crate::queue`]; a full
//! queue sheds the request immediately with a `busy` reply.
//!
//! ## Deadlines
//!
//! Every eval carries a deadline (request `deadline_ms` or the server
//! default).  The connection thread waits on the reply channel only
//! until that deadline; on expiry it sets the job's cancellation flag,
//! answers `timeout` right away, and abandons the reply channel.  The
//! worker notices the flag at the next engine check-point and moves on.
//!
//! ## Shutdown
//!
//! `request_shutdown` (or a `shutdown` request, or the CLI's SIGINT
//! handler) sets a flag that every loop polls: the accept loop stops
//! accepting, connection threads finish the request in hand and close,
//! new evals are refused with `draining`, and [`Server::join`] reaps
//! every thread before handing back the final metrics snapshot.

use crate::lru::LruCache;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::protocol::{error_line, ok_line, ErrorCode, Op, Request, PROTOCOL_VERSION};
use crate::queue::{bounded, BoundedSender, PushError};
use crate::workload::{evaluate, validate, AlgoSpec, EvalError, EvalOutcome};
use gt_analysis::Json;
use gt_tree::GenSpec;
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Longest accepted request line; longer input closes the connection.
const MAX_LINE_BYTES: usize = 64 * 1024;

/// How often blocked loops poll the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Algorithm used when an eval names none: cancellable and valid for
/// both NOR and minmax workloads.
const DEFAULT_ALGO: &str = "cascade:w=1";

/// Server configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker threads evaluating requests.
    pub workers: usize,
    /// Bounded queue depth; pushes beyond it are shed with `busy`.
    pub queue_depth: usize,
    /// Result-cache entries (0 disables caching).
    pub cache_capacity: usize,
    /// Deadline applied to evals that do not carry `deadline_ms`.
    pub default_deadline_ms: u64,
    /// Leaf-count ceiling for non-cancellable algorithms.
    pub max_leaves: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_depth: 64,
            cache_capacity: 256,
            default_deadline_ms: 10_000,
            max_leaves: 1 << 22,
        }
    }
}

/// What a worker sends back for one job.
enum WorkerReply {
    Done(EvalOutcome),
    Cancelled,
    Failed(String),
}

/// One queued evaluation.
struct Job {
    spec: GenSpec,
    algo: AlgoSpec,
    cache_key: String,
    cancel: Arc<AtomicBool>,
    deadline: Instant,
    reply: Sender<WorkerReply>,
}

type SharedCache = Arc<Mutex<LruCache<String, EvalOutcome>>>;

/// Everything a connection thread needs, cheap to clone.
#[derive(Clone)]
struct Shared {
    metrics: Arc<Metrics>,
    cache: SharedCache,
    job_tx: BoundedSender<Job>,
    shutdown: Arc<AtomicBool>,
    default_deadline_ms: u64,
    max_leaves: u64,
}

/// A running evaluation server.
pub struct Server {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<Metrics>,
    accept_handle: JoinHandle<()>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    workers: Vec<JoinHandle<()>>,
    // Dropped in `join` so idle workers see the channel close.
    job_tx: Option<BoundedSender<Job>>,
}

impl Server {
    /// Bind and start accepting; returns once the listener is live.
    pub fn start(config: Config) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(Metrics::default());
        let cache: SharedCache = Arc::new(Mutex::new(LruCache::new(config.cache_capacity)));
        let (job_tx, job_rx) = bounded::<Job>(config.queue_depth);
        let job_rx = Arc::new(Mutex::new(job_rx));

        let workers = (0..config.workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&job_rx);
                let cache = Arc::clone(&cache);
                let metrics = Arc::clone(&metrics);
                thread::spawn(move || worker_loop(&rx, &cache, &metrics))
            })
            .collect();

        let shared = Shared {
            metrics: Arc::clone(&metrics),
            cache,
            job_tx: job_tx.clone(),
            shutdown: Arc::clone(&shutdown),
            default_deadline_ms: config.default_deadline_ms,
            max_leaves: config.max_leaves,
        };
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_handle = {
            let conns = Arc::clone(&conns);
            let shutdown = Arc::clone(&shutdown);
            thread::spawn(move || accept_loop(&listener, &shared, &conns, &shutdown))
        };

        Ok(Server {
            local_addr,
            shutdown,
            metrics,
            accept_handle,
            conns,
            workers,
            job_tx: Some(job_tx),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared shutdown flag — hand this to a signal handler.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// The live metrics registry.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// Begin a graceful drain (idempotent, returns immediately).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Drain and reap every thread; returns the final metrics.  Call
    /// [`Server::request_shutdown`] first (or let a client's `shutdown`
    /// request do it) or this blocks until one arrives.
    pub fn join(mut self) -> MetricsSnapshot {
        let _ = self.accept_handle.join();
        // The accept loop has exited, so the connection list is final.
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.conns.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
        // Close the queue: every connection-side sender is gone now.
        drop(self.job_tx.take());
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.metrics.snapshot()
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Shared,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    shutdown: &AtomicBool,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
                let shared = shared.clone();
                let handle = thread::spawn(move || connection_loop(stream, &shared));
                conns.lock().unwrap().push(handle);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(POLL_INTERVAL),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => thread::sleep(POLL_INTERVAL),
        }
    }
}

/// Read one newline-terminated line, polling the shutdown flag while
/// idle.  `Ok(true)` means a complete line is in `line`; `Ok(false)`
/// means the connection should close (EOF, shutdown, or an over-long
/// line).
fn read_request_line(
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
    shutdown: &AtomicBool,
) -> std::io::Result<bool> {
    line.clear();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(false);
        }
        // Cap the line length; `take` makes `read_line` stop early and
        // report a clean pseudo-EOF instead of buffering unboundedly.
        let budget = (MAX_LINE_BYTES + 1).saturating_sub(line.len()) as u64;
        let mut limited = reader.take(budget);
        match limited.read_line(line) {
            Ok(0) => return Ok(false), // EOF
            Ok(_) => {
                if line.ends_with('\n') {
                    return Ok(true);
                }
                if line.len() > MAX_LINE_BYTES {
                    return Ok(false); // over-long line: cut the connection
                }
                // Partial line followed by EOF.
                return Ok(false);
            }
            Err(e)
                if e.kind() == ErrorKind::WouldBlock
                    || e.kind() == ErrorKind::TimedOut
                    || e.kind() == ErrorKind::Interrupted =>
            {
                // Read timeout with a possibly partial line buffered in
                // `line`; keep it and retry — `read_line` appends.
                continue;
            }
            Err(e) => return Err(e),
        }
    }
}

fn connection_loop(stream: TcpStream, shared: &Shared) {
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    // Replies are single small writes the client blocks on; Nagle would
    // hold them for the peer's delayed ACK (~40ms per request).
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match read_request_line(&mut reader, &mut line, &shared.shutdown) {
            Ok(true) => {}
            Ok(false) | Err(_) => return,
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        shared.metrics.received.fetch_add(1, Ordering::Relaxed);
        let mut reply = process_line(trimmed, shared);
        reply.push('\n');
        if writer
            .write_all(reply.as_bytes())
            .and_then(|()| writer.flush())
            .is_err()
        {
            return;
        }
    }
}

/// Handle one request line; returns the reply line (no newline).
fn process_line(line: &str, shared: &Shared) -> String {
    let m = &shared.metrics;
    let request = match Request::parse(line) {
        Ok(r) => r,
        Err(e) => {
            m.bad_request.fetch_add(1, Ordering::Relaxed);
            return error_line(&None, ErrorCode::BadRequest, &e);
        }
    };
    let id = request.id.clone();
    match request.op {
        Op::Ping => ok_line(
            &id,
            vec![
                ("version", Json::from(PROTOCOL_VERSION)),
                (
                    "draining",
                    Json::Bool(shared.shutdown.load(Ordering::SeqCst)),
                ),
            ],
        ),
        Op::Stats => ok_line(&id, vec![("stats", m.snapshot().to_json())]),
        Op::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            ok_line(&id, vec![("draining", Json::Bool(true))])
        }
        Op::Eval => process_eval(&request, shared),
    }
}

fn process_eval(request: &Request, shared: &Shared) -> String {
    let m = &shared.metrics;
    let id = &request.id;
    if shared.shutdown.load(Ordering::SeqCst) {
        m.draining.fetch_add(1, Ordering::Relaxed);
        return error_line(id, ErrorCode::Draining, "server is draining");
    }
    let spec_text = request.spec.as_deref().unwrap_or_default();
    let algo_text = request.algo.as_deref().unwrap_or(DEFAULT_ALGO);
    let validated = match validate(spec_text, algo_text, shared.max_leaves) {
        Ok(v) => v,
        Err(e) => {
            m.bad_request.fetch_add(1, Ordering::Relaxed);
            return error_line(id, ErrorCode::BadRequest, &e);
        }
    };
    let start = Instant::now();

    if let Some(hit) = shared
        .cache
        .lock()
        .unwrap()
        .get(&validated.cache_key)
        .copied()
    {
        m.cache_hits.fetch_add(1, Ordering::Relaxed);
        return ok_eval_line(id, &hit, true, start, m);
    }
    m.cache_misses.fetch_add(1, Ordering::Relaxed);

    let deadline_ms = request.deadline_ms.unwrap_or(shared.default_deadline_ms);
    // Clamp to a day so absurd values cannot overflow Instant math.
    let deadline = start + Duration::from_millis(deadline_ms.min(86_400_000));
    let cancel = Arc::new(AtomicBool::new(false));
    let (reply_tx, reply_rx) = channel();
    let job = Job {
        spec: validated.spec,
        algo: validated.algo,
        cache_key: validated.cache_key,
        cancel: Arc::clone(&cancel),
        deadline,
        reply: reply_tx,
    };
    match shared.job_tx.try_push(job) {
        Ok(()) => {}
        Err(PushError::Full(_)) => {
            m.shed.fetch_add(1, Ordering::Relaxed);
            return error_line(id, ErrorCode::Busy, "queue full");
        }
        Err(PushError::Closed(_)) => {
            m.internal.fetch_add(1, Ordering::Relaxed);
            return error_line(id, ErrorCode::Internal, "worker pool is gone");
        }
    }
    let wait = deadline.saturating_duration_since(Instant::now());
    match reply_rx.recv_timeout(wait) {
        Ok(WorkerReply::Done(outcome)) => ok_eval_line(id, &outcome, false, start, m),
        Ok(WorkerReply::Cancelled) => {
            m.timeout.fetch_add(1, Ordering::Relaxed);
            error_line(id, ErrorCode::Timeout, "deadline exceeded")
        }
        Ok(WorkerReply::Failed(e)) => {
            m.internal.fetch_add(1, Ordering::Relaxed);
            error_line(id, ErrorCode::Internal, &e)
        }
        Err(RecvTimeoutError::Timeout) => {
            // Expired while queued or mid-evaluation: flag the job so
            // the worker abandons it, answer immediately.
            cancel.store(true, Ordering::SeqCst);
            m.timeout.fetch_add(1, Ordering::Relaxed);
            error_line(id, ErrorCode::Timeout, "deadline exceeded")
        }
        Err(RecvTimeoutError::Disconnected) => {
            m.internal.fetch_add(1, Ordering::Relaxed);
            error_line(id, ErrorCode::Internal, "worker dropped the request")
        }
    }
}

fn ok_eval_line(
    id: &Option<String>,
    outcome: &EvalOutcome,
    cached: bool,
    start: Instant,
    m: &Metrics,
) -> String {
    let latency_us = start.elapsed().as_micros().min(u64::MAX as u128) as u64;
    m.ok.fetch_add(1, Ordering::Relaxed);
    m.latency.record(latency_us);
    ok_line(
        id,
        vec![
            ("value", Json::from(outcome.value)),
            ("work", Json::from(outcome.work)),
            ("steps", Json::from(outcome.steps)),
            ("cached", Json::Bool(cached)),
            ("latency_us", Json::from(latency_us)),
        ],
    )
}

fn worker_loop(rx: &Arc<Mutex<Receiver<Job>>>, cache: &SharedCache, metrics: &Metrics) {
    loop {
        // Hold the lock only for the receive itself.
        let job = match rx.lock().unwrap().recv() {
            Ok(job) => job,
            Err(_) => return, // queue closed: all senders gone
        };
        if job.cancel.load(Ordering::SeqCst) || Instant::now() >= job.deadline {
            let _ = job.reply.send(WorkerReply::Cancelled);
            continue;
        }
        let reply = match evaluate(&job.spec, &job.algo, &job.cancel) {
            Ok(outcome) => {
                metrics.evaluated.fetch_add(1, Ordering::Relaxed);
                cache.lock().unwrap().insert(job.cache_key.clone(), outcome);
                WorkerReply::Done(outcome)
            }
            Err(EvalError::Cancelled) => WorkerReply::Cancelled,
            Err(EvalError::Bad(e)) => WorkerReply::Failed(e),
        };
        // The connection may have timed out and gone; that's fine.
        let _ = job.reply.send(reply);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Response;
    use std::io::BufRead;

    fn send(stream: &TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> Response {
        let mut w = stream.try_clone().unwrap();
        w.write_all(line.as_bytes()).unwrap();
        w.write_all(b"\n").unwrap();
        w.flush().unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        Response::parse(reply.trim()).unwrap()
    }

    fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
        let stream = TcpStream::connect(addr).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        (stream, reader)
    }

    #[test]
    fn serves_eval_ping_stats_and_drains() {
        let server = Server::start(Config {
            workers: 2,
            ..Config::default()
        })
        .unwrap();
        let (stream, mut reader) = connect(server.local_addr());

        let r = send(&stream, &mut reader, r#"{"op":"ping"}"#);
        assert!(r.ok);
        assert_eq!(r.body.get("version").and_then(Json::as_u64), Some(1));

        let r = send(
            &stream,
            &mut reader,
            r#"{"id":"a","spec":"worst:d=2,n=6","algo":"seq-solve"}"#,
        );
        assert!(r.ok, "eval failed: {:?}", r.error);
        assert_eq!(r.id.as_deref(), Some("a"));
        assert_eq!(r.body.get("work").and_then(Json::as_u64), Some(64));
        assert!(!r.cached());

        // Same canonical request again: cache hit.
        let r = send(
            &stream,
            &mut reader,
            r#"{"spec":"worst: n=6 ,d=2","algo":"seq-solve"}"#,
        );
        assert!(r.ok);
        assert!(r.cached());

        // Malformed line: error reply, connection survives.
        let r = send(&stream, &mut reader, "{nope");
        assert!(!r.ok);
        assert_eq!(r.status, 400);
        let r = send(&stream, &mut reader, r#"{"op":"stats"}"#);
        let stats = r.body.get("stats").unwrap();
        assert_eq!(stats.get("cache_hits").and_then(Json::as_u64), Some(1));
        assert_eq!(stats.get("bad_request").and_then(Json::as_u64), Some(1));

        let r = send(&stream, &mut reader, r#"{"op":"shutdown"}"#);
        assert!(r.ok);
        let snapshot = server.join();
        assert_eq!(snapshot.ok, 2);
        assert_eq!(snapshot.cache_hits, 1);
        assert_eq!(snapshot.evaluated, 1);
    }

    #[test]
    fn draining_server_refuses_new_evals() {
        // Unit-level: a request processed after the flag flips gets a
        // 503 (over the wire this is a race window, so test it here).
        let (job_tx, _job_rx) = bounded::<Job>(1);
        let shared = Shared {
            metrics: Arc::new(Metrics::default()),
            cache: Arc::new(Mutex::new(LruCache::new(4))),
            job_tx,
            shutdown: Arc::new(AtomicBool::new(true)),
            default_deadline_ms: 1000,
            max_leaves: 1 << 20,
        };
        let reply = process_line(r#"{"spec":"worst:d=2,n=4"}"#, &shared);
        let r = Response::parse(&reply).unwrap();
        assert!(!r.ok);
        assert_eq!(r.status, 503);
        assert_eq!(r.code.as_deref(), Some("draining"));
        assert_eq!(shared.metrics.snapshot().draining, 1);
        // Control ops still answer while draining.
        let r = Response::parse(&process_line(r#"{"op":"ping"}"#, &shared)).unwrap();
        assert!(r.ok);
        assert_eq!(r.body.get("draining").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn join_after_request_shutdown_reaps_everything() {
        let server = Server::start(Config::default()).unwrap();
        let addr = server.local_addr();
        let (stream, mut reader) = connect(addr);
        let r = send(
            &stream,
            &mut reader,
            r#"{"spec":"crit:d=2,n=4","algo":"round:w=2"}"#,
        );
        assert!(r.ok);
        server.request_shutdown();
        let snapshot = server.join();
        assert_eq!(snapshot.ok, 1);
        assert_eq!(snapshot.connections, 1);
    }
}
