//! The evaluation server: a fixed pool of readiness-driven I/O
//! threads, the shared evaluation executor, sharded result cache,
//! single-flight coalescing, and graceful shutdown.
//!
//! ## Thread structure
//!
//! ```text
//! I/O threads (fixed pool, epoll loops; thread 0 owns the listener)
//!   ├─ accept──▶ conns distributed round-robin across the pool
//!   ├─ readable──▶ per-conn line state machine ──▶ inline replies,
//!   │                                             misses submitted
//!   └─ wakeups──▶ flush outbound queues, resume parsing
//! eval workers (fixed pool) ──pop batches, evaluate, publish──▶ Flight
//! publish ──drained waiters──▶ replies enqueued, I/O thread woken
//! deadline reaper ──expired waiters──▶ 408 replies, flight detach
//! ```
//!
//! A connection never owns a thread.  Each one is a small state
//! machine pinned to one I/O thread: nonblocking socket, an
//! incremental [`LineReader`] with a pooled carry buffer for partial
//! lines, and a bounded outbound reply queue flushed with vectored
//! writes.  Thousands of idle connections cost their sockets and a
//! few hundred bytes of state each — no stacks, no parked readers.
//!
//! Each connection is **pipelined**: its I/O thread parses NDJSON
//! lines as they arrive, answers control ops and cache hits inline,
//! and *submits* every miss to the shared executor, at most
//! `conn_window` of them outstanding per connection — past the window
//! the state machine defers parsing (bytes queue in the carry buffer
//! and the kernel) until a slot frees.  Total engine concurrency is
//! the executor's fixed worker count, no matter how many connections
//! are open.  Replies complete by enqueueing onto the connection's
//! outbound queue and waking its I/O thread; they go out in
//! completion order, correlated by the echoed `id`.
//!
//! ## Backpressure and slow readers
//!
//! A client that stops draining replies fills its bounded outbound
//! queue: past the high-water mark its requests stop being parsed,
//! and past the hard cap the connection is closed
//! (`overflow_closed`).  A client that dribbles bytes without ever
//! completing a request line holds only its pooled carry buffer and
//! falls to `--conn-idle-timeout` (`idle_closed`) — no thread is ever
//! pinned by either shape of slowloris.
//!
//! ## Single flight, asynchronously
//!
//! A miss first joins the [`FlightTable`].  The first request for a
//! canonical key (the *leader*) submits the job; every concurrent
//! duplicate attaches its [`Pending`] reply record to the leader's
//! [`Flight`] and is counted as a `coalesced_hit` — one engine run, N
//! replies.  No thread ever parks on a flight: the worker that
//! publishes a result receives the drained waiter list and writes
//! every reply itself.  The worker inserts the outcome into the cache
//! *before* publishing, so by the time any waiter (or any later
//! request) looks, the result is already cached.
//!
//! ## Deadlines
//!
//! Every dispatched request is registered with the **deadline
//! reaper**, a single thread holding a min-heap of expiry times.  When
//! a deadline fires first, the reaper claims the pending reply,
//! answers `timeout`, and detaches it from its flight; detaching the
//! last waiter cancels the engine run cooperatively.  Publication and
//! expiry race on an atomic claim, so every request is answered
//! exactly once.
//!
//! ## Shutdown
//!
//! `request_shutdown` (or a `shutdown` request, or the CLI's SIGINT
//! handler) sets a flag that every loop polls: the I/O threads drop
//! the listener, stop parsing input, and hold each connection open
//! just long enough to flush its in-flight replies (bounded by the
//! requests' own deadlines), new evals are refused with `draining`,
//! and [`Server::join`] reaps every thread — I/O pool, then executor
//! workers, then the reaper — before handing back the final metrics
//! snapshot.

use crate::cache::ShardedCache;
use crate::executor::{
    ActiveGauge, CostClass, Executor, ExecutorConfig, SubmitError, TenantGovernor,
};
use crate::io::{
    drain_outbox, raise_nofile_limit, BufferPool, IoLoopStats, LineAction, LineReader, LineTooLong,
    Poller, Waker,
};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::protocol::{
    error_line, error_line_with, ok_line, ErrorCode, Op, Request, Response, TraceContext,
    PROTOCOL_VERSION,
};
use crate::singleflight::{Flight, FlightResult, FlightTable, Joined};
use crate::snapshot;
use crate::trace::{
    render_prometheus, spawn_metrics_listener, FlightRecorder, MetricsListener, StageStamps,
    TraceRecord,
};
use crate::workload::{
    estimated_cost, estimated_subtree_cost, evaluate_subtree, evaluate_with_grant, validate,
    validate_subeval, AlgoSpec, EvalError, EvalOutcome,
};
use gt_analysis::Json;
use gt_tree::{GenSpec, SubtreeSpec};
use std::collections::{BinaryHeap, VecDeque};
use std::io::{BufRead, BufReader, ErrorKind, Read, Write as IoWrite};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Longest accepted request line; longer input closes the connection.
const MAX_LINE_BYTES: usize = 64 * 1024;

/// How often blocked loops poll the shutdown flag (also the I/O
/// threads' poll-wait timeout, so drains and idle sweeps tick at
/// least this often).
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Outbound-queue level above which a connection's requests stop
/// being parsed: a slow reader backpressures itself instead of
/// growing an unbounded reply buffer.
const OUTBOX_HIGH_WATER: usize = 128 * 1024;

/// Hard cap on one connection's queued reply bytes; past it the
/// connection is closed (`overflow_closed`).  Only reachable by a
/// client that keeps pipelining while never draining replies.
const OUTBOX_MAX_BYTES: usize = 1024 * 1024;

/// Per-I/O-thread read scratch size (shared by all its connections).
const READ_CHUNK: usize = 16 * 1024;

/// How many open fds the server asks the kernel for at startup.
const NOFILE_TARGET: u64 = 1 << 16;

/// Algorithm used when an eval names none: cancellable and valid for
/// both NOR and minmax workloads.
const DEFAULT_ALGO: &str = "cascade:w=1";

/// Entries a `cachepull` returns when the request names no `n`.
const CACHEPULL_DEFAULT_LIMIT: u64 = 512;
/// Hard per-request cap on `cachepull` entries, bounding reply size
/// (and the reader-thread time spent serializing it).
const CACHEPULL_MAX_LIMIT: u64 = 4096;

/// How many times the announce thread retries a join before giving up
/// (the router may come up after its replicas).
const ANNOUNCE_ATTEMPTS: u32 = 50;
/// Pause between announce retries.
const ANNOUNCE_RETRY: Duration = Duration::from_millis(100);
/// Connect/read/write timeout for every fleet control call (join,
/// health, cachepull) so a dead peer can never wedge the announce
/// thread past shutdown.
const FLEET_IO_TIMEOUT: Duration = Duration::from_millis(2_000);
/// Most peers a (re)joining replica warm-fills from.
const WARMFILL_PEERS: usize = 3;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Evaluation worker threads — the *total* engine concurrency,
    /// independent of connection count (`--eval-workers`).
    pub workers: usize,
    /// Bounded queue depth across all algorithm queues; submits
    /// beyond it are shed with `busy`.
    pub queue_depth: usize,
    /// Most small jobs evaluated in one executor dispatch.
    pub batch_max: usize,
    /// Estimated-cost threshold (leaves) at or below which a job is
    /// batchable small work.
    pub small_cost_max: u64,
    /// Result-cache entries across all shards (0 disables caching).
    pub cache_capacity: usize,
    /// Cache shards (rounded up to a power of two).
    pub cache_shards: usize,
    /// Cached results older than this many milliseconds expire on
    /// lookup; `None` keeps entries until LRU eviction.
    pub cache_ttl_ms: Option<u64>,
    /// Concurrent evals allowed per connection (pipelining window);
    /// requests past it wait in the reader until a slot frees.
    pub conn_window: usize,
    /// Deadline applied to evals that do not carry `deadline_ms`.
    pub default_deadline_ms: u64,
    /// Flight-recorder capacity: the last N request traces are kept,
    /// plus up to N notable (slow/shed/timeout/failed) ones
    /// (`--trace-ring`; 0 disables tracing).
    pub trace_ring: usize,
    /// End-to-end latency at or above which a request trace counts as
    /// slow and is pinned in the notable ring (`--slow-us`).
    pub slow_us: u64,
    /// Bind address for the Prometheus `/metrics` HTTP listener
    /// (`--metrics-addr`); `None` disables it.
    pub metrics_addr: Option<String>,
    /// Estimated-cost threshold (leaves) above which a `par-*` eval is
    /// granted more than one engine thread (`--par-threshold`).
    pub par_threshold: u64,
    /// Most threads a single parallel evaluation may be granted
    /// (`--par-max-workers`); the actual grant is capped by how many
    /// executor workers are idle right now.
    pub par_max_workers: u32,
    /// Readiness-driven I/O threads (`--io-threads`).  Thread 0 owns
    /// the listener; connections are distributed round-robin.  This is
    /// the whole front-door thread budget no matter how many
    /// connections are open.
    pub io_threads: usize,
    /// Close a connection after this many milliseconds without a
    /// completed request line, once nothing is in flight on it
    /// (`--conn-idle-timeout`); `None` keeps idle connections forever.
    pub conn_idle_timeout_ms: Option<u64>,
    /// Cache snapshot file (`--snapshot`): restored on boot (stale
    /// entries age out, never un-expire), rewritten on drain.  `None`
    /// boots cold and saves nothing.
    pub snapshot_path: Option<String>,
    /// Most dispatched-and-unanswered evals a single named tenant may
    /// hold (`--tenant-max-inflight`); past it the tenant is shed with
    /// `busy` + `retry_after_ms`.  0 disables the cap.  Untagged
    /// requests are never capped (they are bounded by the global
    /// queue, exactly as before tenancy existed).
    pub tenant_max_inflight: usize,
    /// Router address to announce this replica to at boot
    /// (`--announce`); also the membership source for peer warm-fill.
    /// `None` means a statically configured replica: no announcement,
    /// no warm-fill.
    pub announce: Option<String>,
    /// Address announced to the router (`--advertise`); defaults to
    /// the bound listener address, which is wrong exactly when binding
    /// a wildcard address.
    pub advertise: Option<String>,
    /// Routing weight announced on join (`--weight`): this replica
    /// receives keys in proportion to its weight under weighted
    /// rendezvous hashing.
    pub weight: u64,
    /// Announce generation (`--generation`): the router accepts the
    /// highest generation it has seen per address, so a restarted
    /// replica announces a higher one to refresh its registration.
    pub generation: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_depth: 64,
            batch_max: 16,
            small_cost_max: 4096,
            cache_capacity: 256,
            cache_shards: 8,
            cache_ttl_ms: None,
            conn_window: 32,
            default_deadline_ms: 10_000,
            trace_ring: 256,
            slow_us: 100_000,
            metrics_addr: None,
            par_threshold: 1 << 16,
            par_max_workers: 4,
            io_threads: 2,
            conn_idle_timeout_ms: None,
            snapshot_path: None,
            tenant_max_inflight: 0,
            announce: None,
            advertise: None,
            weight: 1,
            generation: 0,
        }
    }
}

/// What an executor worker runs for one queued job.
enum JobWork {
    /// A whole-tree (or game) evaluation.
    Eval { spec: GenSpec, algo: AlgoSpec },
    /// One subtree under an α/β window.
    Subeval { sub: SubtreeSpec },
}

impl JobWork {
    /// The per-algorithm metrics dimension; sub-evaluations share one
    /// `subeval` bucket.
    fn algo_label(&self) -> &str {
        match self {
            JobWork::Eval { algo, .. } => &algo.name,
            JobWork::Subeval { .. } => SUBEVAL_ALGO,
        }
    }
}

/// The stage-metrics label (and executor queue name) for `subeval`
/// jobs.
const SUBEVAL_ALGO: &str = "subeval";

/// One queued evaluation.  The flight carries the cancellation flag
/// and every waiter; the worker publishes its result there.
struct Job {
    work: JobWork,
    cache_key: String,
    flight: Arc<Flight<Pending>>,
}

type ResultCache = Arc<ShardedCache<String, EvalOutcome>>;

/// Everything request handling needs, cheap to clone.
#[derive(Clone)]
struct Shared {
    metrics: Arc<Metrics>,
    cache: ResultCache,
    flights: Arc<FlightTable<Pending>>,
    executor: Arc<Executor<Job>>,
    reaper: Arc<Reaper>,
    recorder: Arc<FlightRecorder>,
    governor: Arc<TenantGovernor>,
    shutdown: Arc<AtomicBool>,
    default_deadline_ms: u64,
    conn_window: usize,
    small_cost_max: u64,
    workers: usize,
    io_threads: usize,
}

/// Commands injected into an I/O thread from outside its loop.
enum IoCmd {
    /// A freshly accepted connection to adopt.
    Conn(TcpStream),
    /// Service the connection registered under this token: flush its
    /// outbox, resume parsing if its window freed, retire it if done.
    Wake(u64),
}

/// The cross-thread face of one I/O thread: an injector the accept
/// path and reply completions push commands onto, plus the waker that
/// pulls the thread out of its poll sleep.
struct IoHandle {
    injector: Mutex<Vec<IoCmd>>,
    waker: Waker,
}

impl IoHandle {
    fn new() -> std::io::Result<IoHandle> {
        Ok(IoHandle {
            injector: Mutex::new(Vec::new()),
            waker: Waker::new()?,
        })
    }

    fn push(&self, cmd: IoCmd) {
        self.injector.lock().unwrap().push(cmd);
        self.waker.wake();
    }
}

/// One connection's bounded reply queue.
struct Outbox {
    queue: VecDeque<Vec<u8>>,
    /// Queued-but-unwritten bytes (kept in sync with `queue`).
    bytes: usize,
    /// The I/O thread retired the connection; late replies are
    /// dropped, exactly like the old path's ignored write errors.
    closed: bool,
    /// The bounded queue overflowed; the I/O thread must close.
    overflowed: bool,
}

/// The write half of a connection as seen from any thread.  Replies
/// are never written directly: they are enqueued here and the owning
/// I/O thread is woken to flush them.  Also carries the pipelining
/// window as a plain atomic — nothing ever blocks on a slot.
struct ConnReply {
    outbox: Mutex<Outbox>,
    /// Dispatched-and-unanswered evals on this connection.
    inflight: AtomicUsize,
    /// Collapses redundant `Wake` commands between services.
    wake_queued: AtomicBool,
    token: u64,
    io: Arc<IoHandle>,
}

impl ConnReply {
    fn new(token: u64, io: Arc<IoHandle>) -> ConnReply {
        ConnReply {
            outbox: Mutex::new(Outbox {
                queue: VecDeque::new(),
                bytes: 0,
                closed: false,
                overflowed: false,
            }),
            inflight: AtomicUsize::new(0),
            wake_queued: AtomicBool::new(false),
            token,
            io,
        }
    }

    /// Queue one reply line (newline appended) and wake the I/O
    /// thread.  Returns false when the connection is gone or its
    /// queue overflowed — the reply is dropped either way.
    fn enqueue(&self, line: &str) -> bool {
        {
            let mut ob = self.outbox.lock().unwrap();
            if ob.closed || ob.overflowed {
                return false;
            }
            if ob.bytes + line.len() + 1 > OUTBOX_MAX_BYTES {
                ob.overflowed = true;
                drop(ob);
                self.notify();
                return false;
            }
            let mut buf = Vec::with_capacity(line.len() + 1);
            buf.extend_from_slice(line.as_bytes());
            buf.push(b'\n');
            ob.bytes += buf.len();
            ob.queue.push_back(buf);
        }
        self.notify();
        true
    }

    /// Release one pipelining-window slot (the request is settled —
    /// always called *after* its reply was enqueued, so the I/O
    /// thread never sees an idle connection with a reply still owed).
    fn release_slot(&self) {
        self.inflight.fetch_sub(1, Ordering::AcqRel);
        self.notify();
    }

    fn notify(&self) {
        if self.wake_queued.swap(true, Ordering::AcqRel) {
            return;
        }
        self.io.push(IoCmd::Wake(self.token));
    }
}

/// One dispatched request awaiting its reply: everything needed to
/// answer the client from whichever thread settles it first (an eval
/// worker publishing, or the deadline reaper expiring it).  The
/// `answered` claim guarantees exactly one reply per request.
struct Pending {
    answered: AtomicBool,
    id: Option<String>,
    coalesced: bool,
    /// When the request line came off the socket — the origin every
    /// stage offset and the end-to-end latency are measured from.
    start: Instant,
    /// Canonical cache key (for the trace record).
    key: String,
    /// Algorithm selector name (stage-histogram dimension).
    algo: String,
    /// recv → request line parsed, microseconds.
    parse_us: u64,
    /// recv → cache probed, microseconds.
    probe_us: u64,
    /// Distributed-trace context the request carried, echoed (with
    /// stage offsets) in the reply so the sender can graft this run
    /// into its span tree.
    trace: Option<TraceContext>,
    /// The request's `tenant` tag, if any — the per-tenant accounting
    /// dimension.
    tenant: Option<String>,
    /// The tenant-inflight slot this request holds.  Released
    /// explicitly before the reply is enqueued (so a one-at-a-time
    /// client's next request can never race the release and get shed
    /// at its own cap), and by Drop on every other settling path —
    /// deadline, drain, connection teardown.
    slot: Mutex<Option<GovernorSlot>>,
    /// The connection's reply queue and pipelining window.
    conn: Arc<ConnReply>,
}

/// One held per-tenant inflight slot.  Lives inside the [`Pending`]
/// it was claimed for, so however the request settles — publish,
/// deadline, drain — dropping the answered record releases the slot.
struct GovernorSlot {
    governor: Arc<TenantGovernor>,
    tenant: String,
}

impl Drop for GovernorSlot {
    fn drop(&mut self) {
        self.governor.release(&self.tenant);
    }
}

impl Pending {
    /// Claim the right to answer; false means someone else already
    /// replied.
    fn try_claim(&self) -> bool {
        !self.answered.swap(true, Ordering::SeqCst)
    }

    /// Release the tenant-inflight slot now instead of at drop time.
    /// Idempotent; the Drop impl on the slot handles paths that never
    /// call this.
    fn release_tenant_slot(&self) {
        drop(self.slot.lock().unwrap().take());
    }
}

/// Flatten one settled request into a [`TraceRecord`].  Flight stamps
/// are offsets from the flight's enqueue instant; the record wants
/// offsets from recv, so they are rebased through the enqueue offset.
fn trace_from(
    p: &Pending,
    status: &str,
    stamps: Option<&StageStamps>,
    work: Option<EvalOutcome>,
    latency_us: u64,
) -> TraceRecord {
    let enqueue_us = stamps.map(|s| s.base().saturating_duration_since(p.start).as_micros() as u64);
    let rebase = |offset: Option<u64>| match (enqueue_us, offset) {
        (Some(e), Some(us)) => Some(e + us),
        _ => None,
    };
    TraceRecord {
        seq: 0, // assigned by the recorder
        id: p.id.clone(),
        key: p.key.clone(),
        algo: p.algo.clone(),
        status: status.to_string(),
        cached: false,
        coalesced: p.coalesced,
        latency_us,
        parse_us: p.parse_us,
        probe_us: p.probe_us,
        enqueue_us,
        dispatch_us: rebase(stamps.and_then(StageStamps::dispatch_us)),
        engine_start_us: rebase(stamps.and_then(StageStamps::engine_start_us)),
        engine_end_us: rebase(stamps.and_then(StageStamps::engine_end_us)),
        work,
        trace_id: p.trace.as_ref().map(|t| t.trace_id.clone()),
        parent_span: p.trace.as_ref().and_then(|t| t.parent_span),
        tenant: p.tenant.clone(),
    }
}

/// The reply's `trace` echo: the propagated context plus this
/// replica's stage offsets (rebased onto recv, like the trace record)
/// so the sender can place the replica span inside its own tree.
fn trace_echo_json(
    ctx: &TraceContext,
    start: Instant,
    parse_us: u64,
    probe_us: u64,
    stamps: Option<&StageStamps>,
) -> Json {
    let enqueue_us = stamps.map(|s| s.base().saturating_duration_since(start).as_micros() as u64);
    let rebase = |offset: Option<u64>| match (enqueue_us, offset) {
        (Some(e), Some(us)) => Some(e + us),
        _ => None,
    };
    let mut stages: Vec<(String, Json)> = vec![
        ("parse_us".into(), Json::from(parse_us)),
        ("probe_us".into(), Json::from(probe_us)),
    ];
    for (k, v) in [
        ("enqueue_us", enqueue_us),
        (
            "dispatch_us",
            rebase(stamps.and_then(StageStamps::dispatch_us)),
        ),
        (
            "engine_start_us",
            rebase(stamps.and_then(StageStamps::engine_start_us)),
        ),
        (
            "engine_end_us",
            rebase(stamps.and_then(StageStamps::engine_end_us)),
        ),
    ] {
        if let Some(us) = v {
            stages.push((k.to_string(), Json::from(us)));
        }
    }
    let mut fields = vec![("trace_id".to_string(), Json::from(ctx.trace_id.clone()))];
    if let Some(span) = ctx.parent_span {
        fields.push(("parent_span".into(), Json::from(span)));
    }
    fields.push(("stages".into(), Json::Object(stages)));
    Json::Object(fields)
}

/// Answer a drained waiter with a flight result.  Safe to call from
/// any thread; the claim makes duplicate calls no-ops.  Also the
/// choke point where the `write` stage histogram and the request's
/// flight-recorder trace are emitted.
fn answer_pending(
    p: &Pending,
    m: &Metrics,
    result: &FlightResult,
    recorder: &FlightRecorder,
    stamps: Option<&StageStamps>,
) {
    if !p.try_claim() {
        return;
    }
    // Free the tenant's inflight slot before the reply can reach the
    // client: a closed-loop client's follow-up request must find the
    // slot open, not race the answered record's teardown.
    p.release_tenant_slot();
    let (reply, status, work) = match result {
        FlightResult::Done(outcome) => {
            // Render with the pre-write latency (a reply cannot embed
            // the cost of its own write); the e2e histogram entry is
            // recorded after the write below, so the stage ledger
            // (… + write) and the histogram bracket the same interval.
            let render_us = p.start.elapsed().as_micros().min(u64::MAX as u128) as u64;
            m.ok.fetch_add(1, Ordering::Relaxed);
            let echo = p
                .trace
                .as_ref()
                .map(|ctx| trace_echo_json(ctx, p.start, p.parse_us, p.probe_us, stamps));
            (
                render_ok_eval(&p.id, outcome, false, p.coalesced, render_us, echo),
                "ok",
                Some(*outcome),
            )
        }
        FlightResult::Cancelled => {
            // Only reachable through drain races; waiters normally
            // expire (and count their own timeout) before a run is
            // cancelled.
            m.timeout.fetch_add(1, Ordering::Relaxed);
            (
                error_line(&p.id, ErrorCode::Timeout, "evaluation cancelled"),
                "cancelled",
                None,
            )
        }
        FlightResult::Failed(e) => {
            m.internal.fetch_add(1, Ordering::Relaxed);
            (error_line(&p.id, ErrorCode::Internal, e), "internal", None)
        }
        FlightResult::Busy(retry_after_ms) => {
            m.shed.fetch_add(1, Ordering::Relaxed);
            (
                error_line_with(
                    &p.id,
                    ErrorCode::Busy,
                    "queue full",
                    vec![("retry_after_ms", Json::from(*retry_after_ms))],
                ),
                "busy",
                None,
            )
        }
    };
    let _ = p.conn.enqueue(&reply);
    let latency_us = p.start.elapsed().as_micros().min(u64::MAX as u128) as u64;
    if matches!(result, FlightResult::Done(_)) {
        m.latency.record(latency_us);
    }
    // Fold the outcome into the tenant's accounting card.  (Timeouts
    // settle through the reaper, internal failures through neither
    // counter — requests/ok/shed is the fairness ledger.)
    if let Some(t) = &p.tenant {
        let ts = m.tenant_stats(t);
        match result {
            FlightResult::Done(_) => {
                ts.ok.fetch_add(1, Ordering::Relaxed);
                ts.latency.record(latency_us);
            }
            FlightResult::Busy(_) => {
                ts.shed.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
    }
    // The write stage: result published (≈ engine end) → reply handed
    // to the connection's outbound queue (the latency above brackets
    // the same instant, so the stage ledger still sums to it).
    if let Some(s) = stamps {
        if let Some(ee) = s.engine_end_us() {
            let total = s.base().elapsed().as_micros() as u64;
            m.algo_stages(&p.algo)
                .write
                .record(total.saturating_sub(ee));
        }
    }
    recorder.record(trace_from(p, status, stamps, work, latency_us));
    p.conn.release_slot();
}

/// Backoff hint attached to shed (`busy`) replies: roughly how long
/// the current backlog needs to drain — queue depth × mean engine
/// time ÷ workers — clamped to `[1, 5000]` ms.  Before any engine has
/// run there is no mean to derive, so the hint falls back to 1 ms
/// (retry almost immediately; an empty-history shed is transient).
fn retry_after_hint_ms(queued: usize, workers: usize, mean_engine_us: Option<f64>) -> u64 {
    let Some(mean_us) = mean_engine_us else {
        return 1;
    };
    let drain_ms = (queued.max(1) as f64 * mean_us) / (workers.max(1) as f64 * 1_000.0);
    (drain_ms.ceil() as u64).clamp(1, 5_000)
}

/// One registered deadline.  Weak handles keep the reaper from
/// extending any request's lifetime: an entry whose pending reply was
/// already answered (and dropped) upgrades to nothing and is skipped.
struct ReaperEntry {
    deadline: Instant,
    seq: u64,
    pending: Weak<Pending>,
    flight: Weak<Flight<Pending>>,
}

impl PartialEq for ReaperEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl Eq for ReaperEntry {}
impl PartialOrd for ReaperEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ReaperEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .deadline
            .cmp(&self.deadline)
            .then(other.seq.cmp(&self.seq))
    }
}

struct ReaperState {
    heap: BinaryHeap<ReaperEntry>,
    seq: u64,
    stopped: bool,
}

/// The deadline reaper: one thread, a min-heap of expiry times.
/// Replaces the old model where every dispatched request parked its
/// own thread in a timed wait.
struct Reaper {
    state: Mutex<ReaperState>,
    cv: Condvar,
}

impl Reaper {
    fn new() -> Reaper {
        Reaper {
            state: Mutex::new(ReaperState {
                heap: BinaryHeap::new(),
                seq: 0,
                stopped: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn register(&self, deadline: Instant, pending: &Arc<Pending>, flight: &Arc<Flight<Pending>>) {
        {
            let mut st = self.state.lock().unwrap();
            st.seq += 1;
            let seq = st.seq;
            st.heap.push(ReaperEntry {
                deadline,
                seq,
                pending: Arc::downgrade(pending),
                flight: Arc::downgrade(flight),
            });
        }
        // The new entry may be the earliest; re-arm the timer.
        self.cv.notify_one();
    }

    fn stop(&self) {
        self.state.lock().unwrap().stopped = true;
        self.cv.notify_all();
    }

    fn run(&self, metrics: &Metrics, recorder: &FlightRecorder) {
        loop {
            let due = {
                let mut st = self.state.lock().unwrap();
                loop {
                    if st.stopped {
                        return;
                    }
                    let now = Instant::now();
                    match st.heap.peek() {
                        Some(e) if e.deadline <= now => break st.heap.pop().unwrap(),
                        Some(e) => {
                            let wait = e.deadline - now;
                            (st, _) = self.cv.wait_timeout(st, wait).unwrap();
                        }
                        None => st = self.cv.wait(st).unwrap(),
                    }
                }
            };
            let Some(p) = due.pending.upgrade() else {
                continue; // already answered and dropped
            };
            if !p.try_claim() {
                continue; // publication won the race
            }
            // The request is answered: its tenant-inflight slot frees
            // before the timeout reply can trigger a follow-up.
            p.release_tenant_slot();
            metrics.timeout.fetch_add(1, Ordering::Relaxed);
            let _ = p
                .conn
                .enqueue(&error_line(&p.id, ErrorCode::Timeout, "deadline exceeded"));
            let latency_us = p.start.elapsed().as_micros().min(u64::MAX as u128) as u64;
            let flight = due.flight.upgrade();
            recorder.record(trace_from(
                &p,
                "timeout",
                flight.as_deref().map(|f| &f.stamps),
                None,
                latency_us,
            ));
            p.conn.release_slot();
            // Leaving the flight cancels the run if nobody else waits.
            if let Some(f) = flight {
                f.detach(&p);
            }
        }
    }
}

/// A running evaluation server.
pub struct Server {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<Metrics>,
    io_handles: Vec<Arc<IoHandle>>,
    io_joins: Vec<JoinHandle<()>>,
    executor: Arc<Executor<Job>>,
    reaper: Arc<Reaper>,
    reaper_handle: JoinHandle<()>,
    recorder: Arc<FlightRecorder>,
    metrics_listener: Option<MetricsListener>,
    cache: ResultCache,
    snapshot_path: Option<String>,
    announce_handle: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind and start accepting; returns once the listener is live.
    pub fn start(config: Config) -> std::io::Result<Server> {
        // C10K needs the fds to hold the Ks of connections.
        let _ = raise_nofile_limit(NOFILE_TARGET);
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(Metrics::default());
        let cache: ResultCache = Arc::new(ShardedCache::with_ttl(
            config.cache_capacity,
            config.cache_shards,
            config.cache_ttl_ms.map(Duration::from_millis),
        ));
        let flights: Arc<FlightTable<Pending>> = Arc::new(FlightTable::new());
        let recorder = Arc::new(FlightRecorder::new(config.trace_ring, config.slow_us));
        let governor = Arc::new(TenantGovernor::new(config.tenant_max_inflight));

        // Boot warm: restore the previous drain's snapshot, if one
        // exists.  A missing file is a first boot; a damaged one is
        // reported and skipped — the server comes up cold either way.
        if let Some(path) = &config.snapshot_path {
            match snapshot::load(Path::new(path), &cache) {
                Ok(report) => {
                    metrics
                        .snapshot_restored
                        .fetch_add(report.restored as u64, Ordering::Relaxed);
                }
                Err(e) if e.kind() == ErrorKind::NotFound => {}
                Err(e) => eprintln!("gt-serve: snapshot {path} not restored: {e}"),
            }
        }

        let reaper = Arc::new(Reaper::new());
        let reaper_handle = {
            let reaper = Arc::clone(&reaper);
            let metrics = Arc::clone(&metrics);
            let recorder = Arc::clone(&recorder);
            thread::spawn(move || reaper.run(&metrics, &recorder))
        };

        // The gauge sees the whole pool; each worker marks itself busy
        // around a batch so `par_grant` can size grants to idle
        // capacity.
        let gauge = Arc::new(ActiveGauge::new(config.workers.max(1)));
        let executor = {
            let cache = Arc::clone(&cache);
            let flights = Arc::clone(&flights);
            let metrics = Arc::clone(&metrics);
            let recorder = Arc::clone(&recorder);
            let gauge = Arc::clone(&gauge);
            let par = ParPolicy {
                threshold: config.par_threshold,
                max_workers: config.par_max_workers,
            };
            Arc::new(Executor::start(
                ExecutorConfig {
                    workers: config.workers,
                    queue_depth: config.queue_depth,
                    batch_max: config.batch_max,
                },
                move |batch: Vec<Job>| {
                    run_batch(batch, &cache, &flights, &metrics, &recorder, &gauge, par)
                },
            ))
        };

        let metrics_listener = match &config.metrics_addr {
            Some(addr) => {
                let render: Arc<dyn Fn() -> String + Send + Sync> = {
                    let metrics = Arc::clone(&metrics);
                    let cache = Arc::clone(&cache);
                    let executor = Arc::clone(&executor);
                    let flights = Arc::clone(&flights);
                    Arc::new(move || {
                        render_prometheus(
                            &metrics.snapshot(),
                            &cache.stats(),
                            executor.queued(),
                            flights.len(),
                        )
                    })
                };
                Some(spawn_metrics_listener(addr.as_str(), render)?)
            }
            None => None,
        };

        let io_threads = config.io_threads.max(1);
        let shared = Shared {
            metrics: Arc::clone(&metrics),
            cache: Arc::clone(&cache),
            flights,
            executor: Arc::clone(&executor),
            reaper: Arc::clone(&reaper),
            recorder: Arc::clone(&recorder),
            governor,
            shutdown: Arc::clone(&shutdown),
            default_deadline_ms: config.default_deadline_ms,
            conn_window: config.conn_window,
            small_cost_max: config.small_cost_max,
            workers: config.workers.max(1),
            io_threads,
        };
        let mut io_handles = Vec::with_capacity(io_threads);
        for _ in 0..io_threads {
            io_handles.push(Arc::new(IoHandle::new()?));
        }
        let idle_timeout = config.conn_idle_timeout_ms.map(Duration::from_millis);
        let mut listener = Some(listener);
        let mut io_joins = Vec::with_capacity(io_threads);
        for (me, handle) in io_handles.iter().enumerate() {
            let io = IoThread {
                shared: shared.clone(),
                poller: Poller::new()?,
                handle: Arc::clone(handle),
                peers: io_handles.clone(),
                me,
                next_peer: 0,
                listener: if me == 0 { listener.take() } else { None },
                conns: Vec::new(),
                free: Vec::new(),
                pool: BufferPool::new(64, MAX_LINE_BYTES),
                scratch: vec![0u8; READ_CHUNK],
                idle_timeout,
                draining: false,
                stats: metrics.register_io_loop(),
            };
            io_joins.push(
                thread::Builder::new()
                    .name(format!("gt-serve-io-{me}"))
                    .spawn(move || io.run())?,
            );
        }

        // Dynamic membership: announce this replica to the router and
        // warm-fill from already-joined peers, off the serving path —
        // the listener is live before the first announce attempt, so a
        // routed request can never beat the replica it is routed to.
        let announce_handle = match &config.announce {
            Some(router) => {
                let router = router.clone();
                let advertise = config
                    .advertise
                    .clone()
                    .unwrap_or_else(|| local_addr.to_string());
                let weight = config.weight;
                let generation = config.generation;
                let cache = Arc::clone(&cache);
                let metrics = Arc::clone(&metrics);
                let shutdown = Arc::clone(&shutdown);
                Some(
                    thread::Builder::new()
                        .name("gt-serve-announce".into())
                        .spawn(move || {
                            announce_and_warmfill(
                                &router, &advertise, weight, generation, &cache, &metrics,
                                &shutdown,
                            )
                        })?,
                )
            }
            None => None,
        };

        Ok(Server {
            local_addr,
            shutdown,
            metrics,
            io_handles,
            io_joins,
            executor,
            reaper,
            reaper_handle,
            recorder,
            metrics_listener,
            cache,
            snapshot_path: config.snapshot_path.clone(),
            announce_handle,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared shutdown flag — hand this to a signal handler.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// The live metrics registry.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// The flight recorder (shared with every connection thread).
    pub fn recorder(&self) -> Arc<FlightRecorder> {
        Arc::clone(&self.recorder)
    }

    /// Where the `/metrics` endpoint is listening, if enabled (useful
    /// with port 0 in `--metrics-addr`).
    pub fn metrics_listener_addr(&self) -> Option<SocketAddr> {
        self.metrics_listener.as_ref().map(|l| l.local_addr())
    }

    /// Begin a graceful drain (idempotent, returns immediately).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Pull every I/O thread out of its poll sleep so the drain
        // starts now, not at the next 50ms tick.
        for h in &self.io_handles {
            h.waker.wake();
        }
    }

    /// Drain and reap every thread; returns the final metrics.  Call
    /// [`Server::request_shutdown`] first (or let a client's `shutdown`
    /// request do it) or this blocks until one arrives.
    pub fn join(self) -> MetricsSnapshot {
        // Each I/O thread drops the listener, flushes every
        // connection's in-flight replies, and exits; the workers and
        // the reaper are still live here, so every outstanding reply
        // is settled by result or by deadline.
        for h in &self.io_handles {
            h.waker.wake();
        }
        for h in self.io_joins {
            let _ = h.join();
        }
        self.executor.shutdown();
        self.reaper.stop();
        let _ = self.reaper_handle.join();
        if let Some(h) = self.announce_handle {
            let _ = h.join();
        }
        if let Some(listener) = self.metrics_listener {
            listener.shutdown();
        }
        // Every engine result is published and cached by now: freeze
        // the hit set to disk so the next boot starts warm.
        if let Some(path) = &self.snapshot_path {
            if let Err(e) = snapshot::save(Path::new(path), &self.cache) {
                eprintln!("gt-serve: snapshot {path} not saved: {e}");
            }
        }
        self.metrics.snapshot()
    }
}

/// One fleet control call: connect with a timeout, send one request
/// line, read one reply line.  Bounded at every step, so a dead or
/// wedged peer costs at most the I/O timeout — never a hung thread.
fn fleet_request(addr: &str, request: &Request) -> std::io::Result<Response> {
    let sockaddr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidInput, "unresolvable address"))?;
    let mut stream = TcpStream::connect_timeout(&sockaddr, FLEET_IO_TIMEOUT)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(FLEET_IO_TIMEOUT))?;
    stream.set_write_timeout(Some(FLEET_IO_TIMEOUT))?;
    stream.write_all(request.render().as_bytes())?;
    stream.write_all(b"\n")?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(std::io::Error::new(
            ErrorKind::UnexpectedEof,
            "peer closed the connection",
        ));
    }
    Response::parse(line.trim()).map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e))
}

/// The member addresses in a router `health` reply.
fn member_addrs(r: &Response) -> Vec<String> {
    match r.body.get("members") {
        Some(Json::Array(list)) => list
            .iter()
            .filter_map(|m| m.get("addr").and_then(Json::as_str).map(str::to_string))
            .collect(),
        _ => Vec::new(),
    }
}

/// Join the fleet: announce `advertise` to the router (retrying while
/// it comes up), then warm-fill the cache from peers the router
/// already knows, via bounded `cachepull`s.  Gives up quietly on
/// shutdown or once the retry budget is spent — a replica that never
/// reaches its router still serves direct traffic, exactly like a
/// statically configured one.
fn announce_and_warmfill(
    router: &str,
    advertise: &str,
    weight: u64,
    generation: u64,
    cache: &ResultCache,
    metrics: &Metrics,
    shutdown: &AtomicBool,
) {
    let join = Request::join(advertise, weight, generation);
    let mut announced = false;
    for _ in 0..ANNOUNCE_ATTEMPTS {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match fleet_request(router, &join) {
            Ok(r) if r.ok => {
                announced = true;
                break;
            }
            Ok(r) => {
                // The router heard us and said no (a stale generation,
                // say): repeating the same announcement cannot succeed.
                eprintln!(
                    "gt-serve: join rejected by {router}: {}",
                    r.error.as_deref().unwrap_or("error")
                );
                return;
            }
            Err(_) => thread::sleep(ANNOUNCE_RETRY),
        }
    }
    if !announced {
        eprintln!("gt-serve: router {router} unreachable; serving unannounced");
        return;
    }
    // Peer warm-fill: ask the router who else is in, then pull each
    // peer's hottest entries.  `insert_aged` honors the TTL and the
    // LRU bound, so an over-pull costs wire bytes, never correctness.
    let members = match fleet_request(
        router,
        &Request {
            op: Op::Health,
            ..Default::default()
        },
    ) {
        Ok(r) if r.ok => member_addrs(&r),
        _ => Vec::new(),
    };
    let mut filled = 0u64;
    for peer in members
        .iter()
        .filter(|a| a.as_str() != advertise)
        .take(WARMFILL_PEERS)
    {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(r) = fleet_request(peer, &Request::cachepull(CACHEPULL_MAX_LIMIT)) else {
            continue;
        };
        if !r.ok {
            continue;
        }
        let Some(Json::Array(entries)) = r.body.get("entries") else {
            continue;
        };
        for e in entries {
            if let Some((key, outcome, age_ms)) = snapshot::entry_from(e) {
                if cache.insert_aged(key, outcome, Duration::from_millis(age_ms)) {
                    filled += 1;
                }
            }
        }
    }
    metrics
        .warmfill_entries
        .fetch_add(filled, Ordering::Relaxed);
}

/// When and how widely a worker may fan a single `par-*` evaluation
/// across extra threads (from `--par-threshold`/`--par-max-workers`).
#[derive(Debug, Clone, Copy)]
struct ParPolicy {
    threshold: u64,
    max_workers: u32,
}

impl ParPolicy {
    /// The worker grant for one eval job: `par-*` algorithms whose
    /// estimated cost crosses the threshold get up to `max_workers`
    /// threads, capped by idle pool capacity; everything else runs on
    /// the dispatching worker alone.
    fn grant(self, gauge: &ActiveGauge, spec: &GenSpec, algo: &AlgoSpec) -> u32 {
        if algo.name.starts_with("par-") && estimated_cost(spec, algo) > self.threshold {
            gauge.par_grant(self.max_workers)
        } else {
            1
        }
    }
}

/// Evaluate one executor batch: per-job cancellation check, engine
/// run, cache insert, publish, and every drained waiter answered.
/// Cancelling one job's flight never touches its batchmates — each
/// job carries its own flight and flag.
fn run_batch(
    batch: Vec<Job>,
    cache: &ResultCache,
    flights: &FlightTable<Pending>,
    metrics: &Metrics,
    recorder: &FlightRecorder,
    gauge: &ActiveGauge,
    par: ParPolicy,
) {
    // Mark this worker busy for the whole batch so concurrent grant
    // decisions see it as non-idle.
    let _busy = gauge.enter();
    metrics.batches.record(batch.len());
    // One dispatch stamp for the whole batch: every job left the queue
    // when the worker popped it; time behind batchmates is batch_wait.
    for job in &batch {
        job.flight.stamps.stamp_dispatch();
    }
    for job in batch {
        // Every waiter already gave up (last one out set the flag):
        // skip the run, retire the flight.
        if job.flight.cancel.load(Ordering::Relaxed) {
            for w in flights.publish(&job.cache_key, &job.flight, FlightResult::Cancelled) {
                answer_pending(&w, metrics, &FlightResult::Cancelled, recorder, None);
            }
            continue;
        }
        let stamps = &job.flight.stamps;
        stamps.stamp_engine_start();
        let evaluated = match &job.work {
            JobWork::Eval { spec, algo } => {
                let grant = par.grant(gauge, spec, algo);
                if grant > 1 {
                    metrics.record_par_grant(grant);
                }
                evaluate_with_grant(spec, algo, &job.flight.cancel, grant)
            }
            JobWork::Subeval { sub } => evaluate_subtree(sub, &job.flight.cancel),
        };
        stamps.stamp_engine_end();

        // Fold this run into the per-algorithm stage histograms and
        // work aggregates (dispatch is always stamped here, so the
        // unwraps below cannot misfire — but stay defensive).
        let stages = metrics.algo_stages(job.work.algo_label());
        if let Some(d) = stamps.dispatch_us() {
            stages.queue_wait.record(d);
            if let Some(es) = stamps.engine_start_us() {
                stages.batch_wait.record(es.saturating_sub(d));
                if let Some(ee) = stamps.engine_end_us() {
                    stages.engine.record(ee.saturating_sub(es));
                }
            }
        }

        let result = match evaluated {
            Ok(outcome) => {
                metrics.evaluated.fetch_add(1, Ordering::Relaxed);
                if matches!(job.work, JobWork::Subeval { .. }) {
                    metrics.subevals.fetch_add(1, Ordering::Relaxed);
                }
                metrics.record_par_work(outcome.steals, outcome.retired, outcome.narrowings);
                stages.record_work(&outcome);
                // Insert before publishing: once any waiter observes
                // the result, the cache must already have it.
                cache.insert(job.cache_key.clone(), outcome);
                FlightResult::Done(outcome)
            }
            Err(EvalError::Cancelled) => FlightResult::Cancelled,
            Err(EvalError::Bad(e)) => FlightResult::Failed(e),
        };
        for w in flights.publish(&job.cache_key, &job.flight, result.clone()) {
            answer_pending(&w, metrics, &result, recorder, Some(stamps));
        }
    }
}

/// Poller token of the thread's waker pipe.
const TOKEN_WAKER: u64 = 0;
/// Poller token of the listener (thread 0 only).
const TOKEN_LISTENER: u64 = 1;
/// Connection slab index `i` registers under token `i + TOKEN_BASE`.
const TOKEN_BASE: u64 = 2;

/// Why a connection is being retired (feeds the close counters).
#[derive(Clone, Copy, PartialEq, Eq)]
enum CloseReason {
    /// EOF/drain completed, write error, or malformed input.
    Done,
    /// No completed request line for `--conn-idle-timeout`.
    Idle,
    /// The bounded outbound queue overflowed.
    Overflow,
    /// A request line exceeded `MAX_LINE_BYTES`.
    Overlong,
}

/// Per-connection state owned by exactly one I/O thread.
struct ConnState {
    stream: TcpStream,
    reply: Arc<ConnReply>,
    reader: LineReader,
    /// Partial-write offset into the outbox's front buffer.
    write_offset: usize,
    /// Currently registered (read, write) interest.
    interest: (bool, bool),
    peer_closed: bool,
    /// When the last complete request line arrived (idle clock).
    last_line: Instant,
}

/// One readiness-driven I/O thread: a poller, a slab of connection
/// state machines, and (on thread 0) the listener.  Fresh connections
/// arrive via accept or the injector; replies arrive as `Wake`
/// commands from whichever thread settled them.
struct IoThread {
    shared: Shared,
    poller: Poller,
    handle: Arc<IoHandle>,
    /// Every I/O thread's handle, for round-robin conn distribution.
    peers: Vec<Arc<IoHandle>>,
    me: usize,
    next_peer: usize,
    listener: Option<TcpListener>,
    conns: Vec<Option<ConnState>>,
    free: Vec<usize>,
    pool: BufferPool,
    scratch: Vec<u8>,
    idle_timeout: Option<Duration>,
    draining: bool,
    /// Event-loop health counters for this thread's `/metrics` series.
    stats: Arc<IoLoopStats>,
}

impl IoThread {
    fn run(mut self) {
        if self
            .poller
            .add(self.handle.waker.read_fd(), TOKEN_WAKER, true, false)
            .is_err()
        {
            return;
        }
        if let Some(l) = &self.listener {
            if self
                .poller
                .add(l.as_raw_fd(), TOKEN_LISTENER, true, false)
                .is_err()
            {
                return;
            }
        }
        let mut events = Vec::with_capacity(256);
        let mut last_gauge = Instant::now();
        loop {
            events.clear();
            let wait_start = Instant::now();
            let _ = self
                .poller
                .wait(&mut events, POLL_INTERVAL.as_millis() as i32);
            let work_start = Instant::now();
            if !self.draining && self.shared.shutdown.load(Ordering::SeqCst) {
                self.begin_drain();
            }
            for ev in &events {
                match ev.token {
                    TOKEN_WAKER => self.drain_injector(),
                    TOKEN_LISTENER => self.accept_ready(),
                    token => {
                        let idx = (token - TOKEN_BASE) as usize;
                        if ev.readable {
                            self.handle_readable(idx);
                        } else if ev.hangup {
                            if let Some(c) = self.conns.get_mut(idx).and_then(Option::as_mut) {
                                c.peer_closed = true;
                            }
                        }
                        self.service(idx);
                    }
                }
            }
            self.sweep_idle();
            // Gauges are a sweep over the slab (outbox locks), so
            // refresh at most once per poll interval, not per wake.
            if work_start.duration_since(last_gauge) >= POLL_INTERVAL {
                last_gauge = work_start;
                self.refresh_gauges();
            }
            self.stats.record_iteration(
                work_start.duration_since(wait_start).as_micros() as u64,
                work_start.elapsed().as_micros() as u64,
            );
            if self.draining && self.conns.iter().all(Option::is_none) {
                break;
            }
        }
    }

    /// Publish per-loop gauges: live connections and total queued
    /// outbound bytes.  Thread 0 also samples the shared executor's
    /// queue depth into its distribution-over-time histogram.
    fn refresh_gauges(&self) {
        let mut connections = 0u64;
        let mut outbox_bytes = 0u64;
        for conn in self.conns.iter().flatten() {
            connections += 1;
            outbox_bytes += conn.reply.outbox.lock().unwrap().bytes as u64;
        }
        self.stats.set_gauges(connections, outbox_bytes);
        if self.me == 0 {
            self.shared
                .metrics
                .record_queue_depth(self.shared.executor.queued());
        }
    }

    /// Shutdown observed: drop the listener, stop parsing input, and
    /// keep each connection only until its in-flight replies flush.
    fn begin_drain(&mut self) {
        self.draining = true;
        if let Some(l) = self.listener.take() {
            let _ = self.poller.delete(l.as_raw_fd());
        }
        for idx in 0..self.conns.len() {
            if let Some(conn) = self.conns[idx].as_mut() {
                // Unparsed carried bytes are requests we will never
                // run — drop them, like the old readers' buffers.
                conn.reader = LineReader::new(MAX_LINE_BYTES);
            }
            self.service(idx);
        }
    }

    fn drain_injector(&mut self) {
        self.handle.waker.drain();
        let cmds: Vec<IoCmd> = std::mem::take(&mut *self.handle.injector.lock().unwrap());
        for cmd in cmds {
            match cmd {
                // A conn raced in after the drain began: drop it, the
                // old accept loop would never have adopted it either.
                IoCmd::Conn(_) if self.draining => {}
                IoCmd::Conn(stream) => self.register(stream),
                IoCmd::Wake(token) => {
                    if token >= TOKEN_BASE {
                        self.service((token - TOKEN_BASE) as usize);
                    }
                }
            }
        }
    }

    /// Accept until the listener would block, distributing conns
    /// round-robin across the pool (thread 0 adopts its own share).
    fn accept_ready(&mut self) {
        let mut accepted = Vec::new();
        if let Some(listener) = &self.listener {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => accepted.push(stream),
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => break,
                }
            }
        }
        for stream in accepted {
            self.shared
                .metrics
                .connections
                .fetch_add(1, Ordering::Relaxed);
            let target = self.next_peer % self.peers.len().max(1);
            self.next_peer = self.next_peer.wrapping_add(1);
            if target == self.me {
                self.register(stream);
            } else {
                self.peers[target].push(IoCmd::Conn(stream));
            }
        }
    }

    /// Adopt one connection into the slab and the poller.
    fn register(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        // Replies are small writes the client may block on; Nagle
        // would hold them for the peer's delayed ACK.
        let _ = stream.set_nodelay(true);
        let idx = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.conns.len() - 1
        });
        let token = idx as u64 + TOKEN_BASE;
        if self
            .poller
            .add(stream.as_raw_fd(), token, true, false)
            .is_err()
        {
            self.free.push(idx);
            return;
        }
        let reply = Arc::new(ConnReply::new(token, Arc::clone(&self.handle)));
        self.shared
            .metrics
            .open_conns
            .fetch_add(1, Ordering::Relaxed);
        self.conns[idx] = Some(ConnState {
            stream,
            reply,
            reader: LineReader::new(MAX_LINE_BYTES),
            write_offset: 0,
            interest: (true, false),
            peer_closed: false,
            last_line: Instant::now(),
        });
    }

    /// Pull bytes off a readable connection and run them through its
    /// line state machine, respecting the window and outbox levels.
    fn handle_readable(&mut self, idx: usize) {
        let mut close = None;
        {
            let Self {
                conns,
                scratch,
                pool,
                shared,
                draining,
                ..
            } = self;
            let Some(conn) = conns.get_mut(idx).and_then(Option::as_mut) else {
                return;
            };
            if *draining {
                return;
            }
            loop {
                // Flow control *before* pulling more bytes: a full
                // window or a backed-up outbox leaves them in the
                // kernel buffer, which is TCP backpressure.
                if conn.reply.inflight.load(Ordering::Acquire) >= shared.conn_window.max(1) {
                    break;
                }
                if conn.reply.outbox.lock().unwrap().bytes >= OUTBOX_HIGH_WATER {
                    break;
                }
                let n = match conn.stream.read(scratch) {
                    Ok(0) => {
                        conn.peer_closed = true;
                        break;
                    }
                    Ok(n) => n,
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.peer_closed = true;
                        break;
                    }
                };
                if let Some(reason) = feed_conn(shared, conn, &scratch[..n], pool) {
                    close = Some(reason);
                    break;
                }
            }
        }
        if let Some(reason) = close {
            self.close(idx, reason);
        }
    }

    /// Flush the connection's outbox, resume deferred parsing when its
    /// window or outbox freed up, recompute poller interest, and
    /// retire the connection once it is settled.
    fn service(&mut self, idx: usize) {
        let mut close = None;
        let mut settled = (false, false); // (outbox empty, interest write)
        {
            let Self {
                conns,
                pool,
                shared,
                draining,
                ..
            } = self;
            let Some(conn) = conns.get_mut(idx).and_then(Option::as_mut) else {
                return;
            };
            // Reset the wake collapse *before* looking at state, so a
            // completion landing mid-service queues a fresh wake.
            conn.reply.wake_queued.store(false, Ordering::Release);
            if flush_outbox(conn).is_err() {
                close = Some(CloseReason::Done);
            }
            // Parsing may have been deferred on a full window or a
            // high outbox; both may have cleared now.
            if close.is_none() && !*draining && conn.reader.has_carry() {
                if let Some(reason) = feed_conn(shared, conn, &[], pool) {
                    close = Some(reason);
                }
            }
            if close.is_none() && flush_outbox(conn).is_err() {
                close = Some(CloseReason::Done);
            }
            if close.is_none() {
                let ob = conn.reply.outbox.lock().unwrap();
                if ob.overflowed {
                    close = Some(CloseReason::Overflow);
                } else {
                    let inflight = conn.reply.inflight.load(Ordering::Acquire);
                    let outbox_empty = ob.queue.is_empty();
                    if (conn.peer_closed || *draining) && inflight == 0 && outbox_empty {
                        close = Some(CloseReason::Done);
                    } else {
                        let read_i = !*draining
                            && !conn.peer_closed
                            && inflight < shared.conn_window.max(1)
                            && ob.bytes < OUTBOX_HIGH_WATER;
                        settled = (read_i, !outbox_empty);
                    }
                }
            }
            if close.is_none() && conn.interest != settled {
                let token = conn.reply.token;
                // A modify failure strands the conn silently; close it.
                match self
                    .poller
                    .modify(conn.stream.as_raw_fd(), token, settled.0, settled.1)
                {
                    Ok(()) => conn.interest = settled,
                    Err(_) => close = Some(CloseReason::Done),
                }
            }
        }
        if let Some(reason) = close {
            self.close(idx, reason);
        }
    }

    /// Close connections that idled past `--conn-idle-timeout` with
    /// nothing in flight (both slowloris shapes land here or in the
    /// outbox cap).
    fn sweep_idle(&mut self) {
        let Some(timeout) = self.idle_timeout else {
            return;
        };
        let now = Instant::now();
        for idx in 0..self.conns.len() {
            let expired = match &self.conns[idx] {
                Some(c) => {
                    c.reply.inflight.load(Ordering::Acquire) == 0
                        && now.duration_since(c.last_line) >= timeout
                }
                None => false,
            };
            if expired {
                self.close(idx, CloseReason::Idle);
            }
        }
    }

    /// Retire one connection: deregister, drop, recycle the slot.
    fn close(&mut self, idx: usize, reason: CloseReason) {
        let Some(mut conn) = self.conns.get_mut(idx).and_then(Option::take) else {
            return;
        };
        let _ = self.poller.delete(conn.stream.as_raw_fd());
        // One best-effort flush so a final error reply (over-long
        // line, ...) reaches a live peer; whatever the socket refuses
        // is dropped with the connection.
        let _ = flush_outbox(&mut conn);
        {
            // Late replies from still-running evals become no-ops.
            let mut ob = conn.reply.outbox.lock().unwrap();
            ob.closed = true;
            ob.queue.clear();
            ob.bytes = 0;
        }
        let m = &self.shared.metrics;
        m.open_conns.fetch_sub(1, Ordering::Relaxed);
        match reason {
            CloseReason::Idle => m.idle_closed.fetch_add(1, Ordering::Relaxed),
            CloseReason::Overflow => m.overflow_closed.fetch_add(1, Ordering::Relaxed),
            CloseReason::Overlong => m.overlong_closed.fetch_add(1, Ordering::Relaxed),
            CloseReason::Done => 0,
        };
        self.free.push(idx);
    }
}

/// Write as much of the outbox as the socket accepts (vectored); an
/// `Err` means the peer is unreachable and the connection must close.
fn flush_outbox(conn: &mut ConnState) -> std::io::Result<()> {
    let mut ob = conn.reply.outbox.lock().unwrap();
    if ob.queue.is_empty() {
        return Ok(());
    }
    match drain_outbox(&conn.stream, &mut ob.queue, &mut conn.write_offset) {
        Ok(true) => {
            ob.bytes = 0;
            Ok(())
        }
        Ok(false) => {
            // Partial: recompute the level from what survived.
            ob.bytes = ob.queue.iter().map(Vec::len).sum::<usize>() - conn.write_offset;
            Ok(())
        }
        Err(e) => Err(e),
    }
}

/// Feed bytes (or `&[]` to resume the carry) through the connection's
/// line state machine: control ops and cache hits answer straight
/// into the outbox, misses dispatch to the executor.  Returns a close
/// reason when the connection must die.
fn feed_conn(
    shared: &Shared,
    conn: &mut ConnState,
    data: &[u8],
    pool: &mut BufferPool,
) -> Option<CloseReason> {
    let window = shared.conn_window.max(1);
    let ConnState {
        reader,
        reply,
        last_line,
        ..
    } = conn;
    let mut bad = false;
    let fed = reader.feed(data, pool, |raw| {
        // Flow control: a line past the pipelining window or over a
        // backed-up outbox is deferred verbatim, not consumed.
        if reply.inflight.load(Ordering::Acquire) >= window {
            return LineAction::Defer;
        }
        {
            let ob = reply.outbox.lock().unwrap();
            if ob.overflowed || ob.closed {
                return LineAction::Stop;
            }
            if ob.bytes >= OUTBOX_HIGH_WATER {
                return LineAction::Defer;
            }
        }
        let Ok(text) = std::str::from_utf8(raw) else {
            bad = true;
            return LineAction::Stop;
        };
        let recv = Instant::now();
        let trimmed = text.trim();
        if trimmed.is_empty() {
            return LineAction::Continue;
        }
        *last_line = recv;
        shared.metrics.received.fetch_add(1, Ordering::Relaxed);
        match process_line(trimmed, shared, recv) {
            Handled::Inline(out) => {
                reply.enqueue(&out);
            }
            Handled::Dispatch {
                id,
                work,
                cache_key,
                cost,
                deadline,
                start,
                parse_us,
                probe_us,
                trace,
                tenant,
            } => {
                // Claim the window slot here (the callback above
                // guarantees one is free); settling releases it.
                reply.inflight.fetch_add(1, Ordering::AcqRel);
                dispatch_eval(
                    shared, reply, id, work, cache_key, cost, deadline, start, parse_us, probe_us,
                    trace, tenant,
                );
            }
        }
        LineAction::Continue
    });
    reader.release(pool);
    match fed {
        Ok(_) if bad => Some(CloseReason::Done),
        Ok(_) => None,
        Err(LineTooLong) => {
            // Best effort, as before the event loop: tell the client
            // why before the close flushes and drops the connection.
            reply.enqueue(&error_line(
                &None,
                ErrorCode::BadRequest,
                "request line too long",
            ));
            Some(CloseReason::Overlong)
        }
    }
}

/// How one request line is to be answered.
// Transient: built and destructured within one reader turn, never
// stored, so the Inline/Dispatch size gap costs nothing.
#[allow(clippy::large_enum_variant)]
enum Handled {
    /// Reply computed on the reader thread (control ops, cache hits,
    /// and every error that needs no engine run).
    Inline(String),
    /// A cache miss that must go through the flight table and the
    /// executor; answered asynchronously when its flight publishes
    /// or its deadline fires.
    Dispatch {
        id: Option<String>,
        work: JobWork,
        cache_key: String,
        /// Estimated leaves, for the executor's small/large split.
        cost: u64,
        deadline: Instant,
        start: Instant,
        parse_us: u64,
        probe_us: u64,
        trace: Option<TraceContext>,
        tenant: Option<String>,
    },
}

/// Handle one request line on its I/O thread.  `recv` is when the
/// line came off the socket — the origin of every stage offset.
fn process_line(line: &str, shared: &Shared, recv: Instant) -> Handled {
    let m = &shared.metrics;
    let request = match Request::parse(line) {
        Ok(r) => r,
        Err(e) => {
            m.bad_request.fetch_add(1, Ordering::Relaxed);
            return Handled::Inline(error_line(&None, ErrorCode::BadRequest, &e));
        }
    };
    let parse_us = recv.elapsed().as_micros() as u64;
    let id = request.id.clone();
    match request.op {
        Op::Ping => Handled::Inline(ok_line(
            &id,
            vec![
                ("version", Json::from(PROTOCOL_VERSION)),
                (
                    "draining",
                    Json::Bool(shared.shutdown.load(Ordering::SeqCst)),
                ),
            ],
        )),
        Op::Stats => {
            let mut stats = m.snapshot().to_json();
            if let Json::Object(fields) = &mut stats {
                fields.push(("cache".into(), shared.cache.stats().to_json()));
                fields.push((
                    "executor_queued".into(),
                    Json::from(shared.executor.queued()),
                ));
                fields.push(("flights_inflight".into(), Json::from(shared.flights.len())));
                fields.push(("io_threads".into(), Json::from(shared.io_threads)));
            }
            Handled::Inline(ok_line(&id, vec![("stats", stats)]))
        }
        Op::Trace => {
            let limit = request.n.unwrap_or(64).min(usize::MAX as u64) as usize;
            Handled::Inline(ok_line(
                &id,
                vec![
                    ("traces", shared.recorder.snapshot_json(limit)),
                    ("slow_us", Json::from(shared.recorder.slow_us())),
                ],
            ))
        }
        Op::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            Handled::Inline(ok_line(&id, vec![("draining", Json::Bool(true))]))
        }
        // The cheap probe verb: three atomic loads and two lock-free
        // length reads — no stats snapshot allocation, so a router
        // polling every replica at high frequency costs nothing.
        Op::Health => Handled::Inline(ok_line(
            &id,
            vec![
                ("uptime_s", Json::from(m.uptime_us() as f64 / 1e6)),
                ("queued", Json::from(shared.executor.queued() as u64)),
                ("inflight", Json::from(shared.flights.len() as u64)),
                (
                    "draining",
                    Json::Bool(shared.shutdown.load(Ordering::SeqCst)),
                ),
            ],
        )),
        // A replica is never the membership authority; a misdirected
        // announcement gets a crisp 400 instead of a silent ok.
        Op::Join => Handled::Inline(error_line(
            &id,
            ErrorCode::BadRequest,
            "join is a router verb; replicas only announce, never accept",
        )),
        // Bounded bulk cache read for peer warm-fill: up to `n` of the
        // hottest entries (MRU-first), in the snapshot entry shape.
        Op::Cachepull => {
            let limit = request
                .n
                .unwrap_or(CACHEPULL_DEFAULT_LIMIT)
                .min(CACHEPULL_MAX_LIMIT) as usize;
            let entries: Vec<Json> = shared
                .cache
                .export(limit)
                .iter()
                .map(|(k, o, age)| crate::snapshot::entry_json(k, o, *age))
                .collect();
            m.cachepull_served.fetch_add(1, Ordering::Relaxed);
            m.cachepull_entries
                .fetch_add(entries.len() as u64, Ordering::Relaxed);
            Handled::Inline(ok_line(
                &id,
                vec![
                    ("count", Json::from(entries.len())),
                    ("entries", Json::Array(entries)),
                ],
            ))
        }
        Op::Eval => process_eval(&request, shared, recv, parse_us),
        Op::Subeval => process_subeval(&request, shared, recv, parse_us),
    }
}

fn process_eval(request: &Request, shared: &Shared, recv: Instant, parse_us: u64) -> Handled {
    let m = &shared.metrics;
    let id = &request.id;
    if shared.shutdown.load(Ordering::SeqCst) {
        m.draining.fetch_add(1, Ordering::Relaxed);
        return Handled::Inline(error_line(id, ErrorCode::Draining, "server is draining"));
    }
    let spec_text = request.spec.as_deref().unwrap_or_default();
    let algo_text = request.algo.as_deref().unwrap_or(DEFAULT_ALGO);
    let validated = match validate(spec_text, algo_text) {
        Ok(v) => v,
        Err(e) => {
            m.bad_request.fetch_add(1, Ordering::Relaxed);
            return Handled::Inline(error_line(id, ErrorCode::BadRequest, &e));
        }
    };
    let start = recv;

    if let Some(hit) = shared.cache.get(&validated.cache_key) {
        m.cache_hits.fetch_add(1, Ordering::Relaxed);
        let probe_us = recv.elapsed().as_micros() as u64;
        record_tenant_hit(m, request.tenant.as_deref(), recv);
        let echo = request
            .trace
            .as_ref()
            .map(|ctx| trace_echo_json(ctx, start, parse_us, probe_us, None));
        let reply = ok_eval_line(id, &hit, true, false, start, m, echo);
        shared.recorder.record(TraceRecord {
            seq: 0,
            id: id.clone(),
            key: validated.cache_key,
            algo: validated.algo.name,
            status: "ok".to_string(),
            cached: true,
            coalesced: false,
            latency_us: recv.elapsed().as_micros() as u64,
            parse_us,
            probe_us,
            enqueue_us: None,
            dispatch_us: None,
            engine_start_us: None,
            engine_end_us: None,
            work: Some(hit),
            trace_id: request.trace.as_ref().map(|t| t.trace_id.clone()),
            parent_span: request.trace.as_ref().and_then(|t| t.parent_span),
            tenant: request.tenant.clone(),
        });
        return Handled::Inline(reply);
    }
    m.cache_misses.fetch_add(1, Ordering::Relaxed);
    let probe_us = recv.elapsed().as_micros() as u64;

    let deadline_ms = request.deadline_ms.unwrap_or(shared.default_deadline_ms);
    // Clamp to a day so absurd values cannot overflow Instant math.
    let deadline = start + Duration::from_millis(deadline_ms.min(86_400_000));
    let cost = estimated_cost(&validated.spec, &validated.algo);
    Handled::Dispatch {
        id: id.clone(),
        work: JobWork::Eval {
            spec: validated.spec,
            algo: validated.algo,
        },
        cache_key: validated.cache_key,
        cost,
        deadline,
        start,
        parse_us,
        probe_us,
        trace: request.trace.clone(),
        tenant: request.tenant.clone(),
    }
}

/// Tenant accounting for a request answered straight from the cache:
/// requests, ok, and latency all land on the tenant's card without
/// ever touching the governor (a hit holds no inflight slot).
fn record_tenant_hit(m: &Metrics, tenant: Option<&str>, recv: Instant) {
    if let Some(t) = tenant {
        let ts = m.tenant_stats(t);
        ts.requests.fetch_add(1, Ordering::Relaxed);
        ts.ok.fetch_add(1, Ordering::Relaxed);
        ts.latency.record(recv.elapsed().as_micros() as u64);
    }
}

/// Handle one `subeval` line: validate the subtree triple, probe the
/// window-scoped cache, dispatch a miss through the same flight
/// table/executor path as whole evals.
fn process_subeval(request: &Request, shared: &Shared, recv: Instant, parse_us: u64) -> Handled {
    let m = &shared.metrics;
    let id = &request.id;
    m.subeval_requests.fetch_add(1, Ordering::Relaxed);
    if shared.shutdown.load(Ordering::SeqCst) {
        m.draining.fetch_add(1, Ordering::Relaxed);
        return Handled::Inline(error_line(id, ErrorCode::Draining, "server is draining"));
    }
    let spec_text = request.spec.as_deref().unwrap_or_default();
    let path_text = request.path.as_deref().unwrap_or_default();
    let validated = match validate_subeval(spec_text, path_text, request.alpha, request.beta) {
        Ok(v) => v,
        Err(e) => {
            m.bad_request.fetch_add(1, Ordering::Relaxed);
            return Handled::Inline(error_line(id, ErrorCode::BadRequest, &e));
        }
    };
    let start = recv;

    if let Some(hit) = shared.cache.get(&validated.cache_key) {
        m.cache_hits.fetch_add(1, Ordering::Relaxed);
        let probe_us = recv.elapsed().as_micros() as u64;
        record_tenant_hit(m, request.tenant.as_deref(), recv);
        let echo = request
            .trace
            .as_ref()
            .map(|ctx| trace_echo_json(ctx, start, parse_us, probe_us, None));
        let reply = ok_eval_line(id, &hit, true, false, start, m, echo);
        shared.recorder.record(TraceRecord {
            seq: 0,
            id: id.clone(),
            key: validated.cache_key,
            algo: SUBEVAL_ALGO.to_string(),
            status: "ok".to_string(),
            cached: true,
            coalesced: false,
            latency_us: recv.elapsed().as_micros() as u64,
            parse_us,
            probe_us,
            enqueue_us: None,
            dispatch_us: None,
            engine_start_us: None,
            engine_end_us: None,
            work: Some(hit),
            trace_id: request.trace.as_ref().map(|t| t.trace_id.clone()),
            parent_span: request.trace.as_ref().and_then(|t| t.parent_span),
            tenant: request.tenant.clone(),
        });
        return Handled::Inline(reply);
    }
    m.cache_misses.fetch_add(1, Ordering::Relaxed);
    let probe_us = recv.elapsed().as_micros() as u64;

    let deadline_ms = request.deadline_ms.unwrap_or(shared.default_deadline_ms);
    let deadline = start + Duration::from_millis(deadline_ms.min(86_400_000));
    let cost = estimated_subtree_cost(&validated.sub);
    Handled::Dispatch {
        id: id.clone(),
        work: JobWork::Subeval { sub: validated.sub },
        cache_key: validated.cache_key,
        cost,
        deadline,
        start,
        parse_us,
        probe_us,
        trace: request.trace.clone(),
        tenant: request.tenant.clone(),
    }
}

/// Run one cache miss through the flight table on the I/O thread:
/// lead (submit the job to the executor) or follow (coalesce), attach
/// the pending reply, and hand the deadline to the reaper.  Never
/// blocks — the caller already claimed a window slot.
#[allow(clippy::too_many_arguments)]
fn dispatch_eval(
    shared: &Shared,
    conn: &Arc<ConnReply>,
    id: Option<String>,
    work: JobWork,
    cache_key: String,
    cost: u64,
    deadline: Instant,
    start: Instant,
    parse_us: u64,
    probe_us: u64,
    trace: Option<TraceContext>,
    tenant: Option<String>,
) {
    let m = &shared.metrics;
    let recorder = &shared.recorder;
    let key = cache_key;
    let algo_name = work.algo_label().to_string();
    // Every dispatched request lands on its tenant's card and claims
    // a tenant-inflight slot (leaders and coalesced followers alike —
    // the cap bounds dispatched-and-unanswered requests, however they
    // are served).  A tenant at its cap is shed here, before it can
    // occupy a flight, a queue slot, or an engine.
    if let Some(t) = tenant.as_deref() {
        m.tenant_stats(t).requests.fetch_add(1, Ordering::Relaxed);
    }
    let slot = match tenant.as_deref() {
        Some(t) if shared.governor.enabled() => {
            if !shared.governor.try_acquire(t) {
                let hint = retry_after_hint_ms(
                    shared.governor.inflight(t),
                    shared.workers,
                    m.mean_engine_us(),
                );
                let pending = Pending {
                    answered: AtomicBool::new(true),
                    id,
                    coalesced: false,
                    start,
                    key,
                    algo: algo_name,
                    parse_us,
                    probe_us,
                    trace,
                    tenant: tenant.clone(),
                    slot: Mutex::new(None),
                    conn: Arc::clone(conn),
                };
                m.shed.fetch_add(1, Ordering::Relaxed);
                m.tenant_stats(t).shed.fetch_add(1, Ordering::Relaxed);
                let _ = conn.enqueue(&error_line_with(
                    &pending.id,
                    ErrorCode::Busy,
                    "tenant at max inflight",
                    vec![("retry_after_ms", Json::from(hint))],
                ));
                let latency_us = start.elapsed().as_micros().min(u64::MAX as u128) as u64;
                recorder.record(trace_from(&pending, "busy", None, None, latency_us));
                conn.release_slot();
                return;
            }
            Some(GovernorSlot {
                governor: Arc::clone(&shared.governor),
                tenant: t.to_string(),
            })
        }
        _ => None,
    };
    let (pending, flight) = match shared.flights.join(&key) {
        Joined::Leader(flight) => {
            let pending = Arc::new(Pending {
                answered: AtomicBool::new(false),
                id,
                coalesced: false,
                start,
                key: key.clone(),
                algo: algo_name.clone(),
                parse_us,
                probe_us,
                trace,
                tenant: tenant.clone(),
                slot: Mutex::new(slot),
                conn: Arc::clone(conn),
            });
            // Fresh flight: nothing published yet, attach always parks.
            let _ = flight.attach(&pending);
            let class = CostClass::classify(cost, shared.small_cost_max);
            let job = Job {
                work,
                cache_key: key.clone(),
                flight: Arc::clone(&flight),
            };
            match shared.executor.submit_tagged(
                tenant.as_deref().unwrap_or(""),
                &algo_name,
                class,
                job,
            ) {
                Ok(()) => {}
                Err(SubmitError::Full) => {
                    // Publish so any follower that raced in is also
                    // answered instead of hanging.
                    let hint = retry_after_hint_ms(
                        shared.executor.queued(),
                        shared.workers,
                        m.mean_engine_us(),
                    );
                    let busy = FlightResult::Busy(hint);
                    for w in shared.flights.publish(&key, &flight, busy.clone()) {
                        answer_pending(&w, m, &busy, recorder, None);
                    }
                }
                Err(SubmitError::Closed) => {
                    let result = FlightResult::Failed("worker pool is gone".into());
                    for w in shared.flights.publish(&key, &flight, result.clone()) {
                        answer_pending(&w, m, &result, recorder, None);
                    }
                }
            }
            (pending, flight)
        }
        Joined::Follower(flight) => {
            m.coalesced_hits.fetch_add(1, Ordering::Relaxed);
            let pending = Arc::new(Pending {
                answered: AtomicBool::new(false),
                id,
                coalesced: true,
                start,
                key: key.clone(),
                algo: algo_name,
                parse_us,
                probe_us,
                trace,
                tenant: tenant.clone(),
                slot: Mutex::new(slot),
                conn: Arc::clone(conn),
            });
            if let Some(result) = flight.attach(&pending) {
                // The flight completed between join and attach.
                answer_pending(&pending, m, &result, recorder, Some(&flight.stamps));
            }
            (pending, flight)
        }
    };
    // Cheap pre-check only: an answered pending is dropped soon and
    // its weak entry self-cleans, so a racing answer is harmless.
    if !pending.answered.load(Ordering::SeqCst) {
        shared.reaper.register(deadline, &pending, &flight);
    }
}

#[allow(clippy::too_many_arguments)]
fn ok_eval_line(
    id: &Option<String>,
    outcome: &EvalOutcome,
    cached: bool,
    coalesced: bool,
    start: Instant,
    m: &Metrics,
    trace: Option<Json>,
) -> String {
    let latency_us = start.elapsed().as_micros().min(u64::MAX as u128) as u64;
    m.ok.fetch_add(1, Ordering::Relaxed);
    m.latency.record(latency_us);
    render_ok_eval(id, outcome, cached, coalesced, latency_us, trace)
}

fn render_ok_eval(
    id: &Option<String>,
    outcome: &EvalOutcome,
    cached: bool,
    coalesced: bool,
    latency_us: u64,
    trace: Option<Json>,
) -> String {
    let mut fields = vec![
        ("value", Json::from(outcome.value)),
        ("work", outcome.work_json()),
        ("steps", Json::from(outcome.steps)),
        ("cached", Json::Bool(cached)),
        ("coalesced", Json::Bool(coalesced)),
        ("latency_us", Json::from(latency_us)),
    ];
    if let Some(t) = trace {
        fields.push(("trace", t));
    }
    ok_line(id, fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Response;
    use std::io::{BufRead, BufReader, Write};

    fn send(stream: &TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> Response {
        let mut w = stream.try_clone().unwrap();
        w.write_all(line.as_bytes()).unwrap();
        w.write_all(b"\n").unwrap();
        w.flush().unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        Response::parse(reply.trim()).unwrap()
    }

    fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
        let stream = TcpStream::connect(addr).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        (stream, reader)
    }

    #[test]
    fn outbox_enqueue_caps_total_bytes_and_latches_overflow() {
        let io = Arc::new(IoHandle::new().unwrap());
        let reply = Arc::new(ConnReply::new(TOKEN_BASE, io));
        let line = "x".repeat(64 * 1024 - 1);
        let mut accepted = 0usize;
        while reply.enqueue(&line) {
            accepted += 1;
            assert!(accepted <= 16, "outbox grew past its byte cap");
        }
        assert_eq!(accepted, 16, "1MiB cap / 64KiB lines");
        assert!(reply.outbox.lock().unwrap().overflowed);
        // Latched: nothing else is accepted, even a tiny line.
        assert!(!reply.enqueue("y"));
        let ob = reply.outbox.lock().unwrap();
        assert!(ob.bytes <= OUTBOX_MAX_BYTES);
        assert_eq!(ob.queue.len(), 16);
    }

    #[test]
    fn serves_eval_ping_stats_and_drains() {
        let server = Server::start(Config {
            workers: 2,
            ..Config::default()
        })
        .unwrap();
        let (stream, mut reader) = connect(server.local_addr());

        let r = send(&stream, &mut reader, r#"{"op":"ping"}"#);
        assert!(r.ok);
        assert_eq!(r.body.get("version").and_then(Json::as_u64), Some(1));

        let r = send(
            &stream,
            &mut reader,
            r#"{"id":"a","spec":"worst:d=2,n=6","algo":"seq-solve"}"#,
        );
        assert!(r.ok, "eval failed: {:?}", r.error);
        assert_eq!(r.id.as_deref(), Some("a"));
        // `work` is an object carrying the paper's counters.
        let work = r.body.get("work").unwrap();
        assert_eq!(work.get("leaves").and_then(Json::as_u64), Some(64));
        assert_eq!(work.get("max_width").and_then(Json::as_u64), Some(1));
        assert!(work.get("pruned").and_then(Json::as_u64).is_some());
        assert!(!r.cached());

        // Same canonical request again: cache hit.
        let r = send(
            &stream,
            &mut reader,
            r#"{"spec":"worst: n=6 ,d=2","algo":"seq-solve"}"#,
        );
        assert!(r.ok);
        assert!(r.cached());

        // Malformed line: error reply, connection survives.
        let r = send(&stream, &mut reader, "{nope");
        assert!(!r.ok);
        assert_eq!(r.status, 400);
        let r = send(&stream, &mut reader, r#"{"op":"stats"}"#);
        let stats = r.body.get("stats").unwrap();
        assert_eq!(stats.get("cache_hits").and_then(Json::as_u64), Some(1));
        assert_eq!(stats.get("bad_request").and_then(Json::as_u64), Some(1));
        // The stats snapshot also reports the sharded cache and the
        // executor's batching.
        let cache = stats.get("cache").unwrap();
        assert_eq!(cache.get("len").and_then(Json::as_u64), Some(1));
        assert_eq!(cache.get("shards").and_then(Json::as_u64), Some(8));
        assert_eq!(stats.get("batches").and_then(Json::as_u64), Some(1));
        assert_eq!(stats.get("batch_jobs").and_then(Json::as_u64), Some(1));

        let r = send(&stream, &mut reader, r#"{"op":"shutdown"}"#);
        assert!(r.ok);
        let snapshot = server.join();
        assert_eq!(snapshot.ok, 2);
        assert_eq!(snapshot.cache_hits, 1);
        assert_eq!(snapshot.evaluated, 1);
    }

    #[test]
    fn par_evals_fan_out_and_surface_their_counters() {
        let server = Server::start(Config {
            workers: 4,
            // Every par-* eval crosses the threshold.
            par_threshold: 1,
            par_max_workers: 4,
            ..Config::default()
        })
        .unwrap();
        let (stream, mut reader) = connect(server.local_addr());

        let spec = "minmax:d=6,n=2,lo=-16,hi=16,seed=7";
        let r = send(
            &stream,
            &mut reader,
            &format!(r#"{{"id":"p","spec":"{spec}","algo":"par-alphabeta"}}"#),
        );
        assert!(r.ok, "par eval failed: {:?}", r.error);
        let work = r.body.get("work").unwrap();
        assert!(work.get("steals").and_then(Json::as_u64).is_some());
        assert!(work.get("retired").and_then(Json::as_u64).is_some());
        assert!(work.get("narrowed").and_then(Json::as_u64).is_some());

        // The parallel run is value-exact against the sequential
        // engine on the same tree.
        let baseline = send(
            &stream,
            &mut reader,
            &format!(r#"{{"spec":"{spec}","algo":"alphabeta"}}"#),
        );
        assert!(baseline.ok);
        assert_eq!(r.value(), baseline.value());

        // The grant and the run's stealing counters land in stats.
        let s = send(&stream, &mut reader, r#"{"op":"stats"}"#);
        let stats = s.body.get("stats").unwrap();
        assert_eq!(stats.get("par_grants").and_then(Json::as_u64), Some(1));
        let threads = stats
            .get("par_grant_threads")
            .and_then(Json::as_u64)
            .unwrap();
        assert!((2..=4).contains(&threads), "grant size: {threads}");
        assert!(stats.get("par_steals").and_then(Json::as_u64).is_some());

        server.request_shutdown();
        server.join();
    }

    fn test_shared(draining: bool) -> Shared {
        Shared {
            metrics: Arc::new(Metrics::default()),
            cache: Arc::new(ShardedCache::new(4, 2)),
            flights: Arc::new(FlightTable::new()),
            executor: Arc::new(Executor::start(
                ExecutorConfig {
                    workers: 1,
                    queue_depth: 1,
                    batch_max: 1,
                },
                |_batch: Vec<Job>| {},
            )),
            reaper: Arc::new(Reaper::new()),
            recorder: Arc::new(FlightRecorder::new(16, 100_000)),
            governor: Arc::new(TenantGovernor::new(0)),
            shutdown: Arc::new(AtomicBool::new(draining)),
            default_deadline_ms: 1000,
            conn_window: 4,
            small_cost_max: 4096,
            workers: 1,
            io_threads: 1,
        }
    }

    #[test]
    fn retry_after_hint_tracks_backlog() {
        // No engine history: near-immediate retry.
        assert_eq!(retry_after_hint_ms(64, 2, None), 1);
        // 64 queued × 1ms mean ÷ 2 workers = 32ms of backlog.
        assert_eq!(retry_after_hint_ms(64, 2, Some(1_000.0)), 32);
        // Heavier engines push the hint up, the clamp caps it.
        assert_eq!(retry_after_hint_ms(64, 2, Some(1_000_000.0)), 5_000);
        // Degenerate inputs never panic or return zero.
        assert_eq!(retry_after_hint_ms(0, 0, Some(0.0)), 1);
    }

    #[test]
    fn health_op_answers_inline_without_stats() {
        let shared = test_shared(false);
        let reply = match process_line(r#"{"op":"health","id":"h"}"#, &shared, Instant::now()) {
            Handled::Inline(reply) => reply,
            Handled::Dispatch { .. } => panic!("health is inline"),
        };
        let r = Response::parse(&reply).unwrap();
        assert!(r.ok);
        assert_eq!(r.id.as_deref(), Some("h"));
        assert!(r.body.get("uptime_s").is_some());
        assert_eq!(r.body.get("queued").and_then(Json::as_u64), Some(0));
        assert_eq!(r.body.get("inflight").and_then(Json::as_u64), Some(0));
        assert_eq!(r.body.get("draining").and_then(Json::as_bool), Some(false));
        // A draining server still answers health, flagged as draining.
        let shared = test_shared(true);
        let reply = match process_line(r#"{"op":"health"}"#, &shared, Instant::now()) {
            Handled::Inline(reply) => reply,
            Handled::Dispatch { .. } => panic!("health is inline"),
        };
        let r = Response::parse(&reply).unwrap();
        assert!(r.ok);
        assert_eq!(r.body.get("draining").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn draining_server_refuses_new_evals() {
        // Unit-level: a request processed after the flag flips gets a
        // 503 (over the wire this is a race window, so test it here).
        let shared = test_shared(true);
        let reply = match process_line(r#"{"spec":"worst:d=2,n=4"}"#, &shared, Instant::now()) {
            Handled::Inline(reply) => reply,
            Handled::Dispatch { .. } => panic!("draining evals must not dispatch"),
        };
        let r = Response::parse(&reply).unwrap();
        assert!(!r.ok);
        assert_eq!(r.status, 503);
        assert_eq!(r.code.as_deref(), Some("draining"));
        assert_eq!(shared.metrics.snapshot().draining, 1);
        // Control ops still answer while draining.
        let reply = match process_line(r#"{"op":"ping"}"#, &shared, Instant::now()) {
            Handled::Inline(reply) => reply,
            Handled::Dispatch { .. } => panic!("ping is inline"),
        };
        let r = Response::parse(&reply).unwrap();
        assert!(r.ok);
        assert_eq!(r.body.get("draining").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn cache_misses_dispatch_and_hits_stay_inline() {
        let shared = test_shared(false);
        let line = r#"{"spec":"worst:d=2,n=4","algo":"seq-solve"}"#;
        match process_line(line, &shared, Instant::now()) {
            Handled::Dispatch { cache_key, .. } => {
                assert_eq!(cache_key, "worst:d=2,n=4|seq-solve");
            }
            Handled::Inline(r) => panic!("miss must dispatch, got {r}"),
        }
        let hit = EvalOutcome {
            value: 1,
            work: 16,
            steps: 0,
            max_width: 1,
            pruned: 0,
            ..Default::default()
        };
        shared.cache.insert("worst:d=2,n=4|seq-solve".into(), hit);
        match process_line(line, &shared, Instant::now()) {
            Handled::Inline(reply) => {
                let r = Response::parse(&reply).unwrap();
                assert!(r.ok);
                assert!(r.cached());
            }
            Handled::Dispatch { .. } => panic!("hit must answer inline"),
        }
        assert_eq!(shared.metrics.snapshot().cache_hits, 1);
        assert_eq!(shared.metrics.snapshot().cache_misses, 1);
    }

    #[test]
    fn subeval_round_trips_and_cache_is_window_scoped() {
        use gt_tree::split::sub_evaluate;
        use gt_tree::Value;
        let server = Server::start(Config {
            workers: 2,
            ..Config::default()
        })
        .unwrap();
        let (stream, mut reader) = connect(server.local_addr());

        // A windowed sub-eval matches the tree-layer reference.
        let spec = "minmax:d=3,n=5,seed=13";
        let want = sub_evaluate(&gt_tree::SubtreeSpec {
            spec: GenSpec::parse(spec).unwrap(),
            path: vec![1],
            alpha: -3,
            beta: 7,
        })
        .unwrap();
        let line = format!(
            r#"{{"op":"subeval","id":"w","spec":"{spec}","path":"1","alpha":-3,"beta":7}}"#
        );
        let r = send(&stream, &mut reader, &line);
        assert!(r.ok, "subeval failed: {:?}", r.error);
        assert_eq!(r.value(), Some(want.value));
        assert_eq!(r.leaves(), Some(want.leaves_evaluated));
        assert!(!r.cached());

        // The same triple again is a cache hit...
        let r = send(&stream, &mut reader, &line);
        assert!(r.ok && r.cached());

        // ...but the full-window probe of the same subtree is NOT
        // served by the narrow-window entry: it runs fresh and may
        // return a different (exact, not fail-soft) value.
        let full = format!(r#"{{"op":"subeval","id":"f","spec":"{spec}","path":"1"}}"#);
        let r = send(&stream, &mut reader, &full);
        assert!(r.ok, "{:?}", r.error);
        assert!(
            !r.cached(),
            "narrow-window result must not serve a wider probe"
        );
        let exact = sub_evaluate(&gt_tree::SubtreeSpec {
            spec: GenSpec::parse(spec).unwrap(),
            path: vec![1],
            alpha: Value::MIN,
            beta: Value::MAX,
        })
        .unwrap();
        assert_eq!(r.value(), Some(exact.value));

        // Bad path: 400, connection survives.
        let r = send(
            &stream,
            &mut reader,
            r#"{"op":"subeval","spec":"minmax:d=3,n=5","path":"9"}"#,
        );
        assert!(!r.ok);
        assert_eq!(r.status, 400);

        let r = send(&stream, &mut reader, r#"{"op":"stats"}"#);
        let stats = r.body.get("stats").unwrap();
        assert_eq!(
            stats.get("subeval_requests").and_then(Json::as_u64),
            Some(4)
        );
        assert_eq!(stats.get("subevals").and_then(Json::as_u64), Some(2));
        // Sub-evals land in their own stage bucket.
        assert!(stats.get("stages").and_then(|s| s.get("subeval")).is_some());

        server.request_shutdown();
        let snapshot = server.join();
        assert_eq!(snapshot.subevals, 2);
        assert_eq!(snapshot.subeval_requests, 4);
    }

    #[test]
    fn join_after_request_shutdown_reaps_everything() {
        let server = Server::start(Config::default()).unwrap();
        let addr = server.local_addr();
        let (stream, mut reader) = connect(addr);
        let r = send(
            &stream,
            &mut reader,
            r#"{"spec":"crit:d=2,n=4","algo":"round:w=2"}"#,
        );
        assert!(r.ok);
        server.request_shutdown();
        let snapshot = server.join();
        assert_eq!(snapshot.ok, 1);
        assert_eq!(snapshot.connections, 1);
    }

    #[test]
    fn small_and_large_jobs_share_the_executor_but_not_a_batch() {
        // Two distinct small specs submitted back-to-back on a
        // pipelined connection can land in one batch; a large spec
        // never joins it.  Either way every reply arrives.
        let server = Server::start(Config {
            workers: 1,
            ..Config::default()
        })
        .unwrap();
        let (stream, mut reader) = connect(server.local_addr());
        let mut w = stream.try_clone().unwrap();
        for (i, spec) in ["worst:d=2,n=4", "worst:d=2,n=5", "worst:d=2,n=16"]
            .iter()
            .enumerate()
        {
            let line = format!(r#"{{"id":"{i}","spec":"{spec}","algo":"seq-solve"}}"#);
            w.write_all(line.as_bytes()).unwrap();
            w.write_all(b"\n").unwrap();
        }
        w.flush().unwrap();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..3 {
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            let r = Response::parse(reply.trim()).unwrap();
            assert!(r.ok, "{:?}", r.error);
            seen.insert(r.id.unwrap());
        }
        assert_eq!(seen.len(), 3);
        server.request_shutdown();
        let snapshot = server.join();
        assert_eq!(snapshot.evaluated, 3);
        assert!(snapshot.batches >= 2, "large job gets its own dispatch");
    }

    #[test]
    fn tagged_evals_land_on_the_tenant_card() {
        let server = Server::start(Config {
            workers: 2,
            tenant_max_inflight: 8,
            ..Config::default()
        })
        .unwrap();
        let (stream, mut reader) = connect(server.local_addr());
        // A miss and then a hit, both tagged: two requests, two oks.
        for _ in 0..2 {
            let r = send(
                &stream,
                &mut reader,
                r#"{"spec":"worst:d=2,n=6","algo":"seq-solve","tenant":"acme"}"#,
            );
            assert!(r.ok, "{:?}", r.error);
        }
        // An untagged request stays off every tenant card.
        let r = send(&stream, &mut reader, r#"{"spec":"worst:d=2,n=5"}"#);
        assert!(r.ok);

        let s = send(&stream, &mut reader, r#"{"op":"stats"}"#);
        let tenants = s.body.get("stats").and_then(|s| s.get("tenants")).unwrap();
        let acme = tenants.get("acme").expect("acme card in stats");
        assert_eq!(acme.get("requests").and_then(Json::as_u64), Some(2));
        assert_eq!(acme.get("ok").and_then(Json::as_u64), Some(2));
        assert_eq!(acme.get("shed").and_then(Json::as_u64), Some(0));

        server.request_shutdown();
        let snapshot = server.join();
        assert_eq!(snapshot.tenants.len(), 1, "only named tenants tracked");
        assert_eq!(snapshot.tenants[0].tenant, "acme");
        assert_eq!(snapshot.tenants[0].ok, 2);
    }

    #[test]
    fn tenant_governor_sheds_at_cap_with_retry_hint() {
        let mut shared = test_shared(false);
        shared.governor = Arc::new(TenantGovernor::new(1));
        // Occupy the tenant's only slot, as a dispatched-and-pending
        // request would.
        assert!(shared.governor.try_acquire("acme"));
        let io = Arc::new(IoHandle::new().unwrap());
        let reply = Arc::new(ConnReply::new(TOKEN_BASE, io));
        reply.inflight.fetch_add(1, Ordering::AcqRel);
        let line = r#"{"id":"x","spec":"worst:d=2,n=4","algo":"seq-solve","tenant":"acme"}"#;
        let Handled::Dispatch {
            id,
            work,
            cache_key,
            cost,
            deadline,
            start,
            parse_us,
            probe_us,
            trace,
            tenant,
        } = process_line(line, &shared, Instant::now())
        else {
            panic!("miss must dispatch");
        };
        dispatch_eval(
            &shared, &reply, id, work, cache_key, cost, deadline, start, parse_us, probe_us, trace,
            tenant,
        );
        // The shed reply is already in the outbox: 429, with a hint.
        let front = {
            let ob = reply.outbox.lock().unwrap();
            String::from_utf8(ob.queue.front().expect("shed reply").clone()).unwrap()
        };
        let r = Response::parse(front.trim()).unwrap();
        assert!(!r.ok);
        assert_eq!(r.status, 429);
        assert_eq!(r.code.as_deref(), Some("busy"));
        assert!(r.body.get("retry_after_ms").and_then(Json::as_u64).unwrap() >= 1);
        // The window slot came back and the ledger shows the shed.
        assert_eq!(reply.inflight.load(Ordering::Acquire), 0);
        let snap = shared.metrics.snapshot();
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.tenants.len(), 1);
        assert_eq!(snap.tenants[0].requests, 1);
        assert_eq!(snap.tenants[0].shed, 1);
        // Releasing the held slot reopens the tenant — nothing leaked.
        shared.governor.release("acme");
        assert!(shared.governor.try_acquire("acme"));
        shared.executor.shutdown();
    }

    #[test]
    fn snapshot_restores_the_cache_across_a_restart() {
        let path = std::env::temp_dir().join(format!(
            "gt-serve-restart-snapshot-{}.ndjson",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let config = Config {
            workers: 2,
            snapshot_path: Some(path.to_string_lossy().into_owned()),
            ..Config::default()
        };

        let server = Server::start(config.clone()).unwrap();
        let (stream, mut reader) = connect(server.local_addr());
        let r = send(
            &stream,
            &mut reader,
            r#"{"spec":"worst:d=2,n=6","algo":"seq-solve"}"#,
        );
        assert!(r.ok);
        assert!(!r.cached());
        server.request_shutdown();
        server.join(); // writes the snapshot

        // The reborn server answers the same request from the restored
        // cache without running an engine.
        let server = Server::start(config).unwrap();
        let (stream, mut reader) = connect(server.local_addr());
        let r = send(
            &stream,
            &mut reader,
            r#"{"spec":"worst:d=2,n=6","algo":"seq-solve"}"#,
        );
        assert!(r.ok);
        assert!(r.cached(), "restored entry must hit");
        server.request_shutdown();
        let snapshot = server.join();
        assert_eq!(snapshot.snapshot_restored, 1);
        assert_eq!(snapshot.cache_hits, 1);
        assert_eq!(snapshot.evaluated, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replica_announces_and_warmfills_from_peers() {
        // A warm peer holding one cached result.
        let peer = Server::start(Config {
            workers: 2,
            ..Config::default()
        })
        .unwrap();
        let (stream, mut reader) = connect(peer.local_addr());
        let r = send(
            &stream,
            &mut reader,
            r#"{"spec":"worst:d=2,n=6","algo":"seq-solve"}"#,
        );
        assert!(r.ok);

        // A hand-rolled router: records the join, then answers health
        // with the warm peer as the only member.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let router_addr = listener.local_addr().unwrap().to_string();
        let peer_addr = peer.local_addr().to_string();
        let joins: Arc<Mutex<Vec<(String, u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        let router = {
            let joins = Arc::clone(&joins);
            thread::spawn(move || {
                for _ in 0..2 {
                    let Ok((stream, _)) = listener.accept() else {
                        return;
                    };
                    let mut rd = BufReader::new(stream.try_clone().unwrap());
                    let mut line = String::new();
                    if rd.read_line(&mut line).unwrap_or(0) == 0 {
                        continue;
                    }
                    let req = Request::parse(line.trim()).unwrap();
                    let mut w = stream;
                    let reply = match req.op {
                        Op::Join => {
                            joins.lock().unwrap().push((
                                req.addr.clone().unwrap(),
                                req.weight.unwrap(),
                                req.generation.unwrap(),
                            ));
                            ok_line(&req.id, vec![("action", Json::from("admitted"))])
                        }
                        Op::Health => ok_line(
                            &req.id,
                            vec![(
                                "members",
                                Json::Array(vec![Json::obj([(
                                    "addr",
                                    Json::from(peer_addr.as_str()),
                                )])]),
                            )],
                        ),
                        _ => panic!("unexpected op from announce thread"),
                    };
                    writeln!(w, "{reply}").unwrap();
                }
            })
        };

        let replica = Server::start(Config {
            workers: 2,
            announce: Some(router_addr),
            weight: 3,
            generation: 7,
            ..Config::default()
        })
        .unwrap();
        // The announce thread runs off the serving path; wait for the
        // warm-fill to land.
        let metrics = replica.metrics();
        let deadline = Instant::now() + Duration::from_secs(10);
        while metrics.snapshot().warmfill_entries == 0 {
            assert!(Instant::now() < deadline, "warm-fill never arrived");
            thread::sleep(Duration::from_millis(10));
        }
        router.join().unwrap();
        assert_eq!(
            joins.lock().unwrap().as_slice(),
            &[(replica.local_addr().to_string(), 3, 7)],
            "announcement carries the advertised addr, weight, generation"
        );

        // The pulled entry answers without an engine run.
        let (stream, mut reader) = connect(replica.local_addr());
        let r = send(
            &stream,
            &mut reader,
            r#"{"spec":"worst:d=2,n=6","algo":"seq-solve"}"#,
        );
        assert!(r.ok);
        assert!(r.cached(), "warm-filled entry must hit");

        replica.request_shutdown();
        let snapshot = replica.join();
        assert_eq!(snapshot.warmfill_entries, 1);
        assert_eq!(snapshot.evaluated, 0);
        // The peer served exactly one cachepull.
        peer.request_shutdown();
        let snapshot = peer.join();
        assert_eq!(snapshot.cachepull_served, 1);
        assert_eq!(snapshot.cachepull_entries, 1);
    }
}
