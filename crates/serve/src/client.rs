//! A small blocking client for the gt-serve wire protocol.
//!
//! The request/reply helpers ([`Client::send`], [`Client::eval`], …)
//! keep one request in flight: write a line, read a line.  For
//! pipelining, [`Client::write_request`] and [`Client::read_response`]
//! split the two halves so several requests can be outstanding on one
//! connection; replies then arrive in *completion* order and must be
//! correlated by the echoed `id`.  Used by the load generator, the
//! e2e tests, and the CLI.

use crate::protocol::{Op, Request, Response};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A connected client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

fn invalid<E: std::fmt::Display>(e: E) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
}

impl Client {
    /// Connect to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Write a raw request line without waiting for its reply.
    pub fn write_line(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Write a request without waiting for its reply (pipelining).
    /// Give each request an `id`: replies to pipelined requests come
    /// back in completion order, not send order.
    pub fn write_request(&mut self, request: &Request) -> std::io::Result<()> {
        self.write_line(&request.render())
    }

    /// Read the next reply line, whichever request it answers.
    pub fn read_response(&mut self) -> std::io::Result<Response> {
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Response::parse(reply.trim()).map_err(invalid)
    }

    /// Send a raw request line and read one reply line.
    pub fn send_line(&mut self, line: &str) -> std::io::Result<Response> {
        self.write_line(line)?;
        self.read_response()
    }

    /// Send a parsed request.
    pub fn send(&mut self, request: &Request) -> std::io::Result<Response> {
        self.send_line(&request.render())
    }

    /// Evaluate `spec` with `algo` (optional deadline in ms).
    pub fn eval(
        &mut self,
        spec: &str,
        algo: &str,
        deadline_ms: Option<u64>,
    ) -> std::io::Result<Response> {
        self.send(&Request::eval(spec, algo, deadline_ms))
    }

    /// Evaluate one subtree of `spec` under an α/β window (the
    /// scatter half of a split plan).  `path` is dot-joined child
    /// indices; pass `i64::MIN`/`i64::MAX` for an unbounded side.
    pub fn subeval(
        &mut self,
        spec: &str,
        path: &str,
        alpha: i64,
        beta: i64,
        deadline_ms: Option<u64>,
    ) -> std::io::Result<Response> {
        self.send(&Request::subeval(spec, path, alpha, beta, deadline_ms))
    }

    fn control(&mut self, op: Op) -> std::io::Result<Response> {
        self.send(&Request {
            op,
            ..Default::default()
        })
    }

    /// Fetch the server's metrics snapshot (in the reply's `stats`
    /// field).
    pub fn stats(&mut self) -> std::io::Result<Response> {
        self.control(Op::Stats)
    }

    /// Liveness/version probe.
    pub fn ping(&mut self) -> std::io::Result<Response> {
        self.control(Op::Ping)
    }

    /// Cheap liveness probe: uptime, queue depth, and in-flight count
    /// without the cost of a full `stats` snapshot.
    pub fn health(&mut self) -> std::io::Result<Response> {
        self.control(Op::Health)
    }

    /// Ask the server to drain and exit.
    pub fn shutdown_server(&mut self) -> std::io::Result<Response> {
        self.control(Op::Shutdown)
    }
}
