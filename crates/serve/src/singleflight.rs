//! Single-flight coalescing: one engine run per canonical key.
//!
//! When several requests for the same canonical spec+algorithm arrive
//! while none has a cached result yet, only the first (the *leader*)
//! may run the engine; the rest (*followers*) park on the leader's
//! [`Flight`] and receive whatever it publishes — result, error, or
//! cancellation — without costing a queue slot or an engine run.
//!
//! Cancellation composes with coalescing: the flight's flag is the
//! engine's cancellation flag, and it is only set by the *last* waiter
//! to give up.  A follower whose deadline passes simply stops waiting;
//! the run keeps going for everyone else.  Waiter counts are kept
//! under the flight's own lock, so last-out detection is race-free.
//!
//! A flight whose waiters have all left is *doomed*: its engine run is
//! winding down and its result must not be reused (it may be a
//! cancellation).  A new arrival that finds a doomed flight replaces
//! it and becomes the leader of a fresh run.  Publication removes the
//! registry entry only if it still points at the publishing flight
//! (`Arc::ptr_eq`), so a doomed flight's late publication cannot
//! clobber its replacement.

use crate::workload::EvalOutcome;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// What a flight's engine run produced, delivered to every waiter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlightResult {
    /// The engine finished; the outcome is also in the cache by the
    /// time waiters observe this.
    Done(EvalOutcome),
    /// The run was cancelled (every waiter had already left, or the
    /// server is draining).
    Cancelled,
    /// The engine reported an error.
    Failed(String),
    /// The leader could not enqueue the job: the queue was full.
    Busy,
}

struct FlightInner {
    done: Option<FlightResult>,
    /// Requests currently parked on (or about to park on) this
    /// flight, the leader included.
    waiters: usize,
}

/// One in-flight engine run and the requests waiting on it.
pub struct Flight {
    inner: Mutex<FlightInner>,
    cv: Condvar,
    /// The engine's cooperative-cancellation flag.  Set by the last
    /// waiter to abandon the flight, or by server drain.
    pub cancel: AtomicBool,
}

impl Flight {
    fn new() -> Flight {
        Flight {
            inner: Mutex::new(FlightInner {
                done: None,
                waiters: 1,
            }),
            cv: Condvar::new(),
            cancel: AtomicBool::new(false),
        }
    }

    /// Park until a result is published or `deadline` passes.
    ///
    /// `None` means the deadline passed first; the caller is no longer
    /// a waiter, and if it was the last one the run is cancelled.
    pub fn wait(&self, deadline: Instant) -> Option<FlightResult> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(r) = &inner.done {
                return Some(r.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                inner.waiters -= 1;
                if inner.waiters == 0 {
                    self.cancel.store(true, Ordering::Relaxed);
                }
                return None;
            }
            (inner, _) = self.cv.wait_timeout(inner, deadline - now).unwrap();
        }
    }

    #[cfg(test)]
    fn waiters(&self) -> usize {
        self.inner.lock().unwrap().waiters
    }
}

/// The caller's role in a flight, decided by [`FlightTable::join`].
pub enum Joined {
    /// First arrival for the key: the caller must arrange for exactly
    /// one engine run and [`publish`](FlightTable::publish) its result.
    Leader(Arc<Flight>),
    /// A run for the key is already in flight: the caller just
    /// [`wait`](Flight::wait)s.
    Follower(Arc<Flight>),
}

/// Registry of in-flight engine runs, keyed by canonical request key.
#[derive(Default)]
pub struct FlightTable {
    flights: Mutex<HashMap<String, Arc<Flight>>>,
}

impl FlightTable {
    /// An empty table.
    pub fn new() -> FlightTable {
        FlightTable::default()
    }

    /// Join the flight for `key`, creating it (and leading) if absent
    /// or doomed.
    pub fn join(&self, key: &str) -> Joined {
        let mut map = self.flights.lock().unwrap();
        if let Some(f) = map.get(key) {
            // The cancel flag is only ever set under the flight's
            // inner lock, so checking it under that same lock makes
            // doomed-flight detection race-free.
            let mut inner = f.inner.lock().unwrap();
            if !f.cancel.load(Ordering::Relaxed) {
                inner.waiters += 1;
                drop(inner);
                return Joined::Follower(Arc::clone(f));
            }
        }
        let f = Arc::new(Flight::new());
        map.insert(key.to_string(), Arc::clone(&f));
        Joined::Leader(f)
    }

    /// Deliver `result` to every waiter on `flight` and retire its
    /// registry entry (only if the entry still points at `flight`).
    ///
    /// Retirement happens *before* waiters wake: once any waiter has
    /// observed the result (and possibly replied to its client), a
    /// follow-up request for the same key is guaranteed to lead a
    /// fresh flight rather than re-join this completed one.
    pub fn publish(&self, key: &str, flight: &Arc<Flight>, result: FlightResult) {
        {
            let mut map = self.flights.lock().unwrap();
            if map.get(key).is_some_and(|cur| Arc::ptr_eq(cur, flight)) {
                map.remove(key);
            }
        }
        let mut inner = flight.inner.lock().unwrap();
        inner.done = Some(result);
        drop(inner);
        flight.cv.notify_all();
    }

    /// Flights currently registered (doomed ones included until their
    /// leader publishes).
    pub fn len(&self) -> usize {
        self.flights.lock().unwrap().len()
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.flights.lock().unwrap().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    fn outcome(value: i64) -> EvalOutcome {
        EvalOutcome {
            value,
            work: 1,
            steps: 0,
        }
    }

    fn far() -> Instant {
        Instant::now() + Duration::from_secs(30)
    }

    #[test]
    fn first_join_leads_subsequent_joins_follow() {
        let t = FlightTable::new();
        let leader = match t.join("k") {
            Joined::Leader(f) => f,
            Joined::Follower(_) => panic!("first join must lead"),
        };
        let follower = match t.join("k") {
            Joined::Follower(f) => f,
            Joined::Leader(_) => panic!("second join must follow"),
        };
        assert!(Arc::ptr_eq(&leader, &follower));
        assert_eq!(leader.waiters(), 2);
        assert!(matches!(t.join("other"), Joined::Leader(_)));
    }

    #[test]
    fn publish_wakes_all_waiters_with_the_same_result() {
        let t = Arc::new(FlightTable::new());
        let leader = match t.join("k") {
            Joined::Leader(f) => f,
            _ => unreachable!(),
        };
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let t = Arc::clone(&t);
                thread::spawn(move || match t.join("k") {
                    Joined::Follower(f) => f.wait(far()),
                    Joined::Leader(_) => panic!("flight already exists"),
                })
            })
            .collect();
        // Give followers a moment to park before publishing.
        thread::sleep(Duration::from_millis(20));
        t.publish("k", &leader, FlightResult::Done(outcome(7)));
        for h in handles {
            assert_eq!(h.join().unwrap(), Some(FlightResult::Done(outcome(7))));
        }
        assert_eq!(leader.wait(far()), Some(FlightResult::Done(outcome(7))));
        assert!(t.is_empty(), "published flight is retired");
    }

    #[test]
    fn one_waiter_leaving_does_not_cancel_the_run() {
        let t = FlightTable::new();
        let leader = match t.join("k") {
            Joined::Leader(f) => f,
            _ => unreachable!(),
        };
        let follower = match t.join("k") {
            Joined::Follower(f) => f,
            _ => unreachable!(),
        };
        // Follower's deadline passes immediately.
        assert_eq!(follower.wait(Instant::now()), None);
        assert!(
            !leader.cancel.load(Ordering::Relaxed),
            "leader still waiting; the run must keep going"
        );
    }

    #[test]
    fn last_waiter_leaving_cancels_and_dooms_the_flight() {
        let t = FlightTable::new();
        let leader = match t.join("k") {
            Joined::Leader(f) => f,
            _ => unreachable!(),
        };
        assert_eq!(leader.wait(Instant::now()), None);
        assert!(leader.cancel.load(Ordering::Relaxed));
        // A new arrival must not adopt the doomed flight.
        let fresh = match t.join("k") {
            Joined::Leader(f) => f,
            Joined::Follower(_) => panic!("doomed flight must be replaced"),
        };
        assert!(!Arc::ptr_eq(&leader, &fresh));
        // The doomed run's late publication must not clobber the
        // fresh flight's registry entry.
        t.publish("k", &leader, FlightResult::Cancelled);
        assert_eq!(t.len(), 1);
        t.publish("k", &fresh, FlightResult::Done(outcome(1)));
        assert!(t.is_empty());
    }

    #[test]
    fn result_published_before_wait_is_returned_immediately() {
        let t = FlightTable::new();
        let leader = match t.join("k") {
            Joined::Leader(f) => f,
            _ => unreachable!(),
        };
        let follower = match t.join("k") {
            Joined::Follower(f) => f,
            _ => unreachable!(),
        };
        t.publish("k", &leader, FlightResult::Busy);
        // Even with an already-expired deadline, a published result
        // wins over the timeout.
        assert_eq!(follower.wait(Instant::now()), Some(FlightResult::Busy));
    }
}
