//! Single-flight coalescing: one engine run per canonical key.
//!
//! When several requests for the same canonical spec+algorithm arrive
//! while none has a cached result yet, only the first (the *leader*)
//! may submit an engine run; the rest (*followers*) attach to the
//! leader's [`Flight`] and receive whatever it publishes — result,
//! error, or cancellation — without costing a queue slot or an engine
//! run.
//!
//! Waiters are *asynchronous*: a flight holds `Arc<W>` handles (the
//! server's pending-reply records) instead of parked threads.
//! [`Flight::attach`] registers a waiter — or returns the result
//! immediately if publication already happened — and
//! [`FlightTable::publish`] hands the drained waiter list back to the
//! caller, which answers each one outside the flight's lock.  Nothing
//! ever blocks on a flight, so a fixed number of threads can carry any
//! number of outstanding requests.
//!
//! Cancellation composes with coalescing: the flight's flag is the
//! engine's cancellation flag, and it is only set by the *last* waiter
//! to [`detach`](Flight::detach).  A waiter whose deadline passes
//! simply detaches; the run keeps going for everyone else.  The waiter
//! list lives under the flight's own lock, so last-out detection is
//! race-free.
//!
//! A flight whose waiters have all left is *doomed*: its engine run is
//! winding down and its result must not be reused (it may be a
//! cancellation).  A new arrival that finds a doomed flight replaces
//! it and becomes the leader of a fresh run.  Publication removes the
//! registry entry only if it still points at the publishing flight
//! (`Arc::ptr_eq`), so a doomed flight's late publication cannot
//! clobber its replacement.

use crate::trace::StageStamps;
use crate::workload::EvalOutcome;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// What a flight's engine run produced, delivered to every waiter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlightResult {
    /// The engine finished; the outcome is also in the cache by the
    /// time waiters observe this.
    Done(EvalOutcome),
    /// The run was cancelled (every waiter had already left, or the
    /// server is draining).
    Cancelled,
    /// The engine reported an error.
    Failed(String),
    /// The leader could not enqueue the job: the queue was full.  The
    /// payload is the `retry_after_ms` backoff hint attached to the
    /// shed reply — queue depth × mean engine time, computed at shed
    /// time.
    Busy(u64),
}

struct FlightInner<W> {
    done: Option<FlightResult>,
    /// Pending replies attached to this run, the leader's included.
    waiters: Vec<Arc<W>>,
}

/// One in-flight engine run and the waiters attached to it.
pub struct Flight<W> {
    inner: Mutex<FlightInner<W>>,
    /// The engine's cooperative-cancellation flag.  Set when the last
    /// waiter detaches, or by server drain.
    pub cancel: AtomicBool,
    /// Stage timestamps for this run: the base instant is flight
    /// creation (≈ executor enqueue); workers stamp dispatch and
    /// engine start/end as the job progresses.
    pub stamps: StageStamps,
}

impl<W> Flight<W> {
    fn new() -> Flight<W> {
        Flight {
            inner: Mutex::new(FlightInner {
                done: None,
                waiters: Vec::new(),
            }),
            cancel: AtomicBool::new(false),
            stamps: StageStamps::default(),
        }
    }

    /// Attach a waiter.  Returns the published result if the flight
    /// already completed — the caller answers immediately instead of
    /// waiting for a publication that will never come again.
    pub fn attach(&self, waiter: &Arc<W>) -> Option<FlightResult> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(r) = &inner.done {
            return Some(r.clone());
        }
        inner.waiters.push(Arc::clone(waiter));
        None
    }

    /// Remove a waiter that gave up (deadline, broken connection).
    /// The last waiter out cancels the run.  Returns whether the
    /// waiter was still attached (false once a publication drained
    /// it).
    pub fn detach(&self, waiter: &Arc<W>) -> bool {
        let mut inner = self.inner.lock().unwrap();
        let Some(pos) = inner.waiters.iter().position(|w| Arc::ptr_eq(w, waiter)) else {
            return false;
        };
        inner.waiters.swap_remove(pos);
        if inner.waiters.is_empty() && inner.done.is_none() {
            self.cancel.store(true, Ordering::Relaxed);
        }
        true
    }

    /// Waiters currently attached (for tests and introspection).
    pub fn waiter_count(&self) -> usize {
        self.inner.lock().unwrap().waiters.len()
    }
}

/// The caller's role in a flight, decided by [`FlightTable::join`].
pub enum Joined<W> {
    /// First arrival for the key: the caller must arrange for exactly
    /// one engine run and [`publish`](FlightTable::publish) its result.
    Leader(Arc<Flight<W>>),
    /// A run for the key is already in flight: the caller just
    /// [`attach`](Flight::attach)es.
    Follower(Arc<Flight<W>>),
}

/// Registry of in-flight engine runs, keyed by canonical request key.
pub struct FlightTable<W> {
    flights: Mutex<HashMap<String, Arc<Flight<W>>>>,
}

impl<W> Default for FlightTable<W> {
    fn default() -> Self {
        FlightTable {
            flights: Mutex::new(HashMap::new()),
        }
    }
}

impl<W> FlightTable<W> {
    /// An empty table.
    pub fn new() -> FlightTable<W> {
        FlightTable::default()
    }

    /// Join the flight for `key`, creating it (and leading) if absent
    /// or doomed.
    pub fn join(&self, key: &str) -> Joined<W> {
        let mut map = self.flights.lock().unwrap();
        if let Some(f) = map.get(key) {
            // The cancel flag is only ever set under the flight's
            // inner lock, so checking it under that same lock makes
            // doomed-flight detection race-free.
            let inner = f.inner.lock().unwrap();
            if !f.cancel.load(Ordering::Relaxed) {
                drop(inner);
                return Joined::Follower(Arc::clone(f));
            }
        }
        let f = Arc::new(Flight::new());
        map.insert(key.to_string(), Arc::clone(&f));
        Joined::Leader(f)
    }

    /// Record `result` on `flight`, retire its registry entry (only if
    /// the entry still points at `flight`), and hand back the drained
    /// waiters for the caller to answer outside the lock.
    ///
    /// Retirement happens *before* the result is recorded: once any
    /// waiter has been answered, a follow-up request for the same key
    /// is guaranteed to lead a fresh flight rather than re-join this
    /// completed one.
    #[must_use = "every drained waiter must be answered"]
    pub fn publish(&self, key: &str, flight: &Arc<Flight<W>>, result: FlightResult) -> Vec<Arc<W>> {
        {
            let mut map = self.flights.lock().unwrap();
            if map.get(key).is_some_and(|cur| Arc::ptr_eq(cur, flight)) {
                map.remove(key);
            }
        }
        let mut inner = flight.inner.lock().unwrap();
        inner.done = Some(result);
        std::mem::take(&mut inner.waiters)
    }

    /// Flights currently registered (doomed ones included until their
    /// leader publishes).
    pub fn len(&self) -> usize {
        self.flights.lock().unwrap().len()
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.flights.lock().unwrap().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A stand-in for the server's pending-reply record.
    struct W(#[allow(dead_code)] u32);

    fn outcome(value: i64) -> EvalOutcome {
        EvalOutcome {
            value,
            work: 1,
            ..Default::default()
        }
    }

    #[test]
    fn first_join_leads_subsequent_joins_follow() {
        let t: FlightTable<W> = FlightTable::new();
        let leader = match t.join("k") {
            Joined::Leader(f) => f,
            Joined::Follower(_) => panic!("first join must lead"),
        };
        let follower = match t.join("k") {
            Joined::Follower(f) => f,
            Joined::Leader(_) => panic!("second join must follow"),
        };
        assert!(Arc::ptr_eq(&leader, &follower));
        assert!(matches!(t.join("other"), Joined::Leader(_)));
    }

    #[test]
    fn publish_drains_every_attached_waiter() {
        let t: FlightTable<W> = FlightTable::new();
        let flight = match t.join("k") {
            Joined::Leader(f) => f,
            _ => unreachable!(),
        };
        let waiters: Vec<Arc<W>> = (0..4).map(|i| Arc::new(W(i))).collect();
        for w in &waiters {
            assert!(flight.attach(w).is_none());
        }
        assert_eq!(flight.waiter_count(), 4);
        let drained = t.publish("k", &flight, FlightResult::Done(outcome(7)));
        assert_eq!(drained.len(), 4);
        for (d, w) in drained.iter().zip(&waiters) {
            assert!(Arc::ptr_eq(d, w));
        }
        assert_eq!(flight.waiter_count(), 0);
        assert!(t.is_empty(), "published flight is retired");
    }

    #[test]
    fn attach_after_publish_returns_the_result_immediately() {
        let t: FlightTable<W> = FlightTable::new();
        let flight = match t.join("k") {
            Joined::Leader(f) => f,
            _ => unreachable!(),
        };
        let drained = t.publish("k", &flight, FlightResult::Busy(5));
        assert!(drained.is_empty());
        let late = Arc::new(W(9));
        assert_eq!(flight.attach(&late), Some(FlightResult::Busy(5)));
        assert_eq!(flight.waiter_count(), 0, "late waiter is not parked");
    }

    #[test]
    fn one_waiter_detaching_does_not_cancel_the_run() {
        let t: FlightTable<W> = FlightTable::new();
        let flight = match t.join("k") {
            Joined::Leader(f) => f,
            _ => unreachable!(),
        };
        let a = Arc::new(W(1));
        let b = Arc::new(W(2));
        flight.attach(&a);
        flight.attach(&b);
        assert!(flight.detach(&a));
        assert!(
            !flight.cancel.load(Ordering::Relaxed),
            "another waiter remains; the run must keep going"
        );
        assert!(!flight.detach(&a), "already detached");
    }

    #[test]
    fn last_waiter_detaching_cancels_and_dooms_the_flight() {
        let t: FlightTable<W> = FlightTable::new();
        let flight = match t.join("k") {
            Joined::Leader(f) => f,
            _ => unreachable!(),
        };
        let a = Arc::new(W(1));
        flight.attach(&a);
        assert!(flight.detach(&a));
        assert!(flight.cancel.load(Ordering::Relaxed));
        // A new arrival must not adopt the doomed flight.
        let fresh = match t.join("k") {
            Joined::Leader(f) => f,
            Joined::Follower(_) => panic!("doomed flight must be replaced"),
        };
        assert!(!Arc::ptr_eq(&flight, &fresh));
        // The doomed run's late publication must not clobber the
        // fresh flight's registry entry.
        let drained = t.publish("k", &flight, FlightResult::Cancelled);
        assert!(drained.is_empty());
        assert_eq!(t.len(), 1);
        let _ = t.publish("k", &fresh, FlightResult::Done(outcome(1)));
        assert!(t.is_empty());
    }

    #[test]
    fn detach_after_publish_is_a_no_op() {
        let t: FlightTable<W> = FlightTable::new();
        let flight = match t.join("k") {
            Joined::Leader(f) => f,
            _ => unreachable!(),
        };
        let a = Arc::new(W(1));
        flight.attach(&a);
        let drained = t.publish("k", &flight, FlightResult::Done(outcome(3)));
        assert_eq!(drained.len(), 1);
        // A deadline that loses the race to publication must not doom
        // anything.
        assert!(!flight.detach(&a));
        assert!(!flight.cancel.load(Ordering::Relaxed));
    }
}
