//! The serving metrics registry: lock-free counters plus log-bucketed
//! latency histograms, including a per-algorithm stage breakdown.
//!
//! Counters are plain relaxed atomics — every code path that touches
//! them is already synchronized by the channels it communicates over,
//! so the registry never becomes a contention point.  Latencies land in
//! power-of-two microsecond buckets; quantiles are read back by linear
//! interpolation within the bucket containing the target rank, so
//! unimodal load no longer collapses p50/p90/p99 onto one bucket bound.
//! Each algorithm additionally gets four stage histograms (`queue_wait`,
//! `batch_wait`, `engine`, `write`) and the paper's work counters
//! (leaves, steps, max frontier width, pruning events), registered
//! lazily on first dispatch.  Rendering rides on
//! [`gt_analysis::histogram`] and [`gt_analysis::Json`].

use crate::io::{IoLoopSnapshot, IoLoopStats};
use crate::workload::EvalOutcome;
use gt_analysis::{histogram, Json};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

const BUCKETS: usize = 40;

/// Inclusive-exclusive value range of bucket `i`: `[0,2)` for bucket 0,
/// `[2^i, 2^{i+1})` above it.
fn bucket_bounds(i: usize) -> (u64, u64) {
    let lo = if i == 0 { 0 } else { 1u64 << i };
    (lo, 1u64 << (i + 1))
}

/// `q`-quantile over power-of-two bucket counts, linearly interpolated
/// within the target bucket (rank semantics: the value at the ceiling
/// rank, with uniform mass assumed across each bucket's range).
fn quantile_from_buckets(buckets: &[u64], count: u64, q: f64) -> Option<u64> {
    if count == 0 {
        return None;
    }
    let target = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut seen = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if seen + c >= target {
            let (lo, hi) = bucket_bounds(i);
            let frac = (target - seen) as f64 / c as f64;
            return Some(lo + (frac * (hi - lo) as f64) as u64);
        }
        seen += c;
    }
    None
}

/// Lock-free latency histogram over power-of-two microsecond buckets.
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    fn bucket_index(us: u64) -> usize {
        // Bucket i covers [2^i, 2^{i+1}); 0 µs lands in bucket 0.
        (63 - us.max(1).leading_zeros() as usize).min(BUCKETS - 1)
    }

    /// Record one observation, in microseconds.
    pub fn record(&self, us: u64) {
        self.buckets[Self::bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    fn snapshot(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Freeze the histogram into a plain-data [`HistogramSnapshot`].
    pub fn snapshot_full(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum_us: self.sum_us.load(Ordering::Relaxed),
            buckets: self.snapshot(),
        }
    }
}

/// A frozen latency histogram: counts plus derived statistics.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations, microseconds.
    pub sum_us: u64,
    /// Power-of-two bucket counts.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Interpolated `q`-quantile in microseconds.
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        quantile_from_buckets(&self.buckets, self.count, q)
    }

    /// Mean in microseconds.
    pub fn mean_us(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum_us as f64 / self.count as f64)
        }
    }

    /// Compact JSON summary (`count`, `sum_us`, mean and quantiles).
    pub fn to_json(&self) -> Json {
        let q = |q: f64| match self.quantile_us(q) {
            Some(us) => Json::from(us),
            None => Json::Null,
        };
        Json::obj([
            ("count", Json::from(self.count)),
            ("sum_us", Json::from(self.sum_us)),
            (
                "mean_us",
                match self.mean_us() {
                    Some(m) => Json::from(m),
                    None => Json::Null,
                },
            ),
            ("p50_us", q(0.50)),
            ("p90_us", q(0.90)),
            ("p99_us", q(0.99)),
        ])
    }
}

const BATCH_BUCKETS: usize = 12;

/// Lock-free histogram of executor dispatch sizes, in power-of-two
/// buckets — the cross-key micro-batching telemetry.
pub struct BatchHistogram {
    buckets: [AtomicU64; BATCH_BUCKETS],
    batches: AtomicU64,
    jobs: AtomicU64,
}

impl Default for BatchHistogram {
    fn default() -> Self {
        BatchHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            batches: AtomicU64::new(0),
            jobs: AtomicU64::new(0),
        }
    }
}

impl BatchHistogram {
    fn bucket_index(size: usize) -> usize {
        (63 - (size.max(1) as u64).leading_zeros() as usize).min(BATCH_BUCKETS - 1)
    }

    /// Record one dispatch of `size` jobs.
    pub fn record(&self, size: usize) {
        self.buckets[Self::bucket_index(size)].fetch_add(1, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.jobs.fetch_add(size as u64, Ordering::Relaxed);
    }

    fn snapshot(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// Per-algorithm stage histograms plus the paper's engine work
/// aggregates, registered lazily the first time an algorithm is
/// dispatched.
#[derive(Default)]
pub struct AlgoStages {
    /// Enqueue → a worker popped the job's batch.
    pub queue_wait: LatencyHistogram,
    /// Batch popped → this job's engine started (time behind
    /// batchmates).
    pub batch_wait: LatencyHistogram,
    /// Engine run time.
    pub engine: LatencyHistogram,
    /// Result published → reply bytes written.
    pub write: LatencyHistogram,
    /// Engine runs completed for this algorithm.
    pub evals: AtomicU64,
    /// Total leaves/positions evaluated — the paper's work `W(T)`,
    /// summed over runs.
    pub leaves: AtomicU64,
    /// Total parallel steps/rounds — the paper's `P(T)`, summed.
    pub steps: AtomicU64,
    /// Total pruning events (α≥β cutoffs, NOR short-circuits, tt hits).
    pub pruned: AtomicU64,
    /// Largest frontier width any run reached — "processors used".
    pub max_width: AtomicU64,
}

impl AlgoStages {
    /// Fold one completed engine run into the work aggregates.
    pub fn record_work(&self, outcome: &EvalOutcome) {
        self.evals.fetch_add(1, Ordering::Relaxed);
        self.leaves.fetch_add(outcome.work, Ordering::Relaxed);
        self.steps.fetch_add(outcome.steps, Ordering::Relaxed);
        self.pruned.fetch_add(outcome.pruned, Ordering::Relaxed);
        self.max_width
            .fetch_max(u64::from(outcome.max_width), Ordering::Relaxed);
    }

    fn snapshot(&self, algo: &str) -> AlgoStagesSnapshot {
        AlgoStagesSnapshot {
            algo: algo.to_string(),
            queue_wait: self.queue_wait.snapshot_full(),
            batch_wait: self.batch_wait.snapshot_full(),
            engine: self.engine.snapshot_full(),
            write: self.write.snapshot_full(),
            evals: self.evals.load(Ordering::Relaxed),
            leaves: self.leaves.load(Ordering::Relaxed),
            steps: self.steps.load(Ordering::Relaxed),
            pruned: self.pruned.load(Ordering::Relaxed),
            max_width: self.max_width.load(Ordering::Relaxed),
        }
    }
}

/// Frozen copy of one algorithm's [`AlgoStages`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlgoStagesSnapshot {
    /// Algorithm name (the request's `algo` selector name).
    pub algo: String,
    /// See [`AlgoStages::queue_wait`].
    pub queue_wait: HistogramSnapshot,
    /// See [`AlgoStages::batch_wait`].
    pub batch_wait: HistogramSnapshot,
    /// See [`AlgoStages::engine`].
    pub engine: HistogramSnapshot,
    /// See [`AlgoStages::write`].
    pub write: HistogramSnapshot,
    /// See [`AlgoStages::evals`].
    pub evals: u64,
    /// See [`AlgoStages::leaves`].
    pub leaves: u64,
    /// See [`AlgoStages::steps`].
    pub steps: u64,
    /// See [`AlgoStages::pruned`].
    pub pruned: u64,
    /// See [`AlgoStages::max_width`].
    pub max_width: u64,
}

impl AlgoStagesSnapshot {
    /// Serialize for the `stats` reply.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("queue_wait", self.queue_wait.to_json()),
            ("batch_wait", self.batch_wait.to_json()),
            ("engine", self.engine.to_json()),
            ("write", self.write.to_json()),
            (
                "work",
                Json::obj([
                    ("evals", Json::from(self.evals)),
                    ("leaves", Json::from(self.leaves)),
                    ("steps", Json::from(self.steps)),
                    ("pruned", Json::from(self.pruned)),
                    ("max_width", Json::from(self.max_width)),
                ]),
            ),
        ])
    }
}

/// Per-tenant request accounting, registered lazily on the first
/// request that names the tenant (the anonymous shared tenant is not
/// tracked here — it is the untagged remainder of the global
/// counters).
#[derive(Default)]
pub struct TenantStats {
    /// Eval/subeval requests attributed to this tenant.
    pub requests: AtomicU64,
    /// Successful replies.
    pub ok: AtomicU64,
    /// Requests shed by the tenant's inflight cap (429).
    pub shed: AtomicU64,
    /// End-to-end latency of this tenant's answered requests.
    pub latency: LatencyHistogram,
}

impl TenantStats {
    fn snapshot(&self, tenant: &str) -> TenantSnapshot {
        TenantSnapshot {
            tenant: tenant.to_string(),
            requests: self.requests.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            latency: self.latency.snapshot_full(),
        }
    }
}

/// Frozen copy of one tenant's [`TenantStats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSnapshot {
    /// Tenant id (the request's `tenant` field).
    pub tenant: String,
    /// See [`TenantStats::requests`].
    pub requests: u64,
    /// See [`TenantStats::ok`].
    pub ok: u64,
    /// See [`TenantStats::shed`].
    pub shed: u64,
    /// See [`TenantStats::latency`].
    pub latency: HistogramSnapshot,
}

impl TenantSnapshot {
    /// Serialize for the `stats` reply.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("requests", Json::from(self.requests)),
            ("ok", Json::from(self.ok)),
            ("shed", Json::from(self.shed)),
            ("latency", self.latency.to_json()),
        ])
    }
}

/// Server start time with a `Default` impl so [`Metrics`] can keep
/// deriving `Default`.
struct StartTime(Instant);

impl Default for StartTime {
    fn default() -> Self {
        StartTime(Instant::now())
    }
}

/// The registry: one instance per server, shared by every thread.
#[derive(Default)]
pub struct Metrics {
    /// Request lines received (including malformed ones).
    pub received: AtomicU64,
    /// Successful replies (evals, including cache hits).
    pub ok: AtomicU64,
    /// Malformed or invalid requests.
    pub bad_request: AtomicU64,
    /// Requests shed because the queue was full.
    pub shed: AtomicU64,
    /// Requests that missed their deadline (queued or running).
    pub timeout: AtomicU64,
    /// Requests rejected during shutdown drain.
    pub draining: AtomicU64,
    /// Internal failures.
    pub internal: AtomicU64,
    /// Evals answered from the result cache.
    pub cache_hits: AtomicU64,
    /// Evals that had to run an engine.
    pub cache_misses: AtomicU64,
    /// Evals that joined another request's in-flight engine run
    /// instead of starting their own (single-flight coalescing).
    pub coalesced_hits: AtomicU64,
    /// Jobs a worker actually evaluated to completion.
    pub evaluated: AtomicU64,
    /// `subeval` request lines received (hits, misses, and rejects).
    pub subeval_requests: AtomicU64,
    /// Subtree evaluations a worker ran to completion (the scatter
    /// half of split plans landing on this replica).
    pub subevals: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Connections currently registered with an I/O thread (gauge:
    /// incremented on registration, decremented on close).
    pub open_conns: AtomicU64,
    /// Connections closed by the idle timeout (no completed request
    /// line for `--conn-idle-timeout`).
    pub idle_closed: AtomicU64,
    /// Connections closed because their bounded outbound queue
    /// overflowed (a never-draining slow reader).
    pub overflow_closed: AtomicU64,
    /// Connections closed for sending an over-long request line.
    pub overlong_closed: AtomicU64,
    /// Work-stealing engine: tasks taken from another worker's deque,
    /// summed over all parallel evaluations.
    pub par_steals: AtomicU64,
    /// Work-stealing engine: tasks retired unrun (or discarded late)
    /// by a cutoff — the pre-emption rule firing.
    pub par_retires: AtomicU64,
    /// Work-stealing engine: shared α/β window bound movements.
    pub par_narrowings: AtomicU64,
    /// Multi-thread worker grants issued to parallel (`par-*`)
    /// evaluations (a grant of one thread is not counted).
    pub par_grants: AtomicU64,
    /// Threads covered by those grants (`par_grant_threads /
    /// par_grants` is the mean grant size).
    pub par_grant_threads: AtomicU64,
    /// End-to-end server-side latency of eval requests.
    pub latency: LatencyHistogram,
    /// Executor dispatch sizes (micro-batching telemetry).
    pub batches: BatchHistogram,
    /// `cachepull` requests served (peers warm-filling from us).
    pub cachepull_served: AtomicU64,
    /// Entries shipped across all served `cachepull`s.
    pub cachepull_entries: AtomicU64,
    /// Entries this replica warm-filled from peers at (re)join.
    pub warmfill_entries: AtomicU64,
    /// Entries restored from the boot snapshot file.
    pub snapshot_restored: AtomicU64,
    /// Per-algorithm stage histograms and work aggregates.
    stages: RwLock<BTreeMap<String, Arc<AlgoStages>>>,
    /// Per-tenant request accounting, registered lazily on first use.
    tenants: RwLock<BTreeMap<String, Arc<TenantStats>>>,
    /// Per-io-thread event-loop health, registered at loop spawn in
    /// loop order (index = loop number).
    io_loops: RwLock<Vec<Arc<IoLoopStats>>>,
    /// Executor queue depth sampled over time (power-of-two depth
    /// buckets, not microseconds) — the queue-depth-over-time series.
    pub queue_depth: LatencyHistogram,
    /// When this registry (≈ the server) came up.
    started: StartTime,
}

impl Metrics {
    /// Fold one engine outcome's work-stealing counters into the
    /// global `par_*` aggregates (no-ops for sequential algorithms,
    /// whose counters are all zero).
    pub fn record_par_work(&self, steals: u64, retired: u64, narrowings: u64) {
        self.par_steals.fetch_add(steals, Ordering::Relaxed);
        self.par_retires.fetch_add(retired, Ordering::Relaxed);
        self.par_narrowings.fetch_add(narrowings, Ordering::Relaxed);
    }

    /// Record one worker grant handed to a parallel evaluation.
    pub fn record_par_grant(&self, threads: u32) {
        self.par_grants.fetch_add(1, Ordering::Relaxed);
        self.par_grant_threads
            .fetch_add(u64::from(threads), Ordering::Relaxed);
    }

    /// Register one I/O event loop's health card; call once per loop
    /// at spawn, in loop order.
    pub fn register_io_loop(&self) -> Arc<IoLoopStats> {
        let stats = Arc::new(IoLoopStats::default());
        self.io_loops.write().unwrap().push(Arc::clone(&stats));
        stats
    }

    /// Record one executor queue-depth observation.
    pub fn record_queue_depth(&self, depth: usize) {
        self.queue_depth.record(depth as u64);
    }

    /// The stage/work accumulator for `algo`, created on first use.
    pub fn algo_stages(&self, algo: &str) -> Arc<AlgoStages> {
        if let Some(s) = self.stages.read().unwrap().get(algo) {
            return Arc::clone(s);
        }
        let mut w = self.stages.write().unwrap();
        Arc::clone(w.entry(algo.to_string()).or_default())
    }

    /// The accounting card for `tenant`, created on first use.
    pub fn tenant_stats(&self, tenant: &str) -> Arc<TenantStats> {
        if let Some(s) = self.tenants.read().unwrap().get(tenant) {
            return Arc::clone(s);
        }
        let mut w = self.tenants.write().unwrap();
        Arc::clone(w.entry(tenant.to_string()).or_default())
    }

    /// Microseconds since the registry was created.
    pub fn uptime_us(&self) -> u64 {
        self.started.0.elapsed().as_micros() as u64
    }

    /// Mean engine-stage time across every algorithm, in microseconds;
    /// `None` until the first engine run completes.  Feeds the
    /// `retry_after_ms` hint on shed replies.
    pub fn mean_engine_us(&self) -> Option<f64> {
        let stages = self.stages.read().unwrap();
        let mut sum = 0u64;
        let mut count = 0u64;
        for s in stages.values() {
            sum += s.engine.sum_us.load(Ordering::Relaxed);
            count += s.engine.count.load(Ordering::Relaxed);
        }
        if count == 0 {
            None
        } else {
            Some(sum as f64 / count as f64)
        }
    }

    /// Freeze the registry into a plain-data snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let r = |c: &AtomicU64| c.load(Ordering::Relaxed);
        MetricsSnapshot {
            received: r(&self.received),
            ok: r(&self.ok),
            bad_request: r(&self.bad_request),
            shed: r(&self.shed),
            timeout: r(&self.timeout),
            draining: r(&self.draining),
            internal: r(&self.internal),
            cache_hits: r(&self.cache_hits),
            cache_misses: r(&self.cache_misses),
            coalesced_hits: r(&self.coalesced_hits),
            evaluated: r(&self.evaluated),
            subeval_requests: r(&self.subeval_requests),
            subevals: r(&self.subevals),
            connections: r(&self.connections),
            open_conns: r(&self.open_conns),
            idle_closed: r(&self.idle_closed),
            overflow_closed: r(&self.overflow_closed),
            overlong_closed: r(&self.overlong_closed),
            par_steals: r(&self.par_steals),
            par_retires: r(&self.par_retires),
            par_narrowings: r(&self.par_narrowings),
            par_grants: r(&self.par_grants),
            par_grant_threads: r(&self.par_grant_threads),
            latency_count: self.latency.count.load(Ordering::Relaxed),
            latency_sum_us: self.latency.sum_us.load(Ordering::Relaxed),
            latency_buckets: self.latency.snapshot(),
            batches: self.batches.batches.load(Ordering::Relaxed),
            batch_jobs: self.batches.jobs.load(Ordering::Relaxed),
            batch_size_buckets: self.batches.snapshot(),
            cachepull_served: r(&self.cachepull_served),
            cachepull_entries: r(&self.cachepull_entries),
            warmfill_entries: r(&self.warmfill_entries),
            snapshot_restored: r(&self.snapshot_restored),
            stages: self
                .stages
                .read()
                .unwrap()
                .iter()
                .map(|(name, s)| s.snapshot(name))
                .collect(),
            tenants: self
                .tenants
                .read()
                .unwrap()
                .iter()
                .map(|(name, s)| s.snapshot(name))
                .collect(),
            io_loops: self
                .io_loops
                .read()
                .unwrap()
                .iter()
                .map(|s| s.snapshot())
                .collect(),
            queue_depth: self.queue_depth.snapshot_full(),
            uptime_us: self.uptime_us(),
        }
    }
}

/// A point-in-time copy of every metric, safe to serialize or compare.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// See [`Metrics::received`].
    pub received: u64,
    /// See [`Metrics::ok`].
    pub ok: u64,
    /// See [`Metrics::bad_request`].
    pub bad_request: u64,
    /// See [`Metrics::shed`].
    pub shed: u64,
    /// See [`Metrics::timeout`].
    pub timeout: u64,
    /// See [`Metrics::draining`].
    pub draining: u64,
    /// See [`Metrics::internal`].
    pub internal: u64,
    /// See [`Metrics::cache_hits`].
    pub cache_hits: u64,
    /// See [`Metrics::cache_misses`].
    pub cache_misses: u64,
    /// See [`Metrics::coalesced_hits`].
    pub coalesced_hits: u64,
    /// See [`Metrics::evaluated`].
    pub evaluated: u64,
    /// See [`Metrics::subeval_requests`].
    pub subeval_requests: u64,
    /// See [`Metrics::subevals`].
    pub subevals: u64,
    /// See [`Metrics::connections`].
    pub connections: u64,
    /// See [`Metrics::open_conns`].
    pub open_conns: u64,
    /// See [`Metrics::idle_closed`].
    pub idle_closed: u64,
    /// See [`Metrics::overflow_closed`].
    pub overflow_closed: u64,
    /// See [`Metrics::overlong_closed`].
    pub overlong_closed: u64,
    /// See [`Metrics::par_steals`].
    pub par_steals: u64,
    /// See [`Metrics::par_retires`].
    pub par_retires: u64,
    /// See [`Metrics::par_narrowings`].
    pub par_narrowings: u64,
    /// See [`Metrics::par_grants`].
    pub par_grants: u64,
    /// See [`Metrics::par_grant_threads`].
    pub par_grant_threads: u64,
    /// Observations recorded in the latency histogram.
    pub latency_count: u64,
    /// Sum of all recorded latencies, microseconds.
    pub latency_sum_us: u64,
    /// Power-of-two bucket counts (bucket `i` covers `[2^i, 2^{i+1})` µs).
    pub latency_buckets: Vec<u64>,
    /// Executor dispatches performed.
    pub batches: u64,
    /// Jobs carried by those dispatches (`batch_jobs / batches` is the
    /// mean micro-batch size).
    pub batch_jobs: u64,
    /// Power-of-two dispatch-size bucket counts (bucket `i` covers
    /// batches of `[2^i, 2^{i+1})` jobs).
    pub batch_size_buckets: Vec<u64>,
    /// See [`Metrics::cachepull_served`].
    pub cachepull_served: u64,
    /// See [`Metrics::cachepull_entries`].
    pub cachepull_entries: u64,
    /// See [`Metrics::warmfill_entries`].
    pub warmfill_entries: u64,
    /// See [`Metrics::snapshot_restored`].
    pub snapshot_restored: u64,
    /// Per-algorithm stage histograms and work aggregates, sorted by
    /// algorithm name.
    pub stages: Vec<AlgoStagesSnapshot>,
    /// Per-tenant request accounting, sorted by tenant id.
    pub tenants: Vec<TenantSnapshot>,
    /// Per-io-thread event-loop health, in loop order.
    pub io_loops: Vec<IoLoopSnapshot>,
    /// Executor queue-depth-over-time samples (power-of-two depth
    /// buckets).
    pub queue_depth: HistogramSnapshot,
    /// Server uptime at snapshot time, microseconds.
    pub uptime_us: u64,
}

impl MetricsSnapshot {
    /// The `q`-quantile latency in µs, `0.0 < q <= 1.0`, linearly
    /// interpolated within the bucket holding the target rank (so
    /// distinct quantiles stay distinct even when one bucket holds all
    /// the mass); `None` when nothing was recorded.
    pub fn latency_quantile_us(&self, q: f64) -> Option<u64> {
        quantile_from_buckets(&self.latency_buckets, self.latency_count, q)
    }

    /// Mean latency in microseconds.
    pub fn latency_mean_us(&self) -> Option<f64> {
        if self.latency_count == 0 {
            None
        } else {
            Some(self.latency_sum_us as f64 / self.latency_count as f64)
        }
    }

    /// Serialize for the `stats` reply and the shutdown dump.
    pub fn to_json(&self) -> Json {
        let quantile = |q: f64| match self.latency_quantile_us(q) {
            Some(us) => Json::from(us),
            None => Json::Null,
        };
        Json::obj([
            ("received", Json::from(self.received)),
            ("ok", Json::from(self.ok)),
            ("bad_request", Json::from(self.bad_request)),
            ("shed", Json::from(self.shed)),
            ("timeout", Json::from(self.timeout)),
            ("draining", Json::from(self.draining)),
            ("internal", Json::from(self.internal)),
            ("cache_hits", Json::from(self.cache_hits)),
            ("cache_misses", Json::from(self.cache_misses)),
            ("coalesced_hits", Json::from(self.coalesced_hits)),
            ("evaluated", Json::from(self.evaluated)),
            ("subeval_requests", Json::from(self.subeval_requests)),
            ("subevals", Json::from(self.subevals)),
            ("connections", Json::from(self.connections)),
            ("open_conns", Json::from(self.open_conns)),
            ("idle_closed", Json::from(self.idle_closed)),
            ("overflow_closed", Json::from(self.overflow_closed)),
            ("overlong_closed", Json::from(self.overlong_closed)),
            ("par_steals", Json::from(self.par_steals)),
            ("par_retires", Json::from(self.par_retires)),
            ("par_narrowings", Json::from(self.par_narrowings)),
            ("par_grants", Json::from(self.par_grants)),
            ("par_grant_threads", Json::from(self.par_grant_threads)),
            ("latency_count", Json::from(self.latency_count)),
            (
                "latency_mean_us",
                match self.latency_mean_us() {
                    Some(m) => Json::from(m),
                    None => Json::Null,
                },
            ),
            ("latency_p50_us", quantile(0.50)),
            ("latency_p90_us", quantile(0.90)),
            ("latency_p99_us", quantile(0.99)),
            (
                "latency_buckets",
                Json::Array(
                    self.latency_buckets
                        .iter()
                        .map(|&c| Json::from(c))
                        .collect(),
                ),
            ),
            ("batches", Json::from(self.batches)),
            ("batch_jobs", Json::from(self.batch_jobs)),
            (
                "batch_mean_size",
                if self.batches == 0 {
                    Json::Null
                } else {
                    Json::from(self.batch_jobs as f64 / self.batches as f64)
                },
            ),
            (
                "batch_size_buckets",
                Json::Array(
                    self.batch_size_buckets
                        .iter()
                        .map(|&c| Json::from(c))
                        .collect(),
                ),
            ),
            ("cachepull_served", Json::from(self.cachepull_served)),
            ("cachepull_entries", Json::from(self.cachepull_entries)),
            ("warmfill_entries", Json::from(self.warmfill_entries)),
            ("snapshot_restored", Json::from(self.snapshot_restored)),
            (
                "stages",
                Json::Object(
                    self.stages
                        .iter()
                        .map(|s| (s.algo.clone(), s.to_json()))
                        .collect(),
                ),
            ),
            (
                "tenants",
                Json::Object(
                    self.tenants
                        .iter()
                        .map(|t| (t.tenant.clone(), t.to_json()))
                        .collect(),
                ),
            ),
            (
                "io_loops",
                Json::Array(
                    self.io_loops
                        .iter()
                        .map(|l| {
                            Json::obj([
                                ("iterations", Json::from(l.iterations)),
                                ("wait_us", Json::from(l.wait_us)),
                                ("work_us", Json::from(l.work_us)),
                                ("connections", Json::from(l.connections)),
                                ("outbox_bytes", Json::from(l.outbox_bytes)),
                                ("lag", l.lag.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("queue_depth", self.queue_depth.to_json()),
            ("uptime_s", Json::from(self.uptime_us as f64 / 1e6)),
            ("version", Json::from(env!("CARGO_PKG_VERSION"))),
        ])
    }

    /// Human-readable dump: counters plus an ASCII latency histogram.
    pub fn render_ascii(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "received    : {}", self.received);
        let _ = writeln!(out, "ok          : {}", self.ok);
        let _ = writeln!(out, "bad_request : {}", self.bad_request);
        let _ = writeln!(out, "shed        : {}", self.shed);
        let _ = writeln!(out, "timeout     : {}", self.timeout);
        let _ = writeln!(out, "draining    : {}", self.draining);
        let _ = writeln!(out, "internal    : {}", self.internal);
        let _ = writeln!(out, "cache_hits  : {}", self.cache_hits);
        let _ = writeln!(out, "cache_misses: {}", self.cache_misses);
        let _ = writeln!(out, "coalesced   : {}", self.coalesced_hits);
        let _ = writeln!(out, "evaluated   : {}", self.evaluated);
        if self.subeval_requests > 0 {
            let _ = writeln!(
                out,
                "subevals    : {} ({} requests)",
                self.subevals, self.subeval_requests
            );
        }
        let _ = writeln!(
            out,
            "connections : {} ({} open)",
            self.connections, self.open_conns
        );
        if self.idle_closed + self.overflow_closed + self.overlong_closed > 0 {
            let _ = writeln!(
                out,
                "conn closes : {} idle, {} outbox overflow, {} over-long",
                self.idle_closed, self.overflow_closed, self.overlong_closed
            );
        }
        if self.par_grants > 0 {
            let _ = writeln!(
                out,
                "par grants  : {} (mean {:.2} threads; {} steals, {} retires, {} narrowings)",
                self.par_grants,
                self.par_grant_threads as f64 / self.par_grants as f64,
                self.par_steals,
                self.par_retires,
                self.par_narrowings,
            );
        }
        if self.snapshot_restored + self.warmfill_entries > 0 {
            let _ = writeln!(
                out,
                "warm boot   : {} snapshot entries, {} warm-filled from peers",
                self.snapshot_restored, self.warmfill_entries
            );
        }
        for t in &self.tenants {
            let _ = writeln!(
                out,
                "tenant {:12}: {} requests, {} ok, {} shed, p99~{}us",
                t.tenant,
                t.requests,
                t.ok,
                t.shed,
                t.latency.quantile_us(0.99).unwrap_or(0),
            );
        }
        if self.batches > 0 {
            let _ = writeln!(
                out,
                "batches     : {} ({} jobs, mean size {:.2})",
                self.batches,
                self.batch_jobs,
                self.batch_jobs as f64 / self.batches as f64,
            );
        }
        if self.latency_count > 0 {
            let _ = writeln!(
                out,
                "latency     : n={} mean={:.0}us p50~{}us p99~{}us",
                self.latency_count,
                self.latency_mean_us().unwrap_or(0.0),
                self.latency_quantile_us(0.5).unwrap_or(0),
                self.latency_quantile_us(0.99).unwrap_or(0),
            );
            // Trim to the occupied bucket range for a compact chart.
            let lo = self
                .latency_buckets
                .iter()
                .position(|&c| c > 0)
                .unwrap_or(0);
            let hi = self
                .latency_buckets
                .iter()
                .rposition(|&c| c > 0)
                .unwrap_or(0);
            let rows: Vec<(String, u64)> = (lo..=hi)
                .map(|i| (format!("<{}us", 1u128 << (i + 1)), self.latency_buckets[i]))
                .collect();
            out.push_str(&histogram::bars(&rows, 40));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        assert_eq!(LatencyHistogram::bucket_index(1), 0);
        assert_eq!(LatencyHistogram::bucket_index(2), 1);
        assert_eq!(LatencyHistogram::bucket_index(3), 1);
        assert_eq!(LatencyHistogram::bucket_index(4), 2);
        assert_eq!(LatencyHistogram::bucket_index(1024), 10);
        assert_eq!(LatencyHistogram::bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_track_recorded_values() {
        let m = Metrics::default();
        for us in [10u64, 10, 10, 10, 10, 10, 10, 10, 10, 5000] {
            m.latency.record(us);
        }
        let s = m.snapshot();
        assert_eq!(s.latency_count, 10);
        // p50 is rank 5 of 9 in the [8,16) bucket → 8 + 5/9·8 = 12.
        assert_eq!(s.latency_quantile_us(0.5), Some(12));
        // p99 rank is the 5000µs outlier — last rank of the [4096,8192)
        // bucket, so interpolation lands on the upper bound.
        assert_eq!(s.latency_quantile_us(0.99), Some(8192));
        assert!(s.latency_mean_us().unwrap() > 10.0);
    }

    #[test]
    fn quantiles_do_not_saturate_within_one_bucket() {
        // The cold_storm failure mode: every observation in one bucket
        // used to collapse p50 = p90 = p99 onto the bucket bound.
        let m = Metrics::default();
        for _ in 0..100 {
            m.latency.record(70_000); // bucket [65536, 131072)
        }
        let s = m.snapshot();
        let p50 = s.latency_quantile_us(0.50).unwrap();
        let p90 = s.latency_quantile_us(0.90).unwrap();
        let p99 = s.latency_quantile_us(0.99).unwrap();
        assert!(p50 < p90 && p90 < p99, "{p50} {p90} {p99}");
        assert!((65_536..131_072).contains(&p50));
        assert!((65_536..=131_072).contains(&p99));
    }

    #[test]
    fn stage_registry_accumulates_per_algorithm() {
        let m = Metrics::default();
        let st = m.algo_stages("cascade");
        st.queue_wait.record(100);
        st.engine.record(2_000);
        st.record_work(&EvalOutcome {
            value: 1,
            work: 64,
            steps: 8,
            max_width: 4,
            pruned: 3,
            ..Default::default()
        });
        st.record_work(&EvalOutcome {
            value: 0,
            work: 36,
            steps: 6,
            max_width: 9,
            pruned: 1,
            ..Default::default()
        });
        // Same name returns the same accumulator.
        assert_eq!(m.algo_stages("cascade").evals.load(Ordering::Relaxed), 2);
        let s = m.snapshot();
        assert_eq!(s.stages.len(), 1);
        let cs = &s.stages[0];
        assert_eq!(cs.algo, "cascade");
        assert_eq!(cs.leaves, 100);
        assert_eq!(cs.steps, 14);
        assert_eq!(cs.pruned, 4);
        assert_eq!(cs.max_width, 9);
        assert_eq!(cs.queue_wait.count, 1);
        assert_eq!(cs.engine.count, 1);
        assert_eq!(cs.batch_wait.count, 0);
        let j = s.to_json();
        let work = j.get("stages").and_then(|s| s.get("cascade")).unwrap();
        assert_eq!(
            work.get("work")
                .and_then(|w| w.get("leaves"))
                .and_then(Json::as_u64),
            Some(100)
        );
    }

    #[test]
    fn mean_engine_time_spans_algorithms() {
        let m = Metrics::default();
        assert_eq!(m.mean_engine_us(), None, "no engine runs yet");
        m.algo_stages("a").engine.record(100);
        m.algo_stages("b").engine.record(300);
        assert_eq!(m.mean_engine_us(), Some(200.0));
    }

    #[test]
    fn snapshot_reports_uptime_and_version() {
        let m = Metrics::default();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let s = m.snapshot();
        assert!(s.uptime_us >= 1_000);
        let j = s.to_json();
        assert!(j.get("uptime_s").is_some());
        assert_eq!(
            j.get("version").and_then(Json::as_str),
            Some(env!("CARGO_PKG_VERSION"))
        );
    }

    #[test]
    fn io_loop_registry_and_queue_depth_sampling() {
        let m = Metrics::default();
        let l0 = m.register_io_loop();
        let l1 = m.register_io_loop();
        l0.record_iteration(10, 2);
        l1.set_gauges(5, 100);
        m.record_queue_depth(0);
        m.record_queue_depth(7);
        let s = m.snapshot();
        assert_eq!(s.io_loops.len(), 2);
        assert_eq!(s.io_loops[0].iterations, 1);
        assert_eq!(s.io_loops[1].connections, 5);
        assert_eq!(s.io_loops[1].outbox_bytes, 100);
        assert_eq!(s.queue_depth.count, 2);
        let j = s.to_json();
        let loops = match j.get("io_loops").unwrap() {
            Json::Array(items) => items.clone(),
            other => panic!("io_loops should be an array: {other:?}"),
        };
        assert_eq!(loops.len(), 2);
        assert_eq!(loops[0].get("iterations").and_then(Json::as_u64), Some(1));
        assert!(j.get("queue_depth").is_some());
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let s = Metrics::default().snapshot();
        assert_eq!(s.latency_quantile_us(0.5), None);
        assert_eq!(s.latency_mean_us(), None);
        assert_eq!(s.to_json().get("latency_p50_us"), Some(&Json::Null));
    }

    #[test]
    fn batch_histogram_tracks_dispatches() {
        let m = Metrics::default();
        m.batches.record(1);
        m.batches.record(8);
        m.batches.record(8);
        m.batches.record(64);
        let s = m.snapshot();
        assert_eq!(s.batches, 4);
        assert_eq!(s.batch_jobs, 81);
        assert_eq!(s.batch_size_buckets[BatchHistogram::bucket_index(1)], 1);
        assert_eq!(s.batch_size_buckets[BatchHistogram::bucket_index(8)], 2);
        assert_eq!(s.batch_size_buckets[BatchHistogram::bucket_index(64)], 1);
        let j = s.to_json();
        assert_eq!(j.get("batches").and_then(Json::as_u64), Some(4));
        assert_eq!(j.get("batch_jobs").and_then(Json::as_u64), Some(81));
        assert!(s.render_ascii().contains("batches     : 4"));
    }

    #[test]
    fn snapshot_counters_round_trip_through_json() {
        let m = Metrics::default();
        m.received.fetch_add(7, Ordering::Relaxed);
        m.ok.fetch_add(5, Ordering::Relaxed);
        m.shed.fetch_add(2, Ordering::Relaxed);
        m.latency.record(100);
        let s = m.snapshot();
        let j = s.to_json();
        assert_eq!(j.get("received").and_then(Json::as_u64), Some(7));
        assert_eq!(j.get("ok").and_then(Json::as_u64), Some(5));
        assert_eq!(j.get("shed").and_then(Json::as_u64), Some(2));
        assert_eq!(j.get("latency_count").and_then(Json::as_u64), Some(1));
        // The rendered JSON reparses (the stats reply embeds it).
        let text = j.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("received").and_then(Json::as_u64), Some(7));
    }

    #[test]
    fn ascii_dump_mentions_counters_and_buckets() {
        let m = Metrics::default();
        m.ok.fetch_add(3, Ordering::Relaxed);
        m.latency.record(12);
        m.latency.record(900);
        let text = m.snapshot().render_ascii();
        assert!(text.contains("ok          : 3"));
        assert!(text.contains("<16us"));
        assert!(text.contains('#'));
    }
}
