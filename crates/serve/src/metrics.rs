//! The serving metrics registry: lock-free counters plus a log-bucketed
//! latency histogram.
//!
//! Counters are plain relaxed atomics — every code path that touches
//! them is already synchronized by the channels it communicates over,
//! so the registry never becomes a contention point.  Latencies land in
//! power-of-two microsecond buckets; quantiles are read back as the
//! upper bound of the bucket containing the target rank, which is exact
//! enough for serving dashboards (within 2× at every scale) and costs
//! one atomic increment per request.  Rendering rides on
//! [`gt_analysis::histogram`] and [`gt_analysis::Json`].

use gt_analysis::{histogram, Json};
use std::sync::atomic::{AtomicU64, Ordering};

const BUCKETS: usize = 40;

/// Lock-free latency histogram over power-of-two microsecond buckets.
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    fn bucket_index(us: u64) -> usize {
        // Bucket i covers [2^i, 2^{i+1}); 0 µs lands in bucket 0.
        (63 - us.max(1).leading_zeros() as usize).min(BUCKETS - 1)
    }

    /// Record one observation, in microseconds.
    pub fn record(&self, us: u64) {
        self.buckets[Self::bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    fn snapshot(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

const BATCH_BUCKETS: usize = 12;

/// Lock-free histogram of executor dispatch sizes, in power-of-two
/// buckets — the cross-key micro-batching telemetry.
pub struct BatchHistogram {
    buckets: [AtomicU64; BATCH_BUCKETS],
    batches: AtomicU64,
    jobs: AtomicU64,
}

impl Default for BatchHistogram {
    fn default() -> Self {
        BatchHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            batches: AtomicU64::new(0),
            jobs: AtomicU64::new(0),
        }
    }
}

impl BatchHistogram {
    fn bucket_index(size: usize) -> usize {
        (63 - (size.max(1) as u64).leading_zeros() as usize).min(BATCH_BUCKETS - 1)
    }

    /// Record one dispatch of `size` jobs.
    pub fn record(&self, size: usize) {
        self.buckets[Self::bucket_index(size)].fetch_add(1, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.jobs.fetch_add(size as u64, Ordering::Relaxed);
    }

    fn snapshot(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// The registry: one instance per server, shared by every thread.
#[derive(Default)]
pub struct Metrics {
    /// Request lines received (including malformed ones).
    pub received: AtomicU64,
    /// Successful replies (evals, including cache hits).
    pub ok: AtomicU64,
    /// Malformed or invalid requests.
    pub bad_request: AtomicU64,
    /// Requests shed because the queue was full.
    pub shed: AtomicU64,
    /// Requests that missed their deadline (queued or running).
    pub timeout: AtomicU64,
    /// Requests rejected during shutdown drain.
    pub draining: AtomicU64,
    /// Internal failures.
    pub internal: AtomicU64,
    /// Evals answered from the result cache.
    pub cache_hits: AtomicU64,
    /// Evals that had to run an engine.
    pub cache_misses: AtomicU64,
    /// Evals that joined another request's in-flight engine run
    /// instead of starting their own (single-flight coalescing).
    pub coalesced_hits: AtomicU64,
    /// Jobs a worker actually evaluated to completion.
    pub evaluated: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
    /// End-to-end server-side latency of eval requests.
    pub latency: LatencyHistogram,
    /// Executor dispatch sizes (micro-batching telemetry).
    pub batches: BatchHistogram,
}

impl Metrics {
    /// Freeze the registry into a plain-data snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let r = |c: &AtomicU64| c.load(Ordering::Relaxed);
        MetricsSnapshot {
            received: r(&self.received),
            ok: r(&self.ok),
            bad_request: r(&self.bad_request),
            shed: r(&self.shed),
            timeout: r(&self.timeout),
            draining: r(&self.draining),
            internal: r(&self.internal),
            cache_hits: r(&self.cache_hits),
            cache_misses: r(&self.cache_misses),
            coalesced_hits: r(&self.coalesced_hits),
            evaluated: r(&self.evaluated),
            connections: r(&self.connections),
            latency_count: self.latency.count.load(Ordering::Relaxed),
            latency_sum_us: self.latency.sum_us.load(Ordering::Relaxed),
            latency_buckets: self.latency.snapshot(),
            batches: self.batches.batches.load(Ordering::Relaxed),
            batch_jobs: self.batches.jobs.load(Ordering::Relaxed),
            batch_size_buckets: self.batches.snapshot(),
        }
    }
}

/// A point-in-time copy of every metric, safe to serialize or compare.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// See [`Metrics::received`].
    pub received: u64,
    /// See [`Metrics::ok`].
    pub ok: u64,
    /// See [`Metrics::bad_request`].
    pub bad_request: u64,
    /// See [`Metrics::shed`].
    pub shed: u64,
    /// See [`Metrics::timeout`].
    pub timeout: u64,
    /// See [`Metrics::draining`].
    pub draining: u64,
    /// See [`Metrics::internal`].
    pub internal: u64,
    /// See [`Metrics::cache_hits`].
    pub cache_hits: u64,
    /// See [`Metrics::cache_misses`].
    pub cache_misses: u64,
    /// See [`Metrics::coalesced_hits`].
    pub coalesced_hits: u64,
    /// See [`Metrics::evaluated`].
    pub evaluated: u64,
    /// See [`Metrics::connections`].
    pub connections: u64,
    /// Observations recorded in the latency histogram.
    pub latency_count: u64,
    /// Sum of all recorded latencies, microseconds.
    pub latency_sum_us: u64,
    /// Power-of-two bucket counts (bucket `i` covers `[2^i, 2^{i+1})` µs).
    pub latency_buckets: Vec<u64>,
    /// Executor dispatches performed.
    pub batches: u64,
    /// Jobs carried by those dispatches (`batch_jobs / batches` is the
    /// mean micro-batch size).
    pub batch_jobs: u64,
    /// Power-of-two dispatch-size bucket counts (bucket `i` covers
    /// batches of `[2^i, 2^{i+1})` jobs).
    pub batch_size_buckets: Vec<u64>,
}

impl MetricsSnapshot {
    /// Upper bound (µs) of the bucket holding the `q`-quantile
    /// observation, `0.0 < q <= 1.0`; `None` when nothing was recorded.
    pub fn latency_quantile_us(&self, q: f64) -> Option<u64> {
        if self.latency_count == 0 {
            return None;
        }
        let target = ((q * self.latency_count as f64).ceil() as u64).clamp(1, self.latency_count);
        let mut seen = 0u64;
        for (i, &c) in self.latency_buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(1u64 << (i + 1).min(63));
            }
        }
        None
    }

    /// Mean latency in microseconds.
    pub fn latency_mean_us(&self) -> Option<f64> {
        if self.latency_count == 0 {
            None
        } else {
            Some(self.latency_sum_us as f64 / self.latency_count as f64)
        }
    }

    /// Serialize for the `stats` reply and the shutdown dump.
    pub fn to_json(&self) -> Json {
        let quantile = |q: f64| match self.latency_quantile_us(q) {
            Some(us) => Json::from(us),
            None => Json::Null,
        };
        Json::obj([
            ("received", Json::from(self.received)),
            ("ok", Json::from(self.ok)),
            ("bad_request", Json::from(self.bad_request)),
            ("shed", Json::from(self.shed)),
            ("timeout", Json::from(self.timeout)),
            ("draining", Json::from(self.draining)),
            ("internal", Json::from(self.internal)),
            ("cache_hits", Json::from(self.cache_hits)),
            ("cache_misses", Json::from(self.cache_misses)),
            ("coalesced_hits", Json::from(self.coalesced_hits)),
            ("evaluated", Json::from(self.evaluated)),
            ("connections", Json::from(self.connections)),
            ("latency_count", Json::from(self.latency_count)),
            (
                "latency_mean_us",
                match self.latency_mean_us() {
                    Some(m) => Json::from(m),
                    None => Json::Null,
                },
            ),
            ("latency_p50_us", quantile(0.50)),
            ("latency_p90_us", quantile(0.90)),
            ("latency_p99_us", quantile(0.99)),
            (
                "latency_buckets",
                Json::Array(
                    self.latency_buckets
                        .iter()
                        .map(|&c| Json::from(c))
                        .collect(),
                ),
            ),
            ("batches", Json::from(self.batches)),
            ("batch_jobs", Json::from(self.batch_jobs)),
            (
                "batch_mean_size",
                if self.batches == 0 {
                    Json::Null
                } else {
                    Json::from(self.batch_jobs as f64 / self.batches as f64)
                },
            ),
            (
                "batch_size_buckets",
                Json::Array(
                    self.batch_size_buckets
                        .iter()
                        .map(|&c| Json::from(c))
                        .collect(),
                ),
            ),
        ])
    }

    /// Human-readable dump: counters plus an ASCII latency histogram.
    pub fn render_ascii(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "received    : {}", self.received);
        let _ = writeln!(out, "ok          : {}", self.ok);
        let _ = writeln!(out, "bad_request : {}", self.bad_request);
        let _ = writeln!(out, "shed        : {}", self.shed);
        let _ = writeln!(out, "timeout     : {}", self.timeout);
        let _ = writeln!(out, "draining    : {}", self.draining);
        let _ = writeln!(out, "internal    : {}", self.internal);
        let _ = writeln!(out, "cache_hits  : {}", self.cache_hits);
        let _ = writeln!(out, "cache_misses: {}", self.cache_misses);
        let _ = writeln!(out, "coalesced   : {}", self.coalesced_hits);
        let _ = writeln!(out, "evaluated   : {}", self.evaluated);
        let _ = writeln!(out, "connections : {}", self.connections);
        if self.batches > 0 {
            let _ = writeln!(
                out,
                "batches     : {} ({} jobs, mean size {:.2})",
                self.batches,
                self.batch_jobs,
                self.batch_jobs as f64 / self.batches as f64,
            );
        }
        if self.latency_count > 0 {
            let _ = writeln!(
                out,
                "latency     : n={} mean={:.0}us p50<={}us p99<={}us",
                self.latency_count,
                self.latency_mean_us().unwrap_or(0.0),
                self.latency_quantile_us(0.5).unwrap_or(0),
                self.latency_quantile_us(0.99).unwrap_or(0),
            );
            // Trim to the occupied bucket range for a compact chart.
            let lo = self
                .latency_buckets
                .iter()
                .position(|&c| c > 0)
                .unwrap_or(0);
            let hi = self
                .latency_buckets
                .iter()
                .rposition(|&c| c > 0)
                .unwrap_or(0);
            let rows: Vec<(String, u64)> = (lo..=hi)
                .map(|i| (format!("<{}us", 1u128 << (i + 1)), self.latency_buckets[i]))
                .collect();
            out.push_str(&histogram::bars(&rows, 40));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        assert_eq!(LatencyHistogram::bucket_index(1), 0);
        assert_eq!(LatencyHistogram::bucket_index(2), 1);
        assert_eq!(LatencyHistogram::bucket_index(3), 1);
        assert_eq!(LatencyHistogram::bucket_index(4), 2);
        assert_eq!(LatencyHistogram::bucket_index(1024), 10);
        assert_eq!(LatencyHistogram::bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_track_recorded_values() {
        let m = Metrics::default();
        for us in [10u64, 10, 10, 10, 10, 10, 10, 10, 10, 5000] {
            m.latency.record(us);
        }
        let s = m.snapshot();
        assert_eq!(s.latency_count, 10);
        // p50 falls in the [8,16) bucket → upper bound 16.
        assert_eq!(s.latency_quantile_us(0.5), Some(16));
        // p99 rank is the 5000µs outlier → bucket [4096,8192).
        assert_eq!(s.latency_quantile_us(0.99), Some(8192));
        assert!(s.latency_mean_us().unwrap() > 10.0);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let s = Metrics::default().snapshot();
        assert_eq!(s.latency_quantile_us(0.5), None);
        assert_eq!(s.latency_mean_us(), None);
        assert_eq!(s.to_json().get("latency_p50_us"), Some(&Json::Null));
    }

    #[test]
    fn batch_histogram_tracks_dispatches() {
        let m = Metrics::default();
        m.batches.record(1);
        m.batches.record(8);
        m.batches.record(8);
        m.batches.record(64);
        let s = m.snapshot();
        assert_eq!(s.batches, 4);
        assert_eq!(s.batch_jobs, 81);
        assert_eq!(s.batch_size_buckets[BatchHistogram::bucket_index(1)], 1);
        assert_eq!(s.batch_size_buckets[BatchHistogram::bucket_index(8)], 2);
        assert_eq!(s.batch_size_buckets[BatchHistogram::bucket_index(64)], 1);
        let j = s.to_json();
        assert_eq!(j.get("batches").and_then(Json::as_u64), Some(4));
        assert_eq!(j.get("batch_jobs").and_then(Json::as_u64), Some(81));
        assert!(s.render_ascii().contains("batches     : 4"));
    }

    #[test]
    fn snapshot_counters_round_trip_through_json() {
        let m = Metrics::default();
        m.received.fetch_add(7, Ordering::Relaxed);
        m.ok.fetch_add(5, Ordering::Relaxed);
        m.shed.fetch_add(2, Ordering::Relaxed);
        m.latency.record(100);
        let s = m.snapshot();
        let j = s.to_json();
        assert_eq!(j.get("received").and_then(Json::as_u64), Some(7));
        assert_eq!(j.get("ok").and_then(Json::as_u64), Some(5));
        assert_eq!(j.get("shed").and_then(Json::as_u64), Some(2));
        assert_eq!(j.get("latency_count").and_then(Json::as_u64), Some(1));
        // The rendered JSON reparses (the stats reply embeds it).
        let text = j.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("received").and_then(Json::as_u64), Some(7));
    }

    #[test]
    fn ascii_dump_mentions_counters_and_buckets() {
        let m = Metrics::default();
        m.ok.fetch_add(3, Ordering::Relaxed);
        m.latency.record(12);
        m.latency.record(900);
        let text = m.snapshot().render_ascii();
        assert!(text.contains("ok          : 3"));
        assert!(text.contains("<16us"));
        assert!(text.contains('#'));
    }
}
