//! gt-io: readiness-driven socket infrastructure for the C10K front
//! door — the self-pipe FFI seeded in the CLI's SIGINT handler grown
//! into a proper event-loop toolkit.
//!
//! Everything here is std + raw libc FFI (the crate's established
//! idiom: no async runtime, no libc crate):
//!
//! * [`Poller`] — readiness registration and waiting.  On Linux it is
//!   an `epoll` instance (level-triggered, interest recomputed
//!   explicitly by the owner); elsewhere it degrades to a `poll(2)`
//!   sweep over the registered set.  Tokens are plain `u64`s chosen by
//!   the caller (the I/O threads use slab indices).
//! * [`Waker`] — a nonblocking self-pipe plus a collapsing flag, so
//!   any thread can pull a [`Poller::wait`] out of its sleep exactly
//!   once per batch of notifications no matter how many arrive.
//! * [`LineReader`] — the per-connection NDJSON state machine:
//!   incremental line scanning over freshly-read bytes with a pooled
//!   carry buffer for partial lines, `max_line` enforced *in the state
//!   machine* (an over-long line surfaces before it is ever buffered
//!   whole), and flow control (`Stop` after a line, `Defer` before
//!   one) so the owner can stop parsing when a window or an outbound
//!   queue fills.  In the steady state — complete lines arriving in
//!   one read — no bytes are copied and nothing is allocated; the
//!   carry buffer is only touched by stragglers and is returned to the
//!   [`BufferPool`] whenever it empties, so an idle connection holds
//!   no buffer at all.
//! * [`drain_outbox`] — vectored (`writev`) draining of a per-
//!   connection reply queue: many small NDJSON replies leave in one
//!   syscall, partial writes resume at an offset.
//! * [`raise_nofile_limit`] — best-effort `RLIMIT_NOFILE` soft→hard
//!   bump so one process can actually hold 10k+ sockets.

use crate::metrics::{HistogramSnapshot, LatencyHistogram};
use std::collections::VecDeque;
use std::io::{self, ErrorKind, IoSlice, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Raw file descriptor (we avoid `std::os::fd` traits on the FFI
/// boundary to keep the cfg surface small).
pub type RawFd = i32;

// ---------------------------------------------------------------------------
// Shared FFI: pipe, fcntl, read/write/close, rlimit.
// ---------------------------------------------------------------------------

extern "C" {
    fn pipe(fds: *mut i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
    fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
    fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
}

const F_GETFL: i32 = 3;
const F_SETFL: i32 = 4;
#[cfg(target_os = "linux")]
const O_NONBLOCK: i32 = 0x800;
#[cfg(not(target_os = "linux"))]
const O_NONBLOCK: i32 = 0x4;

#[repr(C)]
struct RLimit {
    cur: u64,
    max: u64,
}

const RLIMIT_NOFILE: i32 = 7;

/// Raise the soft open-file limit toward `want` (capped by the hard
/// limit).  Returns the soft limit now in effect, or `None` when the
/// kernel refused to say.  Best-effort: a failure to raise leaves the
/// process exactly as it was.
pub fn raise_nofile_limit(want: u64) -> Option<u64> {
    let mut lim = RLimit { cur: 0, max: 0 };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return None;
    }
    let target = want.min(lim.max);
    if target > lim.cur {
        let new = RLimit {
            cur: target,
            max: lim.max,
        };
        if unsafe { setrlimit(RLIMIT_NOFILE, &new) } == 0 {
            return Some(target);
        }
    }
    Some(lim.cur.max(target.min(lim.cur)))
}

fn set_nonblocking_fd(fd: RawFd) -> io::Result<()> {
    let flags = unsafe { fcntl(fd, F_GETFL, 0) };
    if flags < 0 {
        return Err(io::Error::last_os_error());
    }
    if unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Per-io-thread event-loop health.
// ---------------------------------------------------------------------------

/// Health counters for one I/O event loop, updated lock-free by the
/// owning thread each iteration and read by the metrics renderers.
/// `wait_us` is time spent asleep in `epoll_wait`/`poll` (idle);
/// `work_us` is everything else in the iteration — socket reads,
/// request parsing, outbox drains — i.e. how long freshly-ready
/// connections wait for the loop to come around, so its distribution
/// (the `lag` histogram) is the loop's responsiveness.
#[derive(Default)]
pub struct IoLoopStats {
    /// Loop iterations completed (one `wait` + work cycle each).
    pub iterations: AtomicU64,
    /// Cumulative µs blocked waiting for readiness events.
    pub wait_us: AtomicU64,
    /// Cumulative µs doing work between waits.
    pub work_us: AtomicU64,
    /// Connections currently owned by this loop (gauge).
    pub connections: AtomicU64,
    /// Bytes queued in this loop's connection outboxes (gauge,
    /// refreshed on the owner's gauge cadence, not per write).
    pub outbox_bytes: AtomicU64,
    /// Distribution of per-iteration work time — loop-iteration lag.
    pub lag: LatencyHistogram,
}

impl IoLoopStats {
    /// Fold one completed loop iteration in.
    pub fn record_iteration(&self, wait_us: u64, work_us: u64) {
        self.iterations.fetch_add(1, Ordering::Relaxed);
        self.wait_us.fetch_add(wait_us, Ordering::Relaxed);
        self.work_us.fetch_add(work_us, Ordering::Relaxed);
        self.lag.record(work_us);
    }

    /// Refresh the point-in-time gauges.
    pub fn set_gauges(&self, connections: u64, outbox_bytes: u64) {
        self.connections.store(connections, Ordering::Relaxed);
        self.outbox_bytes.store(outbox_bytes, Ordering::Relaxed);
    }

    /// Freeze into plain data for rendering.
    pub fn snapshot(&self) -> IoLoopSnapshot {
        IoLoopSnapshot {
            iterations: self.iterations.load(Ordering::Relaxed),
            wait_us: self.wait_us.load(Ordering::Relaxed),
            work_us: self.work_us.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            outbox_bytes: self.outbox_bytes.load(Ordering::Relaxed),
            lag: self.lag.snapshot_full(),
        }
    }
}

/// A frozen [`IoLoopStats`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IoLoopSnapshot {
    /// See [`IoLoopStats::iterations`].
    pub iterations: u64,
    /// See [`IoLoopStats::wait_us`].
    pub wait_us: u64,
    /// See [`IoLoopStats::work_us`].
    pub work_us: u64,
    /// See [`IoLoopStats::connections`].
    pub connections: u64,
    /// See [`IoLoopStats::outbox_bytes`].
    pub outbox_bytes: u64,
    /// See [`IoLoopStats::lag`].
    pub lag: HistogramSnapshot,
}

// ---------------------------------------------------------------------------
// Poller.
// ---------------------------------------------------------------------------

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// The fd has bytes to read (or a pending accept), or hung up.
    pub readable: bool,
    /// The fd can accept more bytes.
    pub writable: bool,
    /// Error or hangup: the owner should read to EOF and close.
    pub hangup: bool,
}

#[cfg(target_os = "linux")]
mod sys {
    use super::{close, Event, RawFd};
    use std::io;

    // x86_64 packs epoll_event; the layout is part of the kernel ABI.
    #[repr(C, packed)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    }

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x1;
    const EPOLLOUT: u32 = 0x4;
    const EPOLLERR: u32 = 0x8;
    const EPOLLHUP: u32 = 0x10;
    const EPOLLRDHUP: u32 = 0x2000;

    /// Level-triggered epoll instance.
    pub struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            // EPOLL_CLOEXEC
            let epfd = unsafe { epoll_create1(0x80000) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller { epfd })
        }

        fn ctl(
            &self,
            op: i32,
            fd: RawFd,
            token: u64,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            let mut events = EPOLLRDHUP;
            if readable {
                events |= EPOLLIN;
            }
            if writable {
                events |= EPOLLOUT;
            }
            let mut ev = EpollEvent {
                events,
                data: token,
            };
            if unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn add(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, readable, writable)
        }

        pub fn modify(
            &self,
            fd: RawFd,
            token: u64,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, readable, writable)
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            if unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Wait up to `timeout_ms` (`-1` blocks) and append readiness
        /// events to `out`.  Returns how many arrived.
        pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
            const MAX: usize = 256;
            let mut buf: [EpollEvent; MAX] = unsafe { std::mem::zeroed() };
            let n = unsafe { epoll_wait(self.epfd, buf.as_mut_ptr(), MAX as i32, timeout_ms) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(e);
            }
            for ev in buf.iter().take(n as usize) {
                let bits = ev.events;
                out.push(Event {
                    token: ev.data,
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    hangup: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(n as usize)
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    use super::{Event, RawFd};
    use std::io;
    use std::sync::Mutex;

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout_ms: i32) -> i32;
    }

    const POLLIN: i16 = 0x1;
    const POLLOUT: i16 = 0x4;
    const POLLERR: i16 = 0x8;
    const POLLHUP: i16 = 0x10;

    /// Portable fallback: a registered-set swept with `poll(2)` each
    /// wait.  O(n) per wait, which is fine for the fd counts non-Linux
    /// dev machines see.
    pub struct Poller {
        registered: Mutex<Vec<(RawFd, u64, bool, bool)>>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                registered: Mutex::new(Vec::new()),
            })
        }

        pub fn add(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
            self.registered
                .lock()
                .unwrap()
                .push((fd, token, readable, writable));
            Ok(())
        }

        pub fn modify(
            &self,
            fd: RawFd,
            token: u64,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            let mut reg = self.registered.lock().unwrap();
            for slot in reg.iter_mut() {
                if slot.0 == fd {
                    *slot = (fd, token, readable, writable);
                    return Ok(());
                }
            }
            Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.registered.lock().unwrap().retain(|s| s.0 != fd);
            Ok(())
        }

        pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
            let reg: Vec<(RawFd, u64, bool, bool)> = self.registered.lock().unwrap().clone();
            let mut fds: Vec<PollFd> = reg
                .iter()
                .map(|&(fd, _, r, w)| PollFd {
                    fd,
                    events: if r { POLLIN } else { 0 } | if w { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(e);
            }
            let mut count = 0;
            for (pfd, &(_, token, _, _)) in fds.iter().zip(reg.iter()) {
                if pfd.revents == 0 {
                    continue;
                }
                count += 1;
                out.push(Event {
                    token,
                    readable: pfd.revents & (POLLIN | POLLHUP) != 0,
                    writable: pfd.revents & POLLOUT != 0,
                    hangup: pfd.revents & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(count)
        }
    }
}

pub use sys::Poller;

// ---------------------------------------------------------------------------
// Waker.
// ---------------------------------------------------------------------------

/// Cross-thread wakeup for a [`Poller`]: a nonblocking self-pipe whose
/// read end is registered like any other fd.  Redundant wakes collapse
/// onto one pending byte, so a storm of reply completions costs one
/// `write(2)` and one `read(2)` per poll cycle, not one per reply.
pub struct Waker {
    read_fd: RawFd,
    write_fd: RawFd,
    pending: AtomicBool,
}

impl Waker {
    pub fn new() -> io::Result<Waker> {
        let mut fds = [-1i32; 2];
        if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
            return Err(io::Error::last_os_error());
        }
        for fd in fds {
            if let Err(e) = set_nonblocking_fd(fd) {
                unsafe {
                    close(fds[0]);
                    close(fds[1]);
                }
                return Err(e);
            }
        }
        Ok(Waker {
            read_fd: fds[0],
            write_fd: fds[1],
            pending: AtomicBool::new(false),
        })
    }

    /// The fd to register with the poller (readable when woken).
    pub fn read_fd(&self) -> RawFd {
        self.read_fd
    }

    /// Wake the poller if it is not already pending a wake.
    pub fn wake(&self) {
        if self.pending.swap(true, Ordering::AcqRel) {
            return; // a byte is already in flight
        }
        let byte = [1u8];
        unsafe {
            write(self.write_fd, byte.as_ptr(), 1);
        }
    }

    /// Drain the pipe after the poller reported it readable.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
            if n < buf.len() as isize {
                break;
            }
        }
        self.pending.store(false, Ordering::Release);
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        unsafe {
            close(self.read_fd);
            close(self.write_fd);
        }
    }
}

// Safety: the fds are plain integers; read/write/pipe are thread-safe.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

// ---------------------------------------------------------------------------
// Buffer pool.
// ---------------------------------------------------------------------------

/// A per-I/O-thread pool of carry buffers.  No lock: the owning thread
/// acquires on partial lines and releases when a connection's carry
/// empties, so thousands of idle connections pin zero buffer memory.
pub struct BufferPool {
    bufs: Vec<Vec<u8>>,
    /// Most buffers retained; extras are dropped on release.
    max_pooled: usize,
    /// Capacity above which a returned buffer is shrunk (one huge
    /// request must not pin its high-water allocation forever).
    max_retained_cap: usize,
}

impl BufferPool {
    pub fn new(max_pooled: usize, max_retained_cap: usize) -> BufferPool {
        BufferPool {
            bufs: Vec::new(),
            max_pooled,
            max_retained_cap,
        }
    }

    pub fn acquire(&mut self) -> Vec<u8> {
        self.bufs.pop().unwrap_or_default()
    }

    pub fn release(&mut self, mut buf: Vec<u8>) {
        if self.bufs.len() >= self.max_pooled {
            return;
        }
        buf.clear();
        if buf.capacity() > self.max_retained_cap {
            buf.shrink_to(self.max_retained_cap);
        }
        self.bufs.push(buf);
    }

    /// Buffers currently pooled (test/telemetry hook).
    pub fn pooled(&self) -> usize {
        self.bufs.len()
    }
}

// ---------------------------------------------------------------------------
// LineReader: the connection's incremental NDJSON state machine.
// ---------------------------------------------------------------------------

/// What the per-line callback tells the state machine to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineAction {
    /// Keep scanning for more lines.
    Continue,
    /// The line was consumed but parsing must pause (e.g. the
    /// connection hit its pipelining window); unscanned bytes are
    /// carried for a later [`LineReader::feed`].
    Stop,
    /// Do **not** consume this line; carry it (and everything after
    /// it) and pause.  Used when the owner cannot accept a request
    /// right now but wants to process it verbatim later.
    Defer,
}

/// How a [`LineReader::feed`] call ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedEnd {
    /// All input scanned; at most a partial line is carried.
    Done,
    /// Paused by [`LineAction::Stop`] or [`LineAction::Defer`]; call
    /// `feed(&[], …)` to resume from the carry buffer.
    Paused,
}

/// A request line exceeded the state machine's limit; the connection
/// should be closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineTooLong;

/// Incremental line scanner with a pooled carry buffer.
pub struct LineReader {
    carry: Vec<u8>,
    max_line: usize,
}

impl LineReader {
    pub fn new(max_line: usize) -> LineReader {
        LineReader {
            carry: Vec::new(),
            max_line,
        }
    }

    /// Bytes currently carried (a partial or deferred tail).
    pub fn buffered(&self) -> usize {
        self.carry.len()
    }

    /// True when deferred/partial input awaits a resume feed.
    pub fn has_carry(&self) -> bool {
        !self.carry.is_empty()
    }

    /// Return the carry buffer's allocation to the pool if it is
    /// empty; call whenever a feed round leaves nothing carried.
    pub fn release(&mut self, pool: &mut BufferPool) {
        if self.carry.is_empty() && self.carry.capacity() > 0 {
            pool.release(std::mem::take(&mut self.carry));
        }
    }

    /// Feed freshly-read bytes (or `&[]` to resume from the carry) and
    /// invoke `on_line` for each complete line, stripped of the
    /// trailing `\n`/`\r\n`.  In the hot path — no carry, complete
    /// lines in `data` — lines are scanned in place with no copy.
    pub fn feed(
        &mut self,
        data: &[u8],
        pool: &mut BufferPool,
        mut on_line: impl FnMut(&[u8]) -> LineAction,
    ) -> Result<FeedEnd, LineTooLong> {
        if self.carry.is_empty() {
            // Fast path: scan the fresh bytes in place.
            let mut cursor = 0usize;
            while let Some(nl) = find_newline(&data[cursor..]) {
                if nl > self.max_line {
                    return Err(LineTooLong);
                }
                let line = trim_cr(&data[cursor..cursor + nl]);
                match on_line(line) {
                    LineAction::Continue => cursor += nl + 1,
                    LineAction::Stop => {
                        cursor += nl + 1;
                        self.stash(&data[cursor..], pool);
                        return Ok(FeedEnd::Paused);
                    }
                    LineAction::Defer => {
                        self.stash(&data[cursor..], pool);
                        return Ok(FeedEnd::Paused);
                    }
                }
            }
            let tail = &data[cursor..];
            if tail.len() > self.max_line {
                return Err(LineTooLong);
            }
            self.stash(tail, pool);
            return Ok(FeedEnd::Done);
        }

        // Slow path: a carry exists; append and scan the carry buffer.
        if !data.is_empty() {
            self.carry.extend_from_slice(data);
        }
        let mut cursor = 0usize;
        let end = loop {
            match find_newline(&self.carry[cursor..]) {
                Some(nl) => {
                    if nl > self.max_line {
                        return Err(LineTooLong);
                    }
                    let line_end = cursor + nl;
                    // The borrow of `carry` for the callback is scoped
                    // to this arm; the cursor math happens after.
                    let action = on_line(trim_cr(&self.carry[cursor..line_end]));
                    match action {
                        LineAction::Continue => cursor = line_end + 1,
                        LineAction::Stop => {
                            cursor = line_end + 1;
                            break Some(FeedEnd::Paused);
                        }
                        LineAction::Defer => break Some(FeedEnd::Paused),
                    }
                }
                None => {
                    if self.carry.len() - cursor > self.max_line {
                        return Err(LineTooLong);
                    }
                    break None;
                }
            }
        };
        self.carry.drain(..cursor);
        if self.carry.is_empty() {
            self.release(pool);
        }
        Ok(end.unwrap_or(FeedEnd::Done))
    }

    fn stash(&mut self, tail: &[u8], pool: &mut BufferPool) {
        if tail.is_empty() {
            return;
        }
        if self.carry.capacity() == 0 {
            self.carry = pool.acquire();
        }
        self.carry.extend_from_slice(tail);
    }
}

fn find_newline(data: &[u8]) -> Option<usize> {
    data.iter().position(|&b| b == b'\n')
}

fn trim_cr(line: &[u8]) -> &[u8] {
    match line.last() {
        Some(b'\r') => &line[..line.len() - 1],
        _ => line,
    }
}

// ---------------------------------------------------------------------------
// Vectored outbound-queue draining.
// ---------------------------------------------------------------------------

/// Most reply buffers gathered into one `writev`.
const MAX_IOVEC: usize = 64;

/// Write as much of `queue` as the (nonblocking) socket accepts,
/// vectored.  `offset` tracks how far into the front buffer a partial
/// write got and must persist between calls.  Returns `Ok(true)` when
/// the queue fully drained, `Ok(false)` when the socket would block.
pub fn drain_outbox(
    mut stream: &TcpStream,
    queue: &mut VecDeque<Vec<u8>>,
    offset: &mut usize,
) -> io::Result<bool> {
    while !queue.is_empty() {
        let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(queue.len().min(MAX_IOVEC));
        for (i, buf) in queue.iter().take(MAX_IOVEC).enumerate() {
            let skip = if i == 0 { *offset } else { 0 };
            slices.push(IoSlice::new(&buf[skip..]));
        }
        let written = match stream.write_vectored(&slices) {
            Ok(0) => return Err(io::Error::new(ErrorKind::WriteZero, "socket wrote zero")),
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(false),
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        // Retire fully-written buffers; remember the offset into the
        // first surviving one.
        let mut remaining = written;
        while remaining > 0 {
            let front_len = queue.front().map(|b| b.len() - *offset).unwrap_or(0);
            if remaining >= front_len {
                queue.pop_front();
                remaining -= front_len;
                *offset = 0;
            } else {
                *offset += remaining;
                remaining = 0;
            }
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read as _;
    use std::net::TcpListener;

    fn collect_lines(
        reader: &mut LineReader,
        pool: &mut BufferPool,
        data: &[u8],
    ) -> (Vec<String>, Result<FeedEnd, LineTooLong>) {
        let mut lines = Vec::new();
        let end = reader.feed(data, pool, |line| {
            lines.push(String::from_utf8_lossy(line).into_owned());
            LineAction::Continue
        });
        (lines, end)
    }

    #[test]
    fn multiple_pipelined_lines_in_one_read() {
        let mut r = LineReader::new(1024);
        let mut pool = BufferPool::new(4, 4096);
        let (lines, end) = collect_lines(&mut r, &mut pool, b"{\"a\":1}\n{\"b\":2}\r\n{\"c\":3}\n");
        assert_eq!(end, Ok(FeedEnd::Done));
        assert_eq!(lines, vec!["{\"a\":1}", "{\"b\":2}", "{\"c\":3}"]);
        assert!(!r.has_carry(), "no partial tail to carry");
    }

    #[test]
    fn partial_lines_split_across_reads() {
        let mut r = LineReader::new(1024);
        let mut pool = BufferPool::new(4, 4096);
        let (lines, end) = collect_lines(&mut r, &mut pool, b"{\"op\":\"pi");
        assert_eq!(end, Ok(FeedEnd::Done));
        assert!(lines.is_empty());
        assert_eq!(r.buffered(), 9);
        let (lines, _) = collect_lines(&mut r, &mut pool, b"ng\"}\n{\"x\"");
        assert_eq!(lines, vec!["{\"op\":\"ping\"}"]);
        assert_eq!(r.buffered(), 4, "next partial carried");
        // One byte at a time (the slowloris shape) still assembles.
        let mut r = LineReader::new(64);
        for b in b"hello" {
            let (lines, _) = collect_lines(&mut r, &mut pool, &[*b]);
            assert!(lines.is_empty());
        }
        let (lines, _) = collect_lines(&mut r, &mut pool, b"\n");
        assert_eq!(lines, vec!["hello"]);
        assert!(!r.has_carry());
    }

    #[test]
    fn oversized_line_is_rejected_before_buffering_completes() {
        let mut r = LineReader::new(16);
        let mut pool = BufferPool::new(4, 4096);
        // A single feed over the limit with no newline.
        let (_, end) = collect_lines(&mut r, &mut pool, &[b'x'; 17]);
        assert_eq!(end, Err(LineTooLong));
        // Accreted across reads: the carry crosses the limit.
        let mut r = LineReader::new(16);
        assert!(collect_lines(&mut r, &mut pool, &[b'x'; 10]).1.is_ok());
        assert_eq!(
            collect_lines(&mut r, &mut pool, &[b'x'; 10]).1,
            Err(LineTooLong)
        );
        // A line exactly at the limit passes.
        let mut r = LineReader::new(16);
        let mut data = vec![b'y'; 16];
        data.push(b'\n');
        let (lines, end) = collect_lines(&mut r, &mut pool, &data);
        assert_eq!(end, Ok(FeedEnd::Done));
        assert_eq!(lines.len(), 1);
        // A *completed* over-long line is rejected, not delivered —
        // whether it arrives whole...
        let mut r = LineReader::new(16);
        let mut data = vec![b'z'; 17];
        data.push(b'\n');
        let (lines, end) = collect_lines(&mut r, &mut pool, &data);
        assert_eq!(end, Err(LineTooLong));
        assert!(lines.is_empty());
        // ...or completes out of the carry on a later read.
        let mut r = LineReader::new(16);
        assert!(collect_lines(&mut r, &mut pool, &[b'z'; 9]).1.is_ok());
        let (lines, end) = collect_lines(&mut r, &mut pool, b"zzzzzzzz\n");
        assert_eq!(end, Err(LineTooLong));
        assert!(lines.is_empty());
    }

    #[test]
    fn stop_consumes_the_line_and_carries_the_rest() {
        let mut r = LineReader::new(1024);
        let mut pool = BufferPool::new(4, 4096);
        let mut seen = Vec::new();
        let end = r.feed(b"one\ntwo\nthree\n", &mut pool, |line| {
            seen.push(String::from_utf8_lossy(line).into_owned());
            LineAction::Stop
        });
        assert_eq!(end, Ok(FeedEnd::Paused));
        assert_eq!(seen, vec!["one"]);
        // Resume from the carry with no new bytes.
        let (lines, end) = collect_lines(&mut r, &mut pool, b"");
        assert_eq!(end, Ok(FeedEnd::Done));
        assert_eq!(lines, vec!["two", "three"]);
        assert!(!r.has_carry());
    }

    #[test]
    fn defer_leaves_the_line_unconsumed() {
        let mut r = LineReader::new(1024);
        let mut pool = BufferPool::new(4, 4096);
        let mut calls = 0;
        let end = r.feed(b"first\nsecond\n", &mut pool, |_| {
            calls += 1;
            LineAction::Defer
        });
        assert_eq!(end, Ok(FeedEnd::Paused));
        assert_eq!(calls, 1);
        assert_eq!(r.buffered(), 13, "both lines still carried");
        // The deferred line replays verbatim on resume.
        let (lines, _) = collect_lines(&mut r, &mut pool, b"");
        assert_eq!(lines, vec!["first", "second"]);
    }

    #[test]
    fn graceful_drain_mid_request_keeps_the_partial_tail() {
        // A Stop with a partial line after it: the consumed line is
        // gone, the partial survives, and a later feed completes it.
        let mut r = LineReader::new(1024);
        let mut pool = BufferPool::new(4, 4096);
        let mut seen = Vec::new();
        let end = r.feed(b"done\npar", &mut pool, |line| {
            seen.push(String::from_utf8_lossy(line).into_owned());
            LineAction::Stop
        });
        assert_eq!(end, Ok(FeedEnd::Paused));
        assert_eq!(seen, vec!["done"]);
        assert_eq!(r.buffered(), 3);
        let (lines, _) = collect_lines(&mut r, &mut pool, b"tial\n");
        assert_eq!(lines, vec!["partial"]);
    }

    #[test]
    fn carry_buffer_returns_to_the_pool_when_empty() {
        let mut pool = BufferPool::new(4, 4096);
        let mut r = LineReader::new(1024);
        let _ = collect_lines(&mut r, &mut pool, b"par");
        assert_eq!(pool.pooled(), 0, "carry in use");
        let _ = collect_lines(&mut r, &mut pool, b"tial\n");
        assert!(!r.has_carry());
        assert_eq!(pool.pooled(), 1, "allocation recycled");
        // The next reader reuses it rather than allocating.
        let mut r2 = LineReader::new(1024);
        let _ = collect_lines(&mut r2, &mut pool, b"x");
        assert_eq!(pool.pooled(), 0);
    }

    #[test]
    fn pool_caps_count_and_capacity() {
        let mut pool = BufferPool::new(1, 64);
        pool.release(Vec::with_capacity(1024));
        pool.release(Vec::with_capacity(16)); // over max_pooled: dropped
        assert_eq!(pool.pooled(), 1);
        let b = pool.acquire();
        assert!(b.capacity() <= 64, "oversized buffer shrunk on release");
    }

    #[test]
    fn waker_wakes_a_sleeping_poller_once_per_batch() {
        let poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        poller.add(waker.read_fd(), 7, true, false).unwrap();
        let mut events = Vec::new();
        // No wake: the wait times out empty.
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);
        // A storm of wakes collapses to one readable event.
        for _ in 0..100 {
            waker.wake();
        }
        let n = poller.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        waker.drain();
        events.clear();
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0, "drained");
        // And it re-arms.
        waker.wake();
        assert_eq!(poller.wait(&mut events, 1000).unwrap(), 1);
        waker.drain();
    }

    #[test]
    fn drain_outbox_writes_vectored_and_resumes_partials() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut queue: VecDeque<Vec<u8>> = VecDeque::new();
        for i in 0..10 {
            queue.push_back(format!("reply-{i}\n").into_bytes());
        }
        let total: usize = queue.iter().map(Vec::len).sum();
        let mut offset = 0;
        assert!(drain_outbox(&server, &mut queue, &mut offset).unwrap());
        assert!(queue.is_empty());

        let mut got = vec![0u8; total];
        let mut read = 0;
        let mut reader = &client;
        while read < total {
            read += reader.read(&mut got[read..]).unwrap();
        }
        let text = String::from_utf8(got).unwrap();
        assert!(text.starts_with("reply-0\n"));
        assert!(text.ends_with("reply-9\n"));
        assert_eq!(text.lines().count(), 10);
    }

    #[test]
    fn drain_outbox_reports_backpressure_without_losing_bytes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        // Stuff the socket until the kernel buffer refuses more.
        let chunk = vec![b'z'; 64 * 1024];
        let mut queue: VecDeque<Vec<u8>> = VecDeque::new();
        let mut offset = 0;
        let mut queued_total = 0usize;
        let mut blocked = false;
        for _ in 0..256 {
            queue.push_back(chunk.clone());
            queued_total += chunk.len();
            if !drain_outbox(&server, &mut queue, &mut offset).unwrap() {
                blocked = true;
                break;
            }
        }
        assert!(blocked, "a 16MB push must hit backpressure");
        let backlog: usize = queue.iter().map(Vec::len).sum::<usize>() - offset;
        assert!(backlog > 0);

        // Drain the client side; the remainder flushes cleanly.
        let mut reader = &client;
        let mut sunk = vec![0u8; 64 * 1024];
        let mut received = 0usize;
        loop {
            // Alternate reads and flush attempts until all bytes land.
            received += reader.read(&mut sunk).unwrap();
            if drain_outbox(&server, &mut queue, &mut offset).unwrap() && received >= queued_total {
                break;
            }
        }
        assert_eq!(received, queued_total);
        assert_eq!(offset, 0);
    }

    #[test]
    fn io_loop_stats_accumulate_and_snapshot() {
        let s = IoLoopStats::default();
        s.record_iteration(100, 20);
        s.record_iteration(50, 5);
        s.set_gauges(3, 4096);
        let snap = s.snapshot();
        assert_eq!(snap.iterations, 2);
        assert_eq!(snap.wait_us, 150);
        assert_eq!(snap.work_us, 25);
        assert_eq!(snap.connections, 3);
        assert_eq!(snap.outbox_bytes, 4096);
        assert_eq!(snap.lag.count, 2);
        assert_eq!(snap.lag.sum_us, 25);
    }

    #[test]
    fn raise_nofile_limit_reports_a_limit() {
        // Best-effort: must not error, must report a sane value.
        let lim = raise_nofile_limit(4096);
        assert!(lim.is_some());
        assert!(lim.unwrap() >= 256, "limit: {lim:?}");
    }
}
