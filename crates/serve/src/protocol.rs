//! The wire protocol: newline-delimited JSON request/response framing.
//!
//! One request per line, one response line per request, in order.  The
//! full field reference lives in `docs/SERVING.md`; the shapes are:
//!
//! ```text
//! → {"op":"eval","spec":"worst:d=2,n=10","algo":"cascade:w=1","deadline_ms":250,"id":"r1"}
//! ← {"ok":true,"id":"r1","value":1,"work":1024,"steps":0,"cached":false,"latency_us":812}
//! ← {"ok":false,"id":"r1","status":429,"code":"busy","error":"queue full"}
//! ```
//!
//! A malformed line yields an `ok:false` reply with `status` 400 and
//! the connection stays open — clients never have to reconnect to
//! recover from their own bad input.

use gt_analysis::Json;

/// Protocol revision, reported by `ping`.
pub const PROTOCOL_VERSION: u64 = 1;

/// Request operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Evaluate a workload (`spec` + `algo`).
    Eval,
    /// Evaluate one subtree of a workload under an α/β window
    /// (`spec` + `path` + `alpha`/`beta`) — the scatter half of the
    /// router's split plans.  The replica regenerates the subtree
    /// locally from the spec; no tree data crosses the wire.
    Subeval,
    /// Return the metrics snapshot.
    Stats,
    /// Liveness/version probe.
    Ping,
    /// Begin a graceful drain: in-flight work completes, new evals are
    /// rejected, the server exits once idle.
    Shutdown,
    /// Return recent request traces from the flight recorder.
    Trace,
    /// Cheap liveness probe: uptime, queue depth, and in-flight count
    /// without the allocation cost of a full `stats` snapshot.  Built
    /// for high-frequency pollers (the gt-router health prober).
    Health,
    /// Membership announcement (replica → router): `addr` is the
    /// announcing replica's serving address, `weight` its routing
    /// weight, `generation` a counter bumped on every (re)start so the
    /// router can tell a reborn replica from a stale duplicate.
    Join,
    /// Bounded bulk cache read (peer → peer warm-fill): return up to
    /// `n` of the hottest cache entries (MRU-first) as a `cachepull`
    /// reply so a (re)joining replica can warm its shard from
    /// hash-order peers instead of serving a cold storm.
    Cachepull,
}

/// Wire-propagated distributed-trace context.  A client (or the
/// router, on the client's behalf) attaches `trace` to an `eval` or
/// `subeval`; the server echoes it in the reply together with its
/// stage offsets, so the originating tier can graft the replica's
/// work into its span tree as a child span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceContext {
    /// Fleet-unique trace identifier (opaque non-empty string).
    pub trace_id: String,
    /// Span id of the parent span at the sending tier; absent when
    /// the sender is the trace root.
    pub parent_span: Option<u64>,
}

impl TraceContext {
    /// Parse a `trace` field value.  Strict: a present-but-malformed
    /// context is a protocol error (the caller answers 400), never
    /// silently dropped — a typo'd trace id should not turn into an
    /// untraced request.
    pub fn from_json(v: &Json) -> Result<TraceContext, String> {
        if !matches!(v, Json::Object(_)) {
            return Err("trace must be an object".into());
        }
        let trace_id = match v.get("trace_id") {
            Some(Json::Str(s)) if !s.is_empty() => s.clone(),
            Some(Json::Str(_)) => return Err("trace.trace_id must be non-empty".into()),
            Some(_) => return Err("trace.trace_id must be a string".into()),
            None => return Err("trace needs a \"trace_id\" field".into()),
        };
        let parent_span =
            match v.get("parent_span") {
                None | Some(Json::Null) => None,
                Some(v) => Some(v.as_u64().ok_or_else(|| {
                    "trace.parent_span must be a non-negative integer".to_string()
                })?),
            };
        Ok(TraceContext {
            trace_id,
            parent_span,
        })
    }

    /// Serialize as a `trace` field value.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![("trace_id".to_string(), Json::from(self.trace_id.clone()))];
        if let Some(span) = self.parent_span {
            fields.push(("parent_span".into(), Json::from(span)));
        }
        Json::Object(fields)
    }
}

/// A parsed request line.
#[derive(Debug, Clone)]
pub struct Request {
    /// Client-chosen tag echoed back in the reply (string or integer).
    pub id: Option<String>,
    /// Operation; defaults to `eval` when the field is absent.
    pub op: Op,
    /// Workload spec (`kind:key=val,...`), required for `eval` and
    /// `subeval`.
    pub spec: Option<String>,
    /// Algorithm selector (`name` or `name:key=val,...`).
    pub algo: Option<String>,
    /// Per-request deadline; overrides the server default.
    pub deadline_ms: Option<u64>,
    /// For `trace`: cap on the number of returned traces.
    pub n: Option<u64>,
    /// For `subeval`: dot-joined path from the whole-tree root to the
    /// subtree root (`"0.2.1"`; empty or absent means the whole tree).
    pub path: Option<String>,
    /// For `subeval`: lower search bound; absent means unbounded.
    pub alpha: Option<i64>,
    /// For `subeval`: upper search bound; absent means unbounded.
    pub beta: Option<i64>,
    /// Distributed-trace context: propagated on `eval`/`subeval` so
    /// replica work can be grafted into the sender's span tree, and
    /// accepted on `trace` as a span-tree lookup key.
    pub trace: Option<TraceContext>,
    /// Tenant id for fair scheduling (`eval`/`subeval`); absent means
    /// the anonymous shared tenant.
    pub tenant: Option<String>,
    /// For `join`: the announcing replica's serving address.
    pub addr: Option<String>,
    /// For `join`: the announcing replica's routing weight (keyspace
    /// share is proportional; see `gt_router::hash::rank_weighted`).
    pub weight: Option<u64>,
    /// For `join`: restart counter distinguishing a reborn replica
    /// from a stale announcement of its previous life.
    pub generation: Option<u64>,
}

impl Default for Request {
    /// An empty `eval` request — the base for struct-update literals
    /// (`Request { op: Op::Stats, ..Default::default() }`).  `eval` is
    /// the default because it is also the wire default for an absent
    /// `op` field.
    fn default() -> Request {
        Request {
            id: None,
            op: Op::Eval,
            spec: None,
            algo: None,
            deadline_ms: None,
            n: None,
            path: None,
            alpha: None,
            beta: None,
            trace: None,
            tenant: None,
            addr: None,
            weight: None,
            generation: None,
        }
    }
}

impl Request {
    /// Parse one request line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let j = Json::parse(line)?;
        if !matches!(j, Json::Object(_)) {
            return Err("request must be a JSON object".into());
        }
        let op = match j.get("op").and_then(Json::as_str).unwrap_or("eval") {
            "eval" => Op::Eval,
            "subeval" => Op::Subeval,
            "stats" => Op::Stats,
            "ping" => Op::Ping,
            "shutdown" => Op::Shutdown,
            "trace" => Op::Trace,
            "health" => Op::Health,
            "join" => Op::Join,
            "cachepull" => Op::Cachepull,
            other => return Err(format!("unknown op {other:?}")),
        };
        let id = j.get("id").and_then(|v| match v {
            Json::Str(s) => Some(s.clone()),
            Json::Int(i) => Some(i.to_string()),
            _ => None,
        });
        let spec = j.get("spec").and_then(Json::as_str).map(str::to_string);
        let algo = j.get("algo").and_then(Json::as_str).map(str::to_string);
        let deadline_ms = match j.get("deadline_ms") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_u64()
                    .ok_or_else(|| "deadline_ms must be a non-negative integer".to_string())?,
            ),
        };
        let n = match j.get("n") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_u64()
                    .ok_or_else(|| "n must be a non-negative integer".to_string())?,
            ),
        };
        let path = j.get("path").and_then(Json::as_str).map(str::to_string);
        let bound = |key: &str| -> Result<Option<i64>, String> {
            match j.get(key) {
                None | Some(Json::Null) => Ok(None),
                Some(v) => v
                    .as_int()
                    .and_then(|i| i64::try_from(i).ok())
                    .map(Some)
                    .ok_or_else(|| format!("{key} must be an integer")),
            }
        };
        let alpha = bound("alpha")?;
        let beta = bound("beta")?;
        let trace = match j.get("trace") {
            None | Some(Json::Null) => None,
            Some(v) => Some(TraceContext::from_json(v)?),
        };
        let tenant = match j.get("tenant") {
            None | Some(Json::Null) => None,
            Some(Json::Str(s)) if !s.is_empty() => Some(s.clone()),
            Some(Json::Str(_)) => return Err("tenant must be non-empty".into()),
            Some(_) => return Err("tenant must be a string".into()),
        };
        let addr = j.get("addr").and_then(Json::as_str).map(str::to_string);
        let uint = |key: &str| -> Result<Option<u64>, String> {
            match j.get(key) {
                None | Some(Json::Null) => Ok(None),
                Some(v) => v
                    .as_u64()
                    .map(Some)
                    .ok_or_else(|| format!("{key} must be a non-negative integer")),
            }
        };
        let weight = uint("weight")?;
        let generation = uint("generation")?;
        if matches!(op, Op::Eval | Op::Subeval) && spec.is_none() {
            return Err(format!("{op:?} request needs a \"spec\" field").to_lowercase());
        }
        if op == Op::Join && addr.as_deref().is_none_or(str::is_empty) {
            return Err("join request needs a non-empty \"addr\" field".into());
        }
        Ok(Request {
            id,
            op,
            spec,
            algo,
            deadline_ms,
            n,
            path,
            alpha,
            beta,
            trace,
            tenant,
            addr,
            weight,
            generation,
        })
    }

    /// Build an `eval` request (client side).
    pub fn eval(spec: &str, algo: &str, deadline_ms: Option<u64>) -> Request {
        Request {
            op: Op::Eval,
            spec: Some(spec.to_string()),
            algo: Some(algo.to_string()),
            deadline_ms,
            ..Default::default()
        }
    }

    /// Build a `join` announcement (replica → router).
    pub fn join(addr: &str, weight: u64, generation: u64) -> Request {
        Request {
            op: Op::Join,
            addr: Some(addr.to_string()),
            weight: Some(weight),
            generation: Some(generation),
            ..Default::default()
        }
    }

    /// Build a `cachepull` request (peer warm-fill): ask for up to
    /// `limit` of the peer's hottest cache entries.
    pub fn cachepull(limit: u64) -> Request {
        Request {
            op: Op::Cachepull,
            n: Some(limit),
            ..Default::default()
        }
    }

    /// Build a `subeval` request (client side).  `path` is dot-joined
    /// child indices from the whole-tree root; `i64::MIN`/`i64::MAX`
    /// bounds are elided from the wire.
    pub fn subeval(
        spec: &str,
        path: &str,
        alpha: i64,
        beta: i64,
        deadline_ms: Option<u64>,
    ) -> Request {
        Request {
            op: Op::Subeval,
            spec: Some(spec.to_string()),
            deadline_ms,
            path: if path.is_empty() {
                None
            } else {
                Some(path.to_string())
            },
            alpha: (alpha != i64::MIN).then_some(alpha),
            beta: (beta != i64::MAX).then_some(beta),
            ..Default::default()
        }
    }

    /// Serialize to a single request line (no trailing newline).
    pub fn render(&self) -> String {
        let mut fields: Vec<(String, Json)> = Vec::new();
        let op = match self.op {
            Op::Eval => "eval",
            Op::Subeval => "subeval",
            Op::Stats => "stats",
            Op::Ping => "ping",
            Op::Shutdown => "shutdown",
            Op::Trace => "trace",
            Op::Health => "health",
            Op::Join => "join",
            Op::Cachepull => "cachepull",
        };
        fields.push(("op".into(), Json::from(op)));
        if let Some(id) = &self.id {
            fields.push(("id".into(), Json::from(id.clone())));
        }
        if let Some(spec) = &self.spec {
            fields.push(("spec".into(), Json::from(spec.clone())));
        }
        if let Some(algo) = &self.algo {
            fields.push(("algo".into(), Json::from(algo.clone())));
        }
        if let Some(ms) = self.deadline_ms {
            fields.push(("deadline_ms".into(), Json::from(ms)));
        }
        if let Some(n) = self.n {
            fields.push(("n".into(), Json::from(n)));
        }
        if let Some(path) = &self.path {
            fields.push(("path".into(), Json::from(path.clone())));
        }
        if let Some(alpha) = self.alpha {
            fields.push(("alpha".into(), Json::from(alpha)));
        }
        if let Some(beta) = self.beta {
            fields.push(("beta".into(), Json::from(beta)));
        }
        if let Some(trace) = &self.trace {
            fields.push(("trace".into(), trace.to_json()));
        }
        if let Some(tenant) = &self.tenant {
            fields.push(("tenant".into(), Json::from(tenant.clone())));
        }
        if let Some(addr) = &self.addr {
            fields.push(("addr".into(), Json::from(addr.clone())));
        }
        if let Some(weight) = self.weight {
            fields.push(("weight".into(), Json::from(weight)));
        }
        if let Some(generation) = self.generation {
            fields.push(("generation".into(), Json::from(generation)));
        }
        Json::Object(fields).render()
    }
}

/// Reply error categories, with HTTP-flavoured status numbers so
/// clients can triage without string matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Unparseable or invalid request (400).
    BadRequest,
    /// Deadline expired before a result was ready (408).
    Timeout,
    /// Queue full — request shed, try again later (429).
    Busy,
    /// Internal failure (500).
    Internal,
    /// Server is draining for shutdown (503).
    Draining,
}

impl ErrorCode {
    /// Numeric status.
    pub fn status(self) -> u64 {
        match self {
            ErrorCode::BadRequest => 400,
            ErrorCode::Timeout => 408,
            ErrorCode::Busy => 429,
            ErrorCode::Internal => 500,
            ErrorCode::Draining => 503,
        }
    }

    /// Short machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::Timeout => "timeout",
            ErrorCode::Busy => "busy",
            ErrorCode::Internal => "internal",
            ErrorCode::Draining => "draining",
        }
    }
}

/// Render a success reply line from `fields` (no trailing newline).
pub fn ok_line(id: &Option<String>, fields: Vec<(&'static str, Json)>) -> String {
    let mut pairs: Vec<(String, Json)> = vec![("ok".into(), Json::Bool(true))];
    if let Some(id) = id {
        pairs.push(("id".into(), Json::from(id.clone())));
    }
    for (k, v) in fields {
        pairs.push((k.to_string(), v));
    }
    Json::Object(pairs).render()
}

/// Render an error reply line (no trailing newline).
pub fn error_line(id: &Option<String>, code: ErrorCode, message: &str) -> String {
    error_line_with(id, code, message, Vec::new())
}

/// Render an error reply line with extra op-specific fields — the
/// `busy` shed path uses this to attach its `retry_after_ms` backoff
/// hint.
pub fn error_line_with(
    id: &Option<String>,
    code: ErrorCode,
    message: &str,
    extra: Vec<(&'static str, Json)>,
) -> String {
    let mut pairs: Vec<(String, Json)> = vec![("ok".into(), Json::Bool(false))];
    if let Some(id) = id {
        pairs.push(("id".into(), Json::from(id.clone())));
    }
    pairs.push(("status".into(), Json::from(code.status())));
    pairs.push(("code".into(), Json::from(code.name())));
    pairs.push(("error".into(), Json::from(message)));
    for (k, v) in extra {
        pairs.push((k.to_string(), v));
    }
    Json::Object(pairs).render()
}

/// A parsed response line (client side).
#[derive(Debug, Clone)]
pub struct Response {
    /// Success flag.
    pub ok: bool,
    /// Echo of the request id, when one was sent.
    pub id: Option<String>,
    /// Status number for errors (400/408/429/500/503); 0 on success.
    pub status: u64,
    /// Machine-readable error code name, for errors.
    pub code: Option<String>,
    /// Human-readable error message, for errors.
    pub error: Option<String>,
    /// The whole reply object, for access to op-specific fields
    /// (`value`, `work`, `cached`, `stats`, ...).
    pub body: Json,
}

impl Response {
    /// Parse one response line.
    pub fn parse(line: &str) -> Result<Response, String> {
        let body = Json::parse(line)?;
        let ok = body
            .get("ok")
            .and_then(Json::as_bool)
            .ok_or_else(|| "response missing \"ok\"".to_string())?;
        let id = body.get("id").and_then(Json::as_str).map(str::to_string);
        let status = body.get("status").and_then(Json::as_u64).unwrap_or(0);
        let code = body.get("code").and_then(Json::as_str).map(str::to_string);
        let error = body.get("error").and_then(Json::as_str).map(str::to_string);
        Ok(Response {
            ok,
            id,
            status,
            code,
            error,
            body,
        })
    }

    /// The root value, for successful eval replies.
    pub fn value(&self) -> Option<i64> {
        self.body
            .get("value")
            .and_then(Json::as_int)
            .and_then(|v| i64::try_from(v).ok())
    }

    /// Leaves evaluated by the run, from the reply's `work` object —
    /// the per-sub-eval work figure split plans sum.
    pub fn leaves(&self) -> Option<u64> {
        self.body
            .get("work")
            .and_then(|w| w.get("leaves"))
            .and_then(Json::as_u64)
    }

    /// Whether the reply was served from the result cache.
    pub fn cached(&self) -> bool {
        self.body
            .get("cached")
            .and_then(Json::as_bool)
            .unwrap_or(false)
    }

    /// Whether the reply was coalesced onto another request's engine
    /// run (single flight) instead of running its own.
    pub fn coalesced(&self) -> bool {
        self.body
            .get("coalesced")
            .and_then(Json::as_bool)
            .unwrap_or(false)
    }

    /// The backoff hint carried by `busy` (429) shed replies, in
    /// milliseconds: roughly how long the server expects its backlog
    /// to take to drain.
    pub fn retry_after_ms(&self) -> Option<u64> {
        self.body.get("retry_after_ms").and_then(Json::as_u64)
    }

    /// The trace id echoed (replica) or minted (router) for this
    /// request, from the reply's `trace_id` field or `trace` object.
    pub fn trace_id(&self) -> Option<&str> {
        self.body
            .get("trace_id")
            .and_then(Json::as_str)
            .or_else(|| {
                self.body
                    .get("trace")
                    .and_then(|t| t.get("trace_id"))
                    .and_then(Json::as_str)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_eval_request() {
        let r = Request::parse(r#"{"spec":"worst:d=2,n=4"}"#).unwrap();
        assert_eq!(r.op, Op::Eval);
        assert_eq!(r.spec.as_deref(), Some("worst:d=2,n=4"));
        assert_eq!(r.algo, None);
        assert_eq!(r.deadline_ms, None);
        assert_eq!(r.id, None);
    }

    #[test]
    fn parses_full_request_and_integer_id() {
        let r = Request::parse(
            r#"{"op":"eval","id":7,"spec":"crit:n=6","algo":"round:w=2","deadline_ms":250}"#,
        )
        .unwrap();
        assert_eq!(r.id.as_deref(), Some("7"));
        assert_eq!(r.algo.as_deref(), Some("round:w=2"));
        assert_eq!(r.deadline_ms, Some(250));
    }

    #[test]
    fn control_ops_parse_without_spec() {
        for (text, op) in [
            (r#"{"op":"stats"}"#, Op::Stats),
            (r#"{"op":"ping"}"#, Op::Ping),
            (r#"{"op":"shutdown"}"#, Op::Shutdown),
            (r#"{"op":"health"}"#, Op::Health),
        ] {
            assert_eq!(Request::parse(text).unwrap().op, op);
        }
    }

    #[test]
    fn health_op_render_parse_round_trips() {
        let mut r = Request::parse(r#"{"op":"health"}"#).unwrap();
        r.id = Some("h1".into());
        let back = Request::parse(&r.render()).unwrap();
        assert_eq!(back.op, Op::Health);
        assert_eq!(back.id.as_deref(), Some("h1"));
    }

    #[test]
    fn join_op_round_trips_and_requires_an_addr() {
        let r = Request::parse(r#"{"op":"join","addr":"10.0.0.7:7171","weight":4,"generation":2}"#)
            .unwrap();
        assert_eq!(r.op, Op::Join);
        assert_eq!(r.addr.as_deref(), Some("10.0.0.7:7171"));
        assert_eq!(r.weight, Some(4));
        assert_eq!(r.generation, Some(2));
        // Render/parse round-trip via the constructor.
        let back = Request::parse(&Request::join("10.0.0.7:7171", 4, 2).render()).unwrap();
        assert_eq!(back.op, Op::Join);
        assert_eq!(back.addr.as_deref(), Some("10.0.0.7:7171"));
        assert_eq!(back.weight, Some(4));
        assert_eq!(back.generation, Some(2));
        // A join without (or with an empty) addr is malformed.
        assert!(Request::parse(r#"{"op":"join"}"#).is_err());
        assert!(Request::parse(r#"{"op":"join","addr":""}"#).is_err());
        assert!(Request::parse(r#"{"op":"join","addr":"a:1","weight":-2}"#).is_err());
        assert!(Request::parse(r#"{"op":"join","addr":"a:1","generation":"x"}"#).is_err());
    }

    #[test]
    fn cachepull_op_round_trips_with_its_limit() {
        let r = Request::parse(r#"{"op":"cachepull","n":64}"#).unwrap();
        assert_eq!(r.op, Op::Cachepull);
        assert_eq!(r.n, Some(64));
        let back = Request::parse(&Request::cachepull(64).render()).unwrap();
        assert_eq!(back.op, Op::Cachepull);
        assert_eq!(back.n, Some(64));
        // Limit is optional: the replica applies its default.
        assert_eq!(Request::parse(r#"{"op":"cachepull"}"#).unwrap().n, None);
    }

    #[test]
    fn tenant_field_round_trips_and_rejects_junk() {
        let r = Request::parse(r#"{"spec":"worst:d=2,n=4","tenant":"team-a"}"#).unwrap();
        assert_eq!(r.tenant.as_deref(), Some("team-a"));
        let back = Request::parse(&r.render()).unwrap();
        assert_eq!(back.tenant.as_deref(), Some("team-a"));
        // Empty or non-string tenants are malformed, not ignored.
        assert!(Request::parse(r#"{"spec":"worst:d=2,n=4","tenant":""}"#).is_err());
        assert!(Request::parse(r#"{"spec":"worst:d=2,n=4","tenant":7}"#).is_err());
    }

    #[test]
    fn trace_op_parses_with_optional_limit() {
        let r = Request::parse(r#"{"op":"trace"}"#).unwrap();
        assert_eq!(r.op, Op::Trace);
        assert_eq!(r.n, None);
        let r = Request::parse(r#"{"op":"trace","n":5}"#).unwrap();
        assert_eq!(r.n, Some(5));
        assert!(Request::parse(r#"{"op":"trace","n":"lots"}"#).is_err());
        // Render/parse round-trip keeps the limit.
        let mut req = Request::parse(r#"{"op":"trace"}"#).unwrap();
        req.n = Some(3);
        let back = Request::parse(&req.render()).unwrap();
        assert_eq!(back.op, Op::Trace);
        assert_eq!(back.n, Some(3));
    }

    #[test]
    fn rejects_bad_requests() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse("[1,2]").is_err());
        assert!(Request::parse(r#"{"op":"frobnicate"}"#).is_err());
        assert!(Request::parse(r#"{"op":"eval"}"#).is_err(), "spec required");
        assert!(Request::parse(r#"{"spec":"x","deadline_ms":-5}"#).is_err());
        assert!(Request::parse(r#"{"spec":"x","deadline_ms":"soon"}"#).is_err());
        assert!(
            Request::parse(r#"{"op":"subeval"}"#).is_err(),
            "spec required"
        );
        assert!(Request::parse(r#"{"op":"subeval","spec":"x","alpha":"low"}"#).is_err());
        assert!(Request::parse(r#"{"op":"subeval","spec":"x","beta":1.5}"#).is_err());
    }

    #[test]
    fn subeval_request_round_trips() {
        let r = Request::parse(
            r#"{"op":"subeval","id":"s1","spec":"minmax:d=3,n=6","path":"2.0","alpha":-5,"beta":40,"deadline_ms":80}"#,
        )
        .unwrap();
        assert_eq!(r.op, Op::Subeval);
        assert_eq!(r.path.as_deref(), Some("2.0"));
        assert_eq!((r.alpha, r.beta), (Some(-5), Some(40)));
        let back = Request::parse(&r.render()).unwrap();
        assert_eq!(back.path, r.path);
        assert_eq!((back.alpha, back.beta), (r.alpha, r.beta));
        assert_eq!(back.deadline_ms, Some(80));

        // The constructor elides unbounded window halves and the empty
        // (whole-tree) path from the wire.
        let r = Request::subeval("worst:d=2,n=8", "", i64::MIN, i64::MAX, None);
        let text = r.render();
        assert!(!text.contains("alpha") && !text.contains("beta") && !text.contains("path"));
        let back = Request::parse(&text).unwrap();
        assert_eq!(back.op, Op::Subeval);
        assert_eq!((back.path, back.alpha, back.beta), (None, None, None));
    }

    #[test]
    fn request_render_parse_round_trips() {
        let mut r = Request::eval("worst:d=2,n=8", "cascade:w=1", Some(100));
        r.id = Some("tag".into());
        let back = Request::parse(&r.render()).unwrap();
        assert_eq!(back.op, Op::Eval);
        assert_eq!(back.id.as_deref(), Some("tag"));
        assert_eq!(back.spec, r.spec);
        assert_eq!(back.algo, r.algo);
        assert_eq!(back.deadline_ms, Some(100));
    }

    #[test]
    fn ok_and_error_lines_parse_back() {
        let id = Some("q".to_string());
        let line = ok_line(
            &id,
            vec![("value", Json::from(3i64)), ("cached", Json::Bool(true))],
        );
        let resp = Response::parse(&line).unwrap();
        assert!(resp.ok);
        assert_eq!(resp.id.as_deref(), Some("q"));
        assert_eq!(resp.value(), Some(3));
        assert!(resp.cached());

        let line = error_line(&id, ErrorCode::Busy, "queue full");
        let resp = Response::parse(&line).unwrap();
        assert!(!resp.ok);
        assert_eq!(resp.status, 429);
        assert_eq!(resp.code.as_deref(), Some("busy"));
        assert_eq!(resp.error.as_deref(), Some("queue full"));
        assert_eq!(resp.retry_after_ms(), None);
    }

    #[test]
    fn busy_line_carries_a_retry_after_hint() {
        let line = error_line_with(
            &None,
            ErrorCode::Busy,
            "queue full",
            vec![("retry_after_ms", Json::from(40u64))],
        );
        let resp = Response::parse(&line).unwrap();
        assert_eq!(resp.status, 429);
        assert_eq!(resp.retry_after_ms(), Some(40));
    }

    #[test]
    fn absent_trace_context_parses_as_none() {
        let r = Request::parse(r#"{"spec":"worst:d=2,n=4"}"#).unwrap();
        assert_eq!(r.trace, None);
        // Explicit null is treated the same as absent.
        let r = Request::parse(r#"{"spec":"worst:d=2,n=4","trace":null}"#).unwrap();
        assert_eq!(r.trace, None);
        // And an untraced request renders without a trace field.
        assert!(!Request::eval("worst:d=2,n=4", "seq", None)
            .render()
            .contains("trace"));
    }

    #[test]
    fn client_supplied_trace_context_round_trips() {
        let r = Request::parse(
            r#"{"spec":"worst:d=2,n=4","trace":{"trace_id":"t-42","parent_span":7}}"#,
        )
        .unwrap();
        let ctx = r.trace.clone().unwrap();
        assert_eq!(ctx.trace_id, "t-42");
        assert_eq!(ctx.parent_span, Some(7));
        let back = Request::parse(&r.render()).unwrap();
        assert_eq!(back.trace, r.trace);

        // A root context has no parent_span, on the wire or back.
        let mut req = Request::eval("worst:d=2,n=4", "seq", None);
        req.trace = Some(TraceContext {
            trace_id: "root-1".into(),
            parent_span: None,
        });
        let text = req.render();
        assert!(!text.contains("parent_span"));
        assert_eq!(Request::parse(&text).unwrap().trace, req.trace);
    }

    #[test]
    fn malformed_trace_context_is_rejected() {
        // Each of these must fail the parse so the server's existing
        // bad-request path answers 400.
        for line in [
            r#"{"spec":"x","trace":"t-1"}"#,           // not an object
            r#"{"spec":"x","trace":{}}"#,              // missing trace_id
            r#"{"spec":"x","trace":{"trace_id":""}}"#, // empty trace_id
            r#"{"spec":"x","trace":{"trace_id":9}}"#,  // non-string trace_id
            r#"{"spec":"x","trace":{"trace_id":"t","parent_span":-1}}"#, // negative span
            r#"{"spec":"x","trace":{"trace_id":"t","parent_span":"s"}}"#, // non-integer span
        ] {
            assert!(Request::parse(line).is_err(), "should reject: {line}");
        }
    }

    #[test]
    fn response_trace_id_reads_both_shapes() {
        // Router replies carry a flat trace_id...
        let line = ok_line(&None, vec![("trace_id", Json::from("t-9"))]);
        assert_eq!(Response::parse(&line).unwrap().trace_id(), Some("t-9"));
        // ...replica replies echo the full trace object.
        let line = ok_line(
            &None,
            vec![(
                "trace",
                Json::Object(vec![("trace_id".into(), Json::from("t-10"))]),
            )],
        );
        assert_eq!(Response::parse(&line).unwrap().trace_id(), Some("t-10"));
        assert_eq!(Response::parse(r#"{"ok":true}"#).unwrap().trace_id(), None);
    }

    #[test]
    fn every_error_code_has_distinct_status_and_name() {
        let codes = [
            ErrorCode::BadRequest,
            ErrorCode::Timeout,
            ErrorCode::Busy,
            ErrorCode::Internal,
            ErrorCode::Draining,
        ];
        let statuses: std::collections::BTreeSet<u64> = codes.iter().map(|c| c.status()).collect();
        let names: std::collections::BTreeSet<&str> = codes.iter().map(|c| c.name()).collect();
        assert_eq!(statuses.len(), codes.len());
        assert_eq!(names.len(), codes.len());
    }
}
